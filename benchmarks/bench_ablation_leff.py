"""Ablations for two parameter choices the paper calls out explicitly.

1. **L_eff balance** (paper Figure 1 caption): "Setting L_eff too low
   would require many low-latency bootstraps, while setting it too high
   would result in fewer but higher-latency bootstraps.  We set
   L_eff = 10."  We sweep L_eff on ResNet-20 and check the modeled
   end-to-end latency is U-shaped: the extremes lose to the middle.

2. **BSGS split choice** (paper Section 3.2): "the number of ciphertext
   rotations is minimized when n1 = n2 = sqrt(n)."  We sweep the baby
   modulus for a dense square matrix and check the optimum.
"""

from repro.backend.costs import CostModel
from repro.ckks.params import paper_parameters
from repro.core.packing.bsgs import plan_bsgs
from repro.models import resnet_cifar, relu_act
from repro.nn import init
from repro.orion import OrionNetwork


def test_ablation_leff_balance(record_table, benchmark):
    init.seed_init(0)
    rows = []
    latencies = {}
    # ReLU's three composite sign stages are separate polynomial layers
    # (paper Section 5.1), so bootstraps may land between them and the
    # "too low L_eff -> many cheap bootstraps" regime is reachable.
    sweep = (8, 9, 10, 12, 14, 16, 18, 20, 24)
    for l_eff in sweep:
        params = paper_parameters(max_level=l_eff + 14, boot_levels=14)
        net = resnet_cifar(20, act=relu_act())
        compiled = OrionNetwork(net, (3, 32, 32)).compile(params, mode="analyze")
        latencies[l_eff] = compiled.modeled_seconds
        rows.append(
            (
                l_eff,
                compiled.num_bootstraps,
                f"{CostModel(params).bootstrap(l_eff):.1f}",
                f"{compiled.modeled_seconds:.0f}",
            )
        )
    record_table(
        "ablation_leff",
        "Figure 1 trade-off: L_eff vs bootstrap count and modeled latency (ResNet-20, ReLU)",
        ("L_eff", "#boots", "per-boot (s)", "total (s, modeled)"),
        rows,
    )
    # Bootstrap count decreases (weakly) as L_eff grows...
    counts = [r[1] for r in rows]
    assert counts == sorted(counts, reverse=True)
    # ...while per-bootstrap cost increases, so the best total latency
    # sits strictly inside the sweep (the paper's balancing argument).
    best = min(latencies, key=latencies.get)
    assert sweep[0] < best < sweep[-1]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_bsgs_split(record_table, benchmark):
    n = 1 << 12
    offsets = range(n)
    rows = []
    rotation_counts = {}
    for log_n1 in range(2, 11):
        n1 = 1 << log_n1
        babies = sum(1 for b in range(min(n1, n)) if b)
        giants = sum(1 for g in range(0, n, n1) if g)
        rotation_counts[n1] = babies + giants
        rows.append((n1, n // n1, babies + giants))
    optimal = plan_bsgs(offsets, n)
    record_table(
        "ablation_bsgs_split",
        f"Section 3.2: rotations vs baby modulus for a dense {n}x{n} matvec",
        ("n1", "n2", "rotations"),
        rows,
    )
    best_n1 = min(rotation_counts, key=rotation_counts.get)
    # Optimum at n1 = n2 = sqrt(n) (paper Section 3.2).
    assert best_n1 == 1 << 6
    assert optimal.num_rotations == rotation_counts[best_n1]
    benchmark.pedantic(lambda: plan_bsgs(offsets, n), rounds=3, iterations=1)
