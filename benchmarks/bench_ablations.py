"""Ablations for the design choices DESIGN.md calls out.

1. Hoisting (none / single / double) on matvec cost — Table 4's conv
   speedup source.
2. Activation choice (ReLU vs SiLU) — Section 8.2's latency/depth
   trade-off (paper: ~1.77x average speedup from SiLU).
3. Errorless scale management vs EVA-style waterline — Section 6.
4. Placement policy (planner vs lazy vs DaCapo-style) — Section 5.
"""

import numpy as np

from repro.backend import SimBackend
from repro.backend.costs import CostModel
from repro.ckks.params import paper_parameters
from repro.core.placement.baselines import dacapo_style_placement, lazy_placement
from repro.core.scale import (
    ErrorlessScalePolicy,
    WaterlineScalePolicy,
    run_pmult_chain,
)
from repro.models import resnet_cifar, relu_act, silu_act
from repro.nn import init
from repro.orion import OrionNetwork

PARAMS = paper_parameters()
COSTS = CostModel(PARAMS)


def test_ablation_hoisting(record_table, benchmark):
    rows = []
    level = PARAMS.effective_level
    for diags, baby, giant in ((64, 8, 8), (256, 16, 16), (1024, 32, 32)):
        none = COSTS.matvec_cost(level, diags, baby, giant, "none")
        single = COSTS.matvec_cost(level, diags, baby, giant, "single")
        double = COSTS.matvec_cost(level, diags, baby, giant, "double")
        rows.append(
            (f"{diags} diags", f"{none:.2f}", f"{single:.2f}", f"{double:.2f}",
             f"{none / double:.2f}x")
        )
        assert double < single < none
    record_table(
        "ablation_hoisting",
        "Ablation: matvec latency (s) by hoisting strategy",
        ("matvec", "none", "single", "double", "none/double"),
        rows,
    )
    benchmark.pedantic(
        lambda: COSTS.matvec_cost(level, 256, 16, 16, "double"),
        rounds=100, iterations=10,
    )


def test_ablation_activation(record_table, benchmark):
    """SiLU halves activation depth -> fewer bootstraps -> lower latency
    (paper Section 8.2)."""
    rows = []
    stats = {}
    for act_name, act in (("ReLU[15,15,27]", relu_act()), ("SiLU-127", silu_act(127))):
        init.seed_init(0)
        net = resnet_cifar(20, act=act)
        compiled = OrionNetwork(net, (3, 32, 32)).compile(PARAMS, mode="analyze")
        stats[act_name] = compiled
        rows.append(
            (act_name, compiled.multiplicative_depth, compiled.num_bootstraps,
             f"{compiled.modeled_seconds:.1f}")
        )
    relu = stats["ReLU[15,15,27]"]
    silu = stats["SiLU-127"]
    speedup = relu.modeled_seconds / silu.modeled_seconds
    rows.append(("SiLU speedup", "-", "-", f"{speedup:.2f}x"))
    record_table(
        "ablation_activation",
        "Ablation: ResNet-20 with ReLU vs SiLU (paper ~1.77x average speedup)",
        ("activation", "depth", "#boots", "modeled time (s)"),
        rows,
    )
    assert silu.multiplicative_depth < relu.multiplicative_depth
    assert silu.num_bootstraps < relu.num_bootstraps
    assert speedup > 1.2
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_scale_management(record_table, benchmark):
    """Errorless policy holds scale at exactly Delta; waterline drifts
    and a Delta-assuming decode inherits the drift as value error."""
    rng = np.random.default_rng(0)
    values = rng.uniform(-1, 1, 64)
    weights = [rng.uniform(0.5, 1.0, 64) for _ in range(8)]
    expected = values.copy()
    for w in weights:
        expected = expected * w
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


    rows = []
    for policy in (ErrorlessScalePolicy(), WaterlineScalePolicy()):
        backend = SimBackend(PARAMS, seed=1, noise_free=True)
        decoded, final_scale = run_pmult_chain(backend, values, weights, policy)
        err = np.abs(decoded[:64] - expected).max()
        exact = final_scale == PARAMS.scale
        rows.append((policy.name, "yes" if exact else "no", f"{err:.2e}"))
    record_table(
        "ablation_scale",
        "Ablation: scale policy after an 8-deep PMult chain (noise-free)",
        ("policy", "final scale == Delta", "max value error"),
        rows,
    )
    errorless_err = float(rows[0][2])
    waterline_err = float(rows[1][2])
    assert errorless_err < 1e-12
    assert waterline_err > 100 * max(errorless_err, 1e-300)


def test_ablation_placement_policy(record_table, benchmark):
    init.seed_init(0)
    net = resnet_cifar(32, act=silu_act(127))
    compiled = OrionNetwork(net, (3, 32, 32)).compile(PARAMS, mode="analyze")
    boot_cost = COSTS.bootstrap()
    lazy = lazy_placement(compiled.chain, PARAMS.effective_level, boot_cost)
    dacapo = dacapo_style_placement(compiled.chain, PARAMS.effective_level, boot_cost)
    rows = [
        ("Orion planner", compiled.num_bootstraps,
         f"{compiled.modeled_seconds:.1f}", f"{compiled.placement.solve_seconds*1e3:.1f}"),
        ("lazy", lazy.num_bootstraps, f"{lazy.modeled_seconds:.1f}",
         f"{lazy.solve_seconds*1e3:.1f}"),
        ("DaCapo-style", dacapo.num_bootstraps, f"{dacapo.modeled_seconds:.1f}",
         f"{dacapo.solve_seconds*1e3:.1f}"),
    ]
    record_table(
        "ablation_placement",
        "Ablation: placement policy on ResNet-32 (SiLU)",
        ("policy", "#boots", "network latency (s)", "solve time (ms)"),
        rows,
    )
    assert compiled.modeled_seconds <= lazy.modeled_seconds
    assert compiled.modeled_seconds <= dacapo.modeled_seconds * 1.001
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


