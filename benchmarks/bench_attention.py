"""Future-work extension: encrypted self-attention cost and precision.

Not a paper table — the paper's conclusion names self-attention as the
next layer type Orion should support.  This bench characterizes our
implementation (repro.core.attention): precision against the true
softmax and operation counts as the sequence length grows.
"""

import math

import numpy as np

from repro.backend.sim import SimBackend
from repro.ckks.params import paper_parameters
from repro.core.attention import EncryptedAttention

PARAMS = paper_parameters(max_level=24)


def _run(seq_len: int, dim: int, seed: int = 0):
    backend = SimBackend(PARAMS, seed=seed)
    rng = np.random.default_rng(seed)
    tokens = rng.uniform(-0.5, 0.5, (seq_len, dim))
    wq, wk, wv = (rng.normal(size=(dim, dim)) / math.sqrt(dim) for _ in range(3))
    attn = EncryptedAttention(backend, wq, wk, wv)
    cts = [backend.encode_encrypt(t, level=PARAMS.max_level) for t in tokens]
    outs = attn(cts)
    got = np.stack([backend.decrypt(o)[:dim] for o in outs])
    err = np.abs(got - attn.reference(tokens)).mean()
    counts = backend.ledger.counts
    return {
        "bits": -math.log2(err),
        "rots": counts["hrot"],
        "hmults": counts["hmult"],
        "modeled": backend.ledger.seconds,
        "levels": PARAMS.max_level - backend.level_of(outs[0]),
    }


def test_attention_scaling(record_table, benchmark):
    dim = 16
    rows = []
    stats = {}
    for seq_len in (2, 4, 8):
        s = _run(seq_len, dim)
        stats[seq_len] = s
        rows.append(
            (
                seq_len,
                dim,
                f"{s['bits']:.1f}",
                s["levels"],
                s["rots"],
                s["hmults"],
                f"{s['modeled']:.0f}",
            )
        )
    record_table(
        "attention_scaling",
        "Encrypted self-attention (future-work layer): precision and cost vs sequence length",
        ("tokens", "dim", "precision (b)", "levels", "rots", "hmults", "modeled (s)"),
        rows,
    )
    # Precision stays usable at every length; cost grows ~quadratically
    # (T^2 score inner products dominate).
    assert all(s["bits"] > 8.0 for s in stats.values())
    assert stats[8]["hmults"] > 3 * stats[2]["hmults"]
    benchmark.pedantic(lambda: _run(2, 8), rounds=1, iterations=1)
