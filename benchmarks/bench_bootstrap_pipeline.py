"""Ablation: real bootstrapping pipeline vs the oracle substitution.

DESIGN.md substitutes the paper's Lattigo bootstrap with an oracle
refresh whose external contract (level reset to L_eff, L_boot levels
consumed, bounded error, large modeled latency) matches the primitive
the compiler reasons about.  This bench validates that substitution by
running the *real* ModRaise -> CoeffToSlot -> EvalMod -> SlotToCoeff
pipeline (repro.ckks.bootstrap) on the exact toy arithmetic and
comparing both flavours on every contract clause.
"""

import numpy as np
import pytest

from repro.backend.toy import ToyBackend
from repro.ckks.bootstrap import CkksBootstrapper
from repro.ckks.params import (
    bootstrap_parameters,
    double_angle_bootstrap_parameters,
    toy_parameters,
)


def _precision_bits(got, want):
    return float(-np.log2(np.abs(got - want).mean()))


def test_real_vs_oracle_bootstrap(record_table, benchmark):
    real_params = bootstrap_parameters()
    oracle_params = toy_parameters(
        ring_degree=real_params.ring_degree,
        max_level=real_params.max_level,
        scale_bits=real_params.scale_bits,
        boot_levels=real_params.boot_levels,
    )
    message = np.random.default_rng(0).uniform(-0.9, 0.9, real_params.slot_count)

    rows = []
    refreshed = {}
    da_params = double_angle_bootstrap_parameters()
    da_backend = ToyBackend(da_params, seed=3)
    da_backend._bootstrapper = CkksBootstrapper(
        da_backend, eval_degree=23, double_angles=2
    )
    flavours = (
        ("oracle", ToyBackend(oracle_params, seed=3), oracle_params),
        ("real (sine-63)", ToyBackend(real_params, seed=3, real_bootstrap=True), real_params),
        ("real (cos-23, 2x double-angle)", da_backend, da_params),
    )
    for name, backend, params in flavours:
        ct = backend.encode_encrypt(message, level=0)
        out = backend.bootstrap(ct)
        refreshed[name] = (backend, out)
        rows.append(
            (
                name,
                out.level,
                params.boot_levels,
                str(out.scale == params.scale),
                f"{_precision_bits(backend.decrypt(out), message):.1f}",
                backend.ledger.counts["hrot"] + backend.ledger.counts["hrot_hoisted"],
                backend.ledger.counts["hmult"],
            )
        )
    record_table(
        "ablation_bootstrap",
        "Real CKKS bootstrap pipeline vs oracle substitution (toy backend)",
        ("flavour", "out level", "L_boot", "scale==Delta", "precision (b)", "rots", "hmults"),
        rows,
    )
    # Contract clauses: identical level reset, exact scale, usable precision.
    assert rows[0][1] == rows[1][1] == rows[2][1]
    assert all(r[3] == "True" for r in rows)
    assert float(rows[1][4]) > 7.0 and float(rows[2][4]) > 7.0
    # The real pipelines do actual work (rotations + multiplications),
    # and the double-angle variant needs fewer ct-ct multiplications.
    assert rows[1][5] > 20 and rows[1][6] > 10
    assert rows[2][6] < rows[1][6]

    backend, out = refreshed["real (sine-63)"]
    squared = backend.rescale(backend.mul(out, out))
    assert _precision_bits(backend.decrypt(squared), message**2) > 6.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.parametrize("chain_length", [2])
def test_chained_real_bootstraps(chain_length, record_table, benchmark):
    """Noise stays bounded across repeated refreshes (the FHE property)."""
    params = bootstrap_parameters()
    backend = ToyBackend(params, seed=5, real_bootstrap=True)
    message = np.random.default_rng(1).uniform(-0.8, 0.8, params.slot_count)
    ct = backend.encode_encrypt(message, level=0)
    rows = []
    for i in range(chain_length):
        ct = backend.bootstrap(ct)
        rows.append((i + 1, f"{_precision_bits(backend.decrypt(ct), message):.1f}"))
        ct = backend.level_down(ct, 0)
    record_table(
        "ablation_bootstrap_chain",
        "Precision across chained real bootstraps",
        ("refresh #", "precision (b)"),
        rows,
    )
    assert float(rows[-1][1]) > 6.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
