"""Ablation + end-to-end latency of the real bootstrapping pipeline.

DESIGN.md substitutes the paper's Lattigo bootstrap with an oracle
refresh whose external contract (level reset to L_eff, L_boot levels
consumed, bounded error, large modeled latency) matches the primitive
the compiler reasons about.  This bench validates that substitution by
running the *real* ModRaise -> CoeffToSlot -> EvalMod -> SlotToCoeff
pipeline (repro.ckks.bootstrap) on the exact toy arithmetic and
comparing both flavours on every contract clause.

``test_bootstrap_e2e_latency`` additionally times the *whole* pipeline
— the number the per-stage transform benchmarks could not gate — in two
flavours:

- **shared** (the production path): the CoeffToSlot conjugation rides
  the transforms' shared digit decomposition as composed Galois
  elements, both CoeffToSlot halves come from ONE fused call, and the
  EvalMod constant plaintexts are cached across refreshes;
- **pre-PR fused**: the previous fused pipeline — explicit conjugation
  key switch, one fused call per half, constants re-encoded every call.

Medians merge into ``BENCH_ckks_hotpath.json`` (section
``bootstrap_e2e``) and CI's bench-gate enforces the >= 1.1x
end-to-end floor.  ``HOTPATH_QUICK=1`` shrinks repetitions;
``HOTPATH_ALPHA=k`` benchmarks grouped digit decomposition.
"""

import os
import time

import numpy as np
import pytest
from bench_json_util import merge_json

from repro.backend.toy import ToyBackend
from repro.ckks.bootstrap import CkksBootstrapper
from repro.ckks.params import (
    bootstrap_parameters,
    double_angle_bootstrap_parameters,
    toy_parameters,
)

QUICK = bool(int(os.environ.get("HOTPATH_QUICK", "0")))
ALPHA = int(os.environ.get("HOTPATH_ALPHA", "1"))
E2E_REPS = 3 if QUICK else 7
E2E_PARAMS = bootstrap_parameters(ks_alpha=ALPHA)
E2E_CONFIG_KEY = (
    f"N{E2E_PARAMS.ring_degree}_L{E2E_PARAMS.max_level}_alpha{ALPHA}_"
    f"{'quick' if QUICK else 'full'}"
)


def _precision_bits(got, want):
    return float(-np.log2(np.abs(got - want).mean()))


def _time_stats(fn, reps=E2E_REPS):
    """(min, median) wall clock in ms; min drives the in-bench floor."""
    fn()  # warm every cache the flavour owns
    times = []
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times) * 1e3, float(np.median(times)) * 1e3


def test_bootstrap_e2e_latency(record_table):
    """Full bootstrap latency: shared pipeline vs the pre-PR fused one.

    Correctness is gated before any timing: both flavours must satisfy
    the bootstrap contract (level reset, exact Delta scale, usable
    precision), report identical ledger rotation counts ("# Rots"
    parity — the shared conjugation is an accounting rotation even
    though it pays no standalone key switch), and agree with each other
    to noise precision.
    """
    backend = ToyBackend(E2E_PARAMS, seed=7)
    shared = CkksBootstrapper(backend, fused=True)
    pre_pr = CkksBootstrapper(
        backend, fused=True, shared_conjugation=False, cache_eval_consts=False
    )
    rng = np.random.default_rng(3)
    message = rng.uniform(-0.9, 0.9, E2E_PARAMS.slot_count)
    ct = backend.encode_encrypt(message, level=0)

    backend.ledger.reset()
    out_shared = shared.bootstrap(ct)
    rots_shared = backend.ledger.rotations
    backend.ledger.reset()
    out_pre = pre_pr.bootstrap(ct)
    rots_pre = backend.ledger.rotations
    assert rots_shared == rots_pre
    assert out_shared.level == out_pre.level == E2E_PARAMS.effective_level
    assert out_shared.scale == out_pre.scale == E2E_PARAMS.scale
    assert _precision_bits(backend.decrypt(out_shared), message) > 7.0
    assert _precision_bits(backend.decrypt(out_pre), message) > 7.0
    got_s, got_p = backend.decrypt(out_shared), backend.decrypt(out_pre)
    assert np.abs(got_s - got_p).max() < 2.0**-6

    shared_ms, shared_med = _time_stats(lambda: shared.bootstrap(ct))
    pre_ms, pre_med = _time_stats(lambda: pre_pr.bootstrap(ct))

    record_table(
        "ckks_bootstrap_e2e",
        f"End-to-end bootstrap latency (N={E2E_PARAMS.ring_degree}, "
        f"L={E2E_PARAMS.max_level}, alpha={ALPHA}, {rots_shared} rotations, "
        f"{'quick' if QUICK else 'full'} mode)",
        ("pipeline", "wall-clock (ms)", "speedup"),
        [
            ("pre-PR fused (standalone conj)", f"{pre_ms:.1f}", "1.00x"),
            ("shared conj + cached consts", f"{shared_ms:.1f}", f"{pre_ms / shared_ms:.2f}x"),
        ],
    )
    merge_json(
        E2E_CONFIG_KEY,
        "bootstrap_e2e",
        {
            "rotations": rots_shared,
            "shared_median_ms": round(shared_med, 3),
            "pre_pr_median_ms": round(pre_med, 3),
            "speedup_shared_vs_pre_pr": round(pre_med / shared_med, 3),
        },
        ring_degree=E2E_PARAMS.ring_degree,
        max_level=E2E_PARAMS.max_level,
        ks_alpha=ALPHA,
        quick=QUICK,
    )
    # Acceptance floor: the whole pipeline — not just the transforms —
    # must be >= 1.1x faster than the pre-sharing fused pipeline.
    assert shared_ms < pre_ms / 1.1


def test_real_vs_oracle_bootstrap(record_table, benchmark):
    real_params = bootstrap_parameters()
    oracle_params = toy_parameters(
        ring_degree=real_params.ring_degree,
        max_level=real_params.max_level,
        scale_bits=real_params.scale_bits,
        boot_levels=real_params.boot_levels,
    )
    message = np.random.default_rng(0).uniform(-0.9, 0.9, real_params.slot_count)

    rows = []
    refreshed = {}
    da_params = double_angle_bootstrap_parameters()
    da_backend = ToyBackend(da_params, seed=3)
    da_backend._bootstrapper = CkksBootstrapper(
        da_backend, eval_degree=23, double_angles=2
    )
    flavours = (
        ("oracle", ToyBackend(oracle_params, seed=3), oracle_params),
        ("real (sine-63)", ToyBackend(real_params, seed=3, real_bootstrap=True), real_params),
        ("real (cos-23, 2x double-angle)", da_backend, da_params),
    )
    for name, backend, params in flavours:
        ct = backend.encode_encrypt(message, level=0)
        out = backend.bootstrap(ct)
        refreshed[name] = (backend, out)
        rows.append(
            (
                name,
                out.level,
                params.boot_levels,
                str(out.scale == params.scale),
                f"{_precision_bits(backend.decrypt(out), message):.1f}",
                backend.ledger.counts["hrot"] + backend.ledger.counts["hrot_hoisted"],
                backend.ledger.counts["hmult"],
            )
        )
    record_table(
        "ablation_bootstrap",
        "Real CKKS bootstrap pipeline vs oracle substitution (toy backend)",
        ("flavour", "out level", "L_boot", "scale==Delta", "precision (b)", "rots", "hmults"),
        rows,
    )
    # Contract clauses: identical level reset, exact scale, usable precision.
    assert rows[0][1] == rows[1][1] == rows[2][1]
    assert all(r[3] == "True" for r in rows)
    assert float(rows[1][4]) > 7.0 and float(rows[2][4]) > 7.0
    # The real pipelines do actual work (rotations + multiplications),
    # and the double-angle variant needs fewer ct-ct multiplications.
    assert rows[1][5] > 20 and rows[1][6] > 10
    assert rows[2][6] < rows[1][6]

    backend, out = refreshed["real (sine-63)"]
    squared = backend.rescale(backend.mul(out, out))
    assert _precision_bits(backend.decrypt(squared), message**2) > 6.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.mark.parametrize("chain_length", [2])
def test_chained_real_bootstraps(chain_length, record_table, benchmark):
    """Noise stays bounded across repeated refreshes (the FHE property)."""
    params = bootstrap_parameters()
    backend = ToyBackend(params, seed=5, real_bootstrap=True)
    message = np.random.default_rng(1).uniform(-0.8, 0.8, params.slot_count)
    ct = backend.encode_encrypt(message, level=0)
    rows = []
    for i in range(chain_length):
        ct = backend.bootstrap(ct)
        rows.append((i + 1, f"{_precision_bits(backend.decrypt(ct), message):.1f}"))
        ct = backend.level_down(ct, 0)
    record_table(
        "ablation_bootstrap_chain",
        "Precision across chained real bootstraps",
        ("refresh #", "precision (b)"),
        rows,
    )
    assert float(rows[-1][1]) > 6.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
