"""Bootstrap transform benchmark: fused vs per-rotation CoeffToSlot/SlotToCoeff.

The bootstrap linear transforms are the rotation-heaviest matvecs in the
pipeline (dense DFT-shaped matrices on (ct, conj(ct)) pairs).  This
benchmark drives ``CkksBootstrapper._matvec_sum`` three ways on the
exact toy backend:

- **fused**: the production path — one key-switch digit decomposition
  per input ciphertext, giant steps folded into cached pre-encoded
  diagonal plaintexts, Q_l * P-lazy accumulation, one deferred mod-down
  per output (``FheBackend.matvec_fused``);
- **hoisted BSGS**: the per-rotation fallback pipeline (baby rotations
  hoisted per input, per-diagonal plaintext multiplies, giant rotations
  on accumulated sums);
- **per-rotation reference**: an independent slow implementation of the
  *same* deferred-mod-down math that pays a fresh digit decomposition
  for every rotation and reduces after every product.  Because exact
  modular arithmetic is order-independent, the fused output must match
  it **bit for bit** — asserted before any timing is reported.

Medians land in ``BENCH_ckks_hotpath.json`` (section
``bootstrap_transforms``) and the CI bench-gate enforces the speedup
floors.  ``HOTPATH_QUICK=1`` shrinks repetitions for CI;
``HOTPATH_ALPHA=k`` benchmarks grouped digit decomposition.
"""

import os
import time
from fractions import Fraction

import numpy as np
import pytest
from bench_json_util import merge_json

from repro.backend import ToyBackend
from repro.ckks.bootstrap import CkksBootstrapper
from repro.ckks.ciphertext import Ciphertext
from repro.ckks.params import bootstrap_parameters
from repro.rns.poly import RnsPolynomial

QUICK = bool(int(os.environ.get("HOTPATH_QUICK", "0")))
ALPHA = int(os.environ.get("HOTPATH_ALPHA", "1"))
REPS = 3 if QUICK else 7

PARAMS = bootstrap_parameters(ks_alpha=ALPHA)
CONFIG_KEY = (
    f"N{PARAMS.ring_degree}_L{PARAMS.max_level}_alpha{ALPHA}_"
    f"{'quick' if QUICK else 'full'}"
)


def _time_stats(fn, reps=REPS):
    """(min, median) wall clock in ms; min drives the floors."""
    fn()  # warm caches
    times = []
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times) * 1e3, float(np.median(times)) * 1e3


def per_rotation_matvec_sum(bs, pairs, pt_scale, table):
    """Per-rotation reference of the deferred-mod-down transform.

    Every nonzero diagonal offset pays its own digit decomposition
    (``rotate_hoisted_raw`` on a single step — nothing is hoisted) and
    every product is reduced immediately; one mod-down per output and a
    final rescale, exactly the math of the fused path so the results
    must agree bitwise.
    """
    backend = bs.backend
    ctx = backend.context
    plan = bs._transform_plan(table, pairs)
    in_cts = [ct for ct, _ in pairs]
    level = in_cts[0].level
    ks_chain = ctx._ks_chain(level)
    mod_ks = ctx.basis.moduli_column(ks_chain)
    data_primes = ctx._data_chain(level)
    mod_q = ctx.basis.moduli_column(data_primes)
    acc_ext = np.zeros((2, len(ks_chain), ctx.basis.ring_degree), dtype=np.int64)
    acc_c0 = np.zeros((len(data_primes), ctx.basis.ring_degree), dtype=np.int64)
    acc_c1 = None
    rotated = False
    for (_, i, k) in sorted(plan["terms"]):
        pt = ctx.encode(plan["terms"][(0, i, k)], level=level, scale=Fraction(pt_scale))
        if k == 0:
            acc_c0 = (acc_c0 + pt.poly.data * in_cts[i].c0.data) % mod_q
            if acc_c1 is None:
                acc_c1 = np.zeros_like(acc_c0)
            acc_c1 = (acc_c1 + pt.poly.data * in_cts[i].c1.data) % mod_q
            continue
        rotated = True
        rot0, acc = ctx.rotate_hoisted_raw(in_cts[i], [k])[k]
        pt_ext = pt.poly.extend_primes(ks_chain).data
        acc_ext = (acc_ext + pt_ext * acc) % mod_ks
        acc_c0 = (acc_c0 + pt.poly.data * rot0.data) % mod_q
    assert rotated
    p0, p1 = ctx._ks_moddown(acc_ext, level)
    c0 = (acc_c0 + p0.data) % mod_q
    c1 = p1.data if acc_c1 is None else (acc_c1 + p1.data) % mod_q
    out = Ciphertext(
        c0=RnsPolynomial(ctx.basis, data_primes, c0, is_ntt=True),
        c1=RnsPolynomial(ctx.basis, data_primes, c1, is_ntt=True),
        level=level,
        scale=in_cts[0].scale * Fraction(pt_scale),
        slot_count=in_cts[0].slot_count,
    )
    return ctx.rescale(out)


@pytest.fixture(scope="module")
def setup():
    backend = ToyBackend(PARAMS, seed=7)
    fused = CkksBootstrapper(backend, fused=True)
    unfused = CkksBootstrapper(backend, fused=False)
    rng = np.random.default_rng(3)
    message = rng.uniform(-0.9, 0.9, PARAMS.slot_count)
    ct = backend.encode_encrypt(message, level=0)
    raised = backend.context.mod_raise(ct, Fraction(fused.q0) * fused.window)
    raised = fused._prescale(raised)
    conj = backend.conjugate(raised)
    level = backend.level_of(raised)
    rescale_prime = PARAMS.primes[level]
    cts_scale = (
        Fraction(PARAMS.primes[level - 1]) * rescale_prime / raised.scale
    )
    pairs = {
        "cts_lo": [(raised, fused.cts_lo[0]), (conj, fused.cts_lo[1])],
        "cts_hi": [(raised, fused.cts_hi[0]), (conj, fused.cts_hi[1])],
    }
    lo = fused._matvec_sum(pairs["cts_lo"], cts_scale, "cts_lo")
    hi = fused._matvec_sum(pairs["cts_hi"], cts_scale, "cts_hi")
    stc_level = backend.level_of(lo)
    stc_scale = (
        Fraction(PARAMS.scale) * PARAMS.primes[stc_level] / backend.scale_of(lo)
    )
    pairs["stc"] = [(lo, fused.stc_lo), (hi, fused.stc_hi)]
    scales = {"cts_lo": cts_scale, "cts_hi": cts_scale, "stc": stc_scale}
    return backend, fused, unfused, pairs, scales


def test_bootstrap_transforms_fused(setup, record_table):
    backend, fused, unfused, pairs, scales = setup
    tables = ("cts_lo", "cts_hi", "stc")

    # Bit-exactness gate: the fused transform must reproduce the
    # per-rotation reference exactly before any speedup is reported.
    for table in tables:
        got = fused._matvec_sum(pairs[table], scales[table], table)
        ref = per_rotation_matvec_sum(fused, pairs[table], scales[table], table)
        assert np.array_equal(got.c0.data, ref.c0.data), table
        assert np.array_equal(got.c1.data, ref.c1.data), table
        # The hoisted-BSGS pipeline reorders the mod-down roundings, so
        # it agrees to noise precision (not bitwise) with the fused path.
        bsgs = unfused._matvec_sum(pairs[table], scales[table], table)
        assert bsgs.scale == got.scale and bsgs.level == got.level
        diff = np.abs(backend.decrypt(bsgs) - backend.decrypt(got))
        mag = max(1.0, float(np.abs(backend.decrypt(got)).max()))
        assert diff.max() < 5e-2 * mag, table

    def run(fn):
        return [fn(pairs[t], scales[t], t) for t in tables]

    fused_ms, fused_med = _time_stats(lambda: run(fused._matvec_sum))
    bsgs_ms, bsgs_med = _time_stats(lambda: run(unfused._matvec_sum))
    ref_ms, ref_med = _time_stats(
        lambda: run(lambda p, s, t: per_rotation_matvec_sum(fused, p, s, t))
    )

    plan_rots = sum(fused._transform_plan(t, pairs[t])["rot_count"] for t in tables)
    record_table(
        "ckks_bootstrap_transforms",
        f"Bootstrap CoeffToSlot + SlotToCoeff transforms (N={PARAMS.ring_degree}, "
        f"L={PARAMS.max_level}, alpha={ALPHA}, {plan_rots} BSGS rotations, "
        f"{'quick' if QUICK else 'full'} mode)",
        ("execution", "wall-clock (ms)", "speedup"),
        [
            ("per-rotation reference", f"{ref_ms:.1f}", "1.00x"),
            ("hoisted BSGS pipeline", f"{bsgs_ms:.1f}", f"{ref_ms / bsgs_ms:.2f}x"),
            ("fused deferred mod-down", f"{fused_ms:.1f}", f"{ref_ms / fused_ms:.2f}x"),
        ],
    )
    merge_json(
        CONFIG_KEY,
        "bootstrap_transforms",
        {
            "bsgs_rotations": plan_rots,
            "fused_median_ms": round(fused_med, 3),
            "bsgs_median_ms": round(bsgs_med, 3),
            "per_rotation_median_ms": round(ref_med, 3),
            "speedup_fused_vs_per_rotation": round(ref_med / fused_med, 3),
            "speedup_fused_vs_bsgs": round(bsgs_med / fused_med, 3),
        },
        ring_degree=PARAMS.ring_degree,
        max_level=PARAMS.max_level,
        ks_alpha=ALPHA,
        quick=QUICK,
    )
    # Acceptance floors: >= 1.5x over the per-rotation reference (the
    # margin is large — one decomposition per input vs one per rotation)
    # and measurably faster than the already-hoisted BSGS pipeline.
    assert fused_ms < ref_ms / 1.5
    assert fused_ms < bsgs_ms / 1.05
