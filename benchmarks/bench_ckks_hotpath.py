"""Hot-path microbenchmarks: limb-batched engine vs the seed's per-limb loops.

Measures NTT forward/inverse, automorphism, key switching, rotation
(single and hoisted batch), rescale, and a BSGS matvec, comparing the
batched engine against faithful reimplementations of the seed's
per-limb Python loops (kept here, not in the library, so the library
carries exactly one implementation).  Every legacy result is asserted
bit-identical to the batched result before timing is reported, so the
table can't drift from a correctness regression.

Set ``HOTPATH_QUICK=1`` for a CI-sized run (smaller ring, fewer reps).
"""

import os
import time
from fractions import Fraction

import numpy as np
import pytest

from repro.backend import ToyBackend
from repro.ckks.params import toy_parameters
from repro.core.packing.layouts import VectorLayout
from repro.core.packing.matvec import build_linear_packing
from repro.rns.poly import RnsPolynomial

QUICK = bool(int(os.environ.get("HOTPATH_QUICK", "0")))
RING_DEGREE = 512 if QUICK else 2048
MAX_LEVEL = 4 if QUICK else 8
REPS = 3 if QUICK else 10


# ---------------------------------------------------------------------------
# Seed-faithful legacy implementations (per-limb Python loops)
# ---------------------------------------------------------------------------
def legacy_to_ntt(poly: RnsPolynomial) -> RnsPolynomial:
    rows = [
        poly.basis.ntts[q].forward(row) for q, row in zip(poly.primes, poly.data)
    ]
    return RnsPolynomial(poly.basis, poly.primes, np.stack(rows), is_ntt=True)


def legacy_to_coeff(poly: RnsPolynomial) -> RnsPolynomial:
    rows = [
        poly.basis.ntts[q].inverse(row) for q, row in zip(poly.primes, poly.data)
    ]
    return RnsPolynomial(poly.basis, poly.primes, np.stack(rows), is_ntt=False)


def legacy_automorphism(poly: RnsPolynomial, exponent: int) -> RnsPolynomial:
    """Seed path: full NTT round-trip around a coefficient permutation."""
    n = poly.basis.ring_degree
    two_n = 2 * n
    exponent %= two_n
    coeff = legacy_to_coeff(poly) if poly.is_ntt else poly
    src = np.arange(n, dtype=np.int64)
    dest = (src * exponent) % two_n
    sign_flip = dest >= n
    dest = np.where(sign_flip, dest - n, dest)
    moduli = np.array(poly.primes, dtype=np.int64)[:, None]
    signed = np.where(sign_flip[None, :], -coeff.data, coeff.data)
    out = np.zeros_like(coeff.data)
    out[:, dest] = signed
    out %= moduli
    result = RnsPolynomial(poly.basis, poly.primes, out, is_ntt=False)
    return legacy_to_ntt(result) if poly.is_ntt else result


def legacy_divide_and_round_by_last(poly: RnsPolynomial) -> RnsPolynomial:
    """Seed rescale core: full round-trip plus a per-limb division loop."""
    coeff = legacy_to_coeff(poly) if poly.is_ntt else poly
    last_prime = poly.primes[-1]
    last_row = coeff.data[-1]
    centered = np.where(last_row > last_prime // 2, last_row - last_prime, last_row)
    remaining = poly.primes[:-1]
    rows = []
    for q, row in zip(remaining, coeff.data[:-1]):
        inv = poly.basis.inverse(last_prime, q)
        rows.append(((row - centered) * inv) % q)
    result = RnsPolynomial(poly.basis, remaining, np.stack(rows), is_ntt=False)
    return legacy_to_ntt(result) if poly.is_ntt else result


def legacy_keyswitch(ctx, d: RnsPolynomial, key, level: int):
    """Seed hybrid key switch: per-digit loop, per-limb basis raise."""
    ks_chain = ctx._ks_chain(level)
    acc0 = RnsPolynomial.zero(ctx.basis, ks_chain)
    acc1 = RnsPolynomial.zero(ctx.basis, ks_chain)
    d_coeff = legacy_to_coeff(d)
    for digit_index in range(level + 1):
        q_i = d.primes[digit_index]
        row = d_coeff.data[digit_index]
        centered = np.where(row > q_i // 2, row - q_i, row)
        digit = legacy_to_ntt(
            RnsPolynomial(
                ctx.basis,
                ks_chain,
                np.stack([centered % q for q in ks_chain]),
                is_ntt=False,
            )
        )
        b_i, a_i = key.pairs[digit_index]
        acc0 = acc0 + digit * ctx._restrict(b_i, ks_chain)
        acc1 = acc1 + digit * ctx._restrict(a_i, ks_chain)
    for _ in range(ctx.params.num_special_primes):
        acc0 = legacy_divide_and_round_by_last(acc0)
        acc1 = legacy_divide_and_round_by_last(acc1)
    return acc0, acc1


def legacy_rotate(ctx, ct, steps: int):
    exponent = ctx.encoder.rotation_exponent(steps)
    key = ctx.galois_key(exponent)
    rot0 = legacy_automorphism(ct.c0, exponent)
    rot1 = legacy_automorphism(ct.c1, exponent)
    p0, p1 = legacy_keyswitch(ctx, rot1, key, ct.level)
    return rot0 + p0, p1


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------
def _time_ms(fn, reps=REPS):
    """Min-of-N wall clock: robust to GC pauses and noisy CI runners."""
    fn()  # warm caches / lazy keys
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


@pytest.fixture(scope="module")
def setup():
    params = toy_parameters(
        ring_degree=RING_DEGREE, max_level=MAX_LEVEL, boot_levels=2
    )
    backend = ToyBackend(params, seed=0)
    values = np.linspace(-1, 1, backend.slot_count)
    ct = backend.encode_encrypt(values)
    pt = backend.encode(values, params.max_level, params.scale)
    backend.context.generate_rotation_keys(range(1, 9))
    return backend, ct, pt, values


def test_hotpath_microbench(setup, record_table):
    backend, ct, pt, values = setup
    ctx = backend.context
    poly = ct.c0
    coeff = poly.to_coeff()
    exponent = ctx.encoder.rotation_exponent(1)
    key = ctx.galois_key(exponent)
    prod = ctx.mul_plain(ct, pt)

    # Correctness cross-checks: legacy and batched must agree bit-for-bit.
    assert np.array_equal(legacy_to_ntt(coeff).data, coeff.to_ntt().data)
    assert np.array_equal(legacy_to_coeff(poly).data, poly.to_coeff().data)
    assert np.array_equal(
        legacy_automorphism(poly, exponent).data, poly.automorphism(exponent).data
    )
    lk0, lk1 = legacy_keyswitch(ctx, ct.c1, key, ct.level)
    nk0, nk1 = ctx._keyswitch(ct.c1, key, ct.level)
    assert np.array_equal(lk0.data, nk0.data)
    assert np.array_equal(lk1.data, nk1.data)
    lr0, lr1 = legacy_rotate(ctx, ct, 1)
    nr = ctx.rotate(ct, 1)
    assert np.array_equal(lr0.data, nr.c0.data)
    assert np.array_equal(lr1.data, nr.c1.data)
    assert np.array_equal(
        legacy_divide_and_round_by_last(prod.c0).data,
        prod.c0.divide_and_round_by_last().data,
    )

    hoist_steps = list(range(1, 9))
    rows = []
    speedups = {}

    def bench(name, legacy_fn, batched_fn):
        before = _time_ms(legacy_fn)
        after = _time_ms(batched_fn)
        speedups[name] = before / after
        rows.append((name, f"{before:.3f}", f"{after:.3f}", f"{before / after:.2f}x"))

    bench("ntt_forward", lambda: legacy_to_ntt(coeff), lambda: coeff.to_ntt())
    bench("ntt_inverse", lambda: legacy_to_coeff(poly), lambda: poly.to_coeff())
    bench(
        "automorphism",
        lambda: legacy_automorphism(poly, exponent),
        lambda: poly.automorphism(exponent),
    )
    bench(
        "keyswitch",
        lambda: legacy_keyswitch(ctx, ct.c1, key, ct.level),
        lambda: ctx._keyswitch(ct.c1, key, ct.level),
    )
    bench(
        "rotate",
        lambda: legacy_rotate(ctx, ct, 1),
        lambda: ctx.rotate(ct, 1),
    )
    bench(
        "rotate_x8_hoisted",
        lambda: [legacy_rotate(ctx, ct, s) for s in hoist_steps],
        lambda: ctx.rotate_hoisted(ct, hoist_steps),
    )
    bench(
        "rescale",
        lambda: (
            legacy_divide_and_round_by_last(prod.c0),
            legacy_divide_and_round_by_last(prod.c1),
        ),
        lambda: ctx.rescale(prod),
    )

    record_table(
        "ckks_hotpath",
        f"CKKS hot-path microbenchmarks (N={RING_DEGREE}, L={MAX_LEVEL}, "
        f"{'quick' if QUICK else 'full'} mode): seed-style per-limb loops vs "
        "limb-batched engine",
        ("op", "per-limb (ms)", "batched (ms)", "speedup"),
        rows,
    )
    # The hoisted rotation batch is the BSGS hot path the tentpole targets.
    assert speedups["rotate_x8_hoisted"] > (1.5 if QUICK else 4.0)
    assert speedups["keyswitch"] > 1.2
    assert speedups["rotate"] > 1.2


def test_bsgs_matvec_hoisting(setup, record_table):
    """End-to-end BSGS matvec: unhoisted vs double-hoisted execution."""
    backend, ct, _, values = setup
    params = backend.params
    n = backend.slot_count
    m = min(32, n // 4)
    rng = np.random.default_rng(0)
    matrix = rng.uniform(-1, 1, (m, n))
    packed = build_linear_packing(matrix, None, VectorLayout(n, n), name="bench_fc")
    level = backend.level_of(ct)
    pt_scale = Fraction(params.data_primes[level])

    def run(hoisting):
        return packed.execute(backend, [ct], pt_scale, hoisting=hoisting)

    unhoisted_ms = _time_ms(lambda: run("none"), reps=max(1, REPS // 2))
    hoisted_ms = _time_ms(lambda: run("double"), reps=max(1, REPS // 2))
    expected = matrix @ values
    got = backend.decrypt(run("double")[0])[:m]
    # Toy-backend precision is ~8 bits relative to the output magnitude.
    assert np.abs(got - expected).max() < 0.02 * max(1.0, np.abs(expected).max())

    record_table(
        "ckks_hotpath_matvec",
        f"BSGS matvec wall-clock on the exact backend (N={RING_DEGREE}, "
        f"{m}x{n} dense layer)",
        ("execution", "wall-clock (ms)", "speedup"),
        [
            ("per-rotation keyswitch", f"{unhoisted_ms:.1f}", "1.00x"),
            (
                "double-hoisted BSGS",
                f"{hoisted_ms:.1f}",
                f"{unhoisted_ms / hoisted_ms:.2f}x",
            ),
        ],
    )
    # 5% slack: the gap is structural (shared decompositions) but small
    # relative to giant-step cost, and CI runners are noisy.
    assert hoisted_ms < unhoisted_ms * 1.05
