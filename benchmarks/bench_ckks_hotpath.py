"""Hot-path microbenchmarks: limb-batched engine vs the seed's per-limb loops.

Measures NTT forward/inverse, automorphism, key switching, rotation
(single and hoisted batch), rescale, and a BSGS matvec (fused
deferred-mod-down vs the per-rotation pipeline), comparing the batched
engine against faithful reimplementations of the seed's per-limb Python
loops (kept here, not in the library, so the library carries exactly
one implementation).  Every legacy result is asserted bit-identical to
the batched result before timing is reported, so the table can't drift
from a correctness regression.

Besides the human-readable tables under ``benchmarks/results/``, every
run merges machine-readable numbers (op -> median ms + speedup vs the
seed-style baseline) into ``BENCH_ckks_hotpath.json`` at the repo root,
keyed by configuration, so the perf trajectory is tracked across PRs.

Set ``HOTPATH_QUICK=1`` for a CI-sized run (smaller ring, fewer reps)
and ``HOTPATH_ALPHA=k`` to benchmark grouped digit decomposition
(dnum = ceil((L+1)/k) with k special primes).
"""

import gc
import os
import time
from fractions import Fraction

import numpy as np
import pytest
from bench_json_util import merge_json as _merge_json

from repro.backend import ToyBackend
from repro.ckks.galois import galois_offset_key
from repro.ckks.params import toy_parameters
from repro.core.packing.layouts import VectorLayout
from repro.core.packing.matvec import build_linear_packing
from repro.ntt import galois_eval_permutation
from repro.rns.poly import RnsPolynomial

QUICK = bool(int(os.environ.get("HOTPATH_QUICK", "0")))
ALPHA = int(os.environ.get("HOTPATH_ALPHA", "1"))
RING_DEGREE = 512 if QUICK else 2048
MAX_LEVEL = 4 if QUICK else 8
REPS = 3 if QUICK else 10

CONFIG_KEY = (
    f"N{RING_DEGREE}_L{MAX_LEVEL}_alpha{ALPHA}_{'quick' if QUICK else 'full'}"
)


def merge_json(section: str, payload: dict) -> None:
    _merge_json(
        CONFIG_KEY,
        section,
        payload,
        ring_degree=RING_DEGREE,
        max_level=MAX_LEVEL,
        ks_alpha=ALPHA,
        quick=QUICK,
    )


# ---------------------------------------------------------------------------
# Seed-faithful legacy implementations (per-limb Python loops)
# ---------------------------------------------------------------------------
def legacy_to_ntt(poly: RnsPolynomial) -> RnsPolynomial:
    rows = [
        poly.basis.ntts[q].forward(row) for q, row in zip(poly.primes, poly.data)
    ]
    return RnsPolynomial(poly.basis, poly.primes, np.stack(rows), is_ntt=True)


def legacy_to_coeff(poly: RnsPolynomial) -> RnsPolynomial:
    rows = [
        poly.basis.ntts[q].inverse(row) for q, row in zip(poly.primes, poly.data)
    ]
    return RnsPolynomial(poly.basis, poly.primes, np.stack(rows), is_ntt=False)


def legacy_automorphism(poly: RnsPolynomial, exponent: int) -> RnsPolynomial:
    """Seed path: full NTT round-trip around a coefficient permutation."""
    n = poly.basis.ring_degree
    two_n = 2 * n
    exponent %= two_n
    coeff = legacy_to_coeff(poly) if poly.is_ntt else poly
    src = np.arange(n, dtype=np.int64)
    dest = (src * exponent) % two_n
    sign_flip = dest >= n
    dest = np.where(sign_flip, dest - n, dest)
    moduli = np.array(poly.primes, dtype=np.int64)[:, None]
    signed = np.where(sign_flip[None, :], -coeff.data, coeff.data)
    out = np.zeros_like(coeff.data)
    out[:, dest] = signed
    out %= moduli
    result = RnsPolynomial(poly.basis, poly.primes, out, is_ntt=False)
    return legacy_to_ntt(result) if poly.is_ntt else result


def legacy_divide_and_round_by_last(poly: RnsPolynomial) -> RnsPolynomial:
    """Seed rescale core: full round-trip plus a per-limb division loop."""
    coeff = legacy_to_coeff(poly) if poly.is_ntt else poly
    last_prime = poly.primes[-1]
    last_row = coeff.data[-1]
    centered = np.where(last_row > last_prime // 2, last_row - last_prime, last_row)
    remaining = poly.primes[:-1]
    rows = []
    for q, row in zip(remaining, coeff.data[:-1]):
        inv = poly.basis.inverse(last_prime, q)
        rows.append(((row - centered) * inv) % q)
    result = RnsPolynomial(poly.basis, remaining, np.stack(rows), is_ntt=False)
    return legacy_to_ntt(result) if poly.is_ntt else result


def legacy_keyswitch(ctx, d: RnsPolynomial, key, level: int):
    """Seed hybrid key switch: per-digit loop, per-limb basis raise
    (exact big-integer CRT lift when digits group several limbs)."""
    ks_chain = ctx._ks_chain(level)
    alpha = ctx.params.ks_alpha
    acc0 = RnsPolynomial.zero(ctx.basis, ks_chain)
    acc1 = RnsPolynomial.zero(ctx.basis, ks_chain)
    d_coeff = legacy_to_coeff(d)
    for digit_index, lo in enumerate(range(0, level + 1, alpha)):
        hi = min(lo + alpha, level + 1)
        if hi - lo == 1:
            q_i = d.primes[lo]
            row = d_coeff.data[lo]
            centered = np.where(row > q_i // 2, row - q_i, row)
        else:
            centered = ctx.basis.crt_reconstruct(
                d_coeff.data[lo:hi], d.primes[lo:hi]
            )
        digit = legacy_to_ntt(
            RnsPolynomial(
                ctx.basis,
                ks_chain,
                np.stack([centered % q for q in ks_chain]).astype(np.int64),
                is_ntt=False,
            )
        )
        b_i, a_i = key.pairs[digit_index]
        acc0 = acc0 + digit * ctx._restrict(b_i, ks_chain)
        acc1 = acc1 + digit * ctx._restrict(a_i, ks_chain)
    for _ in range(ctx.params.num_special_primes):
        acc0 = legacy_divide_and_round_by_last(acc0)
        acc1 = legacy_divide_and_round_by_last(acc1)
    return acc0, acc1


def legacy_rotate_hoisted_raw(ctx, ct, offsets):
    """Seed-faithful hoisted raw rotations: one shared digit
    decomposition, then a per-offset Python loop of individual inner
    products (the pre-stacking path of ``rotate_hoisted_raw``)."""
    digits = ctx._ks_decompose(ct.c1, ct.level)
    ks_chain = ctx._ks_chain(ct.level)
    mod_col = ctx.basis.moduli_column(ks_chain)
    chunk = (2**63 - 1 - (max(ks_chain) - 1)) // ((max(ks_chain) - 1) ** 2)
    n = ctx.params.ring_degree
    out = {}
    for offset in offsets:
        exponent = ctx.galois_offset_exponent(offset)
        key = ctx.galois_key(exponent, max_level=ct.level)
        perm = galois_eval_permutation(n, exponent)
        ba = ctx._key_tensors(key, ct.level)
        permuted = digits[..., perm]
        if digits.shape[0] <= chunk:
            acc = (permuted * ba).sum(axis=1) % mod_col
        else:
            acc = np.zeros((2, len(ks_chain), n), dtype=np.int64)
            for start in range(0, digits.shape[0], chunk):
                part = permuted[start : start + chunk] * ba[:, start : start + chunk]
                acc += part.sum(axis=1) % mod_col
            acc %= mod_col
        out[offset] = (ct.c0.automorphism(exponent), acc)
    return out


def legacy_rotate(ctx, ct, steps: int):
    exponent = ctx.encoder.rotation_exponent(steps)
    key = ctx.galois_key(exponent)
    rot0 = legacy_automorphism(ct.c0, exponent)
    rot1 = legacy_automorphism(ct.c1, exponent)
    p0, p1 = legacy_keyswitch(ctx, rot1, key, ct.level)
    return rot0 + p0, p1


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------
def _time_stats(fn, reps=REPS):
    """(min, median) wall clock in ms.  The min drives the speedup
    floors (robust to GC pauses); the median goes into the JSON."""
    fn()  # warm caches / lazy keys
    times = []
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times) * 1e3, float(np.median(times)) * 1e3


def _time_ms(fn, reps=REPS):
    """Min-of-N wall clock: robust to GC pauses and noisy CI runners."""
    return _time_stats(fn, reps)[0]


def _time_stats_paired(fn_a, fn_b, reps=REPS):
    """Interleaved (min, median) ms for two contenders.

    Timing all of A's reps then all of B's lets slow drift (CPU
    frequency scaling, thermal throttling on CI runners) land entirely
    on whichever ran second; alternating A/B every rep spreads any
    drift evenly across both, which is what a paired comparison needs.
    """
    fn_a()
    fn_b()
    times_a, times_b = [], []
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        fn_a()
        times_a.append(time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        times_b.append(time.perf_counter() - start)
    return (
        (min(times_a) * 1e3, float(np.median(times_a)) * 1e3),
        (min(times_b) * 1e3, float(np.median(times_b)) * 1e3),
    )


@pytest.fixture(scope="module")
def setup():
    params = toy_parameters(
        ring_degree=RING_DEGREE,
        max_level=MAX_LEVEL,
        boot_levels=2,
        num_special_primes=max(1, ALPHA),
        ks_alpha=ALPHA,
    )
    backend = ToyBackend(params, seed=0)
    values = np.linspace(-1, 1, backend.slot_count)
    ct = backend.encode_encrypt(values)
    pt = backend.encode(values, params.max_level, params.scale)
    backend.context.generate_rotation_keys(range(1, 9))
    return backend, ct, pt, values


def test_hotpath_microbench(setup, record_table):
    backend, ct, pt, values = setup
    ctx = backend.context
    poly = ct.c0
    coeff = poly.to_coeff()
    exponent = ctx.encoder.rotation_exponent(1)
    key = ctx.galois_key(exponent)
    prod = ctx.mul_plain(ct, pt)

    # Correctness cross-checks: legacy and batched must agree bit-for-bit.
    assert np.array_equal(legacy_to_ntt(coeff).data, coeff.to_ntt().data)
    assert np.array_equal(legacy_to_coeff(poly).data, poly.to_coeff().data)
    assert np.array_equal(
        legacy_automorphism(poly, exponent).data, poly.automorphism(exponent).data
    )
    lk0, lk1 = legacy_keyswitch(ctx, ct.c1, key, ct.level)
    nk0, nk1 = ctx._keyswitch(ct.c1, key, ct.level)
    assert np.array_equal(lk0.data, nk0.data)
    assert np.array_equal(lk1.data, nk1.data)
    lr0, lr1 = legacy_rotate(ctx, ct, 1)
    nr = ctx.rotate(ct, 1)
    assert np.array_equal(lr0.data, nr.c0.data)
    assert np.array_equal(lr1.data, nr.c1.data)
    assert np.array_equal(
        legacy_divide_and_round_by_last(prod.c0).data,
        prod.c0.divide_and_round_by_last().data,
    )

    hoist_steps = list(range(1, 9))
    rows = []
    speedups = {}
    json_ops = {}

    def bench(name, legacy_fn, batched_fn):
        before, before_med = _time_stats(legacy_fn)
        after, after_med = _time_stats(batched_fn)
        speedups[name] = before / after
        json_ops[name] = {
            "median_ms": round(after_med, 4),
            "baseline_median_ms": round(before_med, 4),
            "speedup": round(before_med / after_med, 3),
        }
        rows.append((name, f"{before:.3f}", f"{after:.3f}", f"{before / after:.2f}x"))

    bench("ntt_forward", lambda: legacy_to_ntt(coeff), lambda: coeff.to_ntt())
    bench("ntt_inverse", lambda: legacy_to_coeff(poly), lambda: poly.to_coeff())
    bench(
        "automorphism",
        lambda: legacy_automorphism(poly, exponent),
        lambda: poly.automorphism(exponent),
    )
    bench(
        "keyswitch",
        lambda: legacy_keyswitch(ctx, ct.c1, key, ct.level),
        lambda: ctx._keyswitch(ct.c1, key, ct.level),
    )
    bench(
        "rotate",
        lambda: legacy_rotate(ctx, ct, 1),
        lambda: ctx.rotate(ct, 1),
    )
    bench(
        "rotate_x8_hoisted",
        lambda: [legacy_rotate(ctx, ct, s) for s in hoist_steps],
        lambda: ctx.rotate_hoisted(ct, hoist_steps),
    )
    bench(
        "rescale",
        lambda: (
            legacy_divide_and_round_by_last(prod.c0),
            legacy_divide_and_round_by_last(prod.c1),
        ),
        lambda: ctx.rescale(prod),
    )

    record_table(
        "ckks_hotpath",
        f"CKKS hot-path microbenchmarks (N={RING_DEGREE}, L={MAX_LEVEL}, "
        f"alpha={ALPHA}, {'quick' if QUICK else 'full'} mode): seed-style "
        "per-limb loops vs limb-batched engine",
        ("op", "per-limb (ms)", "batched (ms)", "speedup"),
        rows,
    )
    merge_json("ops", json_ops)
    # The hoisted rotation batch is the BSGS hot path the tentpole targets.
    assert speedups["rotate_x8_hoisted"] > (1.5 if QUICK else 4.0)
    assert speedups["keyswitch"] > 1.2
    assert speedups["rotate"] > 1.2


STACKED_RING_DEGREE = 2048
STACKED_MAX_LEVEL = 6
STACKED_OFFSETS = 32


def test_stacked_keyswitch(record_table):
    """Stacked key-switch inner products vs the per-offset loop.

    Both paths share the hoisted digit decomposition; the stacked path
    runs ONE product-sum of the shared digit tensor against the cached
    stack of inverse-permuted switching keys and Galois-permutes only
    the small accumulator, removing the per-offset digit gathers and
    Python/dispatch overhead.

    The win scales with ring size and offset count (it trades per-offset
    memory traffic for one streamed einsum), so this section pins its
    own ring — the tiny quick-mode session ring (N=512) cannot measure
    it — and only the rep count follows quick mode.  32 offsets is a
    realistic BSGS baby-step batch.
    """
    backend = ToyBackend(
        toy_parameters(
            ring_degree=STACKED_RING_DEGREE,
            max_level=STACKED_MAX_LEVEL,
            num_special_primes=max(1, ALPHA),
            ks_alpha=ALPHA,
        ),
        seed=11,
    )
    ct = backend.encode_encrypt(np.linspace(-1, 1, backend.slot_count))
    ctx = backend.context
    steps = list(range(1, STACKED_OFFSETS)) + [("conj", 0)]

    # Bit-exactness before timing: the stacked product-sum must equal
    # the per-offset loop on every offset, rot0 and accumulator alike.
    stacked = ctx.rotate_hoisted_raw(ct, steps)
    offsets = sorted(stacked, key=galois_offset_key)
    legacy = legacy_rotate_hoisted_raw(ctx, ct, offsets)
    for offset in offsets:
        rot0_l, acc_l = legacy[offset]
        rot0_s, acc_s = stacked[offset]
        assert np.array_equal(rot0_s.data, rot0_l.data)
        assert np.array_equal(np.asarray(acc_s), acc_l)

    (loop_ms, loop_med), (stacked_ms, stacked_med) = _time_stats_paired(
        lambda: legacy_rotate_hoisted_raw(ctx, ct, offsets),
        lambda: ctx.rotate_hoisted_raw(ct, steps),
    )
    record_table(
        "ckks_hotpath_stacked_keyswitch",
        f"Hoisted raw rotations, {len(offsets)} Galois offsets "
        f"(N={STACKED_RING_DEGREE}, L={STACKED_MAX_LEVEL}, alpha={ALPHA}, "
        f"{'quick' if QUICK else 'full'} mode): per-offset inner-product "
        "loop vs one stacked product-sum",
        ("path", "wall-clock (ms)", "speedup"),
        [
            ("per-offset loop", f"{loop_ms:.2f}", "1.00x"),
            ("stacked inner products", f"{stacked_ms:.2f}", f"{loop_ms / stacked_ms:.2f}x"),
        ],
    )
    merge_json(
        "stacked_keyswitch",
        {
            "offsets": len(offsets),
            # This section runs at its own pinned ring (see docstring),
            # not the session-wide quick/full ring of the config key.
            "ring_degree": STACKED_RING_DEGREE,
            "max_level": STACKED_MAX_LEVEL,
            "stacked_median_ms": round(stacked_med, 3),
            "loop_median_ms": round(loop_med, 3),
            "speedup_stacked_vs_loop": round(loop_med / stacked_med, 3),
        },
    )
    assert stacked_ms < loop_ms / 1.15


def test_bsgs_matvec_hoisting(setup, record_table):
    """End-to-end BSGS matvec (babies + giants, no folds): unhoisted vs
    the PR 1 per-rotation double-hoisted pipeline vs the fused
    deferred-mod-down path."""
    backend, ct, _, values = setup
    params = backend.params
    n = backend.slot_count
    # Banded square matrix: diagonal offsets 0..band-1, which the BSGS
    # plan splits into genuine baby and giant steps (no Gazelle fold).
    band = 16 if QUICK else 32
    rng = np.random.default_rng(0)
    matrix = np.zeros((n, n))
    row_idx = np.arange(n)[:, None]
    col_idx = (row_idx + np.arange(band)[None, :]) % n
    matrix[row_idx, col_idx] = rng.uniform(-1, 1, (n, band))
    packed = build_linear_packing(matrix, None, VectorLayout(n, n), name="bench_fc")
    diag, babies, giants = packed.counts()
    assert not packed.fold_shifts and babies and giants
    level = backend.level_of(ct)
    pt_scale = Fraction(params.data_primes[level])

    def run(hoisting):
        return packed.execute(backend, [ct], pt_scale, hoisting=hoisting)

    # Contract check before timing: applying mod-down to each raw
    # accumulator must reproduce the materialized hoisted rotation.
    ctx = backend.context
    raw = ctx.rotate_hoisted_raw(ct, [1, 2])
    full = ctx.rotate_hoisted(ct, [1, 2])
    for step, (rot0, acc) in raw.items():
        p0, p1 = ctx._ks_moddown(acc, ct.level)
        assert np.array_equal((rot0 + p0).data, full[step].c0.data)
        assert np.array_equal(p1.data, full[step].c1.data)

    reps = max(1, REPS // 2)
    none_ms, none_med = _time_stats(lambda: run("none"), reps=reps)
    unfused_ms, unfused_med = _time_stats(lambda: run("double-unfused"), reps=reps)
    fused_ms, fused_med = _time_stats(lambda: run("double"), reps=reps)
    expected = matrix @ values
    tol = 0.05 * max(1.0, np.abs(expected).max())
    got = backend.decrypt(run("double")[0])
    got_unfused = backend.decrypt(run("double-unfused")[0])
    # Toy-backend precision is ~8 bits relative to the output magnitude;
    # fused and unfused agree to noise precision (the deferred mod-down
    # reorders one rounding) and both match the cleartext product.
    assert np.abs(got - expected).max() < tol
    assert np.abs(got_unfused - expected).max() < tol
    assert np.abs(got - got_unfused).max() < tol

    record_table(
        "ckks_hotpath_matvec",
        f"BSGS matvec wall-clock on the exact backend (N={RING_DEGREE}, "
        f"alpha={ALPHA}, banded {n}x{n} layer: {diag} diagonals, "
        f"{babies} babies + {giants} giants)",
        ("execution", "wall-clock (ms)", "speedup"),
        [
            ("per-rotation keyswitch", f"{none_ms:.1f}", "1.00x"),
            (
                "double-hoisted BSGS (PR 1)",
                f"{unfused_ms:.1f}",
                f"{none_ms / unfused_ms:.2f}x",
            ),
            (
                "fused deferred mod-down",
                f"{fused_ms:.1f}",
                f"{none_ms / fused_ms:.2f}x",
            ),
        ],
    )
    merge_json(
        "bsgs_matvec",
        {
            "diagonals": diag,
            "babies": babies,
            "giants": giants,
            "none_median_ms": round(none_med, 3),
            "unfused_median_ms": round(unfused_med, 3),
            "fused_median_ms": round(fused_med, 3),
            "speedup_fused_vs_unfused": round(unfused_med / fused_med, 3),
            "speedup_fused_vs_none": round(none_med / fused_med, 3),
        },
    )
    # The acceptance floor: fused >= 1.5x over the PR 1 baseline at
    # N=2048/L=8 (quick CI rings are smaller and noisier -> 1.2x).
    assert fused_ms < unfused_ms / (1.2 if QUICK else 1.5)
    assert unfused_ms < none_ms * 1.05


def test_tracing_overhead(setup, record_table):
    """Observability overhead gate on the fused BSGS matvec hot path.

    Three contenders, round-robin interleaved (same drift discipline as
    ``_time_stats_paired``): two identical runs under the default
    NULL_TRACER — their delta bounds the *disabled* instrumentation
    cost plus measurement noise — and one run under an enabled Tracer.
    Recorded overheads are gated here and re-checked by
    ``check_bench_json.py`` (CEILINGS), so the observability layer can
    never quietly tax the hot path.
    """
    from repro.obs import NULL_TRACER, Tracer, get_tracer, use_tracer

    backend, ct, _, _ = setup
    params = backend.params
    n = backend.slot_count
    band = 16 if QUICK else 32
    rng = np.random.default_rng(5)
    matrix = np.zeros((n, n))
    row_idx = np.arange(n)[:, None]
    col_idx = (row_idx + np.arange(band)[None, :]) % n
    matrix[row_idx, col_idx] = rng.uniform(-1, 1, (n, band))
    packed = build_linear_packing(
        matrix, None, VectorLayout(n, n), name="bench_trace"
    )
    pt_scale = Fraction(params.data_primes[backend.level_of(ct)])

    # The baseline needs the disabled default; CI never runs benchmarks
    # on the tracing-on leg, but guard against a local REPRO_TRACE=on.
    if get_tracer() is not NULL_TRACER:
        pytest.skip("ambient tracer installed; overhead baseline unavailable")

    def run():
        return packed.execute(backend, [ct], pt_scale, hoisting="double")

    tracer = Tracer()

    def run_traced():
        tracer.reset()
        with use_tracer(tracer):
            return packed.execute(backend, [ct], pt_scale, hoisting="double")

    # Observe-only before timing: traced and untraced are bit-identical,
    # and the traced run actually recorded spans (the gate isn't vacuous).
    plain_out = backend.decrypt(run()[0])
    traced_out = backend.decrypt(run_traced()[0])
    assert np.array_equal(plain_out, traced_out)
    assert tracer.roots, "enabled tracer recorded nothing on the hot path"

    contenders = (("baseline", run), ("disabled", run), ("enabled", run_traced))
    times = {name: [] for name, _ in contenders}
    # Quick-mode executes are only a few ms, so one timed sample spans
    # several back-to-back executes to keep per-sample jitter small
    # relative to the 2% ceiling; full-mode executes are long enough
    # on their own.  The contender order rotates each round (whoever
    # runs first in a round sees systematically warmer caches / fewer
    # pending allocations) and the collector stays off while timing.
    inner = 3 if QUICK else 1
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for round_idx in range(max(15, REPS)):
            shift = round_idx % len(contenders)
            for name, fn in contenders[shift:] + contenders[:shift]:
                start = time.perf_counter()
                for _ in range(inner):
                    fn()
                times[name].append((time.perf_counter() - start) / inner)
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    med = {
        name: float(np.median(samples)) * 1e3
        for name, samples in times.items()
    }

    # Gate on the median of per-round ratios: each round times all three
    # contenders back to back, so a ratio against that round's own
    # baseline cancels slow drift (CPU frequency scaling, noisy CI
    # neighbors), and the median discards rounds where a scheduler
    # spike hit one contender.  Aggregate-median deltas on a loaded box
    # swing several percent either way; the paired ratio does not.
    def overhead_pct(contender):
        ratios = [c / b for c, b in zip(times[contender], times["baseline"])]
        return max(0.0, (float(np.median(ratios)) - 1.0) * 100)

    disabled_pct = overhead_pct("disabled")
    enabled_pct = overhead_pct("enabled")
    record_table(
        "ckks_hotpath_tracing_overhead",
        f"Tracing overhead on the fused BSGS matvec (N={RING_DEGREE}, "
        f"band {band}, {'quick' if QUICK else 'full'} mode): NULL_TRACER "
        "A/A vs an enabled Tracer",
        ("mode", "median (ms)", "overhead"),
        [
            ("baseline (disabled)", f"{med['baseline']:.2f}", "-"),
            ("disabled (A/A)", f"{med['disabled']:.2f}", f"{disabled_pct:.2f}%"),
            ("enabled", f"{med['enabled']:.2f}", f"{enabled_pct:.2f}%"),
        ],
    )
    merge_json(
        "tracing_overhead",
        {
            "baseline_median_ms": round(med["baseline"], 4),
            "disabled_median_ms": round(med["disabled"], 4),
            "enabled_median_ms": round(med["enabled"], 4),
            "disabled_overhead_pct": round(disabled_pct, 2),
            "enabled_overhead_pct": round(enabled_pct, 2),
        },
    )
    # The acceptance ceilings (re-enforced by check_bench_json.py):
    # disabled tracing is free — gated at 2% where runs are long enough
    # to resolve it (full mode; the quick ring's ~6ms runs put the A/A
    # noise floor itself near 2%, hence the headroom) — and enabled
    # tracing stays cheap.
    assert disabled_pct <= (5.0 if QUICK else 2.0)
    assert enabled_pct <= (15.0 if QUICK else 10.0)
