"""Figure 1: PMult / HRot / Bootstrap latency as a function of level.

Reproduces the three shapes of paper Figure 1 (N = 2^16, Delta ~ 2^40):
PMult and HRot grow with the ciphertext level (more RNS limbs), and
bootstrap latency grows superlinearly with L_eff because dnum rises.
Cross-checked against wall-clock measurements of the exact toy backend
at small N (the real arithmetic shows the same limb-count scaling).
"""

import time

import numpy as np

from repro.backend import CostModel, ToyBackend
from repro.ckks.params import paper_parameters, toy_parameters


def test_fig1_model_latencies(record_table, benchmark):
    params = paper_parameters()
    costs = CostModel(params)
    rows = []
    for level in range(0, params.max_level + 1, 2):
        rows.append(
            (
                level,
                f"{costs.pmult(level) * 1e3:.2f}",
                f"{costs.hrot(level) * 1e3:.2f}",
                f"{costs.bootstrap(min(level, params.effective_level)):.2f}"
                if level <= params.effective_level
                else "-",
            )
        )
    record_table(
        "fig1_op_latency",
        "Figure 1: modeled op latency vs level (N=2^16, Delta~2^40)",
        ("level", "PMult (ms)", "HRot (ms)", "Bootstrap to L_eff=level (s)"),
        rows,
    )
    # Shape assertions (who grows, and how).
    pm = [costs.pmult(l) for l in range(params.max_level + 1)]
    hr = [costs.hrot(l) for l in range(params.max_level + 1)]
    bt = [costs.bootstrap(l) for l in range(1, params.effective_level + 1)]
    assert all(b > a for a, b in zip(pm, pm[1:]))
    assert all(b > a for a, b in zip(hr, hr[1:]))
    increments = np.diff(bt)
    assert increments[-1] > increments[0]
    benchmark.pedantic(lambda: costs.bootstrap(), rounds=100, iterations=10)


def test_fig1_toy_backend_crosscheck(record_table, benchmark):
    """Measured wall-clock of the exact backend scales with limb count."""
    params = toy_parameters(ring_degree=1024, max_level=8, boot_levels=2)
    backend = ToyBackend(params, seed=0)
    values = np.linspace(-1, 1, backend.slot_count)
    rows = []
    measured = {}
    for level in (2, 5, 8):
        ct = backend.level_down(backend.encode_encrypt(values), level)
        pt = backend.encode(values, level, params.scale)
        start = time.perf_counter()
        for _ in range(5):
            backend.mul_plain(ct, pt)
        pmult_ms = (time.perf_counter() - start) / 5 * 1e3
        start = time.perf_counter()
        for _ in range(3):
            backend.rotate(ct, 1)
        hrot_ms = (time.perf_counter() - start) / 3 * 1e3
        measured[level] = (pmult_ms, hrot_ms)
        rows.append((level, f"{pmult_ms:.3f}", f"{hrot_ms:.3f}"))
    record_table(
        "fig1_toy_crosscheck",
        "Figure 1 cross-check: measured toy-backend wall-clock (N=2^10)",
        ("level", "PMult (ms)", "HRot (ms)"),
        rows,
    )
    assert measured[8][0] > measured[2][0]  # more limbs, more work
    assert measured[8][1] > measured[2][1]
    ct = backend.level_down(backend.encode_encrypt(values), 5)
    pt = backend.encode(values, 5, params.scale)
    benchmark.pedantic(lambda: backend.mul_plain(ct, pt), rounds=5, iterations=2)
