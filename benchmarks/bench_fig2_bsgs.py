"""Figure 2: the BSGS algorithm's rotation savings.

For a dense n x n matrix the plain diagonal method needs n-1 rotations;
BSGS needs n1 + n2 - 2 with n1*n2 = n (paper Section 3.2).  Verified
functionally: the packed matvec with BSGS gives the same product.
"""

import numpy as np

from repro.core.packing import VectorLayout, build_linear_packing
from repro.core.packing.bsgs import plan_bsgs_square_matrix


def test_fig2_rotation_counts(record_table, benchmark):
    rows = []
    for log_n in range(4, 13):
        n = 1 << log_n
        plain, bsgs = plan_bsgs_square_matrix(n)
        rows.append((n, plain, bsgs, f"{plain / bsgs:.1f}x"))
    record_table(
        "fig2_bsgs",
        "Figure 2: rotations for dense n x n matvec, diagonal vs BSGS",
        ("n", "diagonal method", "BSGS", "reduction"),
        rows,
    )
    plain, bsgs = plan_bsgs_square_matrix(4096)
    assert bsgs < 130  # ~2*sqrt(n)
    benchmark.pedantic(lambda: plan_bsgs_square_matrix(1 << 12), rounds=50, iterations=10)


def test_fig2_functional_equivalence(record_table, benchmark):
    """BSGS evaluation equals the dense product (paper Fig. 2b)."""
    rng = np.random.default_rng(0)
    n = 256
    slots = 1024
    matrix = rng.normal(size=(n, n))
    layout = VectorLayout(n, slots)
    packed = build_linear_packing(matrix, None, layout, force_mode=None)
    x = rng.normal(size=n)
    got = packed.out_layout.unpack(packed.execute_cleartext(layout.pack(x)))
    assert np.allclose(got, matrix @ x)
    record_table(
        "fig2_equivalence",
        "Figure 2 functional check: BSGS matvec == dense product",
        ("n", "max error", "rotations"),
        [(n, f"{np.abs(got - matrix @ x).max():.2e}", packed.rotation_count())],
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


