"""Figures 3-5: convolutions as matrix-vector products.

- Figure 3/4: SISO and MIMO same-style convolutions are exactly the
  Toeplitz matvec evaluated by the diagonal method (+ BSGS).
- Figure 5: strided convolutions blow up the naive Toeplitz diagonal
  count (~c_i*h_i*w_i); single-shot multiplexing restores a dense
  output layout at one multiplicative level with ~f*c diagonals.
"""

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.core.packing import MultiplexedLayout, analyze_conv_packing, build_conv_packing
from repro.core.packing.analysis import analyze_toeplitz_strided_diagonals


def _conv_ref(x, w, stride, pad):
    return F.conv2d(
        Tensor(x[None]), Tensor(w), stride=(stride, stride), padding=(pad, pad)
    ).data[0]


def test_fig3_siso_equivalence(record_table, benchmark):
    rng = np.random.default_rng(0)
    lay = MultiplexedLayout(1, 8, 8, 1, 1024)
    w = rng.normal(size=(1, 1, 3, 3))
    x = rng.normal(size=(1, 8, 8))
    packed = build_conv_packing(w, None, lay, padding=(1, 1))
    got = packed.out_layout.unpack(packed.execute_cleartext(lay.pack(x)))
    err = np.abs(got - _conv_ref(x, w, 1, 1)).max()
    record_table(
        "fig3_siso",
        "Figure 3: SISO conv == Toeplitz diagonal matvec",
        ("diagonals", "rotations", "max error"),
        [(packed.pmult_count(), packed.rotation_count(), f"{err:.2e}")],
    )
    assert err < 1e-10
    assert packed.pmult_count() == 9  # one diagonal per filter tap
    benchmark.pedantic(
        lambda: build_conv_packing(w, None, lay, padding=(1, 1)), rounds=5, iterations=1
    )


def test_fig4_mimo_equivalence(record_table, benchmark):
    rng = np.random.default_rng(1)
    lay = MultiplexedLayout(2, 8, 8, 1, 1024)
    w = rng.normal(size=(2, 2, 3, 3))
    x = rng.normal(size=(2, 8, 8))
    packed = build_conv_packing(w, None, lay, padding=(1, 1))
    got = packed.out_layout.unpack(packed.execute_cleartext(lay.pack(x)))
    err = np.abs(got - _conv_ref(x, w, 1, 1)).max()
    record_table(
        "fig4_mimo",
        "Figure 4: MIMO conv == blocked Toeplitz matvec",
        ("diagonals", "rotations", "max error"),
        [(packed.pmult_count(), packed.rotation_count(), f"{err:.2e}")],
    )
    assert err < 1e-10
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig5_strided_diagonal_blowup(record_table, benchmark):
    """Naive strided Toeplitz diagonals grow with image size; the
    single-shot multiplexed matrix stays filter-sized, at one level."""
    rows = []
    n = 1 << 15
    for size in (8, 16, 32):
        lay = MultiplexedLayout(4, size, size, 1, n)
        naive = analyze_toeplitz_strided_diagonals(lay, (2, 2), 2, c_out=4)
        multiplexed = analyze_conv_packing((4, 4, 2, 2), lay, stride=(2, 2))
        rows.append(
            (f"{size}x{size}", naive, multiplexed.pmults, multiplexed.rotations, 1)
        )
    record_table(
        "fig5_strided",
        "Figure 5: strided conv diagonals, naive Toeplitz vs single-shot multiplexed",
        ("input", "naive diagonals", "multiplexed diagonals", "rotations", "mult. depth"),
        rows,
    )
    # The blowup grows with image size; multiplexed count does not.
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][2] <= rows[0][2]
    lay = MultiplexedLayout(4, 32, 32, 1, n)
    benchmark.pedantic(
        lambda: analyze_conv_packing((4, 4, 2, 2), lay, stride=(2, 2)),
        rounds=10, iterations=1,
    )


def test_fig5_multiplexed_correctness(record_table, benchmark):
    """The multiplexed strided conv computes the right answer with the
    dense gap-2 output layout (paper Fig. 5b)."""
    rng = np.random.default_rng(2)
    lay = MultiplexedLayout(1, 8, 8, 1, 1024)
    w = rng.normal(size=(4, 1, 2, 2))
    x = rng.normal(size=(1, 8, 8))
    packed = build_conv_packing(w, None, lay, stride=(2, 2))
    got = packed.out_layout.unpack(packed.execute_cleartext(lay.pack(x)))
    err = np.abs(got - _conv_ref(x, w, 2, 0)).max()
    assert err < 1e-10
    assert packed.out_layout.gap == 2
    record_table(
        "fig5_correctness",
        "Figure 5b: single-shot multiplexed strided conv correctness",
        ("output gap", "max error"),
        [(packed.out_layout.gap, f"{err:.2e}")],
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


