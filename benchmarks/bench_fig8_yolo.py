"""Figure 8 / Section 8.6: YOLO-v1 object detection under FHE.

Paper: a 139M-parameter YOLO-v1 (ResNet-34 backbone) on 448x448x3
PASCAL-VOC images — the largest FHE inference reported to date, 17.5 h
single-threaded.  Reproduction: (a) the paper-scale model is compiled
in analyze mode (rotations, bootstraps, depth, modeled latency); (b) a
width-scaled YOLO runs *end-to-end under FHE* on a synthetic VOC-like
scene and its decoded detections must match the cleartext decode.
"""

from repro.backend import SimBackend
from repro.ckks.params import paper_parameters
from repro.datasets import voc_like
from repro.models import YoloV1, silu_act
from repro.nn import init
from repro.orion import OrionNetwork

PARAMS = paper_parameters()


def test_fig8_paper_scale_analysis(record_table, benchmark):
    init.seed_init(0)
    net = YoloV1(act=silu_act(127))
    params_m = sum(p.size for p in net.parameters()) / 1e6
    compiled = OrionNetwork(net, (3, 448, 448)).compile(PARAMS, mode="analyze")
    hours = compiled.modeled_seconds / 3600.0
    record_table(
        "fig8_yolo_analysis",
        "Section 8.6: paper-scale YOLO-v1 (ResNet-34 backbone) compile analysis",
        ("params (M)", "#rots", "#boots", "depth", "modeled latency (h)"),
        [(f"{params_m:.0f}", compiled.total_rotations, compiled.num_bootstraps,
          compiled.multiplicative_depth, f"{hours:.1f}")],
    )
    assert 120 <= params_m <= 160  # paper: 139M
    assert compiled.num_bootstraps > 100
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig8_encrypted_detection_demo(record_table, benchmark):
    """End-to-end encrypted detection on a synthetic scene (tiny model):
    the FHE output decodes to the same boxes as the cleartext output."""
    init.seed_init(1)
    net = YoloV1(grid=2, classes=4, act=silu_act(31), width=4,
                 head_width=8, fc_hidden=16)
    data = voc_like(num_samples=3, image_size=128, num_classes=4, seed=2)
    onet = OrionNetwork(net, (3, 128, 128))
    onet.fit([data.images[:2]])
    compiled = onet.compile(PARAMS)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


    image = data.images[2]
    clear = onet.forward_cleartext(image)
    backend = SimBackend(PARAMS, seed=3)
    fhe = compiled.run(backend, image)
    bits = OrionNetwork.precision_bits(fhe, clear)

    clear_dets = net.decode(clear, threshold=0.1)
    fhe_dets = net.decode(fhe, threshold=0.1)
    record_table(
        "fig8_yolo_demo",
        "Figure 8 demo: encrypted detection output vs cleartext (scaled model)",
        ("precision (bits)", "clear boxes", "FHE boxes", "#rots", "#boots"),
        [(f"{bits:.1f}", len(clear_dets), len(fhe_dets),
          backend.ledger.rotations, backend.ledger.bootstraps)],
    )
    assert bits > 6
    assert [d[0] for d in fhe_dets] == [d[0] for d in clear_dets]
