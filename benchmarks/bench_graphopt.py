"""Graph-level optimizer: end-to-end speedup on a branchy network.

A ResNet/inception-style network of fork blocks — two sibling 3x3
convolutions consuming the same value, joined by an Add — is compiled
twice, with the trace-level graph optimizer on and off, and executed on
the exact toy backend.  Concat-linear fusion merges each sibling pair
into one stacked BSGS matvec that shares a single digit decomposition
and de-duplicates the siblings' common (input block, offset) inner
products, so the optimized program performs strictly fewer rotations.

Correctness is asserted before timing is believed: the optimized
program's cleartext-packed output is **bit-exact** against the
un-optimized program (the optimizer's core contract, docs/graphopt.md),
and the encrypted outputs agree within toy-backend precision.

Medians merge into ``BENCH_ckks_hotpath.json`` (section ``graph_opt``)
and the CI bench-gate (``check_bench_json.py``) enforces the 1.2x
end-to-end speedup floor.

Set ``HOTPATH_QUICK=1`` for the CI-sized run.
"""

import os
import statistics
import time

import numpy as np
import pytest
from bench_json_util import merge_json as _merge_json

import repro.orion.nn as on
from repro.backend import ToyBackend
from repro.ckks.params import toy_parameters
from repro.nn import init
from repro.orion import OrionNetwork

QUICK = bool(int(os.environ.get("HOTPATH_QUICK", "0")))
RING_DEGREE = 1024 if QUICK else 2048
MAX_LEVEL = 6
CHANNELS = 8
BLOCKS = 2 if QUICK else 3
REPS = 3 if QUICK else 5
SPEEDUP_FLOOR = 1.2

CONFIG_KEY = f"N{RING_DEGREE}_L{MAX_LEVEL}_alpha1_{'quick' if QUICK else 'full'}"


class ForkBlock(on.Module):
    """Two sibling convolutions over one value, joined by Add."""

    def __init__(self, channels):
        super().__init__()
        self.conv_a = on.Conv2d(channels, channels, 3, padding=1, bias=True)
        self.conv_b = on.Conv2d(channels, channels, 3, padding=1, bias=False)
        self.add = on.Add()
        self.act = on.Square()

    def forward(self, x):
        return self.act(self.add(self.conv_a(x), self.conv_b(x)))


class BranchyNet(on.Module):
    def __init__(self, channels=CHANNELS, blocks=BLOCKS):
        super().__init__()
        self.act = on.Square()
        self.blocks = on.Sequential(*[ForkBlock(channels) for _ in range(blocks)])

    def forward(self, x):
        return self.blocks(self.act(x))


@pytest.fixture(scope="module")
def compiled_pair():
    params = toy_parameters(
        ring_degree=RING_DEGREE, max_level=MAX_LEVEL, boot_levels=1, scale_bits=24
    )
    init.seed_init(0)
    shape = (CHANNELS, 8, 8)
    onet = OrionNetwork(BranchyNet(), shape)
    rng = np.random.default_rng(0)
    onet.fit([rng.normal(0, 0.5, (4,) + shape)])
    optimized = onet.compile(params, optimize=True)
    baseline = onet.compile(params, optimize=False)
    return params, shape, optimized, baseline, rng


def test_graphopt_speedup(compiled_pair, record_table):
    params, shape, optimized, baseline, rng = compiled_pair

    # -- correctness first ------------------------------------------------
    report = optimized.graph_opt_report
    assert report is not None and report.rewrites.get("concat_linear_fusion") == BLOCKS
    image = rng.normal(0, 0.5, shape)
    clear_opt = optimized.program.run_cleartext_packed(image)
    clear_base = baseline.program.run_cleartext_packed(image)
    assert np.array_equal(clear_opt, clear_base), (
        "optimized cleartext-packed output is not bit-exact vs un-optimized"
    )
    assert optimized.total_rotations < baseline.total_rotations

    backend_opt = ToyBackend(params, seed=1)
    backend_base = ToyBackend(params, seed=1)
    out_opt = optimized.run(backend_opt, image)
    out_base = baseline.run(backend_base, image)
    assert OrionNetwork.precision_bits(out_opt, out_base) > 10
    # The ledger sees exactly the rotations the reports promise.
    assert backend_opt.ledger.rotations == optimized.total_rotations
    assert backend_base.ledger.rotations == baseline.total_rotations

    # -- timing (the correctness runs above double as warmup: weight
    # plaintexts and key material are cached per backend) ----------------
    def median_seconds(compiled, backend):
        times = []
        for _ in range(REPS):
            start = time.perf_counter()
            compiled.run(backend, image)
            times.append(time.perf_counter() - start)
        return statistics.median(times)

    opt_s = median_seconds(optimized, backend_opt)
    base_s = median_seconds(baseline, backend_base)
    speedup = base_s / opt_s

    record_table(
        "graphopt_e2e",
        f"Graph optimizer end-to-end, {BLOCKS} sibling-conv fork blocks "
        f"(N={RING_DEGREE}, L={MAX_LEVEL}, exact backend)",
        ("pipeline", "median ms", "rotations", "speedup"),
        [
            ("un-optimized", f"{base_s * 1e3:.1f}",
             baseline.total_rotations, "1.00x"),
            ("graph-optimized", f"{opt_s * 1e3:.1f}",
             optimized.total_rotations, f"{speedup:.2f}x"),
        ],
    )
    _merge_json(
        CONFIG_KEY,
        "graph_opt",
        {
            "blocks": BLOCKS,
            "rewrites": report.summary(),
            "rotations_optimized": optimized.total_rotations,
            "rotations_unoptimized": baseline.total_rotations,
            "optimized_median_ms": round(opt_s * 1e3, 3),
            "unoptimized_median_ms": round(base_s * 1e3, 3),
            "speedup_optimized_vs_unoptimized": round(speedup, 3),
        },
        ring_degree=RING_DEGREE,
        max_level=MAX_LEVEL,
        ks_alpha=1,
        quick=QUICK,
    )
    assert speedup > SPEEDUP_FLOOR, (
        f"graph optimizer only {speedup:.2f}x end-to-end (floor {SPEEDUP_FLOOR}x)"
    )
