"""Shared helpers for the machine-readable benchmark JSON.

Every perf benchmark merges its medians into ``BENCH_ckks_hotpath.json``
at the repo root, keyed by configuration, so the perf trajectory is
tracked across PRs and the CI bench-gate (``check_bench_json.py``) can
fail loudly when a recorded speedup drops below its floor.
"""

import json
import os

JSON_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_ckks_hotpath.json",
)


def merge_json(
    config_key: str,
    section: str,
    payload: dict,
    *,
    ring_degree: int,
    max_level: int,
    ks_alpha: int,
    quick: bool,
    json_path: str = JSON_PATH,
) -> None:
    """Merge one benchmark section into the repo-root JSON.

    Keyed by configuration so successive runs (alpha=1, alpha>1,
    quick/full, different benchmarks) accumulate instead of clobbering
    each other.
    """
    data = {}
    if os.path.exists(json_path):
        try:
            with open(json_path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError):
            data = {}
    config = data.setdefault("configs", {}).setdefault(config_key, {})
    config["ring_degree"] = ring_degree
    config["max_level"] = max_level
    config["ks_alpha"] = ks_alpha
    config["quick"] = quick
    config[section] = payload
    with open(json_path, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
