"""Fleet-scale serving: open-loop load over the sharded worker pool.

The acceptance benchmark of the ``repro.serve.open`` front door
(docs/serving.md): two MNIST-MLP artifacts are compiled once, exported
uncompressed, and a **4-worker pool** serves mixed open-loop traffic
over the shared mmapped tables —

- **steady phase**: every tick, each client submits one request to its
  artifact and the pool runs every due batch; rendezvous routing pins
  clients to workers, so each worker slot-batches its own clientele;
- **overload burst**: one client then hammers its routed worker with
  more requests than the admission queue admits, producing a
  deterministic reject count (backpressure, not queue growth).

Correctness is asserted before the numbers are believed: every pool
output is **bit-exact** against a solo ``InferenceServer`` replaying
the same per-worker traffic (same key seed, same batching rule), the
conservation law holds at the end (admitted == completed, zero
in-flight), every worker reports mmap-backed tables, and the serve path
never compiles.

Results merge into ``BENCH_serving.json`` (section ``serving_pool``):
request-latency p50/p99, open-loop throughput, and the reject rate of
the overload burst, validated by the ``bench-gate`` CI step.

Set ``SERVING_QUICK=1`` (or ``HOTPATH_QUICK=1``) for the CI-sized run.
"""

import os
import time

import numpy as np
import pytest
from bench_json_util import JSON_PATH, merge_json as _merge_json

from repro import serve
from repro.ckks.params import toy_parameters
from repro.core.compiler import OrionCompiler
from repro.models import SecureMlp
from repro.nn import init
from repro.orion import OrionNetwork
from repro.serve.keys import default_backend_factory
from repro.serve.runtime import InferenceServer

QUICK = bool(
    int(os.environ.get("SERVING_QUICK", os.environ.get("HOTPATH_QUICK", "0")))
)
RING_DEGREE = 1024 if QUICK else 2048
MAX_LEVEL = 6
WORKERS = 4
CLIENTS = 8
TICKS = 2 if QUICK else 4
MAX_QUEUE_DEPTH = 8
BURST = 16  # overload submissions; exactly BURST - MAX_QUEUE_DEPTH reject

SERVING_JSON_PATH = os.path.join(os.path.dirname(JSON_PATH), "BENCH_serving.json")
CONFIG_KEY = (
    f"N{RING_DEGREE}_L{MAX_LEVEL}_alpha1_{'quick' if QUICK else 'full'}"
)


@pytest.fixture(scope="module")
def deployment(tmp_path_factory):
    params = toy_parameters(
        ring_degree=RING_DEGREE, max_level=MAX_LEVEL, boot_levels=1, scale_bits=24
    )
    root = tmp_path_factory.mktemp("artifacts")
    paths = {}
    for index, name in enumerate(("mlp_a", "mlp_b")):
        init.seed_init(index)
        onet = OrionNetwork(SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
        rng = np.random.default_rng(index)
        onet.fit([rng.normal(0, 0.5, (8, 1, 8, 8))])
        path = str(root / f"{name}.npz")
        onet.export(path, params)
        paths[name] = path

    compilations = OrionCompiler.invocations
    config = serve.ServerConfig(
        workers=WORKERS,
        batch_window_seconds=0.0,
        max_queue_depth=MAX_QUEUE_DEPTH,
    )
    server = serve.open(paths, config)
    server.warm()
    assert OrionCompiler.invocations == compilations, "serve path compiled!"
    return server, paths


def test_serving_pool_open_loop(deployment, record_table):
    server, paths = deployment
    rng = np.random.default_rng(42)
    artifacts = server.artifact_ids
    clients = [
        (f"client-{i}", artifacts[i % len(artifacts)]) for i in range(CLIENTS)
    ]

    # -- steady open-loop phase -----------------------------------------
    traffic = []  # (tick, client, artifact, image) in submission order
    for tick in range(TICKS):
        for client, artifact in clients:
            traffic.append(
                (tick, client, artifact, rng.normal(0, 0.5, (1, 8, 8)))
            )
    results = {}
    start = time.perf_counter()
    for tick in range(TICKS):
        for t, client, artifact, image in traffic:
            if t != tick:
                continue
            server.submit(image, client_id=client, artifact=artifact, now=0.0)
        for result in server.step(now=1e9):
            results[result.ticket] = result
    steady_seconds = time.perf_counter() - start
    steady_requests = len(traffic)
    assert len(results) == steady_requests

    # -- deterministic overload burst ------------------------------------
    hammer, hammer_artifact = clients[0]
    burst_images = [rng.normal(0, 0.5, (1, 8, 8)) for _ in range(BURST)]
    admitted_burst, rejections = [], []
    for image in burst_images:
        try:
            server.submit(image, client_id=hammer, artifact=hammer_artifact, now=0.0)
            admitted_burst.append(image)
        except serve.AdmissionError as exc:
            rejections.append(exc)
    assert len(admitted_burst) == MAX_QUEUE_DEPTH
    assert len(rejections) == BURST - MAX_QUEUE_DEPTH
    assert all(exc.retry_after_ms > 0 for exc in rejections)
    for result in server.drain():
        results[result.ticket] = result

    # -- correctness gates before the numbers ----------------------------
    stats = server.stats()
    assert stats.in_flight == 0
    assert stats.requests_rejected == len(rejections)
    assert stats.requests_completed == steady_requests + len(admitted_burst)
    assert all(w.mmap_backed for w in stats.workers)
    assert all(w.compilations_since_load == 0 for w in stats.workers)
    assert len(stats.workers) == WORKERS

    # Bit-exactness: replay each worker's share of the traffic on a solo
    # InferenceServer (same key seed, same batching sequence) and demand
    # identical bytes from the pool's outputs.
    bit_exact = _assert_bit_exact_vs_solo(
        server, paths, traffic, admitted_burst, hammer, hammer_artifact, results
    )

    # -- report ----------------------------------------------------------
    latencies_ms = np.array(
        [r.wall_seconds * 1e3 for r in results.values()]
    )
    p50_ms = float(np.percentile(latencies_ms, 50))
    p99_ms = float(np.percentile(latencies_ms, 99))
    open_loop_rps = steady_requests / steady_seconds
    reject_rate = stats.reject_rate

    record_table(
        "serving_pool",
        f"Fleet-scale pool, {WORKERS} workers x {len(artifacts)} artifacts, "
        f"open-loop (N={RING_DEGREE}, L={MAX_LEVEL}, exact backend)",
        ("metric", "value"),
        [
            ("workers", WORKERS),
            ("requests completed", stats.requests_completed),
            ("requests rejected", stats.requests_rejected),
            ("reject rate", f"{reject_rate:.3f}"),
            ("request p50 ms", f"{p50_ms:.1f}"),
            ("request p99 ms", f"{p99_ms:.1f}"),
            ("open-loop requests/sec", f"{open_loop_rps:.2f}"),
            ("bit-exact vs solo", bit_exact),
        ],
    )
    _merge_json(
        CONFIG_KEY,
        "serving_pool",
        {
            "workers": WORKERS,
            "artifacts": len(artifacts),
            "clients": CLIENTS,
            "requests_submitted": stats.requests_submitted,
            "requests_completed": stats.requests_completed,
            "requests_rejected": stats.requests_rejected,
            "reject_rate": round(reject_rate, 4),
            "p50_ms": round(p50_ms, 3),
            "p99_ms": round(p99_ms, 3),
            "open_loop_requests_per_sec": round(open_loop_rps, 3),
            "bit_exact_vs_solo": bit_exact,
            "mmap_backed": all(w.mmap_backed for w in stats.workers),
        },
        ring_degree=RING_DEGREE,
        max_level=MAX_LEVEL,
        ks_alpha=1,
        quick=QUICK,
        json_path=SERVING_JSON_PATH,
    )


def _assert_bit_exact_vs_solo(
    server, paths, traffic, admitted_burst, hammer, hammer_artifact, results
):
    """Replay each (worker, artifact) lane solo and compare every byte."""
    by_client = {}
    for result in results.values():
        by_client.setdefault(
            (result.client_id, result.artifact_id), []
        ).append(result)
    for lane in by_client.values():
        lane.sort(key=lambda r: r.ticket)

    lanes = {}  # (worker, artifact) -> per-tick submission lists
    for tick, client, artifact, image in traffic:
        worker = server.route(client, artifact)
        lanes.setdefault((worker, artifact), {}).setdefault(tick, []).append(
            (client, image)
        )
    hammer_worker = server.route(hammer, hammer_artifact)
    burst_tick = max(t for t, *_ in traffic) + 1
    lanes.setdefault((hammer_worker, hammer_artifact), {})[burst_tick] = [
        (hammer, image) for image in admitted_burst
    ]

    consumed = {key: 0 for key in by_client}
    for (worker, artifact), ticks in sorted(lanes.items()):
        solo_artifact = serve.ArtifactMap(paths[artifact]).load()
        solo = InferenceServer(
            solo_artifact,
            default_backend_factory(solo_artifact.manifest.to_params(), 0),
            batching=True,
            max_wait_seconds=0.0,
        )
        solo.warm()  # the pool warmed its workers; match the RNG stream
        for tick in sorted(ticks):
            for client, image in ticks[tick]:
                solo.submit(image, client_id=client, now=0.0)
            for solo_result in solo.step(now=1e9):
                key = (solo_result.client_id, artifact)
                pool_result = by_client[key][consumed[key]]
                consumed[key] += 1
                assert pool_result.worker_id == worker
                assert pool_result.batch_size == solo_result.batch_size
                assert np.array_equal(
                    pool_result.output, solo_result.output
                ), f"worker {worker} diverged from solo replay for {key}"
    assert all(
        consumed[key] == len(lane) for key, lane in by_client.items()
    ), "solo replay did not cover every pool result"
    return True


def test_pool_serve_path_never_compiles(deployment):
    """Load-and-serve purity, re-checked after all the traffic above."""
    server, _ = deployment
    stats = server.stats()
    assert all(w.compilations_since_load == 0 for w in stats.workers)
    assert all(w.placements_since_load == 0 for w in stats.workers)


# -- tenant-density: key bytes per tenant --------------------------------

TENANTS = 6
RESIDENT_CAP = 3  # forces TENANTS - RESIDENT_CAP tenants to spill


def _switching_keys(backend):
    keys = backend.context.keys
    return [keys.relin] + [keys.galois[t] for t in keys.galois_exponents()]


def _seed_expansion_shrink(backend):
    """Bytes if both key halves were stored vs bytes actually held
    (b halves + a 32-byte PRG seed per key)."""
    stored = seeded = 0
    for key in _switching_keys(backend):
        for b, a in key.pairs:
            stored += b.data.nbytes + a.data.nbytes
        seeded += key.size_bytes()
    return stored / seeded


def test_tenant_key_budget(deployment, tmp_path_factory, record_table):
    """The tenant-density gate: key bytes per tenant, spill-to-disk
    behavior under a resident cap, and bit-exactness of a promoted
    (spilled, then reloaded) tenant against one that never spilled.
    """
    _, paths = deployment
    loaded = serve.load_artifact(paths["mlp_a"])
    cache_dir = str(tmp_path_factory.mktemp("keycache"))
    registry = serve.KeyRegistry(
        loaded.manifest, max_clients=RESIDENT_CAP, cache_dir=cache_dir
    )
    control = serve.KeyRegistry(loaded.manifest, max_clients=TENANTS + 1)

    rng = np.random.default_rng(7)
    tenants = [f"tenant-{i}" for i in range(TENANTS)]
    images = {t: rng.normal(0, 0.5, (1, 8, 8)) for t in tenants}
    follow_up = rng.normal(0, 0.5, (1, 8, 8))

    start = time.perf_counter()
    outputs = {}
    for tenant in tenants:
        backend = registry.backend_for(tenant)
        outputs[tenant] = loaded.program.run(backend, images[tenant])
    keygen_seconds = time.perf_counter() - start

    shrink = _seed_expansion_shrink(registry.backend_for(tenants[-1]))
    assert shrink >= 1.8, f"seed expansion shrink regressed: {shrink:.2f}x"

    # The cap held: cold tenants were demoted to disk, not dropped.
    key_bytes = registry.key_bytes()
    assert len(registry) <= RESIDENT_CAP
    assert registry.spilled_count() == TENANTS - RESIDENT_CAP
    assert registry.spill_count >= TENANTS - RESIDENT_CAP
    assert key_bytes["spilled"] > 0

    # Promote the first (spilled) tenant and serve another request; a
    # control registry that never spilled must produce identical bytes
    # for both requests — keys *and* the encryption randomness stream.
    victim = tenants[0]
    assert victim not in registry.resident_clients()
    ctrl_backend = control.backend_for(victim)
    ctrl_first = loaded.program.run(ctrl_backend, images[victim])
    ctrl_second = loaded.program.run(ctrl_backend, follow_up)
    promoted = registry.backend_for(victim)
    assert registry.promote_count >= 1
    promoted_second = loaded.program.run(promoted, follow_up)
    spill_promote_bit_exact = bool(
        np.array_equal(outputs[victim], ctrl_first)
        and np.array_equal(promoted_second, ctrl_second)
    )
    assert spill_promote_bit_exact

    key_bytes = registry.key_bytes()
    total_bytes = key_bytes["resident"] + key_bytes["spilled"]
    bytes_per_tenant = total_bytes / TENANTS

    record_table(
        "tenant_keys",
        f"Tenant key density, {TENANTS} tenants, resident cap "
        f"{RESIDENT_CAP} (N={RING_DEGREE}, L={MAX_LEVEL})",
        ("metric", "value"),
        [
            ("tenants", TENANTS),
            ("resident tenants", len(registry)),
            ("spilled tenants", registry.spilled_count()),
            ("resident bytes", key_bytes["resident"]),
            ("spilled bytes", key_bytes["spilled"]),
            ("bytes per tenant", f"{bytes_per_tenant:.0f}"),
            ("seed expansion shrink", f"{shrink:.2f}x"),
            ("spill+promote bit-exact", spill_promote_bit_exact),
            ("keygen seconds (all tenants)", f"{keygen_seconds:.2f}"),
        ],
    )
    _merge_json(
        CONFIG_KEY,
        "tenant_keys",
        {
            "tenants": TENANTS,
            "resident_tenants": len(registry),
            "spilled_tenants": registry.spilled_count(),
            "resident_bytes": key_bytes["resident"],
            "spilled_bytes": key_bytes["spilled"],
            "bytes_per_tenant": round(bytes_per_tenant, 1),
            "seed_expansion_shrink": round(shrink, 3),
            "spill_promote_bit_exact": spill_promote_bit_exact,
            "keygen_seconds": round(keygen_seconds, 3),
        },
        ring_degree=RING_DEGREE,
        max_level=MAX_LEVEL,
        ks_alpha=1,
        quick=QUICK,
        json_path=SERVING_JSON_PATH,
    )
