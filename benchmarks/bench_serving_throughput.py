"""Serving throughput: sequential single requests vs slot-batched.

The compile-once / serve-many acceptance benchmark (docs/serving.md):
an MNIST MLP is compiled once, exported to a serving artifact, loaded
back (zero compiler/planner invocations asserted), and then serves the
same requests two ways on the exact toy backend —

- **sequential**: one request per program execution;
- **batched**: ``BATCH`` concurrent clients coalesced into one
  ciphertext by the slot-batching scheduler, one program execution for
  all of them.

Correctness is asserted before timing is believed: batched per-client
outputs are **bit-exact** against sequential execution on the
deterministic cleartext-packed path, and within the usual precision
bound of the noisy exact backend.  The batched path must then clear a
requests/sec floor of 2x over sequential (wall-clock; the modeled
speedup is also recorded).

Medians merge into ``BENCH_serving.json`` at the repo root (same
machine-readable format as ``BENCH_ckks_hotpath.json``), validated by
the ``bench-gate`` CI step (``benchmarks/check_bench_json.py``).

Set ``HOTPATH_QUICK=1`` (or ``SERVING_QUICK=1``) for the CI-sized run.
"""

import os
import statistics
import time

import numpy as np
import pytest
from bench_json_util import JSON_PATH, merge_json as _merge_json

from repro.backend import ToyBackend
from repro.ckks.params import toy_parameters
from repro.core.compiler import OrionCompiler
from repro.core.placement.planner import solve_placement
from repro.models import SecureMlp
from repro.nn import init
from repro.orion import OrionNetwork
from repro.serve import load_artifact
from repro.serve.runtime import InferenceServer

QUICK = bool(
    int(os.environ.get("SERVING_QUICK", os.environ.get("HOTPATH_QUICK", "0")))
)
RING_DEGREE = 1024 if QUICK else 2048
MAX_LEVEL = 6
BATCH = 4
REPS = 2 if QUICK else 5
SPEEDUP_FLOOR = 2.0
PRECISION_FLOOR = 3.5  # sanity bound; bit-exactness is asserted on the packed path

SERVING_JSON_PATH = os.path.join(os.path.dirname(JSON_PATH), "BENCH_serving.json")
CONFIG_KEY = (
    f"N{RING_DEGREE}_L{MAX_LEVEL}_alpha1_{'quick' if QUICK else 'full'}"
)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    params = toy_parameters(
        ring_degree=RING_DEGREE, max_level=MAX_LEVEL, boot_levels=1, scale_bits=24
    )
    init.seed_init(0)
    onet = OrionNetwork(SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
    rng = np.random.default_rng(0)
    onet.fit([rng.normal(0, 0.5, (8, 1, 8, 8))])
    path = str(tmp_path_factory.mktemp("artifact") / "mlp.npz")
    onet.export(path, params)

    compilations = OrionCompiler.invocations
    placements = solve_placement.invocations
    artifact = load_artifact(path)
    backend = ToyBackend(params, seed=3)
    server = InferenceServer(artifact, backend, max_wait_seconds=0.0)
    # Warm both execution shapes once: key material and weight-plaintext
    # caches are a one-time per-worker cost, not a per-request one.
    warm = [rng.normal(0, 0.5, (1, 8, 8)) for _ in range(BATCH)]
    server.serve_now(warm[0])
    for image in warm:
        server.submit(image, now=0.0)
    server.step(now=1e9)
    assert OrionCompiler.invocations == compilations, "serve path compiled!"
    assert solve_placement.invocations == placements, "serve path planned!"
    return artifact, server, rng


def test_serving_throughput(served, record_table):
    artifact, server, rng = served
    program = artifact.program
    images = [rng.normal(0, 0.5, (1, 8, 8)) for _ in range(BATCH)]

    # -- correctness first: batched == sequential, per client ------------
    sequential_packed = np.stack(
        [program.run_cleartext_packed(image) for image in images]
    )
    batched_packed = program.batched(BATCH).run_cleartext_packed(np.stack(images))
    assert np.array_equal(batched_packed, sequential_packed), (
        "batched cleartext-packed outputs are not bit-exact vs sequential"
    )

    sequential_outputs = {}
    single_times = []
    for _ in range(REPS):
        start = time.perf_counter()
        for index, image in enumerate(images):
            result = server.serve_now(image, client_id=f"c{index}")
            sequential_outputs[index] = result.output
        single_times.append((time.perf_counter() - start) / BATCH)

    batched_outputs = {}
    batched_times = []
    for _ in range(REPS):
        start = time.perf_counter()
        tickets = {
            server.submit(image, client_id=f"c{index}", now=0.0): index
            for index, image in enumerate(images)
        }
        results = server.step(now=1e9)
        batched_times.append((time.perf_counter() - start) / BATCH)
        assert len(results) == BATCH
        assert all(result.batch_size == BATCH for result in results)
        for result in results:
            batched_outputs[tickets[result.ticket]] = result.output

    for index in range(BATCH):
        bits = OrionNetwork.precision_bits(
            batched_outputs[index], sequential_packed[index]
        )
        assert bits > PRECISION_FLOOR, (
            f"client {index}: batched output off ({bits:.2f} bits)"
        )
        bits_seq = OrionNetwork.precision_bits(
            sequential_outputs[index], sequential_packed[index]
        )
        assert bits_seq > PRECISION_FLOOR

    # -- throughput ------------------------------------------------------
    single_ms = statistics.median(single_times) * 1e3
    batched_ms = statistics.median(batched_times) * 1e3
    single_rps = 1e3 / single_ms
    batched_rps = 1e3 / batched_ms
    speedup = batched_rps / single_rps

    record_table(
        "serving_throughput",
        f"Serving throughput, {BATCH} concurrent MNIST requests "
        f"(N={RING_DEGREE}, L={MAX_LEVEL}, exact backend)",
        ("mode", "per-request ms", "requests/sec", "speedup"),
        [
            ("sequential", f"{single_ms:.1f}", f"{single_rps:.2f}", "1.00x"),
            (
                f"slot-batched x{BATCH}",
                f"{batched_ms:.1f}",
                f"{batched_rps:.2f}",
                f"{speedup:.2f}x",
            ),
        ],
    )
    _merge_json(
        CONFIG_KEY,
        "serving",
        {
            "batch_size": BATCH,
            "capacity": server.scheduler.capacity,
            "preloaded_plaintexts": server.preloaded_plaintexts,
            "single_request_median_ms": round(single_ms, 3),
            "batched_request_median_ms": round(batched_ms, 3),
            "requests_per_sec_single": round(single_rps, 3),
            "requests_per_sec_batched": round(batched_rps, 3),
            "speedup_batched_vs_single": round(speedup, 3),
        },
        ring_degree=RING_DEGREE,
        max_level=MAX_LEVEL,
        ks_alpha=1,
        quick=QUICK,
        json_path=SERVING_JSON_PATH,
    )
    assert speedup > SPEEDUP_FLOOR, (
        f"batched serving only {speedup:.2f}x over sequential "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


def test_serve_path_never_compiles(served):
    """Load-and-serve purity, re-checked after all the traffic above."""
    _, server, _ = served
    assert server.compilations_since_load == 0
    assert server.placements_since_load == 0
