"""Table 2: the main evaluation — every network/dataset combination.

Execution-mode rows (MNIST, CIFAR scale) train a network on the
synthetic stand-in dataset, run true FHE inference on the simulation
backend, and report rotations / depth / bootstraps / cleartext vs FHE
accuracy / output precision in bits / modeled latency.  Analysis-mode
rows (Tiny ImageNet, ImageNet scale) report the compile-time statistics
for the paper-scale architectures, exactly as the paper only runs a
handful of encrypted inferences at that scale.

Expected shapes vs the paper: MNIST nets at depth 5/5/7 with zero
bootstraps; activation depth (and hence bootstraps) roughly halves from
ReLU to SiLU; rotations grow with FLOPs, not parameters.
"""

import numpy as np
import pytest

import repro.orion.nn as on
from repro.autograd import functional as F
from repro.autograd.tensor import Tensor, no_grad
from repro.backend import SimBackend
from repro.ckks.params import paper_parameters
from repro.datasets import DataLoader, cifar_like, mnist_like
from repro.models import (
    AlexNet,
    LeNet5,
    LolaCnn,
    MobileNetV1,
    SecureMlp,
    Vgg16,
    resnet_cifar,
    resnet_imagenet,
    silu_act,
)
from repro.nn import SGD, init
from repro.orion import OrionNetwork

PARAMS = paper_parameters()


def train(net, dataset, epochs=3, lr=0.05, batch=32, seed=0):
    loader = DataLoader(dataset, batch_size=batch, seed=seed)
    opt = SGD(net.parameters(), lr=lr, momentum=0.9)
    net.train()
    for _ in range(epochs):
        for images, labels in loader:
            opt.zero_grad()
            loss = F.cross_entropy(net(Tensor(images)), labels)
            loss.backward()
            opt.step()
    net.eval()


def accuracy(net, images, labels):
    with no_grad():
        logits = net(Tensor(images)).data
    return float((logits.argmax(axis=1) == labels).mean())


def fhe_accuracy(onet, compiled, images, labels, seed=0):
    backend = SimBackend(PARAMS, seed=seed)
    correct = 0
    bits = []
    for i in range(len(images)):
        fhe = compiled.run(backend, images[i])
        clear = onet.forward_cleartext(images[i])
        correct += int(fhe.argmax() == labels[i])
        bits.append(OrionNetwork.precision_bits(fhe, clear))
    return correct / len(images), float(np.mean(bits)), backend


def _row(name, act_name, compiled, clear_acc, fhe_acc, bits):
    return (
        name,
        act_name,
        compiled.total_rotations,
        compiled.multiplicative_depth,
        compiled.num_bootstraps,
        f"{clear_acc:.1%}" if clear_acc is not None else "N/A",
        f"{fhe_acc:.1%}" if fhe_acc is not None else "N/A",
        f"{bits:.1f}" if bits is not None else "N/A",
        f"{compiled.modeled_seconds:.1f}",
    )


HEADER = ("model", "act", "#rots", "depth", "#boots", "clear acc", "FHE acc",
          "prec (b)", "time (s, modeled)")


@pytest.fixture(scope="module")
def results():
    return []


def test_table2_mnist_rows(results, record_table, benchmark):
    data = mnist_like(384, seed=0)
    trainset, testset = data.split(0.8)
    test_imgs = testset.images[:16]
    test_labels = testset.labels[:16]
    configs = [
        ("MLP", lambda: SecureMlp(784, 128)),
        ("LoLA", lambda: LolaCnn(28)),
        ("LeNet-5", lambda: LeNet5(28)),
    ]
    for name, builder in configs:
        init.seed_init(hash(name) % 1000)
        net = builder()
        train(net, trainset, epochs=3)
        onet = OrionNetwork(net, (1, 28, 28))
        onet.fit([trainset.images[:64]])
        compiled = onet.compile(PARAMS)
        clear_acc = accuracy(net, testset.images, testset.labels)
        fhe_acc, bits, _ = fhe_accuracy(onet, compiled, test_imgs, test_labels)
        results.append(_row(name, "x^2", compiled, clear_acc, fhe_acc, bits))
        if name in ("MLP", "LoLA"):
            # Paper: no bootstrapping needed for MNIST networks.  (Our
            # LeNet-5 does not fuse average pools into the adjacent
            # linear layers, so its depth is 11 rather than the paper's
            # 7 and one bootstrap appears; see EXPERIMENTS.md.)
            assert compiled.num_bootstraps == 0
        if name == "MLP":
            assert compiled.multiplicative_depth == 5
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_table2_cifar_rows(results, record_table, benchmark):
    data = cifar_like(384, seed=1)
    trainset, testset = data.split(0.8)
    test_imgs = testset.images[:12]
    test_labels = testset.labels[:12]
    configs = [
        ("ResNet-20 (w8)", lambda a: resnet_cifar(20, act=a, width=8),
         [("ReLU", lambda: on.ReLU(degrees=(15, 15, 27))), ("SiLU", silu_act(127))]),
        ("AlexNet (w16)", lambda a: AlexNet(act=a, width=16),
         [("SiLU", silu_act(127))]),
        ("VGG-16 (w16)", lambda a: Vgg16(act=a, width=16),
         [("SiLU", silu_act(127))]),
    ]
    for name, builder, acts in configs:
        for act_name, act in acts:
            init.seed_init(hash(name + act_name) % 1000)
            net = builder(act)
            train(net, trainset, epochs=2, lr=0.02)
            onet = OrionNetwork(net, (3, 32, 32))
            onet.fit([trainset.images[:64]])
            compiled = onet.compile(PARAMS)
            clear_acc = accuracy(net, testset.images, testset.labels)
            fhe_acc, bits, _ = fhe_accuracy(onet, compiled, test_imgs, test_labels)
            results.append(_row(name, act_name, compiled, clear_acc, fhe_acc, bits))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_table2_large_rows_analysis(results, record_table, benchmark):
    """Tiny ImageNet and ImageNet scale: paper-size architectures in
    analyze mode (the paper itself reports N/A accuracy at this scale)."""
    configs = [
        ("MobileNet-v1", lambda: MobileNetV1(classes=200, act=silu_act(127)), (3, 64, 64)),
        ("ResNet-18", lambda: resnet_imagenet(18, act=silu_act(127), classes=200), (3, 64, 64)),
        ("ResNet-34", lambda: resnet_imagenet(34, act=silu_act(127)), (3, 224, 224)),
        ("ResNet-50", lambda: resnet_imagenet(50, act=silu_act(127)), (3, 224, 224)),
    ]
    for name, builder, shape in configs:
        init.seed_init(hash(name) % 1000)
        net = builder()
        onet = OrionNetwork(net, shape)
        compiled = onet.compile(PARAMS, mode="analyze")
        results.append(_row(f"{name} {shape[1]}px", "SiLU", compiled, None, None, None))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_table2_emit(results, record_table, benchmark):
    record_table("table2_main", "Table 2: main results across networks", HEADER, results)
    # Qualitative checks the paper's table supports:
    by_name = {r[0] + "/" + r[1]: r for r in results}
    relu = by_name.get("ResNet-20 (w8)/ReLU")
    silu = by_name.get("ResNet-20 (w8)/SiLU")
    if relu and silu:
        assert silu[3] < relu[3]  # SiLU halves activation depth
        assert silu[4] <= relu[4]  # and needs fewer bootstraps
    assert len(results) >= 9
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


