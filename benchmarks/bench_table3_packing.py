"""Table 3: rotation counts, Lee et al. [52] vs Orion, paper-scale nets.

Paper: ResNet-20 1382 -> 836 (1.65x), ResNet-110 7622 -> 4676 (1.64x),
VGG-16 9214 -> 1771 (5.20x), AlexNet 9422 -> 1470 (6.41x).  The
reproducible *shape*: Orion wins everywhere, and the advantage grows
with model width because BSGS turns O(f*c) tap/channel rotations into
O(sqrt(f*c)) (paper Section 8.2).
"""

import pytest

from repro.ckks.params import paper_parameters
from repro.core.packing.lee import lee_network_rotations
from repro.models import AlexNet, Vgg16, resnet_cifar, relu_act
from repro.nn import init
from repro.orion import OrionNetwork

PARAMS = paper_parameters()


@pytest.mark.parametrize(
    "name, builder",
    [
        ("ResNet-20", lambda: resnet_cifar(20, act=relu_act())),
        ("ResNet-110", lambda: resnet_cifar(110, act=relu_act())),
        ("VGG-16", lambda: Vgg16(act=relu_act(), width=64)),
        ("AlexNet", lambda: AlexNet(act=relu_act(), width=64)),
    ],
)
def test_table3_network(name, builder, record_table, benchmark, results=[]):
    init.seed_init(0)
    net = builder()
    lee_rots, _ = lee_network_rotations(net, (3, 32, 32), PARAMS.slot_count)
    compiled = OrionNetwork(net, (3, 32, 32)).compile(PARAMS, mode="analyze")
    orion_rots = compiled.total_rotations
    results.append((name, lee_rots, orion_rots, f"{lee_rots / orion_rots:.2f}x"))
    assert orion_rots < lee_rots
    if len(results) == 4:
        record_table(
            "table3_packing",
            "Table 3: ciphertext rotations, Lee et al. vs Orion (paper-scale nets)",
            ("network", "Lee et al.", "Orion (us)", "improvement"),
            results,
        )
        ratios = {row[0]: float(row[3][:-1]) for row in results}
        # The paper's headline shape: the advantage is larger for the
        # wide networks (VGG/AlexNet) than for slim ResNets.
        assert ratios["VGG-16"] > ratios["ResNet-20"]
        assert ratios["AlexNet"] > ratios["ResNet-20"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
