"""Table 4: sources of improvement over Fhelipe [46] on ResNet-20.

Paper: #rots 1428 -> 836 (1.71x), #boots 58 -> 37 (1.58x), conv time
334.5s -> 29.9s (11.2x), end-to-end 1468s -> 618s (2.38x).  The
Fhelipe baseline model reproduces its three documented disadvantages:
no hoisting (each rotation pays a full key switch), lazy bootstrap
placement (Fig. 10 of their paper), and on-the-fly plaintext encoding
during every convolution (paper Section 8.2's discussion).
"""

from repro.backend.costs import CostModel
from repro.ckks.params import paper_parameters
from repro.core.placement.baselines import lazy_placement
from repro.models import resnet_cifar, relu_act
from repro.nn import init
from repro.orion import OrionNetwork

PARAMS = paper_parameters()
COSTS = CostModel(PARAMS)


def _latency_breakdown(chain, placement, costs, hoisting, encode_on_the_fly):
    """Re-price a placement with a given backend strategy."""
    from repro.core.placement.items import PlacementRegion

    def walk(c):
        for item in c.items:
            if isinstance(item, PlacementRegion):
                yield from walk(item.branch_a)
                yield from walk(item.branch_b)
                yield item.join
            else:
                yield item

    items = {item.name: item for item in walk(chain)}
    conv_seconds = 0.0
    act_seconds = 0.0
    boot_seconds = 0.0
    rotations = 0
    for policy in placement.policies:
        item = items[policy.name]
        boot_seconds += policy.bootstrap_before * costs.bootstrap()
        level = policy.exec_level
        stats = getattr(item.cost_obj, "stats", None)
        if stats is not None:
            conv_seconds += stats.cost(level, costs, hoisting=hoisting)
            if encode_on_the_fly:
                conv_seconds += stats.pmults * costs.encode(level)
            rotations += stats.rotations
        else:
            act_seconds += item.cost_fn(level)
    return conv_seconds, act_seconds, boot_seconds, rotations


def test_table4_vs_fhelipe(record_table, benchmark):
    init.seed_init(0)
    net = resnet_cifar(20, act=relu_act())
    compiled = OrionNetwork(net, (3, 32, 32)).compile(PARAMS, mode="analyze")

    boot_cost = COSTS.bootstrap()

    orion_place = compiled.placement
    fhelipe_place = lazy_placement(compiled.chain, PARAMS.effective_level, boot_cost)

    o_conv, o_act, o_boot, o_rots = _latency_breakdown(
        compiled.chain, orion_place, COSTS, hoisting="double", encode_on_the_fly=False
    )
    f_conv, f_act, f_boot, _ = _latency_breakdown(
        compiled.chain, fhelipe_place, COSTS, hoisting="none", encode_on_the_fly=True
    )
    # Fhelipe's diagonal method without BSGS: one rotation per diagonal.
    f_rots = compiled.total_pmults

    o_total = o_conv + o_act + o_boot
    f_total = f_conv + f_act + f_boot
    rows = [
        ("Fhelipe (model)", f_rots, fhelipe_place.num_bootstraps,
         f"{f_conv:.1f}", f"{f_total:.1f}"),
        ("Orion (us)", o_rots, orion_place.num_bootstraps,
         f"{o_conv:.1f}", f"{o_total:.1f}"),
        ("improvement", f"{f_rots / o_rots:.2f}x",
         f"{fhelipe_place.num_bootstraps / max(1, orion_place.num_bootstraps):.2f}x",
         f"{f_conv / o_conv:.2f}x", f"{f_total / o_total:.2f}x"),
    ]
    record_table(
        "table4_fhelipe",
        "Table 4: ResNet-20 improvement over the Fhelipe baseline model",
        ("work", "#rots", "#boots", "convs (s)", "latency (s)"),
        rows,
    )
    assert o_rots < f_rots
    assert orion_place.num_bootstraps <= fhelipe_place.num_bootstraps
    assert o_conv < f_conv / 2  # hoisting + precompute dominate conv time
    assert o_total < f_total
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
