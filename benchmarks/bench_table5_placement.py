"""Table 5: bootstrap placement scalability with network depth.

Paper (paper-scale ResNets, ReLU [15,15,27]): placement takes 1.94s for
ResNet-20 up to 11.0s for ResNet-110 — growing *linearly* with depth —
while bootstrap counts grow from 37 to 217.  This bench reproduces the
shape (linear placement time, linear bootstrap growth) and compares
against the DaCapo-style candidate search (paper: 8x-1270x slower).
"""

import pytest

from repro.backend.costs import CostModel
from repro.ckks.params import paper_parameters
from repro.core.placement.baselines import dacapo_style_placement
from repro.models import resnet_cifar, relu_act
from repro.nn import init
from repro.orion import OrionNetwork

PARAMS = paper_parameters()
DEPTHS = (20, 32, 44, 56, 110)


@pytest.fixture(scope="module")
def compiled_resnets():
    out = {}
    for depth in DEPTHS:
        init.seed_init(depth)
        net = resnet_cifar(depth, act=relu_act())
        out[depth] = OrionNetwork(net, (3, 32, 32)).compile(PARAMS, mode="analyze")
    return out


def test_table5_scalability(compiled_resnets, record_table, benchmark):
    rows = []
    for depth in DEPTHS:
        compiled = compiled_resnets[depth]
        rows.append(
            (
                f"ResNet-{depth}",
                f"{compiled.compile_seconds:.2f}",
                f"{compiled.placement.solve_seconds * 1e3:.1f}",
                compiled.num_bootstraps,
            )
        )
    record_table(
        "table5_placement",
        "Table 5: compile / placement time and bootstrap counts vs depth",
        ("network", "compile (s)", "placement (ms)", "#boots"),
        rows,
    )
    r20 = compiled_resnets[20]
    r110 = compiled_resnets[110]
    # Linear scaling: ResNet-110 has ~5.7x the layers of ResNet-20; the
    # placement time ratio should be in the same regime, not quadratic.
    ratio = r110.placement.solve_seconds / max(r20.placement.solve_seconds, 1e-9)
    assert ratio < 20
    # Bootstrap counts grow roughly linearly with depth (paper 37->217).
    assert 3.0 < r110.num_bootstraps / r20.num_bootstraps < 9.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_table5_dacapo_comparison(compiled_resnets, record_table, benchmark):
    """Our planner matches or beats the DaCapo-style search quality at a
    fraction of the solve time (paper Section 5.2)."""
    rows = []
    for depth in (20, 44):
        compiled = compiled_resnets[depth]
        boot_cost = CostModel(PARAMS).bootstrap()
        dacapo = dacapo_style_placement(
            compiled.chain, PARAMS.effective_level, boot_cost
        )
        speedup = dacapo.solve_seconds / max(compiled.placement.solve_seconds, 1e-9)
        rows.append(
            (
                f"ResNet-{depth}",
                compiled.num_bootstraps,
                dacapo.num_bootstraps,
                f"{compiled.placement.solve_seconds * 1e3:.1f}",
                f"{dacapo.solve_seconds * 1e3:.1f}",
                f"{speedup:.0f}x",
            )
        )
        assert compiled.modeled_seconds <= dacapo.modeled_seconds * 1.001
    record_table(
        "table5_dacapo",
        "Placement quality/time vs a DaCapo-style candidate search",
        ("network", "orion #boots", "dacapo #boots", "orion (ms)", "dacapo (ms)", "dacapo slowdown"),
        rows,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


