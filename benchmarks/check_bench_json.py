#!/usr/bin/env python
"""CI bench-gate: validate the benchmark JSONs and enforce floors.

Runs as a dedicated workflow step (after the quick-mode benchmarks have
merged their medians) so a perf regression fails the build *loudly* on
its own line instead of deep inside a pytest trace:

    python benchmarks/check_bench_json.py [json ...]

With no arguments it checks ``BENCH_ckks_hotpath.json`` (always) and
``BENCH_serving.json`` (when present).  Which sections a file *must*
carry is keyed by its basename, so the hot-path file is not required to
record serving medians and vice versa.

Checks two things:

1. **Schema** — every config carries its parameter fingerprint
   (ring_degree / max_level / ks_alpha / quick) and every recorded
   section has the expected numeric fields (medians > 0, speedups
   finite), so a half-written or hand-mangled JSON cannot pass.
2. **Floors** — every recorded speedup median must clear its floor.
   Floors are quick/full aware (quick CI rings are smaller and
   noisier).  A section missing from a config is fine — only numbers
   that were recorded are gated — but at least one config must carry
   each gated section so the gate cannot be green by running nothing.

Exit code 0 = gate passed; 1 = schema violation or a floor breach.
"""

import json
import math
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_PATH = os.path.join(REPO_ROOT, "BENCH_ckks_hotpath.json")
SERVING_PATH = os.path.join(REPO_ROOT, "BENCH_serving.json")

META_FIELDS = {
    "ring_degree": int,
    "max_level": int,
    "ks_alpha": int,
    "quick": bool,
}

# section -> metric -> (quick_floor, full_floor).  Keep in sync with the
# asserts inside the benchmarks themselves; the gate re-checks the
# *recorded medians* so a regression can't hide behind a stale JSON.
FLOORS = {
    "ops": {
        "rotate_x8_hoisted.speedup": (1.5, 4.0),
        "keyswitch.speedup": (1.2, 1.2),
        "rotate.speedup": (1.2, 1.2),
    },
    "bsgs_matvec": {
        "speedup_fused_vs_unfused": (1.2, 1.5),
        "speedup_fused_vs_none": (1.5, 2.0),
    },
    # Stacked key-switch inner products vs the per-offset loop (both
    # double-hoisted; the stack removes per-offset Python overhead).
    "stacked_keyswitch": {
        "speedup_stacked_vs_loop": (1.15, 1.15),
    },
    "bootstrap_transforms": {
        "speedup_fused_vs_per_rotation": (1.5, 1.5),
        "speedup_fused_vs_bsgs": (1.05, 1.05),
    },
    # End-to-end bootstrap latency: the whole ModRaise -> CoeffToSlot ->
    # EvalMod -> SlotToCoeff pipeline (shared-conjugation + cached
    # constants) vs the pre-sharing fused pipeline.  The 1.1x floor is
    # deliberately identical in quick and full mode: the stage-level
    # gates above cannot see a regression that only shows up end to end
    # (e.g. the conjugation falling back to its standalone key switch).
    "bootstrap_e2e": {
        "speedup_shared_vs_pre_pr": (1.1, 1.1),
    },
    "serving": {
        "speedup_batched_vs_single": (2.0, 2.0),
    },
    # Fleet-scale pool (no speedup floor — single-core CI cannot measure
    # parallel speedup honestly; the section is gated on its correctness
    # flags and latency schema by _check_serving_pool instead).
    "serving_pool": {},
    # Trace-level graph optimizer (concat-linear fusion + rotation
    # passes) end to end on a branchy sibling-conv network vs the
    # un-optimized reference compilation of the same network.
    "graph_opt": {
        "speedup_optimized_vs_unoptimized": (1.2, 1.2),
    },
    # PRG-seeded switching keys: bytes if both RLWE halves were stored
    # vs bytes actually held (b halves + a 32-byte seed).  ~2.0x in
    # practice; 1.8x floor leaves room for metadata growth.
    "tenant_keys": {
        "seed_expansion_shrink": (1.8, 1.8),
    },
}

# section -> metric -> (quick_ceiling, full_ceiling).  The mirror image
# of FLOORS for metrics that must stay *small*: the observability layer
# records its hot-path overhead percentages, and the gate fails if they
# creep above the ceiling.  A value of exactly the ceiling passes.
CEILINGS = {
    # Disabled tracing is gated at 2% where runs are long enough to
    # resolve it; the quick ring's few-ms runs put the A/A noise floor
    # itself near 2%, hence the quick headroom.
    "tracing_overhead": {
        "disabled_overhead_pct": (5.0, 2.0),
        "enabled_overhead_pct": (15.0, 10.0),
    },
    # Tenant density budget: total key bytes (resident + spilled) per
    # tenant must not creep up — it is the denominator of tenants/GB.
    # Measured ~31.7 MB (quick, N=1024) and ~95.6 MB (full, N=2048)
    # with seeded keys; ceilings leave ~1.3x headroom.
    "tenant_keys": {
        "bytes_per_tenant": (42_000_000, 125_000_000),
    },
}

# Which gated sections each benchmark JSON is responsible for carrying
# (in at least one config) — so the gate cannot be green by running
# nothing, without demanding serving medians of the hot-path file.
REQUIRED_SECTIONS = {
    "BENCH_ckks_hotpath.json": (
        "ops",
        "bsgs_matvec",
        "stacked_keyswitch",
        "bootstrap_transforms",
        "bootstrap_e2e",
        "graph_opt",
        "tracing_overhead",
    ),
    "BENCH_serving.json": ("serving", "serving_pool", "tenant_keys"),
}

# Numeric fields every section entry must carry (besides the speedups).
SECTION_MEDIANS = {
    "ops": ("median_ms", "baseline_median_ms"),
    "bsgs_matvec": ("fused_median_ms", "unfused_median_ms", "none_median_ms"),
    "stacked_keyswitch": ("stacked_median_ms", "loop_median_ms"),
    "bootstrap_transforms": (
        "fused_median_ms",
        "bsgs_median_ms",
        "per_rotation_median_ms",
    ),
    "bootstrap_e2e": ("shared_median_ms", "pre_pr_median_ms"),
    "serving": ("single_request_median_ms", "batched_request_median_ms"),
    "serving_pool": ("p50_ms", "p99_ms"),
    "tenant_keys": (
        "resident_bytes",
        "spilled_bytes",
        "bytes_per_tenant",
        "keygen_seconds",
    ),
    "graph_opt": ("optimized_median_ms", "unoptimized_median_ms"),
    # Overhead *percentages* are deliberately absent: a clean run clips
    # them to 0.0, which is a pass, not a schema violation.
    "tracing_overhead": (
        "baseline_median_ms",
        "disabled_median_ms",
        "enabled_median_ms",
    ),
}


def _lookup(section_data, dotted):
    node = section_data
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _check_medians(errors, config_key, section, data):
    entries = data.values() if section == "ops" else [data]
    labels = list(data) if section == "ops" else [section]
    for label, entry in zip(labels, entries):
        if not isinstance(entry, dict):
            errors.append(f"{config_key}/{section}/{label}: not an object")
            continue
        for field in SECTION_MEDIANS[section]:
            value = entry.get(field)
            if not isinstance(value, (int, float)) or not math.isfinite(value) or value <= 0:
                errors.append(
                    f"{config_key}/{section}/{label}.{field}: "
                    f"expected a positive number, got {value!r}"
                )


def _check_serving_pool(errors, config_key, data):
    """Correctness gates for the fleet-pool section: the benchmark must
    have proved bit-exactness and exercised admission control, and the
    latency percentiles must be ordered sanely."""
    prefix = f"{config_key}/serving_pool"
    if data.get("bit_exact_vs_solo") is not True:
        errors.append(
            f"{prefix}.bit_exact_vs_solo: must be true "
            f"(got {data.get('bit_exact_vs_solo')!r}) — pool outputs were "
            "not proven bit-exact against a solo server replay"
        )
    if data.get("mmap_backed") is not True:
        errors.append(
            f"{prefix}.mmap_backed: must be true — a worker served from "
            "copied (non-mmapped) tables"
        )
    workers = data.get("workers")
    if not isinstance(workers, int) or workers < 4:
        errors.append(
            f"{prefix}.workers: expected >= 4, got {workers!r}"
        )
    rate = data.get("reject_rate")
    if not isinstance(rate, (int, float)) or not (0.0 < rate < 1.0):
        errors.append(
            f"{prefix}.reject_rate: expected a rate in (0, 1) — the "
            f"overload burst must produce some (not all) rejects, "
            f"got {rate!r}"
        )
    p50, p99 = data.get("p50_ms"), data.get("p99_ms")
    if (
        isinstance(p50, (int, float))
        and isinstance(p99, (int, float))
        and p99 < p50
    ):
        errors.append(f"{prefix}: p99_ms ({p99}) below p50_ms ({p50})")


def _check_tenant_keys(errors, config_key, data):
    """Correctness gates for the tenant-density section: spill-to-disk
    must actually have happened, and a promoted (spilled then reloaded)
    tenant must have been proven bit-exact against one that never
    spilled — keys *and* encryption randomness stream."""
    prefix = f"{config_key}/tenant_keys"
    if data.get("spill_promote_bit_exact") is not True:
        errors.append(
            f"{prefix}.spill_promote_bit_exact: must be true "
            f"(got {data.get('spill_promote_bit_exact')!r}) — a promoted "
            "tenant was not proven bit-exact against a never-spilled one"
        )
    tenants = data.get("tenants")
    if not isinstance(tenants, int) or tenants < 4:
        errors.append(f"{prefix}.tenants: expected >= 4, got {tenants!r}")
    spilled = data.get("spilled_tenants")
    if not isinstance(spilled, int) or spilled < 1:
        errors.append(
            f"{prefix}.spilled_tenants: expected >= 1 — the benchmark "
            f"never exercised the spill path, got {spilled!r}"
        )


def check(path):
    errors = []
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    configs = data.get("configs")
    if not isinstance(configs, dict) or not configs:
        return [f"{path}: no 'configs' object"]

    seen_sections = set()
    for config_key, config in sorted(configs.items()):
        if not isinstance(config, dict):
            errors.append(f"{config_key}: not an object")
            continue
        for field, kind in META_FIELDS.items():
            if not isinstance(config.get(field), kind):
                errors.append(
                    f"{config_key}.{field}: expected {kind.__name__}, "
                    f"got {config.get(field)!r}"
                )
        quick = bool(config.get("quick"))
        for section, metrics in FLOORS.items():
            section_data = config.get(section)
            if section_data is None:
                continue
            seen_sections.add(section)
            _check_medians(errors, config_key, section, section_data)
            if section == "serving_pool":
                _check_serving_pool(errors, config_key, section_data)
            if section == "tenant_keys":
                _check_tenant_keys(errors, config_key, section_data)
            for dotted, (quick_floor, full_floor) in metrics.items():
                floor = quick_floor if quick else full_floor
                value = _lookup(section_data, dotted)
                if value is None:
                    errors.append(
                        f"{config_key}/{section}.{dotted}: missing (floor {floor}x)"
                    )
                elif not isinstance(value, (int, float)) or not math.isfinite(value):
                    errors.append(
                        f"{config_key}/{section}.{dotted}: not a number: {value!r}"
                    )
                elif value < floor:
                    errors.append(
                        f"PERF REGRESSION {config_key}/{section}.{dotted}: "
                        f"{value}x is below the {floor}x floor"
                    )
        for section, metrics in CEILINGS.items():
            section_data = config.get(section)
            if section_data is None:
                continue
            seen_sections.add(section)
            if section not in FLOORS:  # avoid double-reporting medians
                _check_medians(errors, config_key, section, section_data)
            for dotted, (quick_ceiling, full_ceiling) in metrics.items():
                ceiling = quick_ceiling if quick else full_ceiling
                value = _lookup(section_data, dotted)
                if value is None:
                    errors.append(
                        f"{config_key}/{section}.{dotted}: missing "
                        f"(ceiling {ceiling})"
                    )
                elif not isinstance(value, (int, float)) or not math.isfinite(value):
                    errors.append(
                        f"{config_key}/{section}.{dotted}: not a number: {value!r}"
                    )
                elif value > ceiling:
                    errors.append(
                        f"PERF REGRESSION {config_key}/{section}.{dotted}: "
                        f"{value} is above the {ceiling} ceiling"
                    )
    required = REQUIRED_SECTIONS.get(os.path.basename(path), tuple(FLOORS) + tuple(CEILINGS))
    for section in required:
        if section not in seen_sections:
            errors.append(
                f"no config records section '{section}' — the benchmark that "
                "produces it did not run"
            )
    return errors


def main(argv):
    if len(argv) > 1:
        paths = argv[1:]
    else:
        paths = [DEFAULT_PATH]
        if os.path.exists(SERVING_PATH):
            paths.append(SERVING_PATH)
    failed = False
    for path in paths:
        errors = check(path)
        if errors:
            failed = True
            print(f"bench-gate FAILED for {path}:")
            for error in errors:
                print(f"  - {error}")
            continue
        with open(path) as f:
            num_configs = len(json.load(f)["configs"])
        print(f"bench-gate OK: {num_configs} configs in {path} clear all floors")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
