"""Shared benchmark helpers: result recording for EXPERIMENTS.md."""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_table(name: str, title: str, header, rows) -> str:
    """Persist a result table under benchmarks/results/ and return it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]

    def fmt(row):
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))

    lines = [title, fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    text = "\n".join(lines) + "\n"
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text)
    print("\n" + text)
    return text


@pytest.fixture(scope="session")
def record_table():
    return write_table
