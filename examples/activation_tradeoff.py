"""The activation trade-off of paper Section 8.2: ReLU vs SiLU.

ReLU must be approximated by a composite minimax sign polynomial
(degrees [15, 15, 27]) that burns roughly twice the multiplicative
depth of a single degree-127 Chebyshev SiLU.  Fewer levels per
activation mean fewer bootstraps and a faster network — at a small
accuracy cost (the paper measures ~2.1% cleartext accuracy drop for a
1.77x average speedup).

This example compiles the same ResNet-20 under both activations at
paper-scale parameters and prints the depth / bootstrap / latency
comparison, then validates both numerically on the simulation backend
with a small trained variant.

Run:  python examples/activation_tradeoff.py
"""

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.backend import SimBackend
from repro.ckks.params import paper_parameters
from repro.datasets import cifar_like
from repro.models import relu_act, resnet_cifar, silu_act
from repro.nn import SGD, init
from repro.orion import OrionNetwork


def compare_paper_scale():
    """Compile full ResNet-20 both ways; report the structural trade."""
    params = paper_parameters()
    print(f"Paper-scale comparison on {params}")
    print(f"{'activation':<12}{'depth':>7}{'#boots':>8}{'modeled (s)':>13}")
    results = {}
    for name, act in (("ReLU", relu_act()), ("SiLU", silu_act())):
        init.seed_init(0)
        net = resnet_cifar(20, act=act)
        compiled = OrionNetwork(net, (3, 32, 32)).compile(params, mode="analyze")
        results[name] = compiled
        print(
            f"{name:<12}{compiled.multiplicative_depth:>7}"
            f"{compiled.num_bootstraps:>8}{compiled.modeled_seconds:>13.0f}"
        )
    speedup = results["ReLU"].modeled_seconds / results["SiLU"].modeled_seconds
    print(f"SiLU speedup: {speedup:.2f}x (paper reports 1.77x average)\n")


def validate_numerically():
    """Train a narrow ResNet and check FHE outputs match cleartext."""
    print("Numerical validation on the simulation backend (width-8 net):")
    data = cifar_like(192, seed=1)
    train_x, train_y = data.images[:160], data.labels[:160]
    test_x = data.images[160:]
    params = paper_parameters()
    for name, act in (("ReLU", relu_act()), ("SiLU", silu_act())):
        init.seed_init(2)
        net = resnet_cifar(8, act=act, width=8)
        opt = SGD(net.parameters(), lr=0.02, momentum=0.9)
        for _ in range(3):
            for s in range(0, 160, 32):
                opt.zero_grad()
                loss = F.cross_entropy(
                    net(Tensor(train_x[s : s + 32])), train_y[s : s + 32]
                )
                loss.backward()
                opt.step()
        net.eval()
        onet = OrionNetwork(net, (3, 32, 32))
        onet.fit([train_x[:64]])
        compiled = onet.compile(params)
        backend = SimBackend(params, seed=3)
        encrypted = compiled.run(backend, test_x[0])
        clear = onet.forward_cleartext(test_x[0])
        bits = OrionNetwork.precision_bits(encrypted, clear)
        agree = encrypted.argmax() == clear.argmax()
        print(
            f"  {name:<6} precision {bits:5.1f} bits, "
            f"predictions {'agree' if agree else 'DISAGREE'}"
        )


def main():
    compare_paper_scale()
    validate_numerically()


if __name__ == "__main__":
    main()
