"""A tour of automatic bootstrap placement (paper Section 5, Figure 6).

Reconstructs the paper's Figure 6 scenarios and then shows the planner
against lazy and DaCapo-style baselines on a residual network — the
level management policy is printed layer by layer.

Run:  python examples/bootstrap_placement_tour.py
"""

from repro.backend.costs import CostModel
from repro.ckks.params import paper_parameters
from repro.core.placement import (
    JoinSpec,
    LayerSpec,
    PlacementChain,
    PlacementRegion,
    dacapo_style_placement,
    lazy_placement,
    solve_placement,
)
from repro.models import resnet_cifar, silu_act
from repro.nn import init
from repro.orion import OrionNetwork

PARAMS = paper_parameters()
COSTS = CostModel(PARAMS)


def figure6():
    print("=== Paper Figure 6 ===")
    cost = lambda level: 1.0 + 0.1 * level
    chain = PlacementChain([LayerSpec(f"fc{i}", 1, cost) for i in (1, 2, 3)])
    result = solve_placement(chain, l_eff=3, boot_cost=100.0)
    print(f"(a) skip-less 3-layer MLP, L_eff=3: {result.num_bootstraps} bootstraps "
          f"(paper: 0); levels {[p.exec_level for p in result.policies]}")

    backbone = PlacementChain(
        [LayerSpec("fc1", 1, cost), LayerSpec("fc2", 1, cost), LayerSpec("ax^2", 1, cost)]
    )
    region = PlacementRegion(
        backbone, PlacementChain(), JoinSpec("add", 0, lambda l: 0.0, boot_units=2)
    )
    result = solve_placement(
        PlacementChain([region, LayerSpec("fc3", 1, cost)]), l_eff=3, boot_cost=100.0
    )
    print(f"(c) residual variant: {result.num_bootstraps} bootstrap(s) (paper: >= 1)")
    for policy in result.policies:
        marker = f"  <-- bootstrap x{policy.bootstrap_before}" if policy.bootstrap_before else ""
        print(f"      {policy.name:6s} @ level {policy.exec_level}{marker}")


def resnet_policies():
    print("\n=== ResNet-20 (SiLU) level management policy ===")
    init.seed_init(0)
    net = resnet_cifar(20, act=silu_act(127))
    compiled = OrionNetwork(net, (3, 32, 32)).compile(PARAMS, mode="analyze")
    boot_cost = COSTS.bootstrap()
    lazy = lazy_placement(compiled.chain, PARAMS.effective_level, boot_cost)
    dacapo = dacapo_style_placement(compiled.chain, PARAMS.effective_level, boot_cost)
    print(f"  planner:      {compiled.num_bootstraps} boots, "
          f"{compiled.modeled_seconds:.0f}s modeled, "
          f"solved in {compiled.placement.solve_seconds * 1e3:.1f} ms")
    print(f"  lazy:         {lazy.num_bootstraps} boots, {lazy.modeled_seconds:.0f}s")
    print(f"  DaCapo-style: {dacapo.num_bootstraps} boots, {dacapo.modeled_seconds:.0f}s, "
          f"solved in {dacapo.solve_seconds * 1e3:.0f} ms")
    print("  first bootstrap sites (planner):")
    shown = 0
    for policy in compiled.placement.policies:
        if policy.bootstrap_before and shown < 5:
            print(f"    before {policy.name} (runs at level {policy.exec_level})")
            shown += 1


if __name__ == "__main__":
    figure6()
    resnet_policies()
