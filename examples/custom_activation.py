"""Extending orion.nn with a custom activation (paper Section 6).

"The user need only extend the base orion.nn module, inheriting support
for range estimation and polynomial evaluation, and provide an
activation function to approximate with a specified degree."

This example builds a small CNN around two custom activations — GELU
and Mish — via ``on.Activation``, trains it with the ordinary autograd
loop (the numeric-derivative fallback keeps custom activations
trainable), and runs a genuinely encrypted inference on the exact toy
backend to show the whole pipeline (range fit, Chebyshev approximation,
packing, scale management) carries over untouched.

Run:  python examples/custom_activation.py
"""

import numpy as np
from scipy.special import erf

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.backend import ToyBackend
from repro.ckks.params import toy_parameters
from repro.datasets import mnist_like
from repro.nn import SGD, init
from repro.orion import OrionNetwork
from repro.orion import nn as on


def gelu(x):
    return 0.5 * x * (1.0 + erf(np.asarray(x) / np.sqrt(2.0)))


def mish(x):
    x = np.asarray(x)
    return x * np.tanh(np.log1p(np.exp(np.clip(x, -30, 30))))


class CustomActNet(on.Module):
    """A LoLA-style CNN whose nonlinearities are user-supplied."""

    def __init__(self, image_size: int = 16):
        super().__init__()
        self.conv = on.Conv2d(1, 4, 3, stride=2, padding=1)
        self.act1 = on.Activation(gelu, degree=31, name="gelu")
        self.flatten = on.Flatten()
        hidden = 4 * (image_size // 2) ** 2
        self.fc1 = on.Linear(hidden, 32)
        self.act2 = on.Activation(mish, degree=31, name="mish")
        self.fc2 = on.Linear(32, 10)

    def forward(self, x):
        out = self.act1(self.conv(x))
        out = self.act2(self.fc1(self.flatten(out)))
        return self.fc2(out)


def main():
    init.seed_init(4)
    net = CustomActNet()

    print("Training with GELU/Mish (numeric-derivative fallback) ...")
    data = mnist_like(256, seed=4)
    images = data.images[:, :, 6:22, 6:22]
    train_x, test_x = images[:200], images[200:]
    train_y, test_y = data.labels[:200], data.labels[200:]
    opt = SGD(net.parameters(), lr=0.05, momentum=0.9)
    for epoch in range(4):
        for s in range(0, 200, 32):
            opt.zero_grad()
            loss = F.cross_entropy(net(Tensor(train_x[s : s + 32])), train_y[s : s + 32])
            loss.backward()
            opt.step()
        print(f"  epoch {epoch}: loss {loss.item():.3f}")
    net.eval()

    print("Compiling (range fit + degree-31 Chebyshev per activation) ...")
    onet = OrionNetwork(net, (1, 16, 16))
    onet.fit([train_x[:64]])
    params = toy_parameters(ring_degree=2048, max_level=14, boot_levels=3)
    compiled = onet.compile(params)
    print(f"  {compiled.summary()}")

    print("Encrypted inference on the exact RNS-CKKS toy backend ...")
    backend = ToyBackend(params, seed=5)
    agree = 0
    bits = []
    for i in range(4):
        fhe = compiled.run(backend, test_x[i])
        clear = onet.forward_cleartext(test_x[i])
        agree += int(fhe.argmax() == clear.argmax())
        bits.append(OrionNetwork.precision_bits(fhe, clear))
    print(
        f"  encrypted vs cleartext predictions agree on {agree}/4 images; "
        f"mean output precision {np.mean(bits):.1f} bits"
    )


if __name__ == "__main__":
    main()
