"""Encrypted self-attention: running the paper's future-work layer.

The paper's conclusion: "our high-level Python interface allows other
researchers to extend Orion to support new network layer types such as
self-attention."  This example does exactly that — a single-head
scaled dot-product attention over encrypted token embeddings, with the
softmax replaced by its FHE-friendly polynomial form (Chebyshev exp +
bounded-interval Chebyshev reciprocal; CKKS has no division).

Every score is a genuine ciphertext-ciphertext inner product and every
mixing weight a genuine encrypted multiplication; only the projection
weights are cleartext (the paper's threat model).

Run:  python examples/encrypted_attention.py
"""

import math

import numpy as np

from repro.backend import SimBackend
from repro.ckks.params import paper_parameters
from repro.core.attention import AttentionConfig, EncryptedAttention


def main():
    params = paper_parameters(max_level=24)
    backend = SimBackend(params, seed=0)
    rng = np.random.default_rng(7)

    seq_len, dim = 4, 16
    print(f"Single-head attention: {seq_len} tokens, embedding dim {dim}")
    print(f"Parameters: {params}\n")

    tokens = rng.uniform(-0.5, 0.5, (seq_len, dim))
    wq, wk, wv = (rng.normal(size=(dim, dim)) / math.sqrt(dim) for _ in range(3))
    attention = EncryptedAttention(
        backend, wq, wk, wv, AttentionConfig(exp_range=1.0, exp_degree=15)
    )

    print("Encrypting one ciphertext per token ...")
    cts = [backend.encode_encrypt(t, level=params.max_level) for t in tokens]

    print("Attending under encryption (projections, QK^T scores, polynomial")
    print("softmax, value mixing — all on ciphertexts) ...")
    outputs = attention(cts)

    got = np.stack([backend.decrypt(o)[:dim] for o in outputs])
    exact = attention.reference(tokens)
    poly = attention.polynomial_reference(tokens)

    err_poly = np.abs(got - poly).max()
    err_true = np.abs(got - exact).max()
    print(f"\nmax |encrypted - polynomial softmax| : {err_poly:.2e}")
    print(f"max |encrypted - true softmax|       : {err_true:.2e}")
    print(f"output precision vs true softmax     : "
          f"{-math.log2(np.abs(got - exact).mean()):.1f} bits")

    consumed = params.max_level - backend.level_of(outputs[0])
    counts = backend.ledger.counts
    print(f"\nlevels consumed: {consumed} of {params.max_level}")
    print(f"work: {counts['hrot']} rotations, {counts['hmult']} ct-ct mults, "
          f"{counts['pmult']} pt-ct mults "
          f"({backend.ledger.seconds:.1f}s modeled)")

    print("\nFirst output row, encrypted vs true softmax:")
    np.set_printoptions(precision=4, suppress=True)
    print("  enc :", got[0][:8])
    print("  true:", exact[0][:8])


if __name__ == "__main__":
    main()
