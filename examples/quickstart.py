"""Quickstart: encrypted inference in ~40 lines (paper Listing 1 style).

Builds a LoLA-style CNN with orion.nn modules, trains it on the
synthetic MNIST stand-in, compiles it to an FHE program, and runs a
real encrypted inference on the *exact* RNS-CKKS toy backend — every
rotation and rescale below is genuine lattice arithmetic.

Run:  python examples/quickstart.py
"""

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.backend import ToyBackend
from repro.ckks.params import toy_parameters
from repro.datasets import mnist_like
from repro.models import LolaCnn
from repro.nn import SGD, init
from repro.orion import OrionNetwork


def main():
    init.seed_init(0)
    net = LolaCnn(image_size=16, channels=3)

    print("Training on the synthetic MNIST stand-in ...")
    data = mnist_like(256, seed=0)
    # The toy backend packs a 16x16 crop (256 slots per image).
    images = data.images[:, :, 6:22, 6:22]
    train_imgs, test_imgs = images[:200], images[200:]
    train_labels, test_labels = data.labels[:200], data.labels[200:]
    opt = SGD(net.parameters(), lr=0.05, momentum=0.9)
    for epoch in range(4):
        for start in range(0, 200, 32):
            opt.zero_grad()
            loss = F.cross_entropy(
                net(Tensor(train_imgs[start : start + 32])),
                train_labels[start : start + 32],
            )
            loss.backward()
            opt.step()
        print(f"  epoch {epoch}: loss {loss.item():.3f}")
    net.eval()

    print("Compiling to an FHE program (pack + approximate + place) ...")
    onet = OrionNetwork(net, (1, 16, 16))
    onet.fit([train_imgs[:64]])
    params = toy_parameters(ring_degree=2048, max_level=6, boot_levels=1)
    compiled = onet.compile(params)
    print(f"  {compiled.summary()}")

    print("Running one *exact* encrypted inference (real RNS-CKKS) ...")
    backend = ToyBackend(params, seed=1)
    image = test_imgs[0]
    encrypted_logits = compiled.run(backend, image)
    clear_logits = onet.forward_cleartext(image)
    bits = OrionNetwork.precision_bits(encrypted_logits, clear_logits)
    print(f"  cleartext prediction: {clear_logits.argmax()}"
          f"   encrypted prediction: {encrypted_logits.argmax()}")
    print(f"  agreement: {bits:.1f} bits; ops: {backend.ledger}")


if __name__ == "__main__":
    main()
