"""Walking through real CKKS bootstrapping, stage by stage.

The compiler treats bootstrap as a primitive with a contract: level
reset to L_eff, L_boot levels consumed, bounded error.  This example
runs the actual pipeline behind that contract on the exact toy
arithmetic — ModRaise, CoeffToSlot, EvalMod, SlotToCoeff — printing
what each stage does to the ciphertext, then uses the refreshed
ciphertext for further computation to demonstrate the "fully" in FHE.

Run:  python examples/real_bootstrap.py
"""

from fractions import Fraction

import numpy as np

from repro.backend import ToyBackend
from repro.ckks.params import bootstrap_parameters


def precision_bits(got, want):
    return float(-np.log2(max(np.abs(got - want).mean(), 1e-300)))


def main():
    params = bootstrap_parameters()
    print(f"Parameters: {params}")
    print(f"  sparse ternary secret, Hamming weight {params.secret_hamming_weight}")
    backend = ToyBackend(params, seed=0, real_bootstrap=True)
    pipeline = backend._bootstrapper
    context = backend.context

    message = np.random.default_rng(42).uniform(-0.9, 0.9, params.slot_count)
    ct = backend.encode_encrypt(message, level=0)
    print(f"\nFresh ciphertext at level {ct.level}: multiplicative budget exhausted.")

    print("\n[1] ModRaise: lift coefficients from Z_q0 to the full chain")
    raised = context.mod_raise(ct, Fraction(pipeline.q0) * pipeline.window)
    print(f"    level {ct.level} -> {raised.level}; payload is now u + q0*I "
          f"with |I| <= {pipeline.window - 1}")

    raised = pipeline._prescale(raised)
    print("    (+ one exact power-of-two prescale level for matrix precision)")

    print("\n[2] CoeffToSlot: two BSGS matvecs + conjugation move coefficients "
          "into slots")
    lo, hi = pipeline.coeff_to_slot(raised)
    print(f"    level {raised.level} -> {backend.level_of(lo)}; two ciphertexts "
          f"holding the {params.ring_degree} coefficients")

    print("\n[3] EvalMod: scaled-sine Chebyshev (degree "
          f"{pipeline.evalmod_poly.degree}) removes the q0*I overflow")
    lo, hi = pipeline.eval_mod(lo), pipeline.eval_mod(hi)
    print(f"    -> level {backend.level_of(lo)}")

    print("\n[4] SlotToCoeff: the forward transform returns them home")
    fresh = pipeline.slot_to_coeff(lo, hi)
    fresh = backend.level_down(fresh, params.effective_level)
    got = backend.decrypt(fresh)
    print(f"    -> level {fresh.level} = L_eff, scale back to exactly Delta: "
          f"{fresh.scale == Fraction(params.scale)}")
    print(f"\nRefreshed precision: {precision_bits(got, message):.1f} bits "
          f"(max err {np.abs(got - message).max():.2e})")

    print("\nSpending the new budget: squaring the refreshed ciphertext ...")
    squared = backend.rescale(backend.mul(fresh, fresh))
    sq_bits = precision_bits(backend.decrypt(squared), message**2)
    print(f"  x^2 at level {backend.level_of(squared)}, "
          f"precision {sq_bits:.1f} bits")
    counts = backend.ledger.counts
    print(f"\nWork performed: {counts['hrot'] + counts['hrot_hoisted']} rotations, "
          f"{counts['hmult']} ct-ct multiplies, {counts['pmult']} pt-ct multiplies")


if __name__ == "__main__":
    main()
