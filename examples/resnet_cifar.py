"""CIFAR-scale ResNet under FHE: the paper's flagship benchmark flow.

Trains a width-scaled ResNet-20 on the synthetic CIFAR stand-in with
SiLU activations (the paper's latency-friendly choice, Section 8.2),
compiles it — batch-norm folding, range estimation, single-shot
multiplexed packing, automatic bootstrap placement — and evaluates
encrypted accuracy against cleartext accuracy on the simulation
backend.

Run:  python examples/resnet_cifar.py
"""

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor, no_grad
from repro.backend import SimBackend
from repro.ckks.params import paper_parameters
from repro.datasets import DataLoader, cifar_like
from repro.models import resnet_cifar, silu_act
from repro.nn import SGD, init
from repro.orion import OrionNetwork


def main():
    init.seed_init(7)
    net = resnet_cifar(20, act=silu_act(127), width=8)

    print("Training ResNet-20 (width 8, SiLU) on synthetic CIFAR ...")
    data = cifar_like(384, seed=7)
    train, test = data.split(0.8)
    loader = DataLoader(train, batch_size=32, seed=0)
    opt = SGD(net.parameters(), lr=0.02, momentum=0.9)
    for epoch in range(3):
        for images, labels in loader:
            opt.zero_grad()
            loss = F.cross_entropy(net(Tensor(images)), labels)
            loss.backward()
            opt.step()
        print(f"  epoch {epoch}: loss {loss.item():.3f}")
    net.eval()
    with no_grad():
        logits = net(Tensor(test.images)).data
    clear_acc = (logits.argmax(axis=1) == test.labels).mean()
    print(f"  cleartext test accuracy: {clear_acc:.1%}")

    print("Compiling for FHE (N=2^16, L_eff=10) ...")
    onet = OrionNetwork(net, (3, 32, 32))
    onet.fit([train.images[:64]])
    compiled = onet.compile(paper_parameters())
    s = compiled.summary()
    print(f"  rotations={s['rotations']}  depth={s['depth']}  "
          f"bootstraps={s['bootstraps']}  modeled latency={s['modeled_seconds']:.0f}s")

    print("Encrypted inference on 10 test images (simulation backend) ...")
    backend = SimBackend(paper_parameters(), seed=1)
    correct = 0
    bits = []
    for i in range(10):
        fhe = compiled.run(backend, test.images[i])
        clear = onet.forward_cleartext(test.images[i])
        correct += int(fhe.argmax() == test.labels[i])
        bits.append(OrionNetwork.precision_bits(fhe, clear))
    print(f"  FHE accuracy: {correct}/10   mean output precision: "
          f"{np.mean(bits):.1f} bits")
    print(f"  ops: {backend.ledger}")


if __name__ == "__main__":
    main()
