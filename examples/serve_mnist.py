"""Serving walkthrough: compile once, export, open a pool, slot-batch.

The full compile-once / serve-many story of docs/serving.md in one
script, through the fleet front door (``repro.serve.open``):

1. fit + compile an MNIST MLP and **export** it to a serving artifact
   (uncompressed, so workers can map the tables in place);
2. **open** a 2-worker pool over the artifact (zero compiler
   invocations — asserted; the weight tables are mmapped, shared by
   every worker, never copied);
3. serve four clients **sequentially**, then the same four **batched**
   through the pool's slot-batching workers, verifying per-client
   outputs match;
4. print the typed, schema-versioned pool telemetry.

Run:  python examples/serve_mnist.py
"""

import os
import tempfile
import time

import numpy as np

from repro import serve
from repro.ckks.params import toy_parameters
from repro.core.compiler import OrionCompiler
from repro.models import SecureMlp
from repro.nn import init
from repro.orion import OrionNetwork


def main():
    rng = np.random.default_rng(0)

    # -- offline: compile once, export the artifact ---------------------
    init.seed_init(0)
    onet = OrionNetwork(SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
    onet.fit([rng.normal(0, 0.5, (8, 1, 8, 8))])
    params = toy_parameters(
        ring_degree=2048, max_level=6, boot_levels=1, scale_bits=24
    )
    path = os.path.join(tempfile.mkdtemp(), "mnist_mlp.npz")
    print("Compiling and exporting the serving artifact ...")
    onet.export(path, params)
    print(f"  wrote {path} ({os.path.getsize(path) // 1024} KiB)")

    # -- online: open a pool over the artifact (no compiler, ever) ------
    compilations = OrionCompiler.invocations
    config = serve.ServerConfig(
        workers=2, batch_window_seconds=0.0, max_queue_depth=8
    )
    with serve.open(path, config) as server:
        artifact_id = server.artifact_ids[0]
        print(
            f"  pool of {server.workers} workers serving {artifact_id!r}; "
            "tables mmapped in place, shared by every worker"
        )
        server.warm(batch_sizes=(1, 4))

        images = [rng.normal(0, 0.5, (1, 8, 8)) for _ in range(4)]
        reference = [
            serve.ArtifactMap(path).load().program.run_cleartext_packed(im)
            for im in images
        ]

        # -- sequential serving -----------------------------------------
        start = time.perf_counter()
        for index, image in enumerate(images):
            result = server.serve_now(image, client_id=f"client-{index}")
            bits = OrionNetwork.precision_bits(result.output, reference[index])
            print(
                f"  sequential client-{index}: {bits:.1f} bits of precision "
                f"(worker {result.worker_id})"
            )
        sequential_s = time.perf_counter() - start

        # -- slot-batched serving: clients coalesce per worker ----------
        start = time.perf_counter()
        tickets = {
            server.submit(image, client_id=f"client-{index}", now=0.0): index
            for index, image in enumerate(images)
        }
        results = server.step(now=1e9)
        batched_s = time.perf_counter() - start
        for result in results:
            index = tickets[result.ticket]
            bits = OrionNetwork.precision_bits(result.output, reference[index])
            print(
                f"  batched    client-{index}: {bits:.1f} bits "
                f"(worker {result.worker_id}, batch of {result.batch_size})"
            )

        print(
            f"\n4 requests: sequential {sequential_s:.2f}s, "
            f"slot-batched {batched_s:.2f}s "
            f"({sequential_s / batched_s:.1f}x requests/sec)"
        )
        assert OrionCompiler.invocations == compilations, "serve path compiled!"
        print("serve path compiled nothing (as promised)")

        stats = server.stats()
        total_batches = sum(w.batches_run for w in stats.workers)
        p50 = max(w.request_latency.p50_seconds for w in stats.workers)
        modeled = sum(w.modeled_seconds for w in stats.workers)
        print(
            f"telemetry (schema v{stats.schema_version}): "
            f"{stats.requests_completed} requests in {total_batches} runs "
            f"across {len(stats.workers)} workers, request p50 "
            f"{p50 * 1e3:.0f} ms, modeled {modeled:.1f}s of FHE work, "
            f"mmap-backed={all(w.mmap_backed for w in stats.workers)}"
        )


if __name__ == "__main__":
    main()
