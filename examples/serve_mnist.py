"""Serving walkthrough: compile once, export, load, slot-batch requests.

The full compile-once / serve-many story of docs/serving.md in one
script:

1. fit + compile an MNIST MLP and **export** it to a serving artifact;
2. **load** the artifact in a "worker" (zero compiler invocations —
   asserted) and build key material from the artifact's key manifest;
3. serve four clients **sequentially**, then the same four **batched
   into one ciphertext**, verifying per-client outputs match;
4. print the serving telemetry.

Run:  python examples/serve_mnist.py
"""

import os
import tempfile
import time

import numpy as np

from repro.ckks.params import toy_parameters
from repro.core.compiler import OrionCompiler
from repro.models import SecureMlp
from repro.nn import init
from repro.orion import OrionNetwork
from repro.serve import InferenceServer, KeyRegistry, load_artifact


def main():
    rng = np.random.default_rng(0)

    # -- offline: compile once, export the artifact ---------------------
    init.seed_init(0)
    onet = OrionNetwork(SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
    onet.fit([rng.normal(0, 0.5, (8, 1, 8, 8))])
    params = toy_parameters(
        ring_degree=2048, max_level=6, boot_levels=1, scale_bits=24
    )
    path = os.path.join(tempfile.mkdtemp(), "mnist_mlp.npz")
    print("Compiling and exporting the serving artifact ...")
    onet.export(path, params)
    print(f"  wrote {path} ({os.path.getsize(path) // 1024} KiB)")

    # -- online: a worker loads the artifact (no compiler, ever) --------
    compilations = OrionCompiler.invocations
    artifact = load_artifact(path)
    print(
        f"  loaded: depth {artifact.summary['depth']:.0f}, "
        f"{len(artifact.manifest.rotation_steps)} rotation keys in the "
        f"manifest, slot-batch capacity {artifact.slot_batch_capacity()}"
    )

    # Key material comes from the manifest — exactly what's needed.
    registry = KeyRegistry(artifact.manifest)
    backend = registry.backend_for("tenant-a")
    server = InferenceServer(artifact, backend, max_wait_seconds=0.0)
    server.warm(batch_sizes=(1, 4))
    print(f"  preloaded {server.preloaded_plaintexts} weight plaintexts")

    images = [rng.normal(0, 0.5, (1, 8, 8)) for _ in range(4)]
    reference = [artifact.program.run_cleartext_packed(im) for im in images]

    # -- sequential serving ---------------------------------------------
    start = time.perf_counter()
    for index, image in enumerate(images):
        result = server.serve_now(image, client_id=f"client-{index}")
        bits = OrionNetwork.precision_bits(result.output, reference[index])
        print(f"  sequential client-{index}: {bits:.1f} bits of precision")
    sequential_s = time.perf_counter() - start

    # -- slot-batched serving: 4 clients, ONE ciphertext ----------------
    start = time.perf_counter()
    tickets = {
        server.submit(image, client_id=f"client-{index}", now=0.0): index
        for index, image in enumerate(images)
    }
    results = server.step(now=1e9)
    batched_s = time.perf_counter() - start
    for result in results:
        index = tickets[result.ticket]
        bits = OrionNetwork.precision_bits(result.output, reference[index])
        print(
            f"  batched    client-{index}: {bits:.1f} bits "
            f"(batch of {result.batch_size})"
        )

    print(
        f"\n4 requests: sequential {sequential_s:.2f}s, "
        f"slot-batched {batched_s:.2f}s "
        f"({sequential_s / batched_s:.1f}x requests/sec)"
    )
    assert OrionCompiler.invocations == compilations, "serve path compiled!"
    print("serve path compiled nothing (as promised)")

    stats = server.stats()
    print(
        f"telemetry: {stats['requests_served']} requests in "
        f"{stats['batches_run']} runs, request p50 "
        f"{stats['request_latency']['p50_seconds'] * 1e3:.0f} ms, "
        f"modeled {stats['modeled_seconds']:.1f}s of FHE work"
    )


if __name__ == "__main__":
    main()
