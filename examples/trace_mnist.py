"""Observability walkthrough: trace a pool-served MNIST batch.

The repro.obs story of docs/observability.md in one script:

1. compile + export an MNIST MLP serving artifact (as in
   ``examples/serve_mnist.py``);
2. open a **2-worker pool with tracing on** — each worker carries its
   own :class:`repro.obs.Tracer` and noise monitor;
3. slot-batch four client requests through the pool;
4. print the span tree each worker recorded (``serve.batch`` with
   encrypt / execute / decrypt children, per-layer ciphertext levels,
   FHE op counts) and the noise-budget telemetry;
5. write ``trace.json`` — load it at https://ui.perfetto.dev (or
   ``chrome://tracing``) to see one timeline track per worker;
6. dump the Prometheus text exposition of the pool metrics.

Run:  python examples/trace_mnist.py [trace.json]
"""

import os
import sys
import tempfile

import numpy as np

from repro import serve
from repro.ckks.params import toy_parameters
from repro.models import SecureMlp
from repro.nn import init
from repro.orion import OrionNetwork


def print_span(span, indent="  "):
    duration_ms = (span["end"] - span["start"]) * 1e3
    ops = sum(span.get("ops", {}).values())
    attrs = span.get("attrs", {})
    level = attrs.get("level_out", attrs.get("level_in"))
    detail = f" level={level}" if level is not None else ""
    print(
        f"{indent}{span['name']:<24} {duration_ms:7.1f} ms"
        f"  {ops:4d} ops{detail}"
    )
    for child in span.get("children", []):
        print_span(child, indent + "  ")


def main():
    trace_path = sys.argv[1] if len(sys.argv) > 1 else "trace.json"
    rng = np.random.default_rng(0)

    # -- offline: compile once, export the artifact ---------------------
    init.seed_init(0)
    onet = OrionNetwork(SecureMlp(input_pixels=64, hidden=16), (1, 8, 8))
    onet.fit([rng.normal(0, 0.5, (8, 1, 8, 8))])
    params = toy_parameters(
        ring_degree=2048, max_level=6, boot_levels=1, scale_bits=24
    )
    path = os.path.join(tempfile.mkdtemp(), "mnist_mlp.npz")
    print("Compiling and exporting the serving artifact ...")
    onet.export(path, params)

    # -- online: a traced 2-worker pool ---------------------------------
    config = serve.ServerConfig(
        workers=2, batch_window_seconds=0.0, max_queue_depth=8, tracing=True
    )
    with serve.open(path, config) as server:
        print(f"  pool of {server.workers} workers, tracing on\n")
        for index in range(4):
            server.submit(
                rng.normal(0, 0.5, (1, 8, 8)),
                client_id=f"client-{index}",
                now=0.0,
            )
        results = server.step(now=1e9)
        print(f"served {len(results)} requests; spans recorded per worker:\n")

        for track in server.trace():
            batches = [s for s in track["spans"] if s["name"] == "serve.batch"]
            requests = [
                s for s in track["spans"] if s["name"] == "serve.request"
            ]
            if not batches and not requests:
                continue
            print(f"{track['name']}:")
            for span in batches:
                print_span(span)
            for span in requests:
                print(
                    f"  {span['name']:<24} "
                    f"{(span['end'] - span['start']) * 1e3:7.1f} ms  "
                    f"(queue + batch, client "
                    f"{span['attrs'].get('client_id')!r})"
                )
            print()

        stats = server.stats()
        for worker in stats.workers:
            noise = worker.noise
            print(
                f"noise telemetry worker {worker.worker_id}: "
                f"{noise.rescales} rescales, {noise.mod_downs} mod-downs, "
                f"{noise.bootstraps} bootstraps, min level "
                f"{noise.min_level}, max scale drift "
                f"{noise.max_scale_drift_log2:.3f} bits"
            )

        server.export_chrome_trace(trace_path)
        print(
            f"\nwrote {trace_path} — load it at https://ui.perfetto.dev "
            "(one track per worker)"
        )

        print("\nPrometheus exposition (repro_* families):")
        for line in server.metrics_text().splitlines():
            if line.startswith(("repro_serve", "repro_noise")):
                print(f"  {line}")


if __name__ == "__main__":
    main()
