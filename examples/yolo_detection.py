"""Encrypted object detection with YOLO-v1 (paper Section 8.6, Fig. 8).

Two parts:
1. Compile the *paper-scale* YOLO-v1 (ResNet-34 backbone, ~140M params,
   448x448x3) in analyze mode: rotations, bootstraps, depth, modeled
   latency — the paper reports 17.5 h single-threaded.
2. Run a width-scaled YOLO end-to-end under (simulated) FHE on a
   synthetic VOC-like scene and print both cleartext and encrypted
   detections side by side.

Run:  python examples/yolo_detection.py
"""

from repro.backend import SimBackend
from repro.ckks.params import paper_parameters
from repro.datasets import voc_like
from repro.models import YoloV1, silu_act
from repro.nn import init
from repro.orion import OrionNetwork

PARAMS = paper_parameters()


def paper_scale_analysis():
    print("=== Paper-scale YOLO-v1 (ResNet-34 backbone) ===")
    init.seed_init(0)
    net = YoloV1(act=silu_act(127))
    params_m = sum(p.size for p in net.parameters()) / 1e6
    compiled = OrionNetwork(net, (3, 448, 448)).compile(PARAMS, mode="analyze")
    print(f"  parameters: {params_m:.0f}M (paper: 139M)")
    print(f"  rotations:  {compiled.total_rotations}")
    print(f"  bootstraps: {compiled.num_bootstraps}")
    print(f"  depth:      {compiled.multiplicative_depth}")
    print(f"  modeled single-threaded latency: "
          f"{compiled.modeled_seconds / 3600:.1f} h (paper: 17.5 h)")


def encrypted_detection_demo():
    print("\n=== Encrypted detection demo (width-scaled model) ===")
    init.seed_init(1)
    net = YoloV1(grid=2, classes=4, act=silu_act(31), width=4,
                 head_width=8, fc_hidden=16)
    data = voc_like(num_samples=3, image_size=128, num_classes=4, seed=2)
    onet = OrionNetwork(net, (3, 128, 128))
    onet.fit([data.images[:2]])
    compiled = onet.compile(PARAMS)
    print(f"  compiled: {compiled.summary()}")

    image = data.images[2]
    clear = onet.forward_cleartext(image)
    backend = SimBackend(PARAMS, seed=3)
    fhe = compiled.run(backend, image)
    bits = OrionNetwork.precision_bits(fhe, clear)
    print(f"  FHE output agrees with cleartext to {bits:.1f} bits")

    for label, output in (("cleartext", clear), ("encrypted", fhe)):
        detections = net.decode(output, threshold=0.1)
        print(f"  {label} detections:")
        for cls, conf, cx, cy, w, h in detections[:4]:
            print(f"    class {cls}  conf {conf:.2f}  "
                  f"box center ({cx:.2f}, {cy:.2f}) size ({w:.2f}, {h:.2f})")


if __name__ == "__main__":
    paper_scale_analysis()
    encrypted_detection_demo()
