"""Setup shim.

The offline environment lacks the ``wheel`` package, so PEP-517 editable
installs fail with "invalid command 'bdist_wheel'".  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work; configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
