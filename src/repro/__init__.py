"""repro: a from-scratch reproduction of Orion (ASPLOS 2025).

Orion is a fully-automated framework for private neural inference using
fully homomorphic encryption (FHE).  This package reimplements the entire
system in pure Python/numpy:

- ``repro.ntt`` / ``repro.rns`` / ``repro.ckks``: a real RNS-CKKS
  implementation exact on small rings (the cryptographic substrate).
- ``repro.backend``: a common FHE backend interface with an exact toy
  backend, a fast functional simulator, an analytical latency cost model,
  and an operation ledger.
- ``repro.autograd`` / ``repro.nn`` / ``repro.datasets``: a compact
  PyTorch stand-in (reverse-mode autodiff, CNN layers, SGD) plus
  synthetic dataset generators.
- ``repro.core``: Orion's contributions — single-shot multiplexed
  packing, automatic bootstrap placement over level digraphs, errorless
  scale management, range estimation, and the compiler/runtime.
- ``repro.orion``: the user-facing ``orion.nn``-style API.
- ``repro.models``: the paper's model zoo (MLP through ResNet-50 and
  YOLO-v1).

See DESIGN.md for the system inventory and the per-experiment index.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
