"""A compact reverse-mode automatic differentiation engine over numpy.

This is the repository's stand-in for PyTorch's autograd (DESIGN.md
Section 1): enough machinery to *train* every network in the model zoo
(convolutions with stride/padding/dilation/groups, batch norm, pooling,
the activations Orion supports) and to run the cleartext forward passes
that Orion's range estimation and validation require.
"""

from repro.autograd.tensor import Tensor, no_grad
from repro.autograd import functional

__all__ = ["Tensor", "no_grad", "functional"]
