"""Differentiable operations for the autograd engine.

Each function computes a forward numpy result and registers a closure
that routes the output gradient back to its parents.  Broadcasting is
handled by summing gradients over broadcast dimensions.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


# -- elementwise arithmetic --------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data + b.data

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def sub(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data - b.data

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(-grad, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data * b.data

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * b.data, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * a.data, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def div(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data / b.data

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad / b.data, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(-grad * a.data / (b.data**2), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data @ b.data

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad @ np.swapaxes(b.data, -1, -2), a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(np.swapaxes(a.data, -1, -2) @ grad, b.shape))

    return Tensor._make(out_data, (a, b), backward)


# -- shape ops ---------------------------------------------------------------
def reshape(a: Tensor, shape) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    original = a.shape
    out_data = a.data.reshape(shape)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad.reshape(original))

    return Tensor._make(out_data, (a,), backward)


def transpose(a: Tensor, axes: Optional[Sequence[int]] = None) -> Tensor:
    out_data = np.transpose(a.data, axes)

    def backward(grad):
        if a.requires_grad:
            if axes is None:
                a._accumulate(np.transpose(grad))
            else:
                inverse = np.argsort(axes)
                a._accumulate(np.transpose(grad, inverse))

    return Tensor._make(out_data, (a,), backward)


def pad2d(a: Tensor, padding: Tuple[int, int]) -> Tensor:
    """Zero-pad the last two (spatial) dimensions."""
    ph, pw = padding
    if ph == 0 and pw == 0:
        return a
    pads = [(0, 0)] * (a.ndim - 2) + [(ph, ph), (pw, pw)]
    out_data = np.pad(a.data, pads)

    def backward(grad):
        if a.requires_grad:
            slices = tuple(
                [slice(None)] * (a.ndim - 2)
                + [slice(ph, grad.shape[-2] - ph), slice(pw, grad.shape[-1] - pw)]
            )
            a._accumulate(grad[slices])

    return Tensor._make(out_data, (a,), backward)


# -- reductions ---------------------------------------------------------------
def sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        if not a.requires_grad:
            return
        g = np.asarray(grad)
        if axis is not None and not keepdims:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            for ax in sorted(ax % a.ndim for ax in axes):
                g = np.expand_dims(g, ax)
        a._accumulate(np.broadcast_to(g, a.shape))

    return Tensor._make(out_data, (a,), backward)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    if axis is None:
        count = a.size
    else:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        count = int(np.prod([a.shape[ax] for ax in axes]))
    return mul(sum(a, axis=axis, keepdims=keepdims), Tensor(1.0 / count))


# -- activations ----------------------------------------------------------------
def relu(a: Tensor) -> Tensor:
    mask = a.data > 0
    out_data = a.data * mask

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * mask)

    return Tensor._make(out_data, (a,), backward)


def silu(a: Tensor) -> Tensor:
    """SiLU(x) = x * sigmoid(x) (paper Section 7 activation)."""
    sig = 1.0 / (1.0 + np.exp(-a.data))
    out_data = a.data * sig

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * (sig + a.data * sig * (1.0 - sig)))

    return Tensor._make(out_data, (a,), backward)


def square(a: Tensor) -> Tensor:
    """x^2, the MNIST activation in paper Table 2."""
    out_data = a.data**2

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * 2.0 * a.data)

    return Tensor._make(out_data, (a,), backward)


def polynomial(a: Tensor, coeffs: Sequence[float]) -> Tensor:
    """Evaluate a fixed polynomial elementwise, coeffs[k] * x^k."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    out_data = np.polynomial.polynomial.polyval(a.data, coeffs)
    deriv = np.polynomial.polynomial.polyder(coeffs)
    deriv_vals = np.polynomial.polynomial.polyval(a.data, deriv)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * deriv_vals)

    return Tensor._make(out_data, (a,), backward)


# -- im2col convolution -----------------------------------------------------
def _conv_output_size(size: int, kernel: int, stride: int, pad: int, dil: int) -> int:
    effective = dil * (kernel - 1) + 1
    return (size + 2 * pad - effective) // stride + 1


def _im2col_indices(c, h, w, kh, kw, stride, dilation):
    """Gather indices turning (C,H,W) into (C*kh*kw, L) patch columns."""
    sh, sw = stride
    dh, dw = dilation
    out_h = (h - dh * (kh - 1) - 1) // sh + 1
    out_w = (w - dw * (kw - 1) - 1) // sw + 1
    i0 = np.repeat(np.arange(kh) * dh, kw)
    j0 = np.tile(np.arange(kw) * dw, kh)
    i1 = sh * np.repeat(np.arange(out_h), out_w)
    j1 = sw * np.tile(np.arange(out_w), out_h)
    rows = i0[:, None] + i1[None, :]  # (kh*kw, L)
    cols = j0[:, None] + j1[None, :]
    chan = np.repeat(np.arange(c), kh * kw)[:, None]  # (C*kh*kw, 1)
    rows = np.tile(rows, (c, 1))
    cols = np.tile(cols, (c, 1))
    return chan, rows, cols, out_h, out_w


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
    dilation: Tuple[int, int] = (1, 1),
    groups: int = 1,
) -> Tensor:
    """2D convolution with arbitrary parameters (im2col formulation).

    Shapes: x (B, Ci, H, W); weight (Co, Ci/groups, kh, kw).
    """
    batch, c_in, _, _ = x.shape
    c_out, c_in_g, kh, kw = weight.shape
    if c_in != c_in_g * groups:
        raise ValueError(
            f"input channels {c_in} incompatible with weight "
            f"{weight.shape} and groups {groups}"
        )
    if c_out % groups != 0:
        raise ValueError("output channels must divide evenly into groups")

    padded = pad2d(x, padding)
    _, _, hp, wp = padded.shape
    chan, rows, cols, out_h, out_w = _im2col_indices(
        c_in, hp, wp, kh, kw, stride, dilation
    )
    x_data = padded.data
    patches = x_data[:, chan, rows, cols]  # (B, Ci*kh*kw, L)
    length = out_h * out_w
    patches_g = patches.reshape(batch, groups, c_in_g * kh * kw, length)
    weight_g = weight.data.reshape(groups, c_out // groups, c_in_g * kh * kw)
    out = np.einsum("gok,bgkl->bgol", weight_g, patches_g, optimize=True)
    out = out.reshape(batch, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = (padded, weight) + ((bias,) if bias is not None else ())

    def backward(grad):
        grad4 = grad.reshape(batch, groups, c_out // groups, length)
        if weight.requires_grad:
            wgrad = np.einsum("bgol,bgkl->gok", grad4, patches_g, optimize=True)
            weight._accumulate(wgrad.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if padded.requires_grad:
            col_grad = np.einsum("gok,bgol->bgkl", weight_g, grad4, optimize=True)
            col_grad = col_grad.reshape(batch, c_in * kh * kw, length)
            xgrad = np.zeros_like(x_data)
            np.add.at(
                xgrad,
                (slice(None), chan, rows, cols),
                col_grad,
            )
            padded._accumulate(xgrad)

    return Tensor._make(out, parents, backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map: x (B, in) @ weight.T (in, out) + bias."""
    out = matmul(x, transpose(weight))
    if bias is not None:
        out = add(out, bias)
    return out


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling (the paper replaces all max pools with this)."""
    stride = kernel if stride is None else stride
    batch, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    window = np.lib.stride_tricks.sliding_window_view(x.data, (kernel, kernel), (2, 3))
    strided = window[:, :, ::stride, ::stride]
    out = strided.mean(axis=(-1, -2))

    def backward(grad):
        if not x.requires_grad:
            return
        xgrad = np.zeros_like(x.data)
        share = grad / (kernel * kernel)
        for dy in range(kernel):
            for dx in range(kernel):
                xgrad[
                    :, :, dy : dy + out_h * stride : stride, dx : dx + out_w * stride : stride
                ] += share
        x._accumulate(xgrad)

    return Tensor._make(out, (x,), backward)


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over (B, H, W) per channel.

    Running statistics are updated in place during training, mirroring
    torch.nn.BatchNorm2d semantics.
    """
    if training:
        mean = x.data.mean(axis=(0, 2, 3))
        var = x.data.var(axis=(0, 2, 3))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mean = running_mean
        var = running_var
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean[None, :, None, None]) * inv_std[None, :, None, None]
    out = gamma.data[None, :, None, None] * x_hat + beta.data[None, :, None, None]
    count = x.shape[0] * x.shape[2] * x.shape[3]

    def backward(grad):
        if gamma.requires_grad:
            gamma._accumulate((grad * x_hat).sum(axis=(0, 2, 3)))
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            g = grad * gamma.data[None, :, None, None]
            if training:
                sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
                sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
                inv = inv_std[None, :, None, None]
                xgrad = inv / count * (count * g - sum_g - x_hat * sum_gx)
            else:
                xgrad = g * inv_std[None, :, None, None]
            x._accumulate(xgrad)

    return Tensor._make(out, (x, gamma, beta), backward)


# -- losses ----------------------------------------------------------------
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_z
    softmax = np.exp(out)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy with integer class targets."""
    targets = np.asarray(targets, dtype=np.int64)
    logp = log_softmax(logits, axis=-1)
    batch = logits.shape[0]
    picked_data = logp.data[np.arange(batch), targets]
    out = -picked_data.mean()

    def backward(grad):
        if logp.requires_grad:
            g = np.zeros_like(logp.data)
            g[np.arange(batch), targets] = -float(grad) / batch
            logp._accumulate(g)

    return Tensor._make(np.asarray(out), (logp,), backward)


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    diff = sub(pred, Tensor(np.asarray(target)))
    return mean(mul(diff, diff))
