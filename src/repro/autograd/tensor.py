"""The Tensor datatype: numpy array + gradient + backward closure."""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Tuple

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph construction (inference / weight updates)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def grad_enabled() -> bool:
    return _GRAD_ENABLED


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Graph edges are recorded eagerly: each op stores its parents and a
    closure that accumulates gradients into them.  ``backward()`` runs a
    topological sweep from the output.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn")

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self._parents: Tuple["Tensor", ...] = ()
        self._backward_fn: Optional[Callable[[np.ndarray], None]] = None

    # -- construction helpers ----------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...], backward_fn) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward_fn = backward_fn
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    # -- shape info -------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    # -- backward ---------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode accumulation from this tensor."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without gradient needs a scalar output")
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()

        def visit(node: Tensor):
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    topo.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if id(parent) not in visited:
                        stack.append((parent, False))

        visit(self)
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    # -- operators (implemented in functional.py to keep this file small) --
    def __add__(self, other):
        from repro.autograd import functional as F

        return F.add(self, _wrap(other))

    __radd__ = __add__

    def __sub__(self, other):
        from repro.autograd import functional as F

        return F.sub(self, _wrap(other))

    def __rsub__(self, other):
        from repro.autograd import functional as F

        return F.sub(_wrap(other), self)

    def __mul__(self, other):
        from repro.autograd import functional as F

        return F.mul(self, _wrap(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        from repro.autograd import functional as F

        return F.div(self, _wrap(other))

    def __neg__(self):
        from repro.autograd import functional as F

        return F.mul(self, Tensor(-1.0))

    def __matmul__(self, other):
        from repro.autograd import functional as F

        return F.matmul(self, _wrap(other))

    def reshape(self, *shape):
        from repro.autograd import functional as F

        return F.reshape(self, shape)

    def sum(self, axis=None, keepdims=False):
        from repro.autograd import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        from repro.autograd import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def transpose(self, axes=None):
        from repro.autograd import functional as F

        return F.transpose(self, axes)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"


def _wrap(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)
