"""FHE execution backends behind a common interface.

- :class:`ToyBackend` runs real RNS-CKKS on small rings (exact).
- :class:`SimBackend` runs the same programs functionally (true SIMD
  semantics on cleartext vectors) while tracking exact levels/scales,
  injecting calibrated noise, and charging latency from the analytical
  cost model of paper Figure 1.

Compiled Orion programs are backend-agnostic: small networks validate on
the toy backend; paper-scale networks run on the simulator.
"""

from repro.backend.costs import CostModel
from repro.backend.interface import FheBackend
from repro.backend.ledger import OpLedger
from repro.backend.sim import SimBackend
from repro.backend.toy import ToyBackend

__all__ = ["CostModel", "FheBackend", "OpLedger", "SimBackend", "ToyBackend"]
