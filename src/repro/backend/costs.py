"""Analytical latency model for CKKS operations (paper Figure 1).

The paper estimates "the latencies of both the linear layers and
bootstrap operations with an analytical model" (Section 5.2) and shows
in Figure 1 that PMult and HRot latencies grow with the ciphertext
level l (more RNS limbs = more work) while bootstrap latency grows
superlinearly with L_eff because the key-switching decomposition number
(dnum) rises to maintain 128-bit security.

This module reproduces those shapes.  Constants are calibrated so that
paper-scale parameters (N = 2^16, L_eff = 10) land in the regime Table 2
reports (PMult ~ 10 ms, HRot ~ 100 ms, bootstrap ~ 10 s, ResNet-20
end-to-end in the hundreds of seconds).  Absolute values are a model;
every benchmark reports shapes and ratios, not wall-clock claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ckks.params import CkksParameters


@dataclass(frozen=True)
class CostModel:
    """Level-dependent operation latencies in (modeled) seconds.

    Attributes:
        params: the CKKS parameter set being priced.
        alpha: limbs per key-switch digit; dnum = ceil(limbs / alpha).
            Rising dnum with level is what makes bootstrap superlinear
            (paper Section 2.4, citing Han-Ki [33]).
    """

    params: CkksParameters
    alpha: int = 4
    # Per-unit constants (seconds at the N = 2^16 normalization point).
    #
    # c_decompose / c_inner are calibrated against the measured medians
    # in BENCH_ckks_hotpath.json (exact backend, N=2048, L=8): one
    # keyswitch = 28.4 ms splits into a dominant digit-decomposition
    # (inverse NTT + batched forward NTTs) and a cheap lazy int64 inner
    # product (~5% of the keyswitch from the hoisted-x8 median), and
    # the fused BSGS matvec beats the per-rotation double-hoisted
    # pipeline 2.9x (ks_alpha=1) / 3.9x (ks_alpha=2).  The constants
    # are fit under the constraint that the *total* keyswitch price is
    # unchanged — placement economics (layer cost vs bootstrap cost)
    # stay put, re-validated by the pinned Table 5 boot counts in
    # tests/test_placement.py — which prices fused 1.3-2.4x cheaper at
    # every level instead of the previous break-even-at-shallow-levels
    # artifact of an oversized c_inner.
    #
    # The inner-product constant is split per pipeline: the *hoisted*
    # pipeline reduces every digit product immediately (one `%` pass
    # per rotation over the full (2, ks_limbs, N) accumulator), while
    # the *fused* pipeline sums products lazily in int64 and amortizes
    # the reduction across `chunk` offsets — measured in
    # BENCH_ckks_hotpath.json as a fused advantage that *grows* with
    # grouped digits (alpha=2 fused/bsgs 2.3-2.6x vs alpha=1's 1.4-1.6x
    # on the bootstrap transforms), which a shared constant cannot
    # express.  c_inner_fused is fit so the modeled alpha=2 fused gain
    # tracks those medians; the hoisted keyswitch total (c_decompose +
    # c_inner + c_moddown path) is untouched, so bootstrap and
    # per-rotation prices — and with them the Table 5 placement
    # economics — stay exactly where PR 4 calibrated them.
    c_add: float = 2.0e-4
    c_pmult: float = 1.5e-3
    c_decompose: float = 3.8e-3
    c_inner: float = 1.5e-4
    c_inner_fused: float = 0.9e-4
    c_moddown: float = 1.5e-3
    c_boot_base: float = 0.5
    c_boot_quad: float = 2.5e-3
    c_encode: float = 2.0e-3

    # -- helpers ---------------------------------------------------------
    @property
    def _unit(self) -> float:
        """Work unit ~ N log N, normalized to 1.0 at N = 2^16."""
        n = self.params.ring_degree
        return (n / 65536.0) * (math.log2(n) / 16.0)

    def _limbs(self, level: int) -> int:
        return level + 1

    @property
    def _effective_alpha(self) -> int:
        """Limbs per digit used for pricing.

        When the parameter set itself groups digits (``ks_alpha > 1``,
        realized exactly by the toy backend) the model prices that
        grouping; otherwise it falls back to the model's own ``alpha``
        (the paper-scale assumption for production parameter sets).
        """
        ks_alpha = getattr(self.params, "ks_alpha", 1)
        return ks_alpha if ks_alpha > 1 else self.alpha

    def dnum(self, level: int) -> int:
        """Key-switch decomposition number at the given level."""
        return max(1, math.ceil(self._limbs(level) / self._effective_alpha))

    # -- primitive ops (paper Figure 1) -----------------------------------
    def hadd(self, level: int) -> float:
        return self.c_add * self._limbs(level) * self._unit

    def pmult(self, level: int) -> float:
        """Plaintext-ciphertext multiply: linear in limb count (Fig. 1a)."""
        return self.c_pmult * self._limbs(level) * self._unit

    def rescale(self, level: int) -> float:
        return self.c_moddown * self._limbs(level) * self._unit

    def encode(self, level: int) -> float:
        """Encoding a cleartext (iFFT + NTT); charged by Fhelipe-style
        backends that encode diagonals on the fly (paper Table 4)."""
        return self.c_encode * self._limbs(level) * self._unit

    def pmult_fused(self, level: int) -> float:
        """Plaintext multiply against a raw Q_l * P accumulator: wider
        than :meth:`pmult` by the special limbs (fused matvec path)."""
        limbs = self._limbs(level) + self.params.num_special_primes
        return self.c_pmult * limbs * self._unit

    # -- key switching, decomposed for hoisting ---------------------------
    def ks_decompose(self, level: int) -> float:
        """Digit decomposition + NTTs; shareable across rotations of the
        same ciphertext (single hoisting, Section 3.3)."""
        limbs = self._limbs(level)
        return self.c_decompose * limbs * self.dnum(level) * self._unit

    def ks_inner(self, level: int) -> float:
        """Per-rotation inner products against the switching key
        (hoisted pipeline: every product reduced immediately)."""
        limbs = self._limbs(level)
        special = self.params.num_special_primes
        return self.c_inner * self.dnum(level) * (limbs + special + 1) * self._unit

    def ks_inner_fused(self, level: int) -> float:
        """Per-offset inner product on the *fused* pipeline.

        The fused path multiplies the shared digit tensor against the
        switching key and adds the product into a lazy int64
        accumulator — the modular reduction is amortized across many
        offsets instead of paid per rotation, so the per-offset price
        carries its own (smaller) constant.  Same dnum/limb shape as
        :meth:`ks_inner`.
        """
        limbs = self._limbs(level)
        special = self.params.num_special_primes
        return (
            self.c_inner_fused * self.dnum(level) * (limbs + special + 1) * self._unit
        )

    def ks_moddown(self, level: int) -> float:
        """Division by the special modulus; double hoisting defers this
        to once per giant-step group (Bossuat et al. [11])."""
        return self.c_moddown * self._limbs(level) * self._unit

    def keyswitch(self, level: int) -> float:
        return self.ks_decompose(level) + self.ks_inner(level) + self.ks_moddown(level)

    def hrot(self, level: int) -> float:
        """Un-hoisted ciphertext rotation (Fig. 1b)."""
        return self.keyswitch(level) + 0.5 * self.c_add * self._limbs(level) * self._unit

    def hmult(self, level: int) -> float:
        """Ciphertext-ciphertext multiply incl. relinearization."""
        return 4.0 * self.pmult(level) + self.keyswitch(level)

    def bootstrap(self, effective_level: int | None = None) -> float:
        """Bootstrap cost, superlinear in L_eff (Fig. 1c).

        A bootstrap runs at the top of the modulus chain: its linear
        transforms and EvalMod execute with L_eff + L_boot + 1 limbs and
        a correspondingly larger dnum.
        """
        l_eff = (
            self.params.effective_level if effective_level is None else effective_level
        )
        top_limbs = l_eff + self.params.boot_levels + 1
        top_dnum = max(1, math.ceil(top_limbs / self._effective_alpha))
        return (
            self.c_boot_base + self.c_boot_quad * top_limbs * top_limbs * top_dnum
        ) * self._unit

    # -- aggregated helpers for the packing planner -----------------------
    def fused_fold_cheaper(self, level: int, num_folds: int) -> bool:
        """Whether the fused Gazelle fold beats the sequential one.

        The sequential rotate-and-sum fold pays ``num_folds`` full key
        switches on successively accumulated ciphertexts (they cannot be
        hoisted: each rotation acts on a *different* ciphertext).  The
        fused fold expands the composition into ``2^num_folds - 1``
        rotations of the *original* accumulator — all sharing one digit
        decomposition and one deferred mod-down — trading per-rotation
        decompose/mod-down work for extra inner products.  For the
        shallow folds real layers produce the expansion wins; very deep
        folds (tiny outputs in huge ciphertexts) can tip the other way,
        so both the executor and the price model pick the cheaper form.
        """
        expanded = (1 << num_folds) - 1
        fused = (
            self.ks_decompose(level)
            + expanded * self.ks_inner_fused(level)
            + self.ks_moddown(level)
            + expanded * self.hadd(level)
        )
        sequential = num_folds * (self.hrot(level) + self.hadd(level))
        return fused <= sequential

    def fold_cost(
        self, level: int, num_folds: int, num_out: int = 1, hoisting: str = "fused"
    ) -> float:
        """Price of the post-matvec Gazelle rotate-and-sum folds.

        Non-fused modes execute them as plain rotations + additions;
        the fused mode uses whichever of the sequential and expanded
        (hoisted, deferred-mod-down) forms is cheaper, mirroring
        :meth:`repro.core.packing.matvec.PackedMatVec` execution.

        Priced at the matvec's *input* level (like every other term of
        :meth:`matvec_cost`); the executor makes its sequential-vs-fused
        choice at the same level so the model and the executed form
        agree, even though the fold itself runs one level lower (after
        the rescale).
        """
        if num_folds <= 0:
            return 0.0
        sequential = num_folds * (self.hrot(level) + self.hadd(level))
        if hoisting == "fused" and self.fused_fold_cheaper(level, num_folds):
            expanded = (1 << num_folds) - 1
            return num_out * (
                self.ks_decompose(level)
                + expanded * self.ks_inner_fused(level)
                + self.ks_moddown(level)
                + expanded * self.hadd(level)
            )
        return num_out * sequential

    def matvec_fused_rotations(
        self, level: int, num_offsets: int, num_in: int = 1, num_out: int = 1
    ) -> float:
        """Rotation cost of the fully-fused matvec path.

        One digit decomposition per input ciphertext (every rotation —
        baby or giant — acts on the same c1 after the giant steps are
        folded into the pre-rotated plaintexts), one inner product per
        distinct nonzero diagonal offset — priced at the fused
        pipeline's lazy-accumulation rate (:meth:`ks_inner_fused`) —
        and one deferred mod-down per output ciphertext.  dnum-aware
        through :meth:`ks_decompose` / :meth:`ks_inner_fused`.
        """
        return (
            num_in * self.ks_decompose(level)
            + num_offsets * self.ks_inner_fused(level)
            + num_out * self.ks_moddown(level)
        )

    def sibling_fusion_gain(
        self,
        level: int,
        num_in: int,
        total_offsets: int,
        merged_offsets: int,
        num_siblings: int,
    ) -> float:
        """Modeled win of concat-fusing sibling matvecs (graph optimizer).

        Separately, each of the ``num_siblings`` layers pays its own
        digit decomposition per input block and its own inner products
        (``total_offsets`` across all siblings); merged, one
        decomposition per input block covers everyone and shared
        (input block, offset) pairs collapse to ``merged_offsets``
        inner products.  PMults, adds, mod-downs, and folds are
        unchanged by the merge; the merged layer does save all but one
        rescale, which this conservatively ignores.
        """
        saved_decompose = (num_siblings - 1) * num_in * self.ks_decompose(level)
        saved_inner = (total_offsets - merged_offsets) * self.ks_inner_fused(level)
        return saved_decompose + saved_inner

    def matvec_cost(
        self,
        level: int,
        num_diagonals: int,
        num_baby: int,
        num_giant: int,
        hoisting: str = "fused",
        num_in: int = 1,
        num_out: int = 1,
        num_folds: int = 0,
        num_offsets: int | None = None,
    ) -> float:
        """Modeled cost of one BSGS matrix-vector product.

        Args:
            level: ciphertext level the product executes at.
            num_diagonals: plaintext diagonals multiplied (PMult count).
            num_baby: distinct baby-step rotations.
            num_giant: distinct giant-step rotations (non-fused modes
                include the Gazelle fold rotations here, matching
                ``PackedMatVec.counts``).
            hoisting: 'none' | 'single' | 'double' (Section 3.3), or
                'fused' (the default, matching execution) for the
                fully-hoisted deferred-mod-down path (one decomposition,
                one inner product per diagonal offset, one mod-down;
                plaintext multiplies run over the extended Q_l * P
                basis).  The 'fused' price is slightly conservative: it
                treats every diagonal as a rotated offset, while
                execution skips the key switch (and the Q_l * P width)
                for offset-0 diagonals.
            num_in: input ciphertext blocks ('fused' only: one
                decomposition each).
            num_out: output ciphertext blocks ('fused' only: one
                deferred mod-down each).
            num_folds: Gazelle rotate-and-sum folds per output block
                ('fused' only — other modes already count the folds in
                ``num_giant``); priced by :meth:`fold_cost`.
            num_offsets: distinct nonzero (input block, diagonal offset)
                pairs — the key-switch inner products the fused path
                really performs.  Defaults to ``num_diagonals`` (the
                conservative upper bound: every diagonal rotated).  Zero
                means no rotation at all (e.g. a depthwise 1x1 conv):
                the fused execution then skips decompose and mod-down
                entirely and so does the price.
        """
        if hoisting == "fused":
            pm = num_diagonals * self.pmult_fused(level)
            adds = max(0, num_diagonals - 1) * self.hadd(level)
            if num_offsets is None:
                num_offsets = num_diagonals
            if num_offsets == 0:
                rots = 0.0
            else:
                rots = self.matvec_fused_rotations(
                    level, num_offsets, num_in=num_in, num_out=num_out
                )
            folds = self.fold_cost(level, num_folds, num_out=num_out)
            return pm + adds + rots + folds + self.rescale(level)
        pm = num_diagonals * self.pmult(level)
        adds = max(0, num_diagonals - 1) * self.hadd(level)
        if hoisting == "none":
            rots = (num_baby + num_giant) * self.hrot(level)
        elif hoisting == "single":
            rots = (
                self.ks_decompose(level)
                + num_baby * (self.ks_inner(level) + self.ks_moddown(level))
                + num_giant * self.hrot(level)
            )
        elif hoisting == "double":
            rots = (
                self.ks_decompose(level)
                + num_baby * self.ks_inner(level)
                + max(1, num_giant) * self.ks_moddown(level)
                + num_giant * (self.ks_decompose(level) + self.ks_inner(level))
            )
        else:
            raise ValueError(f"unknown hoisting mode {hoisting!r}")
        return pm + adds + rots + self.rescale(level)
