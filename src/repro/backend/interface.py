"""The backend contract compiled Orion programs execute against.

Handles (ciphertexts/plaintexts) are backend-specific opaque objects;
the program executor only moves them between the operations below.
Every operation charges the backend's :class:`OpLedger` using the shared
:class:`CostModel`, so rotation/bootstrap counts and modeled latency are
comparable across backends.
"""

from __future__ import annotations

import abc
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.backend.costs import CostModel
from repro.backend.ledger import OpLedger
from repro.ckks.params import CkksParameters

ScaleLike = Union[int, Fraction]


class FheBackend(abc.ABC):
    """Abstract CKKS backend (paper Section 2 operations).

    Concrete implementations: :class:`repro.backend.toy.ToyBackend`
    (exact) and :class:`repro.backend.sim.SimBackend` (fast functional
    simulation).
    """

    def __init__(self, params: CkksParameters, cost_model: Optional[CostModel] = None):
        self.params = params
        self.costs = cost_model or CostModel(params)
        self.ledger = OpLedger()

    # -- capacity ---------------------------------------------------------
    @property
    def slot_count(self) -> int:
        return self.params.slot_count

    @property
    def effective_level(self) -> int:
        return self.params.effective_level

    # -- data movement -----------------------------------------------------
    @abc.abstractmethod
    def encode(self, values: Sequence[float], level: int, scale: ScaleLike):
        """Cleartext -> plaintext at an explicit level and scale."""

    @abc.abstractmethod
    def encrypt(self, plaintext):
        """Plaintext -> ciphertext."""

    @abc.abstractmethod
    def decrypt(self, ciphertext) -> np.ndarray:
        """Ciphertext -> cleartext slot vector (real parts)."""

    def encode_encrypt(self, values, level: Optional[int] = None):
        level = self.params.max_level if level is None else level
        return self.encrypt(self.encode(values, level, self.params.scale))

    # -- metadata ------------------------------------------------------------
    @abc.abstractmethod
    def level_of(self, ciphertext) -> int: ...

    @abc.abstractmethod
    def scale_of(self, ciphertext) -> Fraction: ...

    # -- arithmetic ------------------------------------------------------------
    @abc.abstractmethod
    def add(self, a, b): ...

    @abc.abstractmethod
    def sub(self, a, b): ...

    @abc.abstractmethod
    def add_plain(self, a, plaintext): ...

    @abc.abstractmethod
    def negate(self, a): ...

    @abc.abstractmethod
    def mul_plain(self, a, plaintext): ...

    @abc.abstractmethod
    def mul(self, a, b): ...

    @abc.abstractmethod
    def rescale(self, a): ...

    @abc.abstractmethod
    def level_down(self, a, target_level: int): ...

    @abc.abstractmethod
    def rotate(self, a, steps: int): ...

    def conjugate(self, a):
        """Slot-wise complex conjugation (a Galois automorphism).

        Needed by the real bootstrapping pipeline's CoeffToSlot stage;
        backends that only process real slot vectors may leave this
        unimplemented.
        """
        raise NotImplementedError(f"{type(self).__name__} has no conjugation")

    @abc.abstractmethod
    def bootstrap(self, a): ...

    # -- hoisted rotations (Section 3.3) ---------------------------------------
    def rotate_group(self, a, steps: Sequence[int], hoisting: str = "double") -> Dict[int, object]:
        """Rotate one ciphertext by many amounts, amortizing key-switch work.

        Charges the price of the requested hoisting mode, then delegates
        to :meth:`_rotate_group_no_charge` (per-step rotations by
        default; exact backends share the real decomposition there).
        ``hoisting="none"`` always executes and charges per-step
        rotations, for faithful unhoisted baselines.  Rotation by 0 is
        free (returns the input).
        """
        outputs: Dict[int, object] = {}
        unique_steps: List[int] = sorted({s % self.slot_count for s in steps})
        nonzero = [s for s in unique_steps if s != 0]
        if 0 in unique_steps:
            outputs[0] = a
        level = self.level_of(a)
        if nonzero:
            if hoisting == "none":
                self.ledger.charge("hrot", self.costs.hrot(level) * len(nonzero), len(nonzero))
                for step in nonzero:
                    outputs[step] = self._rotate_no_charge(a, step)
                return outputs
            else:
                shared = self.costs.ks_decompose(level)
                per = self.costs.ks_inner(level)
                if hoisting == "single":
                    per += self.costs.ks_moddown(level)
                    shared += 0.0
                else:  # double hoisting defers mod-down to the giant step
                    shared += self.costs.ks_moddown(level)
                self.ledger.charge(
                    "hrot_hoisted", shared + per * len(nonzero), len(nonzero)
                )
            outputs.update(self._rotate_group_no_charge(a, nonzero))
        return outputs

    def rotate_hoisted(self, a, steps: Sequence[int]) -> Dict[int, object]:
        """Rotate one ciphertext by many amounts with a shared (hoisted)
        key-switch decomposition, charged at the double-hoisted price.

        This is the primitive :class:`repro.core.packing.matvec.PackedMatVec`
        baby steps execute against; exact backends override the
        underlying :meth:`_rotate_group_no_charge` so the decomposition
        really is computed once (not just priced once).
        """
        return self.rotate_group(a, steps, hoisting="double")

    def _rotate_group_no_charge(self, a, steps: Sequence[int]) -> Dict[int, object]:
        """Multi-rotation primitive without ledger charges.

        ``steps`` are unique, nonzero, already reduced mod slot count.
        Default: one independent rotation per step; backends with a real
        hoisted path override this.
        """
        return {step: self._rotate_no_charge(a, step) for step in steps}

    @abc.abstractmethod
    def _rotate_no_charge(self, a, steps: int):
        """Rotation primitive without ledger charges (used by rotate_group)."""
