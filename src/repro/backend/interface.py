"""The backend contract compiled Orion programs execute against.

Handles (ciphertexts/plaintexts) are backend-specific opaque objects;
the program executor only moves them between the operations below.
Every operation charges the backend's :class:`OpLedger` using the shared
:class:`CostModel`, so rotation/bootstrap counts and modeled latency are
comparable across backends.
"""

from __future__ import annotations

import abc
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.backend.costs import CostModel
from repro.backend.ledger import OpLedger
from repro.ckks.params import CkksParameters

ScaleLike = Union[int, Fraction]


class FheBackend(abc.ABC):
    """Abstract CKKS backend (paper Section 2 operations).

    Concrete implementations: :class:`repro.backend.toy.ToyBackend`
    (exact) and :class:`repro.backend.sim.SimBackend` (fast functional
    simulation).
    """

    def __init__(self, params: CkksParameters, cost_model: Optional[CostModel] = None):
        self.params = params
        self.costs = cost_model or CostModel(params)
        self.ledger = OpLedger()
        #: optional :class:`repro.obs.NoiseMonitor`; when set, backends
        #: record level/scale drift at rescale / mod-down / bootstrap
        #: boundaries (observe-only — reads metadata, never ciphertexts).
        self.noise_monitor = None

    def _note_noise(self, op: str, before, after) -> None:
        """Record one modulus-chain boundary crossing on the attached
        noise monitor (no-op when none is attached)."""
        monitor = self.noise_monitor
        if monitor is not None:
            monitor.record(
                op,
                self.level_of(before),
                self.level_of(after),
                self.scale_of(before),
                self.scale_of(after),
            )

    # -- capacity ---------------------------------------------------------
    @property
    def kernel_backend(self) -> str:
        """Name of the kernel backend hot paths currently dispatch to.

        Resolved by :mod:`repro.kernels` (capability probe, overridable
        via the ``REPRO_KERNELS`` env var or
        :func:`repro.kernels.select_backend`).  Every backend is
        bit-exact; the name is telemetry, not semantics — it is also
        recorded in :meth:`OpLedger.snapshot` and serve stats.
        """
        from repro.kernels import active_backend

        return active_backend()

    @property
    def slot_count(self) -> int:
        return self.params.slot_count

    @property
    def effective_level(self) -> int:
        return self.params.effective_level

    # -- data movement -----------------------------------------------------
    @abc.abstractmethod
    def encode(self, values: Sequence[float], level: int, scale: ScaleLike):
        """Cleartext -> plaintext at an explicit level and scale."""

    @abc.abstractmethod
    def encrypt(self, plaintext):
        """Plaintext -> ciphertext."""

    @abc.abstractmethod
    def decrypt(self, ciphertext) -> np.ndarray:
        """Ciphertext -> cleartext slot vector (real parts)."""

    def encode_encrypt(self, values, level: Optional[int] = None):
        level = self.params.max_level if level is None else level
        return self.encrypt(self.encode(values, level, self.params.scale))

    def plaintext_cache_key(self, level: int, scale: ScaleLike) -> tuple:
        """Canonical fingerprint for cached encodes of static data.

        An encoded plaintext is only reusable at the exact (level,
        scale) it was produced for, over the exact prime chain and
        key-switch digit grouping of this parameter set.  Every
        plaintext cache in the serve-many path — ``PackedMatVec`` weight
        tables, bootstrap transform tables, and the entries inside any
        ``pt_cache`` handed to :meth:`matvec_fused` — must key entries
        by this tuple so a second request entering at a different level
        or scale (or an artifact preloaded for a different ks_alpha)
        can never hit a stale encode.
        """
        params = self.params
        return (
            level,
            Fraction(scale),
            getattr(params, "ks_alpha", 1),
            params.num_special_primes,
            params.primes,
        )

    # -- metadata ------------------------------------------------------------
    @abc.abstractmethod
    def level_of(self, ciphertext) -> int: ...

    @abc.abstractmethod
    def scale_of(self, ciphertext) -> Fraction: ...

    # -- arithmetic ------------------------------------------------------------
    @abc.abstractmethod
    def add(self, a, b): ...

    @abc.abstractmethod
    def sub(self, a, b): ...

    @abc.abstractmethod
    def add_plain(self, a, plaintext): ...

    @abc.abstractmethod
    def negate(self, a): ...

    @abc.abstractmethod
    def mul_plain(self, a, plaintext): ...

    @abc.abstractmethod
    def mul(self, a, b): ...

    @abc.abstractmethod
    def rescale(self, a): ...

    @abc.abstractmethod
    def level_down(self, a, target_level: int): ...

    @abc.abstractmethod
    def rotate(self, a, steps: int): ...

    def conjugate(self, a):
        """Slot-wise complex conjugation (a Galois automorphism).

        Needed by the real bootstrapping pipeline's CoeffToSlot stage;
        backends that only process real slot vectors may leave this
        unimplemented.
        """
        raise NotImplementedError(f"{type(self).__name__} has no conjugation")

    @abc.abstractmethod
    def bootstrap(self, a): ...

    # -- hoisted rotations (Section 3.3) ---------------------------------------
    def rotate_group(self, a, steps: Sequence[int], hoisting: str = "double") -> Dict[int, object]:
        """Rotate one ciphertext by many amounts, amortizing key-switch work.

        Charges the price of the requested hoisting mode, then delegates
        to :meth:`_rotate_group_no_charge` (per-step rotations by
        default; exact backends share the real decomposition there).
        ``hoisting="none"`` always executes and charges per-step
        rotations, for faithful unhoisted baselines.  Rotation by 0 is
        free (returns the input).
        """
        outputs: Dict[int, object] = {}
        unique_steps: List[int] = sorted({s % self.slot_count for s in steps})
        nonzero = [s for s in unique_steps if s != 0]
        if 0 in unique_steps:
            outputs[0] = a
        level = self.level_of(a)
        if nonzero:
            if hoisting == "none":
                self.ledger.charge("hrot", self.costs.hrot(level) * len(nonzero), len(nonzero))
                for step in nonzero:
                    outputs[step] = self._rotate_no_charge(a, step)
                return outputs
            else:
                shared = self.costs.ks_decompose(level)
                per = self.costs.ks_inner(level)
                if hoisting == "single":
                    per += self.costs.ks_moddown(level)
                    shared += 0.0
                else:  # double hoisting defers mod-down to the giant step
                    shared += self.costs.ks_moddown(level)
                self.ledger.charge(
                    "hrot_hoisted", shared + per * len(nonzero), len(nonzero)
                )
            outputs.update(self._rotate_group_no_charge(a, nonzero))
        return outputs

    def rotate_hoisted(self, a, steps: Sequence[int]) -> Dict[int, object]:
        """Rotate one ciphertext by many amounts with a shared (hoisted)
        key-switch decomposition, charged at the double-hoisted price.

        This is the primitive :class:`repro.core.packing.matvec.PackedMatVec`
        baby steps execute against; exact backends override the
        underlying :meth:`_rotate_group_no_charge` so the decomposition
        really is computed once (not just priced once).
        """
        return self.rotate_group(a, steps, hoisting="double")

    def _rotate_group_no_charge(self, a, steps: Sequence[int]) -> Dict[int, object]:
        """Multi-rotation primitive without ledger charges.

        ``steps`` are unique, nonzero, already reduced mod slot count.
        Default: one independent rotation per step; backends with a real
        hoisted path override this.
        """
        return {step: self._rotate_no_charge(a, step) for step in steps}

    # -- fused matvec (deferred mod-down, Section 3.3) --------------------------
    @property
    def supports_fused_matvec(self) -> bool:
        """Whether this backend overrides :meth:`_matvec_fused_no_charge`.

        Callers check this before building the fused term vectors so
        backends without a fused path never pay the preparation cost.
        """
        return (
            type(self)._matvec_fused_no_charge
            is not FheBackend._matvec_fused_no_charge
        )

    @property
    def supports_shared_conjugation(self) -> bool:
        """Whether :meth:`matvec_fused` accepts conjugation-composed
        offsets ``("conj", k)`` — conjugate the input, then rotate by
        ``k``, as ONE Galois element riding the input's shared digit
        decomposition (one extra inner product; the deferred mod-down
        stays shared).  The bootstrap CoeffToSlot path uses this to
        eliminate its standalone conjugation key switch.  Backends with
        a fused path are expected to support it; the default mirrors
        :attr:`supports_fused_matvec`.
        """
        return self.supports_fused_matvec

    def matvec_fused(
        self,
        in_cts: Sequence,
        terms: Dict,
        num_out: int,
        pt_scale: ScaleLike,
        pt_cache: Optional[Dict] = None,
        charged_rotations: Optional[int] = None,
    ) -> Optional[List]:
        """Fully-hoisted diagonal accumulation with deferred mod-down.

        ``terms`` maps ``(out_block, in_block, offset)`` to the slot
        vector of that diagonal (the *original* diagonal — the giant
        pre-rotation is already folded out, so every offset rotates the
        input ciphertext directly and all rotations of one input share a
        single key-switch digit decomposition).  An offset is a plain
        rotation step (``int``) or a conjugation-composed Galois element
        ``("conj", k)`` — conjugate the input, then rotate by ``k`` —
        which shares the same decomposition (see
        :attr:`supports_shared_conjugation`).  Exact backends keep the
        per-offset products in the extended Q_l * P basis and mod down
        once per output block (Bossuat et al. [11] double hoisting).

        Returns one pre-rescale ciphertext per output block at scale
        ``input_scale * pt_scale`` (``None`` for blocks with no terms),
        or ``None`` when the backend has no fused path — callers then
        fall back to the per-rotation BSGS pipeline.

        ``pt_cache`` persists encoded/lifted weight plaintexts across
        executions.  Backends key its entries by term id *plus*
        :meth:`plaintext_cache_key`, so one dict may be shared across
        levels, scales, and key-switch configurations (the serve-many
        artifact preload does exactly that) without ever serving a
        stale encode.  ``charged_rotations`` overrides
        the rotation *count* written to the ledger (the matvec layer
        passes its BSGS baby+giant count so "# Rots" accounting stays
        comparable with compile-time predictions and the paper tables);
        the *seconds* charged are always the fused price.
        """
        outs = self._matvec_fused_no_charge(in_cts, terms, num_out, pt_scale, pt_cache)
        if outs is None:
            return None
        level = self.level_of(in_cts[0])
        num_offsets = len({(bi, off) for (_, bi, off) in terms if off})
        # Only blocks with nonzero offsets pay decompose / mod-down
        # (offset-0 terms are plain pt * ct products, no key switch).
        num_in_used = len({bi for (_, bi, off) in terms if off})
        num_out_used = len({bo for (bo, _, off) in terms if off})
        rot_count = num_offsets if charged_rotations is None else charged_rotations
        self.ledger.charge(
            "hrot_hoisted",
            self.costs.matvec_fused_rotations(
                level, num_offsets, num_in_used, num_out_used
            ),
            rot_count,
        )
        self.ledger.charge(
            "pmult", self.costs.pmult_fused(level) * len(terms), len(terms)
        )
        num_out_blocks = len({bo for (bo, _, _) in terms})
        adds = max(0, len(terms) - num_out_blocks)
        if adds:
            self.ledger.charge("hadd", self.costs.hadd(level) * adds, adds)
        return outs

    def _matvec_fused_no_charge(
        self,
        in_cts: Sequence,
        terms: Dict,
        num_out: int,
        pt_scale: ScaleLike,
        pt_cache: Optional[Dict] = None,
    ) -> Optional[List]:
        """Fused-matvec primitive without ledger charges.

        Default: unsupported (``None``), which makes :meth:`matvec_fused`
        report "no fused path" and callers fall back.
        """
        return None

    # -- fused rotate-and-sum fold (Gazelle hybrid, Section 8.2) ---------------
    @property
    def supports_fused_fold(self) -> bool:
        """Whether this backend overrides :meth:`_rotate_sum_no_charge`."""
        return (
            type(self)._rotate_sum_no_charge
            is not FheBackend._rotate_sum_no_charge
        )

    def rotate_sum_hoisted(
        self, a, steps: Sequence[int], charged_rotations: Optional[int] = None
    ):
        """Return ``a + sum_s rot(a, s)`` with one hoisted key switch.

        (Named to avoid confusion with
        :func:`repro.core.attention.rotate_sum`, the sequential
        slot-folding tree — which routes through this primitive when
        the backend supports it.)

        The Gazelle rotate-and-sum fold ``t -> t + rot(t, shift)``
        cannot be hoisted directly (each fold rotates a *different*
        accumulated ciphertext), but its composition expands into
        rotations of the original ciphertext by every subset sum of the
        shifts — and those *do* share a single digit decomposition plus
        one deferred mod-down (the same double-hoisting trick as
        :meth:`matvec_fused`).  Callers pass the expanded nonzero steps.

        ``charged_rotations`` overrides the rotation *count* written to
        the ledger (the matvec layer passes ``len(fold_shifts)`` so
        "# Rots" stays comparable with the sequential fold and the
        compile-time plan); the *seconds* charged are the fused price.
        Backends without a fused path fall back to per-step hoisted
        rotations and additions.
        """
        nonzero = sorted({s % self.slot_count for s in steps} - {0})
        if not nonzero:
            return a
        out = self._rotate_sum_no_charge(a, nonzero)
        if out is None:
            rotated = self.rotate_group(a, nonzero)
            result = a
            for step in nonzero:
                result = self.add(result, rotated[step])
            return result
        level = self.level_of(a)
        rot_count = len(nonzero) if charged_rotations is None else charged_rotations
        self.ledger.charge(
            "hrot_hoisted",
            self.costs.matvec_fused_rotations(level, len(nonzero)),
            rot_count,
        )
        self.ledger.charge(
            "hadd", self.costs.hadd(level) * len(nonzero), len(nonzero)
        )
        return out

    def _rotate_sum_no_charge(self, a, steps: Sequence[int]):
        """Fused rotate-and-sum primitive without ledger charges.

        ``steps`` are unique, nonzero, already reduced mod slot count.
        Default: unsupported (``None``); :meth:`rotate_sum` then falls
        back to per-step hoisted rotations.
        """
        return None

    @abc.abstractmethod
    def _rotate_no_charge(self, a, steps: int):
        """Rotation primitive without ledger charges (used by rotate_group)."""
