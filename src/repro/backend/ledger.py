"""Operation ledger: counts and modeled latency for every FHE op.

Every backend charges its operations here.  Benchmarks read rotation
counts (paper Tables 2-4), bootstrap counts, and accumulated modeled
latency from the ledger, optionally broken down by phase label (e.g.
per layer) so conv-time vs bootstrap-time splits can be reported
(paper Table 4).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, Optional


class OpLedger:
    """Mutable accounting of homomorphic operation counts and latency."""

    TRACKED_OPS = (
        "hadd",
        "padd",
        "pmult",
        "hmult",
        "hrot",
        "hrot_hoisted",
        "bootstrap",
        "rescale",
        "encode",
        "keyswitch",
    )

    def __init__(self):
        self.counts: Counter = Counter()
        self.seconds: float = 0.0
        self.seconds_by_phase: Dict[str, float] = defaultdict(float)
        self.counts_by_phase: Dict[str, Counter] = defaultdict(Counter)
        self._phase: Optional[str] = None

    # -- phases ----------------------------------------------------------
    def set_phase(self, phase: Optional[str]) -> None:
        """Label subsequent charges (e.g. 'conv1', 'bootstrap', 'act2')."""
        self._phase = phase

    class _PhaseScope:
        def __init__(self, ledger: "OpLedger", phase: str):
            self.ledger = ledger
            self.phase = phase
            self.previous: Optional[str] = None

        def __enter__(self):
            self.previous = self.ledger._phase
            self.ledger.set_phase(self.phase)
            return self.ledger

        def __exit__(self, *exc):
            self.ledger.set_phase(self.previous)
            return False

    def phase(self, name: str) -> "OpLedger._PhaseScope":
        return OpLedger._PhaseScope(self, name)

    # -- charging ----------------------------------------------------------
    def charge(self, op: str, seconds: float, count: int = 1) -> None:
        self.counts[op] += count
        self.seconds += seconds
        if self._phase is not None:
            self.seconds_by_phase[self._phase] += seconds
            self.counts_by_phase[self._phase][op] += count

    # -- queries -------------------------------------------------------------
    @property
    def rotations(self) -> int:
        """Total ciphertext rotations (hoisted rotations count once each,
        matching how the paper reports '# Rots')."""
        return self.counts["hrot"] + self.counts["hrot_hoisted"]

    @property
    def bootstraps(self) -> int:
        return self.counts["bootstrap"]

    @property
    def multiplies(self) -> int:
        return self.counts["pmult"] + self.counts["hmult"]

    def phase_seconds(self, prefix: str) -> float:
        """Sum of modeled seconds across phases starting with ``prefix``."""
        return sum(
            secs for phase, secs in self.seconds_by_phase.items()
            if phase.startswith(prefix)
        )

    def snapshot(self) -> Dict[str, float]:
        from repro.obs.summary import summarize_ledger

        return summarize_ledger(self)

    def merge(self, other: "OpLedger") -> None:
        """Fold another ledger's charges into this one.

        The serving runtime gives every request a scratch ledger (so
        per-request op counts and modeled latency are attributable) and
        merges it into the server's cumulative ledger afterwards.
        """
        self.counts.update(other.counts)
        self.seconds += other.seconds
        for phase, secs in other.seconds_by_phase.items():
            self.seconds_by_phase[phase] += secs
        for phase, counter in other.counts_by_phase.items():
            self.counts_by_phase[phase].update(counter)

    def reset(self) -> None:
        self.counts.clear()
        self.seconds = 0.0
        self.seconds_by_phase.clear()
        self.counts_by_phase.clear()
        self._phase = None

    def __repr__(self) -> str:
        return (
            f"OpLedger(rots={self.rotations}, boots={self.bootstraps}, "
            f"pmult={self.counts['pmult']}, hmult={self.counts['hmult']}, "
            f"seconds={self.seconds:.3f})"
        )


class LatencyHistogram:
    """Log-bucketed latency histogram (serving telemetry).

    Buckets are powers of two of ``base_seconds``: bucket i counts
    observations in [base * 2^i, base * 2^(i+1)).  Cheap to merge and
    to read percentiles from — the shape production serving stacks
    track per-op and per-request latency with.
    """

    def __init__(self, base_seconds: float = 1e-4, num_buckets: int = 32):
        self.base = base_seconds
        self.buckets = [0] * num_buckets
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds <= 0.0:
            index = 0
        else:
            index = int(max(0.0, math.log2(seconds / self.base)))
        self.buckets[min(index, len(self.buckets) - 1)] += 1

    def merge(self, other: "LatencyHistogram") -> None:
        if other.base != self.base or len(other.buckets) != len(self.buckets):
            raise ValueError("histogram shapes differ")
        self.count += other.count
        self.total += other.total
        for i, c in enumerate(other.buckets):
            self.buckets[i] += c

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper edge of the bucket holding the q-quantile observation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.buckets):
            seen += c
            if seen >= target:
                return self.base * (2.0 ** (i + 1))
        return self.base * (2.0 ** len(self.buckets))

    def snapshot(self) -> Dict[str, float]:
        from repro.obs.summary import summarize_histogram

        return summarize_histogram(self)
