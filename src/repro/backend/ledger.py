"""Operation ledger: counts and modeled latency for every FHE op.

Every backend charges its operations here.  Benchmarks read rotation
counts (paper Tables 2-4), bootstrap counts, and accumulated modeled
latency from the ledger, optionally broken down by phase label (e.g.
per layer) so conv-time vs bootstrap-time splits can be reported
(paper Table 4).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Optional


class OpLedger:
    """Mutable accounting of homomorphic operation counts and latency."""

    TRACKED_OPS = (
        "hadd",
        "padd",
        "pmult",
        "hmult",
        "hrot",
        "hrot_hoisted",
        "bootstrap",
        "rescale",
        "encode",
        "keyswitch",
    )

    def __init__(self):
        self.counts: Counter = Counter()
        self.seconds: float = 0.0
        self.seconds_by_phase: Dict[str, float] = defaultdict(float)
        self.counts_by_phase: Dict[str, Counter] = defaultdict(Counter)
        self._phase: Optional[str] = None

    # -- phases ----------------------------------------------------------
    def set_phase(self, phase: Optional[str]) -> None:
        """Label subsequent charges (e.g. 'conv1', 'bootstrap', 'act2')."""
        self._phase = phase

    class _PhaseScope:
        def __init__(self, ledger: "OpLedger", phase: str):
            self.ledger = ledger
            self.phase = phase
            self.previous: Optional[str] = None

        def __enter__(self):
            self.previous = self.ledger._phase
            self.ledger.set_phase(self.phase)
            return self.ledger

        def __exit__(self, *exc):
            self.ledger.set_phase(self.previous)
            return False

    def phase(self, name: str) -> "OpLedger._PhaseScope":
        return OpLedger._PhaseScope(self, name)

    # -- charging ----------------------------------------------------------
    def charge(self, op: str, seconds: float, count: int = 1) -> None:
        self.counts[op] += count
        self.seconds += seconds
        if self._phase is not None:
            self.seconds_by_phase[self._phase] += seconds
            self.counts_by_phase[self._phase][op] += count

    # -- queries -------------------------------------------------------------
    @property
    def rotations(self) -> int:
        """Total ciphertext rotations (hoisted rotations count once each,
        matching how the paper reports '# Rots')."""
        return self.counts["hrot"] + self.counts["hrot_hoisted"]

    @property
    def bootstraps(self) -> int:
        return self.counts["bootstrap"]

    @property
    def multiplies(self) -> int:
        return self.counts["pmult"] + self.counts["hmult"]

    def phase_seconds(self, prefix: str) -> float:
        """Sum of modeled seconds across phases starting with ``prefix``."""
        return sum(
            secs for phase, secs in self.seconds_by_phase.items()
            if phase.startswith(prefix)
        )

    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {op: self.counts[op] for op in self.TRACKED_OPS}
        out["seconds"] = self.seconds
        out["rotations"] = self.rotations
        return out

    def reset(self) -> None:
        self.counts.clear()
        self.seconds = 0.0
        self.seconds_by_phase.clear()
        self.counts_by_phase.clear()
        self._phase = None

    def __repr__(self) -> str:
        return (
            f"OpLedger(rots={self.rotations}, boots={self.bootstraps}, "
            f"pmult={self.counts['pmult']}, hmult={self.counts['hmult']}, "
            f"seconds={self.seconds:.3f})"
        )
