"""Fast functional CKKS simulator.

The simulator executes compiled FHE programs with the *true* SIMD
semantics (real slot vectors under numpy), while keeping the three
pieces of CKKS state the compiler reasons about exact:

- **level**: enforced exactly (ops at mismatched levels raise; running
  out of levels raises unless a bootstrap intervenes);
- **scale**: tracked as an exact ``Fraction`` so errorless scale
  management can be *asserted* rather than approximated;
- **noise**: a calibrated standard-deviation estimate that is injected
  into the values, so "FHE accuracy" and output precision-in-bits are
  measurable at paper scale.

Latency is charged from the analytical cost model (paper Figure 1).
This is the substitute for running Lattigo at N = 2^16 (see DESIGN.md):
operation counts, levels, scales, and noise are faithful; wall-clock is
modeled.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

import numpy as np

from repro.backend.costs import CostModel
from repro.backend.interface import FheBackend, ScaleLike
from repro.ckks.galois import galois_offset_key
from repro.ckks.params import CkksParameters
from repro.utils.rng import SeededRng


@dataclass
class SimPlaintext:
    """Encoded vector with level/scale metadata."""

    values: np.ndarray
    level: int
    scale: Fraction


@dataclass
class SimCiphertext:
    """Simulated ciphertext: exact values + level/scale + noise estimate.

    ``noise_std`` is the modeled standard deviation of per-slot error
    already *included* in ``values`` (noise is injected at the moment an
    operation creates it, so values always reflect accumulated error).
    """

    values: np.ndarray
    level: int
    scale: Fraction
    noise_std: float

    def copy(self) -> "SimCiphertext":
        return SimCiphertext(self.values.copy(), self.level, self.scale, self.noise_std)


class SimBackend(FheBackend):
    """Functional CKKS simulation with exact level/scale bookkeeping.

    Args:
        params: CKKS parameters (production-shaped sets are fine here).
        seed: RNG seed for injected noise.
        noise_free: disable noise injection (for debugging/dissecting).
        boot_precision_bits: bootstrap output precision (Bossuat et al.).
    """

    def __init__(
        self,
        params: CkksParameters,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
        noise_free: bool = False,
        boot_precision_bits: float = 20.0,
        boot_range_slack: float = 1.5,
    ):
        super().__init__(params, cost_model)
        self.rng = SeededRng(seed)
        self.noise_free = noise_free
        self.boot_precision_bits = boot_precision_bits
        # Real CKKS bootstrapping tolerates modest overshoot beyond the
        # nominal [-1, 1] range (the EvalMod sine interval has margin);
        # gross violations still fail loudly.
        self.boot_range_slack = boot_range_slack
        # Fresh-encryption noise std in *message* units, calibrated to the
        # toy backend: encryption noise ~ sigma * sqrt(2N/3) coefficients
        # -> slot error ~ that times sqrt(N), divided by Delta.
        n = params.ring_degree
        coeff_err = params.sigma * np.sqrt(2.0 * n / 3.0)
        self._fresh_noise = coeff_err * np.sqrt(n) / float(params.scale)
        # Rounding error of one rescale, relative to the new scale.
        self._rescale_noise = np.sqrt(n / 12.0) * np.sqrt(n) / float(params.scale)
        self._ks_noise = 0.5 * self._fresh_noise

    # -- helpers -----------------------------------------------------------
    def _noise(self, shape, std: float) -> np.ndarray:
        if self.noise_free or std <= 0.0:
            return np.zeros(shape)
        return self.rng.normal(0.0, std, shape)

    def _pad(self, values: Sequence[float]) -> np.ndarray:
        arr = np.zeros(self.slot_count, dtype=np.float64)
        vals = np.asarray(values, dtype=np.float64)
        if vals.size > self.slot_count:
            raise ValueError(f"{vals.size} values exceed {self.slot_count} slots")
        arr[: vals.size] = vals
        return arr

    # -- data movement ---------------------------------------------------
    def encode(self, values, level: int, scale: ScaleLike) -> SimPlaintext:
        if level < 0 or level > self.params.max_level:
            raise ValueError(f"level {level} out of range")
        return SimPlaintext(self._pad(values), level, Fraction(scale))

    def encrypt(self, plaintext: SimPlaintext) -> SimCiphertext:
        values = plaintext.values + self._noise(self.slot_count, self._fresh_noise)
        return SimCiphertext(values, plaintext.level, plaintext.scale, self._fresh_noise)

    def decrypt(self, ciphertext: SimCiphertext) -> np.ndarray:
        return ciphertext.values.copy()

    def level_of(self, ciphertext: SimCiphertext) -> int:
        return ciphertext.level

    def scale_of(self, ciphertext: SimCiphertext) -> Fraction:
        return ciphertext.scale

    # -- arithmetic -----------------------------------------------------------
    def _check(self, a: SimCiphertext, b, op: str, check_scale: bool) -> None:
        if a.level != b.level:
            raise ValueError(f"{op}: level mismatch {a.level} vs {b.level}")
        if check_scale and a.scale != b.scale:
            raise ValueError(f"{op}: scale mismatch {a.scale} vs {b.scale}")

    def add(self, a: SimCiphertext, b: SimCiphertext) -> SimCiphertext:
        self._check(a, b, "HAdd", check_scale=True)
        self.ledger.charge("hadd", self.costs.hadd(a.level))
        std = float(np.hypot(a.noise_std, b.noise_std))
        return SimCiphertext(a.values + b.values, a.level, a.scale, std)

    def sub(self, a: SimCiphertext, b: SimCiphertext) -> SimCiphertext:
        self._check(a, b, "HSub", check_scale=True)
        self.ledger.charge("hadd", self.costs.hadd(a.level))
        std = float(np.hypot(a.noise_std, b.noise_std))
        return SimCiphertext(a.values - b.values, a.level, a.scale, std)

    def add_plain(self, a: SimCiphertext, p: SimPlaintext) -> SimCiphertext:
        self._check(a, p, "PAdd", check_scale=True)
        self.ledger.charge("padd", self.costs.hadd(a.level))
        return SimCiphertext(a.values + p.values, a.level, a.scale, a.noise_std)

    def negate(self, a: SimCiphertext) -> SimCiphertext:
        return SimCiphertext(-a.values, a.level, a.scale, a.noise_std)

    def mul_plain(self, a: SimCiphertext, p: SimPlaintext) -> SimCiphertext:
        """PMult: values multiply; scales multiply (paper Section 2.5.2)."""
        self._check(a, p, "PMult", check_scale=False)
        self.ledger.charge("pmult", self.costs.pmult(a.level))
        scale_mag = float(np.max(np.abs(p.values))) if p.values.size else 0.0
        std = a.noise_std * max(scale_mag, 1e-30)
        return SimCiphertext(a.values * p.values, a.level, a.scale * p.scale, std)

    def mul(self, a: SimCiphertext, b: SimCiphertext) -> SimCiphertext:
        self._check(a, b, "HMult", check_scale=False)
        self.ledger.charge("hmult", self.costs.hmult(a.level))
        mag_a = float(np.max(np.abs(a.values))) if a.values.size else 0.0
        mag_b = float(np.max(np.abs(b.values))) if b.values.size else 0.0
        std = float(
            np.hypot(a.noise_std * max(mag_b, 1e-30), b.noise_std * max(mag_a, 1e-30))
        )
        std = float(np.hypot(std, self._ks_noise))
        values = a.values * b.values + self._noise(self.slot_count, self._ks_noise)
        return SimCiphertext(values, a.level, a.scale * b.scale, std)

    def rescale(self, a: SimCiphertext) -> SimCiphertext:
        """Drop one level; divide the scale by that level's prime exactly."""
        if a.level == 0:
            raise ValueError("cannot rescale at level 0: bootstrap required")
        self.ledger.charge("rescale", self.costs.rescale(a.level))
        prime = self.params.data_primes[a.level]
        new_scale = a.scale / prime
        added = self._rescale_noise
        values = a.values + self._noise(self.slot_count, added)
        std = float(np.hypot(a.noise_std, added))
        out = SimCiphertext(values, a.level - 1, new_scale, std)
        self._note_noise("rescale", a, out)
        return out

    def level_down(self, a: SimCiphertext, target_level: int) -> SimCiphertext:
        if target_level > a.level:
            raise ValueError("cannot raise level without bootstrapping")
        if target_level < 0:
            raise ValueError("negative level")
        out = SimCiphertext(a.values.copy(), target_level, a.scale, a.noise_std)
        if target_level != a.level:
            self._note_noise("mod_down", a, out)
        return out

    def rotate(self, a: SimCiphertext, steps: int) -> SimCiphertext:
        steps %= self.slot_count
        if steps == 0:
            return a
        self.ledger.charge("hrot", self.costs.hrot(a.level))
        return self._rotate_no_charge(a, steps)

    def _rotate_no_charge(self, a: SimCiphertext, steps: int) -> SimCiphertext:
        values = np.roll(a.values, -steps) + self._noise(self.slot_count, self._ks_noise)
        std = float(np.hypot(a.noise_std, self._ks_noise))
        return SimCiphertext(values, a.level, a.scale, std)

    def conjugate(self, a: SimCiphertext) -> SimCiphertext:
        """Slot-wise conjugation: the identity on the simulator's real
        slot vectors, but still a Galois key switch (priced and noised
        like a rotation)."""
        self.ledger.charge("hrot", self.costs.hrot(a.level))
        values = a.values + self._noise(self.slot_count, self._ks_noise)
        std = float(np.hypot(a.noise_std, self._ks_noise))
        return SimCiphertext(values, a.level, a.scale, std)

    def _matvec_fused_no_charge(
        self,
        in_cts: Sequence[SimCiphertext],
        terms,
        num_out: int,
        pt_scale: ScaleLike,
        pt_cache=None,
    ) -> Optional[list]:
        """Functional fused matvec: exact SIMD semantics, fused noise.

        Mirrors the exact backend's fused path: every diagonal offset
        rotates the input directly (one hoisted decomposition per input
        block) and each output block pays a single deferred mod-down, so
        one key-switch noise term is injected per distinct offset plus
        one for the mod-down — slightly *less* noise than the per-baby
        mod-downs of the unfused path, matching Bossuat et al. [11].

        Conjugation-composed offsets ``("conj", k)`` are supported: on
        the simulator's real slot vectors conjugation is the identity,
        so the element contributes like a plain rotation by ``k`` while
        still counting as a distinct key-switch inner product in the
        noise model (``("conj", 0)`` is a real Galois map, unlike plain
        offset 0).
        """
        level = in_cts[0].level
        scale = in_cts[0].scale
        for ct in in_cts:
            if ct.level != level:
                raise ValueError(f"matvec: level mismatch {ct.level} vs {level}")
            if ct.scale != scale:
                raise ValueError(f"matvec: scale mismatch {ct.scale} vs {scale}")
        out_scale = scale * Fraction(pt_scale)
        outputs = []
        for bo in range(num_out):
            bo_terms = sorted(
                ((bi, off) for (bo2, bi, off) in terms if bo2 == bo),
                key=lambda t: (t[0], galois_offset_key(t[1])),
            )
            if not bo_terms:
                outputs.append(None)
                continue
            values = np.zeros(self.slot_count)
            var = 0.0
            # One batched gather replaces the per-term np.roll calls:
            # rolled[t, i] = in_cts[bi].values[(i + step) % S], which is
            # np.roll(x, -step) bit-for-bit.  The term additions stay
            # sequential (same order as before) so float results are
            # bit-identical to the per-term loop.
            idx = np.arange(self.slot_count)
            step_col = np.array(
                [[off[1] if isinstance(off, tuple) else off] for _, off in bo_terms]
            )
            src = np.stack([in_cts[bi].values for bi, _ in bo_terms])
            rolled = src[
                np.arange(len(bo_terms))[:, None],
                (idx[None, :] + step_col) % self.slot_count,
            ]
            for t, (bi, off) in enumerate(bo_terms):
                vec = terms[(bo, bi, off)]
                values = values + vec * rolled[t]
                mag = float(np.max(np.abs(vec))) if np.size(vec) else 0.0
                var += (in_cts[bi].noise_std * max(mag, 1e-30)) ** 2
            num_rots = len({(bi, off) for bi, off in bo_terms if off})
            # One ks noise per distinct offset plus one for the deferred
            # mod-down; blocks without rotations perform no key switch.
            ks_std = self._ks_noise * np.sqrt(num_rots + 1.0) if num_rots else 0.0
            values = values + self._noise(self.slot_count, ks_std)
            std = float(np.sqrt(var + ks_std**2))
            outputs.append(SimCiphertext(values, level, out_scale, std))
        return outputs

    def _rotate_sum_no_charge(self, a: SimCiphertext, steps) -> SimCiphertext:
        """Functional fused rotate-and-sum fold with the fused noise
        model: one key-switch noise term per rotation plus one for the
        single deferred mod-down (the sequential fold instead compounds
        a full key switch per fold step)."""
        values = a.values.copy()
        # Batched gather of every rotation (bit-identical to np.roll);
        # additions stay sequential to keep float bit-identity.
        idx = np.arange(self.slot_count)
        step_col = np.array([[s] for s in steps])
        if len(steps):
            rolled = a.values[(idx[None, :] + step_col) % self.slot_count]
            for row in rolled:
                values = values + row
        num_rots = len(steps)
        ks_std = self._ks_noise * np.sqrt(num_rots + 1.0)
        values = values + self._noise(self.slot_count, ks_std)
        std = float(np.sqrt((num_rots + 1) * a.noise_std**2 + ks_std**2))
        return SimCiphertext(values, a.level, a.scale, std)

    def bootstrap(self, a: SimCiphertext) -> SimCiphertext:
        """Refresh to L_eff; inputs must be within [-1, 1] (Section 6)."""
        max_abs = float(np.max(np.abs(a.values))) if a.values.size else 0.0
        if max_abs > self.boot_range_slack:
            raise ValueError(
                f"bootstrap input out of range (max |slot| = {max_abs:.4f}); "
                "range estimation should have scaled this down"
            )
        self.ledger.charge("bootstrap", self.costs.bootstrap())
        std = 2.0 ** (-self.boot_precision_bits)
        values = a.values + self._noise(self.slot_count, std)
        out = SimCiphertext(
            values,
            self.params.effective_level,
            Fraction(self.params.scale),
            float(np.hypot(a.noise_std, std)),
        )
        self._note_noise("bootstrap", a, out)
        return out
