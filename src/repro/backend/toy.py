"""Exact backend: real RNS-CKKS on small rings behind the common interface.

Wraps :class:`repro.ckks.context.CkksContext`.  Ledger charges use the
same analytical cost model as the simulator so counts and modeled
latencies are comparable; actual wall-clock of the toy arithmetic is
irrelevant (tiny rings).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import kernels
from repro.backend.costs import CostModel
from repro.backend.interface import FheBackend, ScaleLike
from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.context import CkksContext
from repro.ckks.galois import galois_offset_key
from repro.ckks.params import CkksParameters
from repro.rns.poly import RnsPolynomial


class ToyBackend(FheBackend):
    """Exact CKKS execution for validation-scale programs."""

    def __init__(
        self,
        params: CkksParameters,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
        real_bootstrap: bool = False,
    ):
        super().__init__(params, cost_model)
        self.context = CkksContext(params, seed=seed)
        self._bootstrapper = None
        if real_bootstrap:
            from repro.ckks.bootstrap import CkksBootstrapper

            self._bootstrapper = CkksBootstrapper(self)

    # -- data movement ---------------------------------------------------
    def encode(self, values: Sequence[float], level: int, scale: ScaleLike) -> Plaintext:
        return self.context.encode(values, level=level, scale=Fraction(scale))

    def encrypt(self, plaintext: Plaintext) -> Ciphertext:
        return self.context.encrypt(plaintext)

    def decrypt(self, ciphertext: Ciphertext) -> np.ndarray:
        return self.context.decrypt_decode(ciphertext)

    def level_of(self, ciphertext: Ciphertext) -> int:
        return ciphertext.level

    def scale_of(self, ciphertext: Ciphertext) -> Fraction:
        return ciphertext.scale

    # -- arithmetic --------------------------------------------------------
    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self.ledger.charge("hadd", self.costs.hadd(a.level))
        return self.context.add(a, b)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self.ledger.charge("hadd", self.costs.hadd(a.level))
        return self.context.sub(a, b)

    def add_plain(self, a: Ciphertext, p: Plaintext) -> Ciphertext:
        self.ledger.charge("padd", self.costs.hadd(a.level))
        return self.context.add_plain(a, p)

    def negate(self, a: Ciphertext) -> Ciphertext:
        return self.context.negate(a)

    def mul_plain(self, a: Ciphertext, p: Plaintext) -> Ciphertext:
        self.ledger.charge("pmult", self.costs.pmult(a.level))
        return self.context.mul_plain(a, p)

    def mul(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self.ledger.charge("hmult", self.costs.hmult(a.level))
        return self.context.mul(a, b)

    def rescale(self, a: Ciphertext) -> Ciphertext:
        self.ledger.charge("rescale", self.costs.rescale(a.level))
        out = self.context.rescale(a)
        self._note_noise("rescale", a, out)
        return out

    def level_down(self, a: Ciphertext, target_level: int) -> Ciphertext:
        out = self.context.level_down(a, target_level)
        if target_level != a.level:
            self._note_noise("mod_down", a, out)
        return out

    def rotate(self, a: Ciphertext, steps: int) -> Ciphertext:
        steps %= self.slot_count
        if steps == 0:
            return a
        self.ledger.charge("hrot", self.costs.hrot(a.level))
        return self.context.rotate(a, steps)

    def _rotate_no_charge(self, a: Ciphertext, steps: int) -> Ciphertext:
        return self.context.rotate(a, steps)

    def _rotate_group_no_charge(self, a: Ciphertext, steps) -> dict:
        """Real hoisting: decompose c1 once, reuse it for every step."""
        return self.context.rotate_hoisted(a, steps)

    def conjugate(self, a: Ciphertext) -> Ciphertext:
        self.ledger.charge("hrot", self.costs.hrot(a.level))
        return self.context.conjugate(a)

    def _matvec_fused_no_charge(
        self,
        in_cts: Sequence[Ciphertext],
        terms: Dict,
        num_out: int,
        pt_scale: ScaleLike,
        pt_cache: Optional[Dict] = None,
        _max_chunk: Optional[int] = None,
    ) -> Optional[List[Optional[Ciphertext]]]:
        """Exact fused diagonal accumulation (true double hoisting).

        Every Galois offset of an input ciphertext — plain rotations
        *and* conjugation-composed ``("conj", k)`` elements — reuses one
        digit decomposition (:meth:`CkksContext.rotate_hoisted_raw`);
        the per-offset products against Q_l * P-lifted weight plaintexts
        are summed lazily in int64 (the chunked-reduction trick of
        ``_ks_inner``) and a single ``_ks_moddown`` per output block
        replaces the per-rotation mod-downs of the unfused path.

        The per-term Python loop only *collects* terms; the arithmetic
        runs as grouped stacked product-sums per output block (rotated
        terms against their raw accumulators and transformed c0s, plain
        terms against the input c0/c1 pair), each one dispatch through
        the ``ks_inner`` kernel.  Modular sums are invariant under this
        regrouping, so outputs stay bit-identical to the per-term loop;
        ``_max_chunk`` forces the chunked int64 fallback for tests.
        """
        ctx = self.context
        level = in_cts[0].level
        scale = in_cts[0].scale
        for ct in in_cts:
            if ct.level != level:
                raise ValueError(f"level mismatch: {ct.level} vs {level}")
            if ct.scale != scale:
                raise ValueError(f"scale mismatch: {ct.scale} vs {scale}")
            if ct.c2 is not None:
                raise ValueError("relinearize before a matvec")
        basis = ctx.basis
        ks_chain = ctx._ks_chain(level)
        data_primes = ctx._data_chain(level)
        mod_ks = basis.moduli_column(ks_chain)
        mod_q = basis.moduli_column(data_primes)
        cache = {} if pt_cache is None else pt_cache
        pt_scale = Fraction(pt_scale)
        # Entries are keyed by term id + the full encode fingerprint, so
        # a shared/preloaded cache can never serve a stale encode to a
        # request entering at a different level, scale, or ks config.
        cache_fp = self.plaintext_cache_key(level, pt_scale)

        # One shared decomposition per input block, raw (pre mod-down).
        offsets_by_bi: Dict[int, set] = {}
        for (_, bi, off) in terms:
            if off:
                offsets_by_bi.setdefault(bi, set()).add(off)
        raw = {
            bi: ctx.rotate_hoisted_raw(in_cts[bi], offs, _max_chunk)
            for bi, offs in offsets_by_bi.items()
        }

        # Lazy int64 accumulation: `chunk` products fit between
        # reductions (entries stay < max_q after each `%` pass).
        chunk = kernels.lazy_reduction_chunk(max(ks_chain), _max_chunk)
        ks_inner = kernels.get("ks_inner")
        outputs: List[Optional[Ciphertext]] = []
        for bo in range(num_out):
            bo_terms = sorted(
                ((bi, off) for (bo2, bi, off), _ in terms.items() if bo2 == bo),
                key=lambda t: (t[0], galois_offset_key(t[1])),
            )
            if not bo_terms:
                outputs.append(None)
                continue
            # Collect terms into two groups; all arithmetic below runs
            # as stacked product-sums over the term axis.
            rot_pts: List[np.ndarray] = []
            rot_exts: List[np.ndarray] = []
            rot0s: List[np.ndarray] = []
            rot_accs: List[np.ndarray] = []
            plain_pts: List[np.ndarray] = []
            plain_c0s: List[np.ndarray] = []
            plain_c1s: List[np.ndarray] = []
            for bi, off in bo_terms:
                entry = cache.get((bo, bi, off, cache_fp))
                if entry is None:
                    pt = ctx.encode(terms[(bo, bi, off)], level=level, scale=pt_scale)
                    pt_ext = (
                        pt.poly.extend_primes(ks_chain).data if off else None
                    )
                    entry = (pt, pt_ext)
                    cache[(bo, bi, off, cache_fp)] = entry
                pt, pt_ext = entry
                if off:
                    rot0, acc = raw[bi][off]
                    rot_pts.append(pt.poly.data)
                    rot_exts.append(pt_ext)
                    rot0s.append(rot0.data)
                    rot_accs.append(acc)
                else:
                    plain_pts.append(pt.poly.data)
                    plain_c0s.append(in_cts[bi].c0.data)
                    plain_c1s.append(in_cts[bi].c1.data)
            if plain_pts:
                # One (2, T_plain, limbs, N) stack: c0 and c1 rows of
                # every off==0 input against the same weight stack.
                plain_acc = ks_inner(
                    np.stack(plain_pts),
                    np.stack([np.stack(plain_c0s), np.stack(plain_c1s)]),
                    mod_q,
                    chunk,
                )
            if rot_pts:
                acc_ext = ks_inner(
                    np.stack(rot_exts),
                    np.swapaxes(np.stack(rot_accs), 0, 1),
                    mod_ks,
                    chunk,
                )
                rot_c0 = ks_inner(
                    np.stack(rot_pts), np.stack(rot0s)[None], mod_q, chunk
                )[0]
                p0, p1 = ctx._ks_moddown(acc_ext, level)
                c0_data = rot_c0 + p0.data
                c1_data = p1.data
                if plain_pts:
                    c0_data = (c0_data + plain_acc[0]) % mod_q
                    c1_data = (c1_data + plain_acc[1]) % mod_q
                else:
                    c0_data %= mod_q
            else:
                c0_data, c1_data = plain_acc[0], plain_acc[1]
            outputs.append(
                Ciphertext(
                    c0=RnsPolynomial(basis, data_primes, c0_data, is_ntt=True),
                    c1=RnsPolynomial(basis, data_primes, c1_data, is_ntt=True),
                    level=level,
                    scale=scale * pt_scale,
                    slot_count=in_cts[0].slot_count,
                )
            )
        return outputs

    def _rotate_sum_no_charge(
        self, a: Ciphertext, steps: Sequence[int]
    ) -> Optional[Ciphertext]:
        """Exact fused rotate-and-sum (the Gazelle fold, double-hoisted).

        All rotations share one digit decomposition of ``a.c1`` via
        :meth:`CkksContext.rotate_hoisted_raw`; their raw Q_l * P
        accumulators are summed lazily in int64 and a single
        :meth:`CkksContext._ks_moddown` replaces the per-fold key
        switches of the sequential path.
        """
        ctx = self.context
        level = a.level
        raw = ctx.rotate_hoisted_raw(a, steps)
        ks_chain = ctx._ks_chain(level)
        data_primes = ctx._data_chain(level)
        mod_ks = ctx.basis.moduli_column(ks_chain)
        mod_q = ctx.basis.moduli_column(data_primes)
        # Entries stay < max prime (~2^31), so len(steps)+1 summands fit
        # int64 with > 2^31 headroom: one stacked sum per accumulator,
        # no intermediate reductions needed.
        pairs = [raw[step] for step in steps]
        acc_ext = np.sum(np.stack([acc for _, acc in pairs]), axis=0)
        c0_data = a.c0.data + np.sum(np.stack([rot0.data for rot0, _ in pairs]), axis=0)
        p0, p1 = ctx._ks_moddown(acc_ext % mod_ks, level)
        c0_data = (c0_data + p0.data) % mod_q
        c1_data = (a.c1.data + p1.data) % mod_q
        return Ciphertext(
            c0=RnsPolynomial(ctx.basis, data_primes, c0_data, is_ntt=True),
            c1=RnsPolynomial(ctx.basis, data_primes, c1_data, is_ntt=True),
            level=level,
            scale=a.scale,
            slot_count=a.slot_count,
        )

    def bootstrap(self, a: Ciphertext) -> Ciphertext:
        if self._bootstrapper is not None:
            out = self._bootstrapper.bootstrap(a)
        else:
            self.ledger.charge("bootstrap", self.costs.bootstrap())
            out = self.context.bootstrap(a)
        self._note_noise("bootstrap", a, out)
        return out
