"""Exact backend: real RNS-CKKS on small rings behind the common interface.

Wraps :class:`repro.ckks.context.CkksContext`.  Ledger charges use the
same analytical cost model as the simulator so counts and modeled
latencies are comparable; actual wall-clock of the toy arithmetic is
irrelevant (tiny rings).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Sequence

import numpy as np

from repro.backend.costs import CostModel
from repro.backend.interface import FheBackend, ScaleLike
from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.context import CkksContext
from repro.ckks.params import CkksParameters


class ToyBackend(FheBackend):
    """Exact CKKS execution for validation-scale programs."""

    def __init__(
        self,
        params: CkksParameters,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
        real_bootstrap: bool = False,
    ):
        super().__init__(params, cost_model)
        self.context = CkksContext(params, seed=seed)
        self._bootstrapper = None
        if real_bootstrap:
            from repro.ckks.bootstrap import CkksBootstrapper

            self._bootstrapper = CkksBootstrapper(self)

    # -- data movement ---------------------------------------------------
    def encode(self, values: Sequence[float], level: int, scale: ScaleLike) -> Plaintext:
        return self.context.encode(values, level=level, scale=Fraction(scale))

    def encrypt(self, plaintext: Plaintext) -> Ciphertext:
        return self.context.encrypt(plaintext)

    def decrypt(self, ciphertext: Ciphertext) -> np.ndarray:
        return self.context.decrypt_decode(ciphertext)

    def level_of(self, ciphertext: Ciphertext) -> int:
        return ciphertext.level

    def scale_of(self, ciphertext: Ciphertext) -> Fraction:
        return ciphertext.scale

    # -- arithmetic --------------------------------------------------------
    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self.ledger.charge("hadd", self.costs.hadd(a.level))
        return self.context.add(a, b)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self.ledger.charge("hadd", self.costs.hadd(a.level))
        return self.context.sub(a, b)

    def add_plain(self, a: Ciphertext, p: Plaintext) -> Ciphertext:
        self.ledger.charge("padd", self.costs.hadd(a.level))
        return self.context.add_plain(a, p)

    def negate(self, a: Ciphertext) -> Ciphertext:
        return self.context.negate(a)

    def mul_plain(self, a: Ciphertext, p: Plaintext) -> Ciphertext:
        self.ledger.charge("pmult", self.costs.pmult(a.level))
        return self.context.mul_plain(a, p)

    def mul(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self.ledger.charge("hmult", self.costs.hmult(a.level))
        return self.context.mul(a, b)

    def rescale(self, a: Ciphertext) -> Ciphertext:
        self.ledger.charge("rescale", self.costs.rescale(a.level))
        return self.context.rescale(a)

    def level_down(self, a: Ciphertext, target_level: int) -> Ciphertext:
        return self.context.level_down(a, target_level)

    def rotate(self, a: Ciphertext, steps: int) -> Ciphertext:
        steps %= self.slot_count
        if steps == 0:
            return a
        self.ledger.charge("hrot", self.costs.hrot(a.level))
        return self.context.rotate(a, steps)

    def _rotate_no_charge(self, a: Ciphertext, steps: int) -> Ciphertext:
        return self.context.rotate(a, steps)

    def _rotate_group_no_charge(self, a: Ciphertext, steps) -> dict:
        """Real hoisting: decompose c1 once, reuse it for every step."""
        return self.context.rotate_hoisted(a, steps)

    def conjugate(self, a: Ciphertext) -> Ciphertext:
        self.ledger.charge("hrot", self.costs.hrot(a.level))
        return self.context.conjugate(a)

    def bootstrap(self, a: Ciphertext) -> Ciphertext:
        if self._bootstrapper is not None:
            return self._bootstrapper.bootstrap(a)
        self.ledger.charge("bootstrap", self.costs.bootstrap())
        return self.context.bootstrap(a)
