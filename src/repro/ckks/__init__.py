"""A from-scratch RNS-CKKS implementation, exact on small rings.

This package is the cryptographic substrate of the reproduction: the
datatypes (cleartext / plaintext / ciphertext), canonical-embedding
encoding, RLWE encryption, and the homomorphic evaluator (PAdd, HAdd,
PMult, HMult, HRot, conjugation, rescaling, hybrid key switching) from
paper Section 2.  Bootstrapping comes in two flavours: the *oracle*
primitive used by default (paper's external contract — level reset to
L_eff, fixed L_boot budget, calibrated noise; DESIGN.md §1) and the
*real* ModRaise -> CoeffToSlot -> EvalMod -> SlotToCoeff pipeline in
:mod:`repro.ckks.bootstrap`, which validates that contract end to end.
"""

from repro.ckks.bootstrap import (
    CkksBootstrapper,
    overflow_bound,
    scaled_sine,
    shifted_cosine,
)
from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.context import CkksContext
from repro.ckks.params import (
    CkksParameters,
    RingType,
    bootstrap_parameters,
    double_angle_bootstrap_parameters,
    toy_parameters,
)

__all__ = [
    "Ciphertext",
    "Plaintext",
    "CkksContext",
    "CkksParameters",
    "CkksBootstrapper",
    "RingType",
    "bootstrap_parameters",
    "double_angle_bootstrap_parameters",
    "overflow_bound",
    "scaled_sine",
    "shifted_cosine",
    "toy_parameters",
]
