"""Real CKKS bootstrapping: ModRaise -> CoeffToSlot -> EvalMod -> SlotToCoeff.

The paper (and this reproduction's compiler) treats bootstrapping as a
primitive with a fixed external contract: level reset to L_eff, L_boot
levels consumed, bounded added error, large latency.  The default toy
backend satisfies that contract with an oracle refresh (DESIGN.md §1).
This module implements the *actual* pipeline on top of the exact toy
CKKS arithmetic, validating that the substituted primitive behaves like
the real one:

1. **ModRaise** — the level-0 ciphertext's centered coefficients are
   reinterpreted modulo the full chain Q_L.  Over the integers the
   payload becomes ``u + q0*I`` for an overflow polynomial ``I`` bounded
   by half the secret's Hamming weight (sparse ternary secrets keep this
   window small — the classic Cheon et al. setting; Bossuat et al. [11]
   lift the sparsity requirement with a range-extension we do not need
   at toy scale).
2. **CoeffToSlot** — a homomorphic linear transform moving polynomial
   coefficients into slots.  Because the decoding matrix V = [E; conj(E)]
   satisfies V V^H = N*I, its inverse is V^H / N, and the transform is
   two BSGS diagonal-method matvecs on (ct, conj(ct)) per output half —
   exactly the machinery of paper Section 3, reused inside bootstrapping
   just as the paper reuses its matvec kernels for bootstrap transforms.
3. **EvalMod** — the modular reduction x -> x mod q0 is approximated by
   the scaled sine q0/(2*pi) * sin(2*pi*x/q0), fitted as a Chebyshev
   series and evaluated with the errorless BSGS evaluator of
   :mod:`repro.core.approx.evaluator`.
4. **SlotToCoeff** — the forward transform E moves the cleaned
   coefficients back, yielding a fresh ciphertext at scale Delta whose
   slots approximate the original message.

Use :func:`repro.ckks.params.bootstrap_parameters` for a parameter set
sized for this pipeline, and ``ToyBackend(params, real_bootstrap=True)``
to route ``bootstrap()`` calls through it.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ckks.ciphertext import Ciphertext
from repro.ckks.params import RingType
from repro.core.approx.chebyshev import ChebyshevPoly, chebyshev_fit
from repro.core.approx.evaluator import (
    cached_const_plaintext,
    evaluate_chebyshev,
)


def overflow_bound(hamming_weight: int) -> int:
    """Worst-case ||I||_inf of the ModRaise overflow polynomial.

    |c0 + c1*s| <= q0/2 * (1 + ||s||_1), so |I| <= (1 + h) / 2 + 1.
    """
    return (hamming_weight + 1) // 2 + 2


def scaled_sine(q0_over_delta: float, window: int, degree: int) -> ChebyshevPoly:
    """Chebyshev fit of G(x) = (q0 / (2*pi*Delta)) * sin(2*pi*B*x) on [-1, 1].

    With EvalMod inputs x = (u + q0*I) / (q0*B), G(x) recovers u/Delta up
    to the cubic sine linearization error ((2*pi*u/q0)^2 / 6 relative).
    The fit converges once ``degree`` exceeds ~ e*pi*B.
    """
    amplitude = q0_over_delta / (2.0 * math.pi)
    two_pi_b = 2.0 * math.pi * window

    def fn(x):
        return amplitude * np.sin(two_pi_b * np.asarray(x))

    return chebyshev_fit(fn, degree)


def shifted_cosine(window: int, double_angles: int, degree: int) -> ChebyshevPoly:
    """Chebyshev fit of cos(2*pi*(B*x - 1/4) / 2^r) on [-1, 1].

    The double-angle reduction of Han-Ki / Bossuat et al. [11]: after
    ``r = double_angles`` applications of cos(2t) = 2 cos(t)^2 - 1 the
    result equals cos(2*pi*(B*x - 1/4)) = sin(2*pi*B*x).  The base fit
    only needs degree ~ e*pi*B / 2^r, which is what makes *dense*
    (non-sparse) secrets — whose overflow window B grows with the ring
    degree — tractable.  The q0/(2*pi*Delta) output amplitude is folded
    into the SlotToCoeff matrices by the caller.
    """
    scale = 2.0 * math.pi / (1 << double_angles)

    def fn(x):
        return np.cos(scale * (window * np.asarray(x) - 0.25))

    return chebyshev_fit(fn, degree)


class CkksBootstrapper:
    """Full bootstrapping pipeline over an exact :class:`ToyBackend`.

    Args:
        backend: a :class:`repro.backend.toy.ToyBackend` whose parameters
            use a sparse ternary secret (``secret_hamming_weight > 0``)
            and the standard ring.
        eval_degree: degree of the EvalMod Chebyshev series.  Must exceed
            roughly e*pi*B / 2^double_angles for the fit to converge,
            where B is the sine window derived from the secret.
        window: override for the sine window B (defaults to the
            worst-case overflow bound plus one).
        double_angles: number of cos(2t) = 2 cos(t)^2 - 1 reduction steps
            (Han-Ki / Bossuat et al. [11]).  Zero keeps the direct
            scaled-sine fit; positive values trade one level per step
            (plus one scale-pinning level) for an exponentially smaller
            base degree.  This is the mechanism that makes dense secrets
            viable in production libraries; at the toy ring's 30-bit
            prime width the rescale-noise floor (amplified 4x per
            doubling) still requires a sparse secret here.
        fused: route the CoeffToSlot/SlotToCoeff matvecs through the
            backend's fused deferred-mod-down path (default).  False
            forces the per-rotation BSGS pipeline — the reference the
            fused transforms are benchmarked against.
        shared_conjugation: on the fused path, fold the CoeffToSlot
            conjugation into the transform itself (default): the conj
            matrices' diagonals become conjugation-composed Galois
            elements ``("conj", k)`` riding the *same* digit
            decomposition as the rotations, both output halves are
            produced by ONE ``matvec_fused`` call, and the standalone
            ``backend.conjugate`` key switch disappears.  False keeps
            the pre-sharing pipeline (explicit conjugate ciphertext,
            one fused call per half) — the baseline the end-to-end
            bootstrap benchmark gates against.
        cache_eval_consts: persist the EvalMod constant-plaintext
            encodes (Chebyshev coefficients, scale-matching ones) and
            the pipeline's re-centering ones-plaintexts across
            bootstrap calls (default).  False re-encodes every call —
            together with ``shared_conjugation=False`` this is the
            exact pre-sharing ("pre-PR") fused pipeline the end-to-end
            benchmark floors are measured against.
    """

    def __init__(
        self,
        backend,
        eval_degree: int = 63,
        window: Optional[int] = None,
        double_angles: int = 0,
        fused: bool = True,
        shared_conjugation: bool = True,
        cache_eval_consts: bool = True,
    ):
        params = backend.params
        if params.ring_type is not RingType.STANDARD:
            raise ValueError("bootstrapping requires the standard ring")
        if not params.secret_hamming_weight:
            raise ValueError(
                "the real pipeline needs a sparse ternary secret; "
                "use repro.ckks.params.bootstrap_parameters()"
            )
        self.backend = backend
        self.params = params
        self.n = params.slot_count
        self.double_angles = double_angles
        self.window = window or overflow_bound(params.secret_hamming_weight) + 1
        effective_b = self.window / (1 << double_angles)
        if eval_degree < math.e * math.pi * effective_b:
            raise ValueError(
                f"eval_degree {eval_degree} too small for sine window "
                f"{self.window} at {double_angles} double-angle steps "
                f"(need > {math.e * math.pi * effective_b:.0f})"
            )
        q0 = params.primes[0]
        self.q0 = q0
        amplitude = q0 / params.scale / (2.0 * math.pi)
        if double_angles:
            self.evalmod_poly = shifted_cosine(self.window, double_angles, eval_degree)
            self._stc_gain = amplitude
        else:
            self.evalmod_poly = scaled_sine(q0 / params.scale, self.window, eval_degree)
            self._stc_gain = 1.0
        self._build_transform_matrices()
        self._evalmod_depth: Optional[int] = None
        # Fused transform machinery: per-transform diagonal plans (the
        # nonzero diagonals, BSGS split, and "# Rots" accounting) plus
        # encoded-plaintext caches, both persistent across bootstrap
        # calls — the transforms always run at the same level and scale.
        self.fused = fused
        self.shared_conjugation = shared_conjugation
        self.cache_eval_consts = cache_eval_consts
        self._plans: dict = {}
        self._pt_caches: dict = {}

    # ------------------------------------------------------------------
    # Transform matrices
    # ------------------------------------------------------------------
    def _build_transform_matrices(self) -> None:
        """Decoding matrix E and its conjugate-stacked inverse.

        E[j, k] = w^(k * 5^j mod 2N) evaluates coefficient k at slot j's
        root of unity; V = [E; conj(E)] is sqrt(N)-scaled unitary, so
        CoeffToSlot's matrix is simply V^H / N.
        """
        n, big_n = self.n, self.params.ring_degree
        two_n = 2 * big_n
        exps = np.empty(n, dtype=np.int64)
        e = 1
        for j in range(n):
            exps[j] = e
            e = (e * 5) % two_n
        roots = np.exp(1j * np.pi * np.arange(two_n) / big_n)
        decode = roots[np.outer(exps, np.arange(big_n)) % two_n]
        stacked = np.vstack([decode, np.conj(decode)])
        inverse = np.conj(stacked.T) / big_n
        # CoeffToSlot: u[:n] = M1_lo z + M2_lo conj(z); u[n:] likewise.
        self.cts_lo = (inverse[:n, :n], inverse[:n, n:])
        self.cts_hi = (inverse[n:, :n], inverse[n:, n:])
        # SlotToCoeff: z = E_lo u[:n] + E_hi u[n:].  The double-angle
        # path leaves EvalMod's output at unit sine amplitude, so the
        # q0/(2*pi*Delta) gain folds into these matrices for free.
        self.stc_lo = decode[:, :n] * self._stc_gain
        self.stc_hi = decode[:, n:] * self._stc_gain

    # ------------------------------------------------------------------
    # BSGS diagonal-method matvec over live ciphertexts
    # ------------------------------------------------------------------
    def _transform_plan(
        self, table: Optional[str], pairs: Sequence[Tuple[Ciphertext, np.ndarray]]
    ) -> dict:
        """Diagonal plan for one named transform, built once and cached.

        Extracts the nonzero diagonals of every matrix in ``pairs``,
        chooses the BSGS split, and precomputes:

        - ``terms``: (0, input_index, offset) -> original diagonal slot
          vector, the shape :meth:`FheBackend.matvec_fused` consumes
          (giant pre-rotations folded out — every offset rotates the
          input directly off one shared digit decomposition);
        - ``babies``: per-input *used* baby offsets (identity included
          only when an offset actually lands on it — rotation by 0 is
          free and must never be planned or charged);
        - ``by_giant``: giant step -> per-input offsets, driving the
          per-rotation fallback exactly like paper Eq. 1;
        - ``rot_count``: the BSGS rotation count (nonzero babies +
          nonzero giants) that both execution paths report to the
          ledger, keeping "# Rots" comparable with the paper tables.
        """
        plan = self._plans.get(table) if table is not None else None
        if plan is not None:
            return plan
        n = self.n
        n1 = 1 << max(1, math.ceil(math.log2(math.sqrt(n))))
        indices = np.arange(n)
        terms: dict = {}
        babies: List[List[int]] = []
        by_giant: dict = {}
        for i, (_, matrix) in enumerate(pairs):
            used_babies = set()
            for k in range(n):
                diagonal = matrix[indices, (indices + k) % n]
                if np.max(np.abs(diagonal)) < 1e-15:
                    continue
                terms[(0, i, k)] = diagonal
                used_babies.add(k % n1)
                by_giant.setdefault(k - k % n1, {}).setdefault(i, []).append(k)
            babies.append(sorted(used_babies))
        rot_count = sum(
            sum(1 for b in used if b) for used in babies
        ) + sum(1 for g in by_giant if g)
        plan = {
            "n1": n1,
            "terms": terms,
            "babies": babies,
            "by_giant": {g: by_giant[g] for g in sorted(by_giant)},
            "rot_count": rot_count,
        }
        if table is not None:
            self._plans[table] = plan
        return plan

    def _matvec_sum(
        self,
        pairs: Sequence[Tuple[Ciphertext, np.ndarray]],
        pt_scale: Fraction,
        table: Optional[str] = None,
    ) -> Ciphertext:
        """Evaluate sum_i M_i x_i with one shared level (paper eq. 1).

        All input ciphertexts must share a level and scale.  On backends
        with a fused matvec this runs fully hoisted: one key-switch
        digit decomposition per input ciphertext, giant steps folded
        into the diagonal plaintexts (encoded once per transform and
        cached across bootstrap calls), products accumulated in the
        extended Q_l * P basis, and one deferred mod-down for the
        output (Bossuat et al. double hoisting).  Other backends — or
        ``fused=False`` — take the per-rotation BSGS pipeline of
        :meth:`_matvec_sum_unfused`.  A single rescale lands the output
        on the target scale either way.
        """
        backend = self.backend
        if self.fused and getattr(backend, "supports_fused_matvec", False):
            plan = self._transform_plan(table, pairs)
            level = backend.level_of(pairs[0][0])
            cache = self._pt_caches.setdefault(
                ("fused", table) + backend.plaintext_cache_key(level, pt_scale),
                {},
            )
            outs = backend.matvec_fused(
                [ct for ct, _ in pairs],
                plan["terms"],
                1,
                pt_scale,
                pt_cache=cache,
                charged_rotations=plan["rot_count"],
            )
            if outs is not None and outs[0] is not None:
                return backend.rescale(outs[0])
        return self._matvec_sum_unfused(pairs, pt_scale, table)

    def _matvec_sum_unfused(
        self,
        pairs: Sequence[Tuple[Ciphertext, np.ndarray]],
        pt_scale: Fraction,
        table: Optional[str] = None,
    ) -> Ciphertext:
        """Per-rotation BSGS reference pipeline (paper Eq. 1).

        Baby rotations are hoisted per input (only the *used* nonzero
        baby offsets — the identity never rotates or charges), diagonals
        are pre-rotated in cleartext for the giant steps (encodes cached
        across calls), and giant rotations apply to accumulated sums.
        """
        backend = self.backend
        plan = self._transform_plan(table, pairs)
        level = backend.level_of(pairs[0][0])
        n1 = plan["n1"]
        baby: List[dict] = [
            backend.rotate_group(ct, plan["babies"][i])
            for i, (ct, _) in enumerate(pairs)
        ]
        cache = self._pt_caches.setdefault(
            ("unfused", table) + backend.plaintext_cache_key(level, pt_scale), {}
        )
        acc = None
        for giant, offsets_by_input in plan["by_giant"].items():
            part = None
            for i, offsets in offsets_by_input.items():
                for k in offsets:
                    plaintext = cache.get((i, k))
                    if plaintext is None:
                        shifted = np.roll(plan["terms"][(0, i, k)], giant)
                        plaintext = backend.encode(shifted, level, pt_scale)
                        cache[(i, k)] = plaintext
                    term = backend.mul_plain(baby[i][k % n1], plaintext)
                    part = term if part is None else backend.add(part, term)
            part = backend.rotate(part, giant)
            acc = part if acc is None else backend.add(acc, part)
        return backend.rescale(acc)

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def _prescale(self, raised: Ciphertext) -> Ciphertext:
        """Move the declared scale near one rescale prime (one level).

        The ModRaise output sits at scale q0*B, so encoding the
        CoeffToSlot matrix in a single level would squeeze its entries
        by q0*B / q_l and lose ~4 bits to plaintext rounding — rounding
        error is later amplified by the EvalMod sine derivative
        (~B*q0/Delta).  Multiplying by an all-ones plaintext at an
        *exact power-of-two* scale is error-free and re-centres the
        scale, doubling the matrix entries' usable precision.
        """
        backend = self.backend
        level = backend.level_of(raised)
        rescale_prime = self.params.primes[level]
        target_bits = self.params.prime_bits
        shift = round(
            target_bits
            - math.log2(float(backend.scale_of(raised)))
            + math.log2(rescale_prime)
        )
        ones = self._ones_pt(level, Fraction(1 << max(shift, 1)))
        return backend.rescale(backend.mul_plain(raised, ones))

    def _ones_pt(self, level: int, scale: Fraction):
        """All-ones plaintext at an exact (level, scale), cached across
        bootstrap calls (the pipeline re-centres scales with the same
        handful of constants on every refresh)."""
        return cached_const_plaintext(
            self.backend,
            1.0,
            level,
            scale,
            self._pt_caches.setdefault("ones_consts", {})
            if self.cache_eval_consts
            else None,
        )

    def _shared_cts_plan(self) -> dict:
        """CoeffToSlot plan with the conjugation folded into the terms.

        Reuses the per-half BSGS plans (``cts_lo`` / ``cts_hi``) but
        re-keys every conjugate-matrix diagonal from input 1 to a
        conjugation-composed Galois element ``("conj", k)`` on input 0,
        and stacks both halves as output blocks 0 and 1 of a single
        fused call.  The whole CoeffToSlot then costs ONE digit
        decomposition (of the raised ciphertext's c1), one inner
        product per distinct element, and one deferred mod-down per
        output half — the standalone conjugation key switch is gone.

        ``rot_count`` keeps ledger parity with the unshared pipeline:
        both halves' BSGS counts plus 1 for the conjugation, which the
        unshared path charges as an explicit HRot.
        """
        plan = self._plans.get("cts_shared")
        if plan is not None:
            return plan
        halves = {
            "cts_lo": self.cts_lo,
            "cts_hi": self.cts_hi,
        }
        terms: dict = {}
        rot_count = 1  # the conjugation itself
        for bo, (table, (direct, conj)) in enumerate(halves.items()):
            sub = self._transform_plan(table, [(None, direct), (None, conj)])
            rot_count += sub["rot_count"]
            for (_, i, k), diagonal in sub["terms"].items():
                offset = k if i == 0 else ("conj", k)
                terms[(bo, 0, offset)] = diagonal
        plan = {"terms": terms, "rot_count": rot_count}
        self._plans["cts_shared"] = plan
        return plan

    def _coeff_to_slot_shared(
        self, raised: Ciphertext, pt_scale: Fraction
    ) -> Optional[Tuple[Ciphertext, Ciphertext]]:
        """Both CoeffToSlot halves off one shared decomposition.

        Returns ``None`` when the backend has no fused path (callers
        fall back to the explicit-conjugate pipeline).
        """
        backend = self.backend
        plan = self._shared_cts_plan()
        level = backend.level_of(raised)
        cache = self._pt_caches.setdefault(
            ("cts_shared",) + backend.plaintext_cache_key(level, pt_scale), {}
        )
        outs = backend.matvec_fused(
            [raised],
            plan["terms"],
            2,
            pt_scale,
            pt_cache=cache,
            charged_rotations=plan["rot_count"],
        )
        if outs is None or outs[0] is None or outs[1] is None:
            return None
        return backend.rescale(outs[0]), backend.rescale(outs[1])

    def coeff_to_slot(self, raised: Ciphertext) -> Tuple[Ciphertext, Ciphertext]:
        """Move coefficients into slots: one shared multiplicative level.

        Input: the ModRaise output at declared scale q0*B.  Outputs: two
        ciphertexts whose slots hold (u + q0*I)[:n] / (q0*B) and the
        upper half — EvalMod-ready values in [-1, 1] — at scale Delta.

        On backends with a fused matvec the default pipeline shares ONE
        key-switch digit decomposition across everything CoeffToSlot
        does — both halves' rotations *and* the conjugation, which rides
        the decomposition as composed Galois elements instead of paying
        its own key switch (:meth:`_coeff_to_slot_shared`).
        """
        backend = self.backend
        level = backend.level_of(raised)
        rescale_prime = self.params.primes[level]
        # Land the output scale on the *next* rescale prime q_{l-1}: the
        # Chebyshev power ladder is then scale-stationary (s^2 / q = s),
        # and the large q/s0 ratio keeps the encoded CoeffToSlot matrix
        # entries wide enough to survive plaintext rounding.
        out_scale = Fraction(self.params.primes[level - 1])
        pt_scale = out_scale * rescale_prime / backend.scale_of(raised)
        if (
            self.fused
            and self.shared_conjugation
            and getattr(backend, "supports_shared_conjugation", False)
        ):
            shared = self._coeff_to_slot_shared(raised, pt_scale)
            if shared is not None:
                return shared
        conjugated = backend.conjugate(raised)
        lo = self._matvec_sum(
            [(raised, self.cts_lo[0]), (conjugated, self.cts_lo[1])],
            pt_scale,
            "cts_lo",
        )
        hi = self._matvec_sum(
            [(raised, self.cts_hi[0]), (conjugated, self.cts_hi[1])],
            pt_scale,
            "cts_hi",
        )
        return lo, hi

    def eval_mod(self, ct: Ciphertext) -> Ciphertext:
        """Remove the q0*I overflow with the scaled-sine approximation.

        With ``double_angles > 0`` this evaluates the shifted cosine at
        the reduced angle and squares its way back up, one level per
        doubling: cos(2t) = 2 cos(t)^2 - 1.
        """
        out = evaluate_chebyshev(
            self.backend,
            ct,
            self.evalmod_poly,
            pt_cache=(
                self._pt_caches.setdefault("evalmod_consts", {})
                if self.cache_eval_consts
                else None
            ),
        )
        if self.double_angles:
            out = self._pin_scale_to_prime(out)
        for _ in range(self.double_angles):
            out = self._double_angle_step(out)
        return out

    def _pin_scale_to_prime(self, ct: Ciphertext) -> Ciphertext:
        """Raise the scale to the next rescale prime (one level).

        The doubling recurrence maps scale s to s^2 / q, which collapses
        toward zero from the evaluator's Delta^2/q output scale.  Pinned
        at s ~ q the recurrence is stationary and every doubling's
        plaintext constant stays wide enough to encode exactly.
        """
        backend = self.backend
        level = backend.level_of(ct)
        target = Fraction(self.params.primes[level - 1])
        ratio = target * self.params.primes[level] / backend.scale_of(ct)
        return backend.rescale(
            backend.mul_plain(ct, self._ones_pt(level, ratio))
        )

    def _double_angle_step(self, ct: Ciphertext) -> Ciphertext:
        backend = self.backend
        squared = backend.mul(ct, ct)
        doubled = backend.add(squared, squared)
        minus_one = backend.encode(
            -np.ones(self.n), backend.level_of(doubled), backend.scale_of(doubled)
        )
        return backend.rescale(backend.add_plain(doubled, minus_one))

    def slot_to_coeff(self, lo: Ciphertext, hi: Ciphertext) -> Ciphertext:
        """Return coefficients to their places: one multiplicative level."""
        backend = self.backend
        level = min(backend.level_of(lo), backend.level_of(hi))
        lo = backend.level_down(lo, level)
        hi = backend.level_down(hi, level)
        rescale_prime = self.params.primes[level]
        pt_scale = (
            Fraction(self.params.scale) * rescale_prime / backend.scale_of(lo)
        )
        return self._matvec_sum(
            [(lo, self.stc_lo), (hi, self.stc_hi)], pt_scale, "stc"
        )

    # ------------------------------------------------------------------
    # End-to-end
    # ------------------------------------------------------------------
    def bootstrap(self, ct: Ciphertext) -> Ciphertext:
        """Refresh ``ct`` to level L_eff via the real pipeline.

        The ledger's ``bootstrap`` count still advances (the component
        rotations/multiplications charge their own modeled latency).
        """
        from repro.obs.tracing import get_tracer

        backend = self.backend
        if ct.scale != Fraction(self.params.scale):
            raise ValueError(
                f"bootstrap input must be at scale Delta, got {ct.scale}"
            )
        self.backend.ledger.charge("bootstrap", 0.0)
        tracer = get_tracer()
        with tracer.span(
            "bootstrap",
            category="bootstrap",
            ledger=backend.ledger,
            level_in=ct.level,
        ) as boot_span:
            if ct.level > 0:
                ct = backend.level_down(ct, 0)
            declared = Fraction(self.q0) * self.window
            with tracer.span("mod_raise", category="bootstrap"):
                raised = backend.context.mod_raise(ct, declared)
                raised = self._prescale(raised)
            with tracer.span(
                "coeff_to_slot", category="bootstrap", ledger=backend.ledger
            ):
                lo, hi = self.coeff_to_slot(raised)
            with tracer.span(
                "eval_mod", category="bootstrap", ledger=backend.ledger
            ):
                lo = self.eval_mod(lo)
                hi = self.eval_mod(hi)
            with tracer.span(
                "slot_to_coeff", category="bootstrap", ledger=backend.ledger
            ):
                fresh = self.slot_to_coeff(lo, hi)
            landing = backend.level_of(fresh)
            boot_span.set(level_out=self.params.effective_level, landing=landing)
        if self._evalmod_depth is None:
            self._evalmod_depth = self.params.max_level - 3 - landing
        if landing < self.params.effective_level:
            raise ValueError(
                f"pipeline lands at level {landing} < configured L_eff "
                f"{self.params.effective_level}; increase boot_levels"
            )
        if fresh.scale != Fraction(self.params.scale):
            raise AssertionError(
                f"errorless scale discipline violated: {fresh.scale}"
            )
        return backend.level_down(fresh, self.params.effective_level)

    @property
    def consumed_levels(self) -> Optional[int]:
        """L_boot actually spent by the pipeline (known after first run).

        One prescale level + one CoeffToSlot level + the EvalMod
        Chebyshev depth + one SlotToCoeff level.
        """
        if self._evalmod_depth is None:
            return None
        return 3 + self._evalmod_depth
