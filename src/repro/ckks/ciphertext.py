"""CKKS datatypes: plaintexts and ciphertexts (paper Section 2.1).

Both carry the metadata the compiler reasons about — multiplicative
level and an *exact* scaling factor (a ``fractions.Fraction``, so the
errorless scale-management invariant "scale is precisely Delta between
layers" can be asserted, not approximated).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.rns.poly import RnsPolynomial


@dataclass
class Plaintext:
    """An encoded (but unencrypted) polynomial [m].

    Attributes:
        poly: the RNS polynomial encoding of the cleartext.
        level: multiplicative level (limb count - 1).
        scale: exact scaling factor used during encoding.
        slot_count: number of meaningful slots packed.
    """

    poly: RnsPolynomial
    level: int
    scale: Fraction
    slot_count: int

    @property
    def scale_float(self) -> float:
        return float(self.scale)


@dataclass
class Ciphertext:
    """An RLWE ciphertext [[m]] = (c0, c1) in R_Q x R_Q.

    Degree-2 ciphertexts (after HMult, before relinearization) carry the
    extra ``c2`` component.  ``level`` counts remaining rescalings; a
    ciphertext at level l has l+1 active limbs (paper Section 2.4).
    """

    c0: RnsPolynomial
    c1: RnsPolynomial
    level: int
    scale: Fraction
    slot_count: int
    c2: Optional[RnsPolynomial] = None

    @property
    def is_linear(self) -> bool:
        return self.c2 is None

    @property
    def scale_float(self) -> float:
        return float(self.scale)

    def components(self):
        parts = [self.c0, self.c1]
        if self.c2 is not None:
            parts.append(self.c2)
        return parts

    def __repr__(self) -> str:
        deg = 2 if self.c2 is not None else 1
        log_scale = int(self.scale).bit_length() - 1 if self.scale >= 1 else 0
        return f"Ciphertext(level={self.level}, scale~2^{log_scale}, degree={deg})"
