"""The toy CKKS context: keygen, encoding, encryption, and evaluation.

Everything here is *exact* RNS-CKKS on small rings: real NTT arithmetic,
real RLWE encryption, real hybrid key switching with a special prime,
real rescaling.  The single substituted primitive is bootstrapping,
which is an oracle refresh with the paper's external contract (see
``bootstrap`` below and DESIGN.md Section 1).

Evaluation runs on the limb-batched hot-path engine: representation
changes go through :class:`repro.ntt.NttChainEngine`, rotations apply
Galois maps as evaluation-form permutations, and hybrid key switching
is factored into decompose / inner-product / mod-down stages so
:meth:`CkksContext.rotate_hoisted` can share one digit decomposition
across many rotation keys (paper Section 3.3 hoisting).  Digit
decomposition supports grouping (``CkksParameters.ks_alpha`` limbs per
digit, dnum = ceil((l+1)/alpha), with a matching multi-prime special
basis), which shrinks both the decompose NTT batch and the inner
product width.  :meth:`CkksContext.rotate_hoisted_raw` additionally
defers the mod-down, returning raw accumulators in the extended
Q_l * P basis so fused consumers (the BSGS matvec) can sum many
plaintext-weighted rotations and divide by P once per output — true
double hoisting (Bossuat et al. [11]).  No evaluator operation
allocates object-dtype (bigint) arrays.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro import kernels
from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.encoding import get_encoder
from repro.ckks.galois import galois_offset_key
from repro.ckks.keys import (
    KEY_PRG_SEED_BYTES,
    KeyChain,
    SwitchingKey,
    expand_a_half,
)
from repro.ckks.params import CkksParameters, RingType
from repro.ntt import galois_eval_permutation
from repro.obs.tracing import get_tracer
from repro.rns.basis import RnsBasis
from repro.rns.poly import RnsPolynomial
from repro.utils.rng import SeededRng

__all__ = ["CkksContext", "galois_offset_key"]


class CkksContext:
    """Owns parameters, keys, and all homomorphic operations.

    Args:
        params: a :class:`CkksParameters` whose primes fit the NTT bound
            (use :func:`repro.ckks.params.toy_parameters`).
        seed: RNG seed for keys and encryption noise.
    """

    def __init__(self, params: CkksParameters, seed: int = 0):
        if params.ring_type is not RingType.STANDARD:
            raise ValueError(
                "the exact toy backend supports the standard ring only; "
                "conjugate-invariant capacity is modeled by the simulator"
            )
        self.params = params
        self.rng = SeededRng(seed)
        self.basis = RnsBasis(
            params.primes, params.ring_degree, num_special=params.num_special_primes
        )
        self.encoder = get_encoder(params.ring_degree)
        # (exponents, ks_chain, num_digits) -> (per-key tensor ids, stacked
        # (O, 2, digits, ks_limbs, N) key tensor); see _stacked_key_tensors.
        self._stacked_key_cache: Dict = {}
        self.keys = self._generate_keys()

    # ------------------------------------------------------------------
    # Key generation
    # ------------------------------------------------------------------
    def _full_chain(self):
        return self.basis.primes

    def _data_chain(self, level: int):
        return self.basis.primes[: level + 1]

    def _ks_chain(self, level: int):
        """Prime chain used during key switching at the given level."""
        return self._data_chain(level) + self.basis.special_primes

    def _uniform_poly(self, primes) -> RnsPolynomial:
        n = self.params.ring_degree
        rows = [self.rng.uniform_mod(q, n) for q in primes]
        return RnsPolynomial(self.basis, primes, np.stack(rows), is_ntt=True)

    def _noise_poly(self, primes) -> RnsPolynomial:
        n = self.params.ring_degree
        noise = self.rng.gaussian(self.params.sigma, n)
        data = noise[None, :] % self.basis.moduli_column(primes)
        poly = RnsPolynomial(self.basis, primes, data, is_ntt=False)
        return poly.to_ntt()

    def _generate_keys(self) -> KeyChain:
        n = self.params.ring_degree
        chain = self._full_chain()
        if self.params.secret_hamming_weight:
            secret_coeffs = self.rng.sparse_ternary(
                n, self.params.secret_hamming_weight
            )
        else:
            secret_coeffs = self.rng.ternary(n)
        secret = RnsPolynomial(
            self.basis,
            chain,
            secret_coeffs[None, :] % self.basis.moduli_column(chain),
            is_ntt=False,
        ).to_ntt()
        secret_squared = secret * secret

        a = self._uniform_poly(chain)
        e = self._noise_poly(chain)
        public = ((-(a * secret)) + e, a)

        relin = self._make_switching_key(secret_squared, secret)
        return KeyChain(
            secret=secret,
            secret_squared=secret_squared,
            public=public,
            relin=relin,
        )

    def _ks_num_digits(self, level: int) -> int:
        """dnum at the given level: ceil((level+1) / ks_alpha) digits."""
        return -(-(level + 1) // self.params.ks_alpha)

    def _make_switching_key(
        self,
        from_key: RnsPolynomial,
        to_key: RnsPolynomial,
        max_level: Optional[int] = None,
    ) -> SwitchingKey:
        """Hybrid switching key encrypting P*g_i*from_key per digit i.

        Digit i covers the ks_alpha data limbs [i*alpha, (i+1)*alpha).
        The gadget g_i = P * Q-hat_i * [Q-hat_i^{-1}]_{Q_i} (with
        Q_i = prod of digit i's primes, Q-hat_i = Q/Q_i) has residues
        (P mod q_j) on digit i's own limbs and 0 everywhere else —
        including the special limbs, since P | g_i — so no big-integer
        work is needed regardless of the grouping.

        ``max_level`` generates a *compressed* key: pairs live on the
        key-switch chain of that level only — ``dnum(max_level)`` digits
        over ``max_level + 1`` data limbs plus the special basis —
        instead of the full chain.  A compressed key serves any key
        switch at ``level <= max_level`` (the use-time restriction in
        :meth:`_key_tensors` selects a sub-chain either way) and shrinks
        storage by the dropped digits *and* the dropped limbs per digit.

        Every key is *seed-expandable*: the uniform ``a_i`` halves come
        from a counter-based PRG keyed by one 32-byte seed (drawn here
        from the context rng), so persistent storage needs only the
        ``b_i`` halves plus the seed — see
        :meth:`repro.ckks.keys.SwitchingKey.from_seed`.
        """
        if max_level is None or max_level >= self.params.max_level:
            max_level = None
            chain = self._full_chain()
            num_data = self.params.max_level + 1
        else:
            chain = self._ks_chain(max_level)
            num_data = max_level + 1
            from_key = self._restrict(from_key, chain)
            to_key = self._restrict(to_key, chain)
        alpha = self.params.ks_alpha
        num_digits = self._ks_num_digits(num_data - 1)
        special = self.basis.special_modulus()
        seed = self.rng.bytes(KEY_PRG_SEED_BYTES)
        pairs = []
        for digit in range(num_digits):
            a_i = expand_a_half(seed, digit, self.basis, chain)
            e_i = self._noise_poly(chain)
            b_i = (-(a_i * to_key)) + e_i
            gadget_factors = [
                (special % q) if (idx < num_data and idx // alpha == digit) else 0
                for idx, q in enumerate(chain)
            ]
            b_i = b_i + from_key.scalar_mul(gadget_factors)
            pairs.append((b_i, a_i))
        return SwitchingKey(pairs, max_level=max_level, seed=seed)

    def galois_key(
        self, exponent: int, max_level: Optional[int] = None
    ) -> SwitchingKey:
        """Fetch (or lazily create) the switching key for sigma_t.

        ``max_level`` is the highest data level the caller needs the key
        to cover.  A cached key is returned whenever it covers that
        level (full-chain keys always do); otherwise a new key is
        generated — full-chain by default, so lazy creation through the
        evaluator never produces a key that later key switches outgrow.
        Use :meth:`generate_compressed_galois_key` to deliberately cache
        the level-bounded compressed form.
        """
        exponent %= 2 * self.params.ring_degree
        need = self.params.max_level if max_level is None else max_level
        key = self.keys.galois.get(exponent)
        if key is None or not key.covers(need):
            rotated_secret = self.keys.secret.automorphism(exponent)
            key = self._make_switching_key(rotated_secret, self.keys.secret)
            self.keys.galois[exponent] = key
        return key

    def generate_compressed_galois_key(
        self, exponent: int, max_level: int
    ) -> SwitchingKey:
        """Cache the compressed (level-bounded) key for sigma_t.

        Stores only the digits and limbs any key switch at
        ``level <= max_level`` consumes.  If a key for the exponent
        already exists it is *restricted* — its pairs are truncated to
        ``dnum(max_level)`` digits over the bounded chain, which leaves
        every key switch at a covered level **bit-identical** to the
        original key (use-time tensor extraction selects exactly those
        rows either way).  Fresh keys are generated directly in the
        compressed form.  An existing *compressed* key that already
        covers the bound is kept as is (never shrunk further — callers
        ask per use site, and the widest recorded bound must survive).
        """
        exponent %= 2 * self.params.ring_degree
        if max_level >= self.params.max_level:
            return self.galois_key(exponent)
        key = self.keys.galois.get(exponent)
        if key is not None and key.max_level is not None and key.covers(max_level):
            return key
        if key is not None and key.covers(max_level):
            # Full-chain key cached: restriction is bit-preserving.
            key = self._restrict_switching_key(key, max_level)
        else:
            # No key yet — or a *narrower* compressed key that a second
            # program now outgrows: generate fresh at the wider bound.
            rotated_secret = self.keys.secret.automorphism(exponent)
            key = self._make_switching_key(
                rotated_secret, self.keys.secret, max_level=max_level
            )
        self.keys.galois[exponent] = key
        return key

    def _restrict_switching_key(
        self, key: SwitchingKey, max_level: int
    ) -> SwitchingKey:
        """Compress an existing key by dropping digits and limbs.

        Keeps the first ``dnum(max_level)`` pairs, each restricted to
        the ``Q_max_level * P`` chain — exactly the rows
        :meth:`_key_tensors` would extract for any key switch at
        ``level <= max_level``, so results are bit-identical to the
        uncompressed key's.
        """
        if not key.covers(max_level):
            raise ValueError(
                f"cannot restrict a level-{key.max_level} key to level "
                f"{max_level}"
            )
        chain = self._ks_chain(max_level)
        num_digits = self._ks_num_digits(max_level)
        pairs = [
            (self._restrict(b, chain), self._restrict(a, chain))
            for b, a in key.pairs[:num_digits]
        ]
        # The seed survives restriction: the PRG is keyed by prime
        # *value*, so re-expanding over the restricted chain regenerates
        # exactly the rows kept here (asserted in the key-lifecycle
        # tests).
        return SwitchingKey(pairs, max_level=max_level, seed=key.seed)

    def install_keychain(self, keys: KeyChain) -> None:
        """Replace this context's key material wholesale.

        The restore half of key spill-to-disk
        (:class:`repro.serve.keys.KeyRegistry`): a freshly constructed
        context adopts a previously serialized :class:`KeyChain` instead
        of the one its own keygen produced.  The stacked key-tensor
        cache is cleared — its entries are validated by per-key tensor
        *identity*, so stale stacks could never be served, but keeping
        them alive would pin the replaced tensors in memory.
        """
        self.keys = keys
        self._stacked_key_cache.clear()

    def generate_rotation_keys(
        self, steps: Iterable[int], levels: Optional[Dict[int, int]] = None
    ) -> None:
        """Pre-generate rotation keys (the compile-time step of Section 6).

        ``levels`` optionally maps a step to the highest level it is
        used at (:meth:`repro.core.program.FheProgram.required_rotation_step_levels`);
        steps present in the map get compressed keys bounded at that
        level, the rest get full-chain keys.
        """
        for step in steps:
            exponent = self.encoder.rotation_exponent(step)
            bound = None if levels is None else levels.get(step)
            if bound is not None and bound < self.params.max_level:
                self.generate_compressed_galois_key(exponent, bound)
            else:
                self.galois_key(exponent)

    # ------------------------------------------------------------------
    # Encoding and encryption
    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        return self.params.slot_count

    def encode(
        self,
        values: Sequence[float],
        level: Optional[int] = None,
        scale: Optional[Fraction] = None,
    ) -> Plaintext:
        """Cleartext vector -> plaintext polynomial (paper Section 2.2)."""
        level = self.params.max_level if level is None else level
        scale = Fraction(self.params.scale) if scale is None else Fraction(scale)
        slots = np.zeros(self.slot_count, dtype=np.complex128)
        values = np.asarray(values)
        if values.size > self.slot_count:
            raise ValueError(
                f"{values.size} values do not fit in {self.slot_count} slots"
            )
        slots[: values.size] = values
        coeffs = self.encoder.slots_to_coeffs(slots) * float(scale)
        rounded = np.rint(coeffs)
        primes = self._data_chain(level)
        if np.all(np.abs(rounded) < 2.0**62):
            # Hot path: rounded coefficients fit int64 (always true for
            # toy scales), so RNS reduction is one broadcasted %.
            data = rounded.astype(np.int64)[None, :] % self.basis.moduli_column(primes)
            poly = RnsPolynomial(self.basis, primes, data, is_ntt=False).to_ntt()
        else:
            poly = RnsPolynomial.from_bigint_coeffs(
                self.basis, primes, rounded.astype(object)
            )
        return Plaintext(poly=poly, level=level, scale=scale, slot_count=self.slot_count)

    def decode(self, plaintext: Plaintext) -> np.ndarray:
        """Plaintext polynomial -> cleartext vector of real parts."""
        bigints = plaintext.poly.to_bigint_coeffs()
        coeffs = bigints.astype(np.float64) / float(plaintext.scale)
        return self.encoder.coeffs_to_slots(coeffs).real

    def encrypt(self, plaintext: Plaintext) -> Ciphertext:
        """Public-key RLWE encryption (paper Section 2.3)."""
        primes = self._data_chain(plaintext.level)
        pk0 = self._restrict(self.keys.public[0], primes)
        pk1 = self._restrict(self.keys.public[1], primes)
        u_coeffs = self.rng.ternary(self.params.ring_degree)
        u = RnsPolynomial(
            self.basis,
            primes,
            u_coeffs[None, :] % self.basis.moduli_column(primes),
            is_ntt=False,
        ).to_ntt()
        e0 = self._noise_poly(primes)
        e1 = self._noise_poly(primes)
        c0 = pk0 * u + e0 + plaintext.poly
        c1 = pk1 * u + e1
        return Ciphertext(
            c0=c0,
            c1=c1,
            level=plaintext.level,
            scale=plaintext.scale,
            slot_count=plaintext.slot_count,
        )

    def decrypt(self, ciphertext: Ciphertext) -> Plaintext:
        primes = self._data_chain(ciphertext.level)
        secret = self._restrict(self.keys.secret, primes)
        message = ciphertext.c0 + ciphertext.c1 * secret
        if ciphertext.c2 is not None:
            secret_sq = self._restrict(self.keys.secret_squared, primes)
            message = message + ciphertext.c2 * secret_sq
        return Plaintext(
            poly=message,
            level=ciphertext.level,
            scale=ciphertext.scale,
            slot_count=ciphertext.slot_count,
        )

    def decode_complex(self, plaintext: Plaintext) -> np.ndarray:
        """Like :meth:`decode` but keeping the imaginary slot parts."""
        bigints = plaintext.poly.to_bigint_coeffs()
        coeffs = bigints.astype(np.float64) / float(plaintext.scale)
        return self.encoder.coeffs_to_slots(coeffs)

    def decrypt_decode(self, ciphertext: Ciphertext) -> np.ndarray:
        return self.decode(self.decrypt(ciphertext))

    def mod_raise(self, ct: Ciphertext, declared_scale: Fraction) -> Ciphertext:
        """Reinterpret a level-0 ciphertext modulo the full data chain.

        Step one of real bootstrapping: the centered coefficient vectors
        of (c0, c1) are lifted from Z_{q0} to Z_{Q_L}.  Over the integers
        the decryption identity becomes c0 + c1*s = u + q0*I for a small
        overflow polynomial I with ||I||_inf <= ||s||_1 / 2 + 1, which
        EvalMod later removes.  ``declared_scale`` re-labels the payload
        so downstream slot values read u / declared_scale.
        """
        if ct.level != 0:
            raise ValueError("mod_raise expects a level-0 ciphertext")
        if ct.c2 is not None:
            raise ValueError("relinearize before mod_raise")
        chain = self._data_chain(self.params.max_level)

        def raise_poly(poly: RnsPolynomial) -> RnsPolynomial:
            centered = poly.to_bigint_coeffs()
            return RnsPolynomial.from_bigint_coeffs(self.basis, chain, centered)

        return Ciphertext(
            c0=raise_poly(ct.c0),
            c1=raise_poly(ct.c1),
            level=self.params.max_level,
            scale=Fraction(declared_scale),
            slot_count=ct.slot_count,
        )

    def encode_encrypt(self, values: Sequence[float], level=None) -> Ciphertext:
        return self.encrypt(self.encode(values, level=level))

    def _restrict(self, poly: RnsPolynomial, primes) -> RnsPolynomial:
        """Restrict a full-chain polynomial to a sub-chain of its primes."""
        index = [poly.primes.index(q) for q in primes]
        return RnsPolynomial(self.basis, primes, poly.data[index].copy(), poly.is_ntt)

    # ------------------------------------------------------------------
    # Homomorphic operations (paper Section 2.5)
    # ------------------------------------------------------------------
    def _check_levels(self, a: Ciphertext, b) -> None:
        if a.level != b.level:
            raise ValueError(f"level mismatch: {a.level} vs {b.level}")

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """HAdd: SIMD addition of two ciphertexts (same level and scale)."""
        self._check_levels(a, b)
        if a.scale != b.scale:
            raise ValueError(f"scale mismatch: {a.scale} vs {b.scale}")
        return Ciphertext(
            c0=a.c0 + b.c0,
            c1=a.c1 + b.c1,
            level=a.level,
            scale=a.scale,
            slot_count=a.slot_count,
        )

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self._check_levels(a, b)
        if a.scale != b.scale:
            raise ValueError(f"scale mismatch: {a.scale} vs {b.scale}")
        return Ciphertext(
            c0=a.c0 - b.c0,
            c1=a.c1 - b.c1,
            level=a.level,
            scale=a.scale,
            slot_count=a.slot_count,
        )

    def add_plain(self, a: Ciphertext, p: Plaintext) -> Ciphertext:
        """PAdd: plaintext + ciphertext (same level and scale)."""
        self._check_levels(a, p)
        if a.scale != p.scale:
            raise ValueError(f"scale mismatch: {a.scale} vs {p.scale}")
        return Ciphertext(
            c0=a.c0 + p.poly,
            c1=a.c1,
            level=a.level,
            scale=a.scale,
            slot_count=a.slot_count,
        )

    def negate(self, a: Ciphertext) -> Ciphertext:
        return Ciphertext(
            c0=-a.c0, c1=-a.c1, level=a.level, scale=a.scale, slot_count=a.slot_count
        )

    def mul_plain(self, a: Ciphertext, p: Plaintext) -> Ciphertext:
        """PMult: SIMD multiply by a plaintext; output scale multiplies."""
        self._check_levels(a, p)
        return Ciphertext(
            c0=a.c0 * p.poly,
            c1=a.c1 * p.poly,
            level=a.level,
            scale=a.scale * p.scale,
            slot_count=a.slot_count,
        )

    def mul(self, a: Ciphertext, b: Ciphertext, relinearize: bool = True) -> Ciphertext:
        """HMult: ciphertext * ciphertext with relinearization."""
        self._check_levels(a, b)
        d0 = a.c0 * b.c0
        d1 = a.c0 * b.c1 + a.c1 * b.c0
        d2 = a.c1 * b.c1
        out = Ciphertext(
            c0=d0,
            c1=d1,
            c2=d2,
            level=a.level,
            scale=a.scale * b.scale,
            slot_count=a.slot_count,
        )
        return self.relinearize(out) if relinearize else out

    def relinearize(self, ct: Ciphertext) -> Ciphertext:
        """Reduce a degree-2 ciphertext back to degree 1 via the relin key."""
        if ct.c2 is None:
            return ct
        p0, p1 = self._keyswitch(ct.c2, self.keys.relin, ct.level)
        return Ciphertext(
            c0=ct.c0 + p0,
            c1=ct.c1 + p1,
            level=ct.level,
            scale=ct.scale,
            slot_count=ct.slot_count,
        )

    def square(self, a: Ciphertext) -> Ciphertext:
        return self.mul(a, a)

    def rescale(self, ct: Ciphertext) -> Ciphertext:
        """Divide by the last prime; level drops by one (Section 2.5.2).

        All ciphertext components are stacked through one batched
        divide-and-round pass (they share the dropped limb's inverse
        NTT and the lift's forward NTT).
        """
        if ct.level == 0:
            raise ValueError("cannot rescale a level-0 ciphertext")
        last_prime = self._data_chain(ct.level)[-1]
        polys = [ct.c0, ct.c1] + ([] if ct.c2 is None else [ct.c2])
        primes = polys[0].primes
        if all(p.is_ntt and p.primes == primes for p in polys):
            stacked = self.basis.divide_round_last(
                np.stack([p.data for p in polys]), primes, is_ntt=True
            )
            divided = [
                RnsPolynomial(self.basis, primes[:-1], row, is_ntt=True)
                for row in stacked
            ]
        else:
            divided = [p.divide_and_round_by_last() for p in polys]
        return Ciphertext(
            c0=divided[0],
            c1=divided[1],
            c2=divided[2] if ct.c2 is not None else None,
            level=ct.level - 1,
            scale=ct.scale / last_prime,
            slot_count=ct.slot_count,
        )

    def level_down(self, ct: Ciphertext, target_level: int) -> Ciphertext:
        """Drop limbs without dividing (free level adjustment)."""
        if target_level > ct.level:
            raise ValueError("cannot raise level without bootstrapping")
        drop = ct.level - target_level
        if drop == 0:
            return ct
        return Ciphertext(
            c0=ct.c0.drop_limbs(drop),
            c1=ct.c1.drop_limbs(drop),
            c2=None if ct.c2 is None else ct.c2.drop_limbs(drop),
            level=target_level,
            scale=ct.scale,
            slot_count=ct.slot_count,
        )

    def rotate(self, ct: Ciphertext, steps: int) -> Ciphertext:
        """HRot: cyclic rotation of slots "up" by ``steps`` (Section 2.5.3)."""
        steps %= self.slot_count
        if steps == 0:
            return ct
        exponent = self.encoder.rotation_exponent(steps)
        return self._apply_galois(ct, exponent)

    def conjugate(self, ct: Ciphertext) -> Ciphertext:
        return self._apply_galois(ct, self.encoder.conjugation_exponent)

    def _apply_galois(self, ct: Ciphertext, exponent: int) -> Ciphertext:
        if ct.c2 is not None:
            raise ValueError("relinearize before rotating")
        key = self.galois_key(exponent, max_level=ct.level)
        rot0 = ct.c0.automorphism(exponent)
        rot1 = ct.c1.automorphism(exponent)
        p0, p1 = self._keyswitch(rot1, key, ct.level)
        return Ciphertext(
            c0=rot0 + p0,
            c1=p1,
            level=ct.level,
            scale=ct.scale,
            slot_count=ct.slot_count,
        )

    def _ks_decompose(self, d: RnsPolynomial, level: int) -> np.ndarray:
        """Digit-decompose ``d`` for hybrid key switching (the hoistable
        part: one inverse NTT of ``d`` plus one batched forward NTT of
        every digit raised to the Q_l * P chain).

        With ks_alpha = 1 each digit is one centered limb; with grouped
        decomposition (ks_alpha > 1, dnum = ceil((level+1)/alpha)) each
        digit is the exact int64 CRT lift of its alpha limbs
        (:meth:`RnsBasis.decompose_digits`), shrinking both the digit
        count and the forward-NTT batch.

        Returns an int64 array of shape ``(dnum, len(ks_chain), N)``
        in evaluation form.  The decomposition commutes with Galois
        automorphisms, so hoisted rotations reuse it across many keys.
        """
        ks_chain = self._ks_chain(level)
        num_limbs = level + 1
        alpha = self.params.ks_alpha
        d_coeff = d.to_coeff()
        if alpha == 1:
            src = d_coeff.data[:num_limbs]
            src_col = self.basis.moduli_column(d.primes[:num_limbs])
            centered = np.where(src > src_col // 2, src - src_col, src)
            # Stride-0 broadcast across the ks chain: the engine's twist
            # multiply materializes and reduces, so no explicit % pass here.
            shape = (num_limbs, len(ks_chain), centered.shape[-1])
            lifted = np.broadcast_to(centered[:, None, :], shape)
        else:
            lifted = self.basis.decompose_digits(
                d_coeff.data[:num_limbs], d.primes[:num_limbs], ks_chain, alpha
            )
        return self.basis.forward_chain(lifted, ks_chain)

    def _key_tensors(self, key: SwitchingKey, level: int) -> np.ndarray:
        """Switching-key pairs stacked as one (2, digits, ks_limbs, N)
        tensor (b rows first, a rows second), cached per ks chain.

        Compressed keys (``SwitchingKey.max_level`` set) only carry the
        digits and limbs of their bounded chain; using one above its
        bound is a caller bug and fails loudly here rather than
        silently dropping digits from the inner product.
        """
        if not key.covers(level):
            raise ValueError(
                f"switching key is compressed to level {key.max_level} "
                f"but the key switch runs at level {level}; regenerate "
                "the key (or raise its bound in the key manifest)"
            )
        ks_chain = self._ks_chain(level)
        num_digits = self._ks_num_digits(level)
        cache_key = (ks_chain, num_digits)
        tensor = key.cache.get(cache_key)
        if tensor is None:
            idx = [key.pairs[0][0].primes.index(q) for q in ks_chain]
            tensor = np.stack(
                [
                    np.stack([b.data[idx] for b, _ in key.pairs[:num_digits]]),
                    np.stack([a.data[idx] for _, a in key.pairs[:num_digits]]),
                ]
            )
            key.cache[cache_key] = tensor
        return tensor

    def _stacked_key_tensors(
        self, exponents, keys, level: int
    ) -> np.ndarray:
        """All requested switching keys stacked as one contiguous
        ``(O, 2, digits, ks_limbs, N)`` tensor for the stacked inner
        product, cached per (exponent set, ks chain).

        Each key's slot axis is stored *inverse-permuted*: with
        ``ba_inv[o][..., perm_o] == ba[o]`` the stacked product-sum can
        run directly against the UN-permuted shared digit tensor —

            acc[o, c, k, n] = sum_d digits[d, k, perm_o[n]] * ba[o, c, d, k, n]
                            = (sum_d digits * ba_inv[o])[c, k, perm_o[n]]

        so the per-call Galois gather moves only the small ``(O, 2,
        ks_limbs, N)`` accumulator instead of the D-times-larger digit
        stack, and the digit tensor stays cache-resident across the
        whole offset axis.  The permutation cost lands here, once per
        cache fill.

        The cache is validated against the *identity* of the per-key
        tensors: :meth:`galois_key` / :meth:`generate_compressed_galois_key`
        may replace a key object (e.g. regenerating a compressed key
        with a higher bound), and a stale stack must never outlive the
        keys it was built from.  The entry holds strong references to
        the source tensors so the ``is`` comparison cannot be fooled by
        a recycled allocation (``id()`` values are reusable after GC).
        """
        tensors = [self._key_tensors(key, level) for key in keys]
        cache_key = (
            tuple(exponents),
            self._ks_chain(level),
            self._ks_num_digits(level),
        )
        hit = self._stacked_key_cache.get(cache_key)
        if (
            hit is not None
            and len(hit[0]) == len(tensors)
            and all(old is new for old, new in zip(hit[0], tensors))
        ):
            return hit[1]
        n = self.params.ring_degree
        inv = np.empty(n, dtype=np.int64)
        rows = []
        for exponent, tensor in zip(exponents, tensors):
            inv[galois_eval_permutation(n, exponent)] = np.arange(n)
            # np.take (unlike tensor[..., inv]) returns a C-contiguous
            # row — the layout the stacked einsum streams fastest.
            rows.append(np.take(tensor, inv, axis=-1))
        stacked = np.stack(rows)
        self._stacked_key_cache[cache_key] = (tensors, stacked)
        return stacked

    def _ks_inner(
        self,
        digits: np.ndarray,
        key: SwitchingKey,
        level: int,
        _max_chunk: Optional[int] = None,
    ) -> np.ndarray:
        """Inner products sum_i digit_i * key_i over the Q_l * P chain.

        Returns a ``(2, ks_limbs, N)`` evaluation-form tensor holding
        both accumulators.  Products are summed lazily in int64 —
        :func:`repro.kernels.lazy_reduction_chunk` digits fit before a
        reduction is needed, so the hot path performs a single ``%`` on
        the small accumulator instead of one full-size ``%`` per digit
        product.  The product-sum dispatches through the ``ks_inner``
        kernel (every backend is bit-exact).  ``_max_chunk`` caps the
        chunk size (tests use it to force the chunked fallback that
        real parameter sets only hit with ~31-bit primes).
        """
        ks_chain = self._ks_chain(level)
        ba = self._key_tensors(key, level)
        mod_col = self.basis.moduli_column(ks_chain)
        chunk = kernels.lazy_reduction_chunk(max(ks_chain), _max_chunk)
        return kernels.get("ks_inner")(digits, ba, mod_col, chunk)

    def _ks_moddown(self, acc: np.ndarray, level: int):
        """Divide both accumulators by the special modulus P.

        ``acc`` is the ``(2, ks_limbs, N)`` tensor from :meth:`_ks_inner`;
        both rows share each batched divide-and-round pass.
        """
        chain = self._ks_chain(level)
        for _ in range(self.params.num_special_primes):
            acc = self.basis.divide_round_last(acc, chain, is_ntt=True)
            chain = chain[:-1]
        return (
            RnsPolynomial(self.basis, chain, acc[0], is_ntt=True),
            RnsPolynomial(self.basis, chain, acc[1], is_ntt=True),
        )

    def _keyswitch(self, d: RnsPolynomial, key: SwitchingKey, level: int):
        """Hybrid key switch of polynomial ``d`` at the given level.

        Decomposes d into per-limb digits, multiplies by the switching
        key over Q_l * P, and divides by the special modulus P.  All
        three stages are limb-batched; see :meth:`rotate_hoisted` for
        the variant that shares the decomposition across many keys.
        """
        digits = self._ks_decompose(d, level)
        acc = self._ks_inner(digits, key, level)
        return self._ks_moddown(acc, level)

    def galois_offset_exponent(self, offset) -> int:
        """Galois exponent of a hoisted offset (int or ``("conj", k)``).

        A conjugation-composed offset applies sigma_conj first, then the
        rotation: automorphisms compose by multiplying their exponents
        mod 2N, so the pair is ONE Galois element — one switching key,
        one inner product — rather than two chained key switches.
        """
        if isinstance(offset, tuple):
            conj = self.encoder.conjugation_exponent
            return (conj * self.encoder.rotation_exponent(offset[1])) % (
                2 * self.params.ring_degree
            )
        return self.encoder.rotation_exponent(offset)

    def rotate_hoisted_raw(
        self,
        ct: Ciphertext,
        steps_list: Iterable,
        _max_chunk: Optional[int] = None,
    ) -> Dict:
        """Hoisted Galois maps left in the extended Q_l * P basis.

        Shares one key-switch digit decomposition of ``ct.c1`` across
        all requested offsets (they act on the same c1 — the digit
        tensor commutes with Galois permutations), but defers the
        mod-down: each offset returns ``(rot0, acc)`` where ``rot0`` is
        the transformed c0 over Q_l and ``acc`` is the raw
        ``(2, ks_limbs, N)`` evaluation-form key-switch accumulator
        still over Q_l * P.

        With more than one offset the per-offset ``_ks_inner`` loop is
        replaced by ONE stacked product-sum: the shared digit tensor is
        multiplied against the cached ``(O, 2, digits, ks_limbs, N)``
        stack of inverse-permuted switching keys in a single dispatch
        through the ``ks_inner_stacked`` kernel, and only the small
        resulting accumulator is Galois-permuted — in one flat gather
        over the fused offset-slot axis (see
        :meth:`_stacked_key_tensors` for why the two formulations are
        the same sum, element by element).  The stacked path preserves
        the lazy int64 chunked reduction exactly (modular sums are
        invariant under regrouping), so results are bit-identical to the
        loop; ``_max_chunk`` forces the chunked fallback for tests.

        Offsets are plain rotation steps (``int``) or conjugation-
        composed elements ``("conj", k)`` — conjugate, then rotate by
        ``k``.  The composition is a single Galois automorphism, so the
        bootstrap CoeffToSlot conjugation rides the *same* digit
        decomposition as the transform rotations instead of paying its
        own standalone key switch (one extra inner product per element;
        the mod-down stays shared).

        Callers that accumulate many plaintext-weighted rotations (the
        fused BSGS matvec) add ``pt * acc`` terms lazily and pay one
        :meth:`_ks_moddown` per output instead of one per rotation.
        Applying :meth:`_ks_moddown` to each ``acc`` directly reproduces
        :meth:`rotate_hoisted` (or the standalone :meth:`conjugate` key
        switch) bit-for-bit.  Step 0 is excluded (it needs no key
        switch; callers handle it as the identity) — but ``("conj", 0)``
        is a real Galois map and is processed like any other element.
        """
        if ct.c2 is not None:
            raise ValueError("relinearize before rotating")
        outputs: Dict = {}
        unique = {
            ("conj", s[1] % self.slot_count)
            if isinstance(s, tuple)
            else s % self.slot_count
            for s in steps_list
        }
        nonzero = sorted(unique - {0}, key=galois_offset_key)
        if not nonzero:
            return outputs
        # Observe-only span (one per hoisted key switch, not per offset);
        # the null-tracer context manager costs two trivial calls, far
        # below the NTT work it brackets (gated by tracing_overhead).
        with get_tracer().span(
            "keyswitch.hoisted",
            category="keyswitch",
            level=ct.level,
            num_offsets=len(nonzero),
        ):
            return self._rotate_hoisted_raw_traced(
                ct, nonzero, outputs, _max_chunk
            )

    def _rotate_hoisted_raw_traced(self, ct, nonzero, outputs, _max_chunk):
        digits = self._ks_decompose(ct.c1, ct.level)
        n = self.params.ring_degree
        level = ct.level
        exponents = [self.galois_offset_exponent(o) for o in nonzero]
        keys = [self.galois_key(e, max_level=level) for e in exponents]
        if len(nonzero) == 1:
            # One offset: the stacking overhead buys nothing.
            perm = galois_eval_permutation(n, exponents[0])
            acc = self._ks_inner(digits[..., perm], keys[0], level, _max_chunk)
            outputs[nonzero[0]] = (ct.c0.automorphism(exponents[0]), acc)
            return outputs
        perms = np.stack([galois_eval_permutation(n, e) for e in exponents])
        ba_inv = self._stacked_key_tensors(exponents, keys, level)
        ks_chain = self._ks_chain(level)
        mod_col = self.basis.moduli_column(ks_chain)
        chunk = kernels.lazy_reduction_chunk(max(ks_chain), _max_chunk)
        num = len(nonzero)
        pre = kernels.get("ks_inner_stacked")(digits, ba_inv, mod_col, chunk)
        # The (C, K, O, N) layout fuses the offset and slot axes, so all
        # O accumulator permutations are ONE flat gather.
        flat_idx = (np.arange(num)[:, None] * n + perms).reshape(-1)
        acc_flat = np.take(
            pre.reshape(2, len(ks_chain), num * n), flat_idx, axis=-1
        )
        accs = np.moveaxis(acc_flat.reshape(2, len(ks_chain), num, n), 2, 0)
        if ct.c0.is_ntt:
            rot0_data = kernels.get("galois_gather")(ct.c0.data, perms)
            rot0s = [
                RnsPolynomial(self.basis, ct.c0.primes, rot0_data[i], is_ntt=True)
                for i in range(len(nonzero))
            ]
        else:
            rot0s = [ct.c0.automorphism(e) for e in exponents]
        for i, offset in enumerate(nonzero):
            outputs[offset] = (rot0s[i], accs[i])
        return outputs

    def rotate_hoisted(self, ct: Ciphertext, steps_list: Iterable[int]) -> Dict[int, Ciphertext]:
        """Rotate one ciphertext by many step amounts, hoisting the
        key-switch digit decomposition (Section 3.3 "double hoisting").

        The expensive part of a rotation — inverse-transforming c1 and
        raising every digit to the Q_l * P basis — depends only on c1,
        not on the rotation amount, because digit decomposition commutes
        with Galois automorphisms.  It is computed once (in
        :meth:`rotate_hoisted_raw`); each step then costs one
        evaluation-form permutation of the digit tensor, one inner
        product with its switching key, and the mod-down.

        Returns ``{step: rotated ciphertext}``; step 0 maps to ``ct``.
        """
        outputs: Dict[int, Ciphertext] = {}
        unique_steps = {s % self.slot_count for s in steps_list}
        if 0 in unique_steps:
            outputs[0] = ct
        for step, (rot0, acc) in self.rotate_hoisted_raw(ct, unique_steps).items():
            p0, p1 = self._ks_moddown(acc, ct.level)
            outputs[step] = Ciphertext(
                c0=rot0 + p0,
                c1=p1,
                level=ct.level,
                scale=ct.scale,
                slot_count=ct.slot_count,
            )
        return outputs

    # ------------------------------------------------------------------
    # Bootstrapping (oracle; documented substitution)
    # ------------------------------------------------------------------
    def bootstrap(
        self, ct: Ciphertext, precision_bits: float = 20.0, range_slack: float = 1.5
    ) -> Ciphertext:
        """Refresh a ciphertext to level L_eff (paper Section 2.5.4).

        Substitution: full CKKS bootstrapping (CoeffToSlot, EvalMod,
        SlotToCoeff) is replaced by an oracle refresh that decrypts with
        the context's own secret key, re-encrypts at L_eff, and injects
        noise matching published bootstrap precision (~``precision_bits``
        bits relative to the input range, following Bossuat et al. [11]).
        The externally visible contract — level reset to L_eff, L_boot
        levels reserved out of L, bounded added error, and a large
        latency charged by the cost model — is exactly the paper's.
        Inputs must be in [-1, 1] (the range-estimation contract).
        """
        values = self.decrypt_decode(ct)
        max_abs = float(np.max(np.abs(values))) if values.size else 0.0
        if max_abs > range_slack:
            raise ValueError(
                f"bootstrap input out of range: max |slot| = {max_abs:.4f} > 1; "
                "range estimation should have scaled this down"
            )
        noise_std = 2.0 ** (-precision_bits)
        noisy = values + self.rng.normal(0.0, noise_std, values.shape)
        fresh = self.encode(noisy, level=self.params.effective_level)
        return self.encrypt(fresh)
