"""Canonical-embedding encoding and decoding (paper Section 2.2).

Encoding maps a cleartext vector m in C^{N/2} to a plaintext polynomial
[m] whose evaluations at the primitive 2N-th roots of unity equal the
slot values: an inverse FFT, a multiplication by the scaling factor
Delta, and rounding.  Cyclic slot rotation corresponds to the Galois
automorphism X -> X^5 (the powers of 5 enumerate half the odd residues
mod 2N), which is why the slot order below follows 5^j mod 2N.

Implementation: evaluating m(X) at the odd 2N-th roots w^(2k+1)
(w = exp(i*pi/N)) equals the length-N FFT of the "twisted" coefficients
c_j * w^j.  Both directions are therefore O(N log N) numpy FFTs.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class SlotEncoder:
    """Encode/decode between slot vectors and integer coefficient vectors.

    The class is parameterized only by the ring degree; scaling and RNS
    reduction are applied by the caller (:class:`repro.ckks.context.CkksContext`).
    """

    def __init__(self, ring_degree: int):
        self.ring_degree = ring_degree
        self.slot_count = ring_degree // 2
        n = ring_degree
        two_n = 2 * n
        # Twist factors w^j, w = primitive 2N-th root of unity.
        self._twist = np.exp(1j * np.pi * np.arange(n) / n)
        # Slot j lives at the evaluation point with exponent 5^j mod 2N;
        # its conjugate partner at exponent -5^j mod 2N.
        exps = np.empty(self.slot_count, dtype=np.int64)
        e = 1
        for j in range(self.slot_count):
            exps[j] = e
            e = (e * 5) % two_n
        self._slot_exponents = exps
        # np.fft.fft uses kernel e^{-2*pi*i*jk/N}, so FFT bin k holds the
        # evaluation at odd exponent (1 - 2k) mod 2N.  Invert that map.
        self._slot_bins = (((1 - exps) // 2) % n).astype(np.int64)
        conj_exps = (two_n - exps) % two_n
        self._conj_bins = (((1 - conj_exps) // 2) % n).astype(np.int64)

    # -- decode: coefficients -> slots ----------------------------------
    def coeffs_to_slots(self, coeffs: np.ndarray) -> np.ndarray:
        """Evaluate the polynomial at the slot points.

        Args:
            coeffs: real (or integer) coefficient vector of length N.

        Returns:
            complex slot vector of length N/2.
        """
        coeffs = np.asarray(coeffs, dtype=np.float64)
        evals = np.fft.fft(coeffs * self._twist)
        return evals[self._slot_bins]

    # -- encode: slots -> coefficients ----------------------------------
    def slots_to_coeffs(self, slots: np.ndarray) -> np.ndarray:
        """Interpolate real coefficients hitting the given slot values.

        The conjugate-symmetric completion makes the coefficients real.
        Returns unrounded float64 coefficients; the caller multiplies by
        Delta and rounds.
        """
        slots = np.asarray(slots, dtype=np.complex128)
        if slots.shape != (self.slot_count,):
            raise ValueError(
                f"expected {self.slot_count} slots, got {slots.shape}"
            )
        evals = np.zeros(self.ring_degree, dtype=np.complex128)
        evals[self._slot_bins] = slots
        evals[self._conj_bins] = np.conj(slots)
        coeffs = np.fft.ifft(evals) * np.conj(self._twist)
        return coeffs.real

    # -- rotation bookkeeping --------------------------------------------
    def rotation_exponent(self, steps: int) -> int:
        """Galois exponent 5^steps mod 2N realizing rotation by ``steps``."""
        two_n = 2 * self.ring_degree
        return pow(5, steps % self.slot_count, two_n)

    @property
    def conjugation_exponent(self) -> int:
        return 2 * self.ring_degree - 1


_ENCODER_CACHE: Dict[int, SlotEncoder] = {}


def get_encoder(ring_degree: int) -> SlotEncoder:
    """Shared encoder instances (FFT twiddle tables are reusable)."""
    if ring_degree not in _ENCODER_CACHE:
        _ENCODER_CACHE[ring_degree] = SlotEncoder(ring_degree)
    return _ENCODER_CACHE[ring_degree]
