"""Shared helpers for hoisted Galois offsets.

A hoisted offset — the unit `FheBackend.matvec_fused` and
`CkksContext.rotate_hoisted_raw` operate on — is either a plain
rotation step (``int``) or a conjugation-composed element
``("conj", step)``: conjugate first, then rotate by ``step`` (one
Galois automorphism, exponent ``conj_exp * 5^step mod 2N``).

This module is deliberately dependency-free so the lightweight
functional simulator can order mixed offsets without importing the
exact-arithmetic context machinery.
"""

from __future__ import annotations


def galois_offset_key(offset):
    """Canonical sort key for hoisted Galois offsets.

    Mixed collections of ``int`` and ``("conj", k)`` offsets are not
    orderable by Python's default comparison, so every consumer that
    needs a deterministic iteration order sorts with this key.
    """
    if isinstance(offset, tuple):
        return (1, offset[1])
    return (0, offset)
