"""Key material for the toy RNS-CKKS backend.

Hybrid key switching (paper Sections 2.5.2-2.5.3, following Han-Ki [33]
and Bossuat et al. [11]): a switching key from s' to s consists of one
RLWE pair per decomposition digit.  Digit i groups ``ks_alpha`` limbs
(dnum = ceil((L+1)/alpha) pairs total); its pair encrypts P * g_i * s',
where the CRT gadget g_i = P * Q-hat_i * [Q-hat_i^{-1}]_{Q_i} has
residues (P mod q_j) on digit i's own limbs and 0 elsewhere, and P is
the special modulus (product of the special primes, which must outweigh
every digit modulus).  Summing digit * key products and dividing by P
(mod-down) keeps the switching noise a factor P smaller than the naive
method; ks_alpha = 1 recovers the per-limb decomposition.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.rns.poly import RnsPolynomial


@dataclass
class SwitchingKey:
    """One RLWE pair (b_i, a_i) per decomposition digit, over Q*P.

    ``cache`` holds the pairs re-stacked as ``(digits, limbs, N)``
    tensors per key-switch chain, so the hoisted inner product is a
    single broadcasted multiply instead of a per-digit Python loop.

    ``max_level`` marks a *compressed* key: its pairs carry only the
    digits and limbs a key switch at ``level <= max_level`` consumes
    (``dnum(max_level)`` digits over the ``Q_max_level * P`` chain)
    instead of the full-chain form.  ``None`` is the full-chain key.
    Grouped digits (``ks_alpha > 1``) compound the saving: compression
    drops whole digit *groups* above the bound as well as the limbs
    of every surviving digit.
    """

    pairs: List[Tuple[RnsPolynomial, RnsPolynomial]]
    cache: Dict = field(default_factory=dict)
    max_level: Optional[int] = None

    def __len__(self) -> int:
        return len(self.pairs)

    def covers(self, level: int) -> bool:
        """Whether this key can serve a key switch at ``level``."""
        return self.max_level is None or level <= self.max_level

    def size_bytes(self) -> int:
        """Stored key material in bytes (the compression win metric).

        Counts the persistent (b_i, a_i) residue tensors only — the
        per-chain ``cache`` re-stackings are derived views that exist
        for full keys and compressed keys alike.
        """
        return sum(b.data.nbytes + a.data.nbytes for b, a in self.pairs)


@dataclass
class KeyChain:
    """All key material owned by a :class:`repro.ckks.context.CkksContext`.

    Attributes:
        secret: s in NTT form over the full prime chain.
        secret_squared: s^2 (for relinearization key generation).
        public: RLWE encryption of zero used for public-key encryption.
        relin: switching key s^2 -> s.
        galois: switching keys sigma_t(s) -> s, keyed by the Galois
            exponent t (generated lazily, one per distinct rotation).
    """

    secret: RnsPolynomial
    secret_squared: RnsPolynomial
    public: Tuple[RnsPolynomial, RnsPolynomial]
    relin: SwitchingKey
    galois: Dict[int, SwitchingKey] = field(default_factory=dict)

    def galois_exponents(self) -> List[int]:
        return sorted(self.galois)

    def num_rotation_keys(self) -> int:
        return len(self.galois)


@dataclass(frozen=True)
class KeyManifest:
    """The key material contract between an artifact and its clients.

    A serving artifact (``repro.serve.artifact``) ships no keys — keys
    are per-client secrets.  Instead it ships this manifest: the exact
    parameter set the program was compiled for and the exact Galois
    steps execution will request, so a client (or the server's
    :class:`repro.serve.keys.KeyRegistry` acting for one) can generate
    precisely the key material the program needs — no trial-and-error
    keygen on the request path, no unused rotation keys.

    ``params_dict`` holds every :class:`repro.ckks.params.CkksParameters`
    field including the realized prime chain, so reconstructed
    parameters are value-identical to the compiler's (the prime chain,
    ``ks_alpha`` digit grouping, and special basis all participate in
    :meth:`fingerprint`, which keys multi-tenant backend caches).

    ``rotation_step_levels`` (parallel to ``rotation_steps``) records
    the highest ciphertext level each step's key switch executes at, as
    traced from the program's placement decisions.  Key generators use
    it to produce *compressed* switching keys — only the digits and
    limbs a key switch at that level consumes
    (:class:`SwitchingKey.max_level`) — instead of full-chain pairs.
    An empty tuple means "levels unknown": every key is generated
    full-chain, the pre-compression behaviour.
    """

    params_dict: Dict
    rotation_steps: Tuple[int, ...]
    needs_conjugation: bool = False
    rotation_step_levels: Tuple[int, ...] = ()

    @classmethod
    def for_program(cls, params, program) -> "KeyManifest":
        """Manifest covering one compiled program on one parameter set."""
        fields = {
            "ring_degree": params.ring_degree,
            "scale_bits": params.scale_bits,
            "max_level": params.max_level,
            "first_prime_bits": params.first_prime_bits,
            "prime_bits": params.prime_bits,
            "special_prime_bits": params.special_prime_bits,
            "boot_levels": params.boot_levels,
            "ring_type": params.ring_type.value,
            "sigma": params.sigma,
            "num_special_primes": params.num_special_primes,
            "ks_alpha": params.ks_alpha,
            "secret_hamming_weight": params.secret_hamming_weight,
            "primes": list(params.primes),
        }
        steps = tuple(program.required_rotation_steps())
        step_levels = program.required_rotation_step_levels()
        return cls(
            params_dict=fields,
            rotation_steps=steps,
            needs_conjugation=False,
            rotation_step_levels=tuple(step_levels[s] for s in steps),
        )

    def step_level_map(self) -> Dict[int, int]:
        """``{step: max execution level}`` (empty if levels unknown)."""
        if not self.rotation_step_levels:
            return {}
        return dict(zip(self.rotation_steps, self.rotation_step_levels))

    def to_params(self):
        """Reconstruct the exact CkksParameters of the manifest."""
        from repro.ckks.params import CkksParameters, RingType

        fields = dict(self.params_dict)
        fields["ring_type"] = RingType(fields["ring_type"])
        fields["primes"] = tuple(fields["primes"])
        return CkksParameters(**fields)

    def to_dict(self) -> Dict:
        return {
            "params": dict(self.params_dict),
            "rotation_steps": list(self.rotation_steps),
            "needs_conjugation": self.needs_conjugation,
            "rotation_step_levels": list(self.rotation_step_levels),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "KeyManifest":
        return cls(
            params_dict=dict(data["params"]),
            rotation_steps=tuple(data["rotation_steps"]),
            needs_conjugation=bool(data["needs_conjugation"]),
            rotation_step_levels=tuple(data.get("rotation_step_levels", ())),
        )

    def fingerprint(self) -> str:
        """Stable content hash (keys multi-tenant backend caches)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]
