"""Key material for the toy RNS-CKKS backend.

Hybrid key switching (paper Sections 2.5.2-2.5.3, following Han-Ki [33]
and Bossuat et al. [11]): a switching key from s' to s consists of one
RLWE pair per decomposition digit.  Digit i groups ``ks_alpha`` limbs
(dnum = ceil((L+1)/alpha) pairs total); its pair encrypts P * g_i * s',
where the CRT gadget g_i = P * Q-hat_i * [Q-hat_i^{-1}]_{Q_i} has
residues (P mod q_j) on digit i's own limbs and 0 elsewhere, and P is
the special modulus (product of the special primes, which must outweigh
every digit modulus).  Summing digit * key products and dividing by P
(mod-down) keeps the switching noise a factor P smaller than the naive
method; ks_alpha = 1 recovers the per-limb decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.rns.poly import RnsPolynomial


@dataclass
class SwitchingKey:
    """One RLWE pair (b_i, a_i) per decomposition digit, over Q*P.

    ``cache`` holds the pairs re-stacked as ``(digits, limbs, N)``
    tensors per key-switch chain, so the hoisted inner product is a
    single broadcasted multiply instead of a per-digit Python loop.
    """

    pairs: List[Tuple[RnsPolynomial, RnsPolynomial]]
    cache: Dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.pairs)


@dataclass
class KeyChain:
    """All key material owned by a :class:`repro.ckks.context.CkksContext`.

    Attributes:
        secret: s in NTT form over the full prime chain.
        secret_squared: s^2 (for relinearization key generation).
        public: RLWE encryption of zero used for public-key encryption.
        relin: switching key s^2 -> s.
        galois: switching keys sigma_t(s) -> s, keyed by the Galois
            exponent t (generated lazily, one per distinct rotation).
    """

    secret: RnsPolynomial
    secret_squared: RnsPolynomial
    public: Tuple[RnsPolynomial, RnsPolynomial]
    relin: SwitchingKey
    galois: Dict[int, SwitchingKey] = field(default_factory=dict)

    def galois_exponents(self) -> List[int]:
        return sorted(self.galois)

    def num_rotation_keys(self) -> int:
        return len(self.galois)
