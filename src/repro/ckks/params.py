"""CKKS parameter sets.

Mirrors Table 1 of the paper: ring degree N, modulus chain Q = prod q_i,
scaling factor Delta, maximum level L, bootstrap budget L_boot, and the
post-bootstrap effective level L_eff = L - L_boot.  The toy backend runs
these parameters exactly on small rings; the simulation backend reuses
the same dataclass with production-sized N for capacity/cost modeling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.utils.intmath import int_log2, is_power_of_two
from repro.utils.primes import find_ntt_primes


class RingType(enum.Enum):
    """Ring flavour, which fixes the slot capacity.

    ``STANDARD``: n = N/2 complex (or real) slots; supports bootstrapping.
    ``CONJUGATE_INVARIANT``: n = N real slots (paper Section 8.1, used for
    the MNIST networks where no bootstrapping is needed).
    """

    STANDARD = "standard"
    CONJUGATE_INVARIANT = "conjugate_invariant"


# Minimum ring degree for 128-bit security at a given total modulus width,
# interpolated from the homomorphic encryption standard tables [4] that the
# paper cites.  Keys are log2(N); values are the maximum secure log2(QP).
SECURITY_128_MAX_LOGQP = {
    10: 27,
    11: 54,
    12: 109,
    13: 218,
    14: 438,
    15: 881,
    16: 1772,
    17: 3576,
}


@dataclass(frozen=True)
class CkksParameters:
    """An immutable CKKS parameter set.

    Attributes:
        ring_degree: N, a power of two.
        scale_bits: log2(Delta).
        first_prime_bits: width of q_0 (larger than Delta for headroom).
        prime_bits: width of the rescaling primes q_1..q_L (~Delta).
        special_prime_bits: width of the key-switching prime(s).
        max_level: L, the number of rescalings available from fresh.
        boot_levels: L_boot, levels consumed by bootstrapping.
        ring_type: standard or conjugate-invariant.
        sigma: RLWE noise standard deviation.
        num_special_primes: key-switching primes (dnum hybrid variant).
        ks_alpha: data limbs grouped per key-switch digit (Han-Ki [33]).
            dnum = ceil((L+1) / ks_alpha) digits; each digit is the CRT
            lift of ks_alpha limbs, so the special basis P must outweigh
            any digit modulus (enforced below as a bit-width check).
            ks_alpha = 1 is the per-limb decomposition (dnum = L+1).
    """

    ring_degree: int
    scale_bits: int
    max_level: int
    first_prime_bits: int = 29
    prime_bits: int = 0  # 0 -> defaults to scale_bits
    special_prime_bits: int = 29
    boot_levels: int = 3
    ring_type: RingType = RingType.STANDARD
    sigma: float = 3.2
    num_special_primes: int = 1
    ks_alpha: int = 1
    secret_hamming_weight: int = 0  # 0 -> dense ternary secret
    primes: Tuple[int, ...] = field(default=(), compare=False)

    def __post_init__(self):
        if not is_power_of_two(self.ring_degree):
            raise ValueError("ring degree must be a power of two")
        if self.max_level < 1:
            raise ValueError("need at least one multiplicative level")
        if self.boot_levels >= self.max_level:
            raise ValueError("L_boot must be smaller than L")
        if self.prime_bits == 0:
            object.__setattr__(self, "prime_bits", self.scale_bits)
        if self.ks_alpha < 1:
            raise ValueError("ks_alpha must be at least 1")
        if self.ks_alpha > 1:
            # Key-switch noise stays bounded only while P = prod(special)
            # exceeds every digit modulus: digit 0 holds the first prime
            # plus ks_alpha - 1 rescale primes, inner digits hold
            # ks_alpha rescale primes (wider when prime_bits dominates).
            digit_bits = max(
                self.first_prime_bits + (self.ks_alpha - 1) * self.prime_bits,
                self.ks_alpha * self.prime_bits,
            )
            special_bits = self.num_special_primes * self.special_prime_bits
            if digit_bits > special_bits:
                raise ValueError(
                    f"ks_alpha={self.ks_alpha} needs a wider special basis: "
                    f"digit width ~{digit_bits} bits exceeds "
                    f"special width ~{special_bits} bits"
                )
        if not self.primes:
            object.__setattr__(self, "primes", self._build_prime_chain())

    def _build_prime_chain(self) -> Tuple[int, ...]:
        n = self.ring_degree
        first = find_ntt_primes(self.first_prime_bits, 1, n)
        rescale = find_ntt_primes(
            self.prime_bits, self.max_level, n, exclude=tuple(first)
        )
        special = find_ntt_primes(
            self.special_prime_bits,
            self.num_special_primes,
            n,
            exclude=tuple(first) + tuple(rescale),
        )
        return tuple(first) + tuple(rescale) + tuple(special)

    # -- derived quantities ---------------------------------------------
    @property
    def slot_count(self) -> int:
        """n: usable SIMD slots (paper Table 1)."""
        if self.ring_type is RingType.CONJUGATE_INVARIANT:
            return self.ring_degree
        return self.ring_degree // 2

    @property
    def scale(self) -> int:
        """Delta as an integer."""
        return 1 << self.scale_bits

    @property
    def effective_level(self) -> int:
        """L_eff = L - L_boot: the level a bootstrap refreshes up to."""
        return self.max_level - self.boot_levels

    @property
    def dnum(self) -> int:
        """Key-switch decomposition number at the top level."""
        return -(-(self.max_level + 1) // self.ks_alpha)

    @property
    def data_primes(self) -> Tuple[int, ...]:
        return self.primes[: self.max_level + 1]

    @property
    def special_primes(self) -> Tuple[int, ...]:
        return self.primes[self.max_level + 1:]

    @property
    def log_qp(self) -> float:
        """Total modulus width log2(Q*P), the security-relevant size."""
        total = 0.0
        for q in self.primes:
            total += q.bit_length()
        return total

    def is_128_bit_secure(self) -> bool:
        """Check N against the HE-standard table for 128-bit security."""
        log_n = int_log2(self.ring_degree)
        limit = SECURITY_128_MAX_LOGQP.get(log_n)
        if limit is None:
            return False
        return self.log_qp <= limit

    def __repr__(self) -> str:
        return (
            f"CkksParameters(N=2^{int_log2(self.ring_degree)}, "
            f"L={self.max_level}, L_eff={self.effective_level}, "
            f"Delta=2^{self.scale_bits}, slots={self.slot_count}, "
            f"ring={self.ring_type.value})"
        )


def toy_parameters(
    ring_degree: int = 2048,
    max_level: int = 8,
    scale_bits: int = 21,
    boot_levels: int = 3,
    ring_type: RingType = RingType.STANDARD,
    num_special_primes: int = 1,
    ks_alpha: int = 1,
) -> CkksParameters:
    """Small, fast, exact parameters for tests and the toy backend.

    Primes stay below 2^31 so all residue products fit in int64 (see
    repro.ntt).  These parameters are *not* 128-bit secure — they trade
    security margin for laptop-scale exactness, which is what the toy
    backend is for.  Production-shaped parameter sets for the simulator
    are built by :func:`paper_parameters`.
    """
    return CkksParameters(
        ring_degree=ring_degree,
        scale_bits=scale_bits,
        max_level=max_level,
        boot_levels=boot_levels,
        ring_type=ring_type,
        num_special_primes=num_special_primes,
        ks_alpha=ks_alpha,
    )


def bootstrap_parameters(
    ring_degree: int = 128,
    max_level: int = 13,
    scale_bits: int = 27,
    boot_levels: int = 10,
    secret_hamming_weight: int = 8,
    num_special_primes: int = 2,
    ks_alpha: int = 1,
) -> CkksParameters:
    """Toy parameters sized for the *real* bootstrapping pipeline.

    The full CoeffToSlot -> EvalMod -> SlotToCoeff pipeline of
    :class:`repro.ckks.bootstrap.CkksBootstrapper` needs (i) a sparse
    ternary secret so the modulus-raise overflow stays inside the EvalMod
    sine window, (ii) wide rescale primes so the CoeffToSlot matrices
    survive plaintext rounding, and (iii) a chain deep enough for one
    CtS level + the EvalMod Chebyshev depth + one StC level plus a
    usable L_eff.  Primes stay below 2^31 (toy NTT bound).

    ``ks_alpha > 1`` groups key-switch digits (dnum = ceil((L+1)/alpha));
    the default two 30-bit special primes already dominate a two-limb
    digit, so ``ks_alpha=2`` works without widening the special basis.
    """
    return CkksParameters(
        ring_degree=ring_degree,
        scale_bits=scale_bits,
        max_level=max_level,
        boot_levels=boot_levels,
        first_prime_bits=30,
        prime_bits=30,
        special_prime_bits=30,
        num_special_primes=num_special_primes,
        ks_alpha=ks_alpha,
        secret_hamming_weight=secret_hamming_weight,
    )


def double_angle_bootstrap_parameters(
    ring_degree: int = 128,
    max_level: int = 15,
    scale_bits: int = 27,
    boot_levels: int = 12,
    secret_hamming_weight: int = 8,
) -> CkksParameters:
    """Toy parameters for the double-angle EvalMod variant.

    The double-angle reduction (``CkksBootstrapper(double_angles=2)``)
    evaluates a much lower-degree cosine and squares its way back up —
    the mechanism production systems (Han-Ki; Bossuat et al. [11]) use
    to handle *dense* secrets, whose overflow window makes the direct
    sine fit intractable.  At the toy ring's 30-bit prime width the
    rescale-rounding noise floor limits the demonstration to sparse
    secrets (dense keys need the ~60-bit primes real libraries use);
    the level accounting and degree reduction are nevertheless the real
    ones.  L_boot = 12: base fit + one scale-pin + two doublings.
    """
    return CkksParameters(
        ring_degree=ring_degree,
        scale_bits=scale_bits,
        max_level=max_level,
        boot_levels=boot_levels,
        first_prime_bits=30,
        prime_bits=30,
        special_prime_bits=30,
        num_special_primes=2,
        secret_hamming_weight=secret_hamming_weight,
    )


def paper_parameters(
    ring_degree: int = 1 << 16,
    max_level: int = 24,
    scale_bits: int = 40,
    boot_levels: int = 14,
    ring_type: RingType = RingType.STANDARD,
) -> CkksParameters:
    """Production-shaped parameters (N = 2^16, Delta ~ 2^40, L_eff = 10).

    Matches the setup of paper Figure 1 and the CIFAR-10/ImageNet
    evaluations.  Only the *simulation* backend accepts these: primes of
    this width cannot be multiplied in int64, so the toy backend's NTT
    contexts would reject them.  The chain still consists of genuine
    NTT-friendly primes (q = 1 mod 2N) near the requested widths so that
    errorless scale management operates on the true prime values.
    """
    return CkksParameters(
        ring_degree=ring_degree,
        scale_bits=scale_bits,
        max_level=max_level,
        boot_levels=boot_levels,
        ring_type=ring_type,
        first_prime_bits=60,
        prime_bits=scale_bits,
        special_prime_bits=60,
    )
