"""Orion's core contributions (paper Sections 3-6).

- ``repro.core.packing``: single-shot multiplexed packing and BSGS
  matrix-vector products for arbitrary convolutions and FC layers.
- ``repro.core.approx``: Chebyshev/Remez polynomial approximation of
  activation functions, including composite minimax sign for ReLU.
- ``repro.core.placement``: automatic bootstrap placement via shortest
  paths over level digraphs with SESE black-boxing.
- ``repro.core.compiler`` / ``repro.core.program``: the end-to-end
  compile pipeline (trace, BN folding, range estimation, level policy,
  packing, errorless scale management) and the backend-agnostic
  executor.
- ``repro.core.attention``: encrypted self-attention with a polynomial
  softmax (the extension the paper's conclusion calls for).
"""

from repro.core.attention import AttentionConfig, EncryptedAttention

__all__ = ["AttentionConfig", "EncryptedAttention"]
