"""Polynomial approximation of activation functions (paper Sections 6-7).

- Chebyshev interpolation and a discrete Remez exchange algorithm for
  minimax fits.
- Composite minimax sign polynomials (Lee et al. [53]) with the default
  degrees [15, 15, 27] used for ReLU = x * (1 + sign(x)) / 2.
- A homomorphic Chebyshev evaluator (BSGS / Paterson-Stockmeyer over
  the Chebyshev basis) with exact Fraction scale bookkeeping: plaintext
  constant scales are chosen so that every addition is between equal
  scales — the errorless evaluation style of Bossuat et al. [11].
"""

from repro.core.approx.chebyshev import ChebyshevPoly, chebyshev_fit
from repro.core.approx.remez import remez_odd_sign
from repro.core.approx.sign import CompositeSign, relu_approximation_error
from repro.core.approx.evaluator import evaluate_chebyshev, poly_eval_depth

__all__ = [
    "ChebyshevPoly",
    "chebyshev_fit",
    "remez_odd_sign",
    "CompositeSign",
    "relu_approximation_error",
    "evaluate_chebyshev",
    "poly_eval_depth",
]
