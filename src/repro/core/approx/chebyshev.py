"""Chebyshev interpolation on [-1, 1].

Range estimation (paper Section 6) guarantees polynomial inputs lie in
[-1, 1], so all fits happen on the canonical Chebyshev domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np
from numpy.polynomial import chebyshev as C


@dataclass(frozen=True)
class ChebyshevPoly:
    """A polynomial in the Chebyshev basis on [-1, 1].

    Attributes:
        coeffs: Chebyshev-basis coefficients (c_0 ... c_d).
    """

    coeffs: Tuple[float, ...]

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    @property
    def depth(self) -> int:
        """Multiplicative depth consumed by the homomorphic evaluator.

        Measured by probing the evaluator with these exact coefficients
        (at most ceil(log2(d+1)) + 1: our base-case coefficient
        combination can spend one level more than the depth-optimal
        evaluator of [11]; see EXPERIMENTS.md).
        """
        from repro.core.approx.evaluator import measure_poly_depth

        return measure_poly_depth(self)

    def __call__(self, x):
        return C.chebval(np.asarray(x), np.asarray(self.coeffs))

    def scaled(self, factor: float) -> "ChebyshevPoly":
        return ChebyshevPoly(tuple(c * factor for c in self.coeffs))

    def plus_constant(self, value: float) -> "ChebyshevPoly":
        coeffs = list(self.coeffs)
        coeffs[0] += value
        return ChebyshevPoly(tuple(coeffs))


def chebyshev_fit(fn: Callable, degree: int) -> ChebyshevPoly:
    """Interpolate ``fn`` at the degree+1 Chebyshev nodes of [-1, 1]."""
    if degree < 1:
        raise ValueError("degree must be >= 1")
    coeffs = C.chebinterpolate(fn, degree)
    return ChebyshevPoly(tuple(float(c) for c in coeffs))


def from_power_basis(power_coeffs) -> ChebyshevPoly:
    """Convert power-basis coefficients (c[k] * x^k) to Chebyshev basis."""
    cheb = C.poly2cheb(np.asarray(power_coeffs, dtype=np.float64))
    return ChebyshevPoly(tuple(float(c) for c in cheb))
