"""Homomorphic Chebyshev evaluation with exact scale management.

BSGS / Paterson-Stockmeyer over the Chebyshev basis: baby powers
T_1..T_{m-1}, giant powers T_m, T_2m, T_4m..., and the recursive split
p = q * T_g + r using T_{g+i} = 2 T_i T_g - T_{g-i}.

Scale discipline (the errorless style of Bossuat et al. [11]): scales
are tracked as exact Fractions; every addition happens between operands
brought to the *same pre-rescale scale*, using the freedom to encode
plaintext constants at arbitrary rational scales.  Ciphertext-ciphertext
scale alignment uses a multiply-by-ones plaintext at the compensating
scale, which shares the subsequent rescale (no extra level).  The one
systematic difference from [11]: our base-case coefficient combination
spends one level, so a degree-d polynomial consumes
ceil(log2(d+1)) + 1 levels instead of ceil(log2(d+1)) (documented in
EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Optional, Union

import numpy as np

from repro.core.approx.chebyshev import ChebyshevPoly

_COEFF_EPS = 1e-12


def cached_const_plaintext(backend, value: float, level: int, scale, cache=None):
    """Encode (or fetch) the all-``value`` plaintext at (level, scale).

    ``cache`` entries are keyed by the constant's value *plus* the
    backend's full encode fingerprint (level, scale, ks config, prime
    chain), so one dict may serve many levels/scales/configs without
    ever returning a stale encode.  ``None`` disables caching.  Shared
    by the Chebyshev evaluator and the bootstrap pipeline's
    scale-recentering constants.
    """
    if cache is None:
        return backend.encode(np.full(backend.slot_count, value), level, scale)
    key = (float(value), backend.plaintext_cache_key(level, scale))
    pt = cache.get(key)
    if pt is None:
        pt = backend.encode(np.full(backend.slot_count, value), level, scale)
        cache[key] = pt
    return pt


def _largest_giant(degree: int, m: int) -> int:
    g = m
    while 2 * g <= degree:
        g *= 2
    return g


class _ChebEvaluator:
    """One evaluation of a Chebyshev series on one ciphertext.

    ``pt_cache`` (optional, caller-owned) persists the constant
    plaintexts the evaluator encodes — coefficient vectors, scale-
    matching ones, the T_{2a} correction — across evaluations.  Hot
    repeated evaluations of one polynomial (the bootstrap EvalMod runs
    the same series at the same levels and scales on every refresh)
    then encode nothing after the first call.  Entries are keyed by the
    constant's value *plus* the backend's full encode fingerprint
    (level, scale, ks config, prime chain), so a shared cache can never
    serve a stale encode.
    """

    def __init__(self, backend, ct, pt_cache: Optional[Dict] = None):
        self.backend = backend
        self.delta = Fraction(backend.params.scale)
        self.powers: Dict[int, object] = {1: ct}
        self.pt_cache = pt_cache

    # -- scale/level plumbing ------------------------------------------------
    def _align_level(self, ct, level: int):
        if self.backend.level_of(ct) > level:
            return self.backend.level_down(ct, level)
        return ct

    def _const_pt(self, value: float, level: int, scale: Fraction):
        """Encode (or fetch) the all-``value`` plaintext at an exact
        (level, scale)."""
        return cached_const_plaintext(
            self.backend, value, level, scale, self.pt_cache
        )

    def _ones(self, level: int, scale: Fraction):
        return self._const_pt(1.0, level, scale)

    def _match(self, ct, target_scale: Fraction, level: int):
        """Bring ct to the pre-rescale scale ``target_scale`` by a
        multiply-with-ones at the compensating scale (exact, levels
        shared with the caller's rescale)."""
        ct = self._align_level(ct, level)
        current = self.backend.scale_of(ct)
        if current == target_scale:
            return ct
        ratio = target_scale / current
        if ratio < 1:
            raise ValueError("scale matching only raises scales")
        return self.backend.mul_plain(ct, self._ones(level, ratio))

    def _double(self, ct):
        return self.backend.add(ct, ct)

    # -- Chebyshev powers ----------------------------------------------------
    def power(self, k: int):
        """T_k(ct), built by the product recurrence with shared rescale."""
        if k in self.powers:
            return self.powers[k]
        a = (k + 1) // 2
        b = k // 2
        ta = self.power(a)
        tb = self.power(b)
        level = min(self.backend.level_of(ta), self.backend.level_of(tb))
        ta = self._align_level(ta, level)
        tb = self._align_level(tb, level)
        prod = self._double(self.backend.mul(ta, tb))
        target = self.backend.scale_of(prod)
        if a == b:
            # T_{2a} = 2 T_a^2 - T_0; subtract the constant 1 exactly.
            minus_one = self._const_pt(-1.0, level, target)
            prod = self.backend.add_plain(prod, minus_one)
        else:
            correction = self._match(self.power(a - b), target, level)
            prod = self.backend.sub(prod, correction)
        result = self.backend.rescale(prod)
        self.powers[k] = result
        return result

    # -- series evaluation ------------------------------------------------------
    def base_terms(self, coeffs, level: int, target: Fraction):
        """Sum of c_j T_j as an (unrescaled) ciphertext at ``target``.

        Returns None when every coefficient with j >= 1 is ~zero.
        """
        acc = None
        for j, c in enumerate(coeffs):
            if j == 0 or abs(c) < _COEFF_EPS:
                continue
            tj = self._align_level(self.power(j), level)
            pt_scale = target / self.backend.scale_of(tj)
            term = self.backend.mul_plain(tj, self._const_pt(c, level, pt_scale))
            acc = term if acc is None else self.backend.add(acc, term)
        if acc is not None and abs(coeffs[0]) > _COEFF_EPS:
            acc = self.backend.add_plain(
                acc, self._const_pt(coeffs[0], level, target)
            )
        return acc

    def evaluate(self, coeffs, m: int):
        """Recursively evaluate the series; returns a ciphertext or a
        ('const', value) marker for coefficient-only remainders."""
        degree = len(coeffs) - 1
        while degree > 0 and abs(coeffs[degree]) < _COEFF_EPS:
            degree -= 1
        coeffs = coeffs[: degree + 1]
        if degree == 0:
            return ("const", coeffs[0])
        if degree < m:
            level = min(
                self.backend.level_of(self.power(j))
                for j in range(1, degree + 1)
                if abs(coeffs[j]) >= _COEFF_EPS or j == degree
            )
            target = self.delta * self.delta
            acc = self.base_terms(coeffs, level, target)
            if acc is None:
                return ("const", coeffs[0])
            return self.backend.rescale(acc)

        g = _largest_giant(degree, m)
        q = [coeffs[g]] + [2.0 * coeffs[g + i] for i in range(1, degree - g + 1)]
        r = list(coeffs[:g])
        for i in range(1, degree - g + 1):
            r[g - i] -= coeffs[g + i]

        tg = self.power(g)
        q_val = self.evaluate(q, m)
        if isinstance(q_val, tuple):
            level = self.backend.level_of(tg)
            pt = self._const_pt(q_val[1], level, self.delta)
            prod = self.backend.mul_plain(self._align_level(tg, level), pt)
        else:
            level = min(self.backend.level_of(q_val), self.backend.level_of(tg))
            prod = self.backend.mul(
                self._align_level(q_val, level), self._align_level(tg, level)
            )
        target = self.backend.scale_of(prod)
        level = self.backend.level_of(prod)

        r_degree = len(r) - 1
        while r_degree > 0 and abs(r[r_degree]) < _COEFF_EPS:
            r_degree -= 1
        if r_degree < m:
            r_ct = self.base_terms(r[: r_degree + 1], level, target)
            if r_ct is None and abs(r[0]) > _COEFF_EPS:
                prod = self.backend.add_plain(
                    prod, self._const_pt(r[0], level, target)
                )
            elif r_ct is not None:
                prod = self.backend.add(prod, r_ct)
        else:
            r_val = self.evaluate(r[: r_degree + 1], m)
            if isinstance(r_val, tuple):
                prod = self.backend.add_plain(
                    prod, self._const_pt(r_val[1], level, target)
                )
            else:
                common = min(level, self.backend.level_of(r_val))
                prod = self._align_level(prod, common)
                matched = self._match(r_val, target, common)
                prod = self.backend.add(prod, matched)
        return self.backend.rescale(prod)


def evaluate_chebyshev(
    backend,
    ct,
    poly: Union[ChebyshevPoly, "object"],
    pt_cache: Optional[Dict] = None,
):
    """Evaluate a Chebyshev-basis polynomial on a ciphertext.

    The input ciphertext must hold values in [-1, 1] (range estimation
    guarantees this for activations).  ``pt_cache`` (caller-owned)
    persists the constant-plaintext encodes across evaluations of the
    same polynomial — see :class:`_ChebEvaluator`.
    """
    coeffs = list(poly.coeffs)
    degree = len(coeffs) - 1
    if degree < 1:
        raise ValueError("constant polynomials need no evaluation")
    m = 1 << max(1, math.ceil(math.log2(math.sqrt(degree + 1))))
    ev = _ChebEvaluator(backend, ct, pt_cache=pt_cache)
    result = ev.evaluate(coeffs, m)
    if isinstance(result, tuple):
        raise ValueError("polynomial reduced to a constant")
    return result


_DEPTH_CACHE: Dict[tuple, int] = {}


def measure_poly_depth(poly: ChebyshevPoly) -> int:
    """Levels consumed by :func:`evaluate_chebyshev` for this exact
    polynomial (zero coefficients change the recursion, so depth is a
    property of the coefficients, not just the degree)."""
    key = tuple(abs(c) >= _COEFF_EPS for c in poly.coeffs)
    if key not in _DEPTH_CACHE:
        from repro.backend.sim import SimBackend
        from repro.ckks.params import paper_parameters

        backend = SimBackend(paper_parameters(), noise_free=True)
        ct = backend.encode_encrypt(np.zeros(4))
        out = evaluate_chebyshev(backend, ct, poly)
        _DEPTH_CACHE[key] = backend.params.max_level - backend.level_of(out)
    return _DEPTH_CACHE[key]


def poly_eval_depth(degree: int) -> int:
    """Depth of a dense polynomial of the given degree."""
    poly = ChebyshevPoly(tuple([0.0, 1.0] + [1e-3] * max(0, degree - 1)))
    return measure_poly_depth(poly)


def poly_eval_ops(degree: int) -> Dict[str, int]:
    """HMult/PMult/rescale counts of one evaluation (for cost models)."""
    from repro.backend.sim import SimBackend
    from repro.ckks.params import paper_parameters

    backend = SimBackend(paper_parameters(), noise_free=True)
    ct = backend.encode_encrypt(np.zeros(4))
    poly = ChebyshevPoly(tuple([0.0, 1.0] + [1e-3] * (degree - 1)))
    evaluate_chebyshev(backend, ct, poly)
    return dict(backend.ledger.counts)
