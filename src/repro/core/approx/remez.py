"""Discrete Remez exchange for minimax odd approximations of sign.

The composite-sign construction (Lee et al. [53], used by the paper for
ReLU) needs, at each stage, the odd polynomial of degree d minimizing
max |p(x) - 1| over [a, 1] (odd symmetry then gives p(x) ~ -1 on
[-1, -a]).  This module implements the classical exchange algorithm on
a dense grid: solve for equioscillation on the current reference set,
move the references to the new extrema, repeat until the levels agree.
"""

from __future__ import annotations

import numpy as np

from repro.core.approx.chebyshev import from_power_basis


def _odd_vandermonde(x: np.ndarray, degree: int) -> np.ndarray:
    """Columns x, x^3, ..., x^degree."""
    powers = np.arange(1, degree + 1, 2)
    return x[:, None] ** powers[None, :]


def remez_odd_sign(
    degree: int,
    lower: float,
    grid_points: int = 4000,
    max_iterations: int = 50,
    tolerance: float = 1e-12,
):
    """Minimax odd polynomial approximating 1 on [lower, 1].

    Args:
        degree: odd polynomial degree (only odd monomials used).
        lower: left end of the approximation interval (the dead zone
            boundary a; sign is not approximated inside (-a, a)).

    Returns:
        (ChebyshevPoly, minimax_error): the polynomial (full Chebyshev
        basis on [-1, 1]) and the achieved equioscillation error.
    """
    if degree % 2 == 0:
        raise ValueError("sign approximations use odd degrees")
    if not 0.0 < lower < 1.0:
        raise ValueError("lower must be in (0, 1)")
    num_coeffs = (degree + 1) // 2
    num_refs = num_coeffs + 1
    grid = np.linspace(lower, 1.0, grid_points)
    # Chebyshev-style initial references on [lower, 1].
    k = np.arange(num_refs)
    refs = 0.5 * (lower + 1.0) + 0.5 * (1.0 - lower) * np.cos(
        np.pi * (num_refs - 1 - k) / (num_refs - 1)
    )

    coeffs = np.zeros(num_coeffs)
    error_level = 0.0
    for _ in range(max_iterations):
        # Solve p(r_i) + (-1)^i E = 1 for the coefficients and level E.
        design = np.zeros((num_refs, num_coeffs + 1))
        design[:, :num_coeffs] = _odd_vandermonde(refs, degree)
        design[:, num_coeffs] = (-1.0) ** np.arange(num_refs)
        solution = np.linalg.solve(design, np.ones(num_refs))
        coeffs = solution[:num_coeffs]
        error_level = abs(solution[num_coeffs])

        residual = _odd_vandermonde(grid, degree) @ coeffs - 1.0
        new_refs = _local_extrema(grid, residual, num_refs)
        max_err = np.abs(residual).max()
        if max_err - error_level < tolerance:
            refs = new_refs
            break
        refs = new_refs

    power = np.zeros(degree + 1)
    power[1::2] = coeffs
    return from_power_basis(power), float(np.abs(
        _odd_vandermonde(grid, degree) @ coeffs - 1.0
    ).max())


def _local_extrema(grid: np.ndarray, residual: np.ndarray, count: int) -> np.ndarray:
    """Pick ``count`` alternating extrema of the residual."""
    candidates = [0]
    for i in range(1, len(grid) - 1):
        if (residual[i] - residual[i - 1]) * (residual[i + 1] - residual[i]) <= 0:
            candidates.append(i)
    candidates.append(len(grid) - 1)
    # Keep the largest-magnitude extremum per sign run, preserving order.
    chosen = []
    for idx in candidates:
        if chosen and np.sign(residual[idx]) == np.sign(residual[chosen[-1]]):
            if abs(residual[idx]) > abs(residual[chosen[-1]]):
                chosen[-1] = idx
        else:
            chosen.append(idx)
    # If too many alternations, keep the strongest consecutive window.
    while len(chosen) > count:
        mags = [abs(residual[i]) for i in chosen]
        drop = int(np.argmin(mags))
        chosen.pop(drop)
    while len(chosen) < count:
        # Degenerate (shouldn't happen on reasonable grids): pad evenly.
        chosen.append(len(grid) - 1)
    return grid[np.array(sorted(set(chosen))[:count])]
