"""Composite minimax sign polynomials (paper Section 7).

A single minimax polynomial approximating sign needs enormous degree
for tight dead zones; composing several low-degree minimax polynomials
(Lee et al. [53]) reaches the same precision with far fewer levels.
The paper's default composition for ReLU is degrees [15, 15, 27] with
total multiplicative depth 13 for sign plus 1 for the final multiply.

Construction: with dead zone (-tau, tau), stage 1 is the minimax odd
approximation of 1 on [tau, 1]; its outputs concentrate near +-1 within
error e1, so stage 2 approximates on [(1-e1)/(1+e1), 1] after dividing
by (1+e1), and so on.  The composition maps |x| >= tau to within e_k
of sign(x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.approx.chebyshev import ChebyshevPoly
from repro.core.approx.remez import remez_odd_sign

_CACHE = {}


@dataclass(frozen=True)
class CompositeSign:
    """sign(x) ~ p_k(...p_2(p_1(x))...) for |x| in [tau, 1].

    Attributes:
        stages: the composed Chebyshev-basis polynomials, in application
            order.
        tau: dead-zone half-width (no accuracy guarantee inside).
        error: final minimax error on [tau, 1].
    """

    stages: Tuple[ChebyshevPoly, ...]
    tau: float
    error: float

    @classmethod
    def build(cls, degrees: Sequence[int] = (15, 15, 27), tau: float = 0.02) -> "CompositeSign":
        key = (tuple(degrees), tau)
        if key in _CACHE:
            return _CACHE[key]
        stages: List[ChebyshevPoly] = []
        lower = tau
        error = 1.0
        for degree in degrees:
            poly, error = remez_odd_sign(degree, lower)
            # Normalize so outputs fall back inside [-1, 1].
            poly = poly.scaled(1.0 / (1.0 + error))
            error = (2 * error) / (1.0 + error)  # post-normalization error band
            stages.append(poly)
            lower = max(1e-6, 1.0 - error)
        result = cls(stages=tuple(stages), tau=tau, error=error)
        _CACHE[key] = result
        return result

    def __call__(self, x):
        out = np.asarray(x, dtype=np.float64)
        for stage in self.stages:
            out = stage(out)
        return out

    @property
    def depth(self) -> int:
        """Total depth of the composed evaluation."""
        return sum(stage.depth for stage in self.stages)

    def relu_stages(self) -> Tuple[ChebyshevPoly, ...]:
        """Stages for ReLU(x) = x * (sign(x) + 1) / 2: the final stage is
        rescaled/offset so the join multiply needs no extra constants."""
        *head, last = self.stages
        return tuple(head) + (last.scaled(0.5).plus_constant(0.5),)


def relu_approximation_error(
    composite: CompositeSign, samples: int = 20001
) -> float:
    """Max |relu_approx(x) - relu(x)| over [-1, 1] (dead zone included:
    inside (-tau, tau) the error of x*(sign+1)/2 is at most ~tau)."""
    x = np.linspace(-1.0, 1.0, samples)
    sign_plus = composite(x)
    approx = x * (sign_plus + 1.0) / 2.0
    return float(np.abs(approx - np.maximum(x, 0.0)).max())
