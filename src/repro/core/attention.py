"""Encrypted single-head self-attention: the paper's future-work layer.

The paper closes with "our high-level Python interface allows other
researchers to extend Orion to support new network layer types such as
self-attention".  This module is that extension, built from the same
primitives the rest of the reproduction uses:

- **Projections** (Q = W_q x, ...) are plaintext-weight matvecs via the
  diagonal method (Section 3) with the errorless scale discipline.
- **Scores** q_i . k_j are ciphertext-ciphertext inner products: one
  HMult followed by a rotate-and-sum tree, masked to slot zero and
  re-broadcast with a second rotation tree.
- **Softmax** is replaced by its FHE-friendly polynomial form: a
  Chebyshev exp on range-normalized scores, and the reciprocal of the
  exp-sum computed by a Chebyshev approximation of 1/x on a bounded
  interval (division does not exist in CKKS; bounded-interval inverses
  are the standard workaround).
- **Mixing** sum_j softmax_ij * v_j is one HMult per pair plus adds.

Everything runs against the generic :class:`repro.backend.FheBackend`
interface, so both the functional simulator and the exact toy backend
can execute it.  This is a proof-of-concept layer (per-token
ciphertexts, no cross-token packing) — the packing optimizations of
Section 4 applied to attention are genuinely future work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence

import numpy as np

from repro.core.approx.chebyshev import ChebyshevPoly, chebyshev_fit
from repro.core.approx.evaluator import evaluate_chebyshev


# ---------------------------------------------------------------------------
# Generic encrypted building blocks
# ---------------------------------------------------------------------------
def rotate_sum(backend, ct, width: int):
    """Fold the first ``width`` (a power of two) slots into slot zero.

    After the fold, slot 0 holds the sum of slots 0..width-1 (other
    slots hold rotated partial sums).  The log2(width) rotation tree
    expands into ``width - 1`` rotations of the original ciphertext, so
    on fused-capable backends it rides one shared key-switch digit
    decomposition and one deferred mod-down
    (:meth:`FheBackend.rotate_sum_hoisted`) whenever the cost model
    prices that cheaper; "# Rots" stays at the tree's log2(width).
    """
    if width & (width - 1):
        raise ValueError("rotate_sum needs a power-of-two width")
    num_folds = int(math.log2(width)) if width > 1 else 0
    if (
        num_folds
        and getattr(backend, "supports_fused_fold", False)
        and backend.costs.fused_fold_cheaper(backend.level_of(ct), num_folds)
    ):
        return backend.rotate_sum_hoisted(
            ct, range(1, width), charged_rotations=num_folds
        )
    shift = 1
    while shift < width:
        ct = backend.add(ct, backend.rotate(ct, shift))
        shift *= 2
    return ct


def broadcast_slot0(backend, ct):
    """Replicate slot 0 into every slot (log2(n) rotations).

    The input must already be zero outside slot 0 (mask first).  Like
    :func:`rotate_sum`, the tree expands into all n - 1 nonzero
    rotations of the original ciphertext, so fused-capable backends can
    hoist it onto one shared decomposition when the cost model agrees
    (for large n the sequential tree usually stays cheaper).
    """
    n = backend.slot_count
    num_folds = int(math.log2(n)) if n > 1 else 0
    if (
        num_folds
        and getattr(backend, "supports_fused_fold", False)
        and backend.costs.fused_fold_cheaper(backend.level_of(ct), num_folds)
    ):
        return backend.rotate_sum_hoisted(
            ct, range(1, n), charged_rotations=num_folds
        )
    shift = 1
    while shift < n:
        ct = backend.add(ct, backend.rotate(ct, n - shift))
        shift *= 2
    return ct


def encrypted_inner_product(backend, a, b, width: int, post_factor: float = 1.0):
    """<a[:width], b[:width]> broadcast to every slot.

    Consumes two levels: one for the HMult, one for the slot-0 mask
    (which also folds in ``post_factor``, e.g. the 1/sqrt(d) attention
    temperature and the exp range normalization).
    """
    prod = backend.rescale(backend.mul(a, b))
    summed = rotate_sum(backend, prod, width)
    level = backend.level_of(summed)
    mask = np.zeros(backend.slot_count)
    mask[0] = post_factor
    prime = backend.params.data_primes[level]
    masked = backend.mul_plain(summed, backend.encode(mask, level, Fraction(prime)))
    return broadcast_slot0(backend, backend.rescale(masked))


def square_matvec(backend, ct, matrix: np.ndarray):
    """Dense diagonal-method matvec with plaintext weights (one level).

    The matrix must be square (d x d with d <= slot count); diagonals
    are encoded at the current rescale prime so the output scale equals
    the input scale exactly (the errorless discipline of Section 6).
    """
    d = matrix.shape[0]
    if matrix.shape != (d, d):
        raise ValueError("square_matvec needs a square matrix")
    level = backend.level_of(ct)
    n = backend.slot_count
    prime = backend.params.data_primes[level]
    indices = np.arange(d)
    acc = None
    for k in range(d):
        diagonal = matrix[indices, (indices + k) % d]
        if np.max(np.abs(diagonal)) < 1e-15:
            continue
        # The ciphertext rotates over all n slots, not d, so a diagonal
        # whose index wraps past d splits into two rotations: positions
        # i < d-k read the rotate-by-k copy, the wrapped tail positions
        # read the rotate-by-(k-d) copy (Gazelle's wraparound split).
        for rotation, live in ((k, indices < d - k), (k - d, indices >= d - k)):
            if not np.any(np.abs(diagonal[live]) > 1e-15):
                continue
            padded = np.zeros(n)
            padded[:d][live] = diagonal[live]
            plaintext = backend.encode(padded, level, Fraction(prime))
            term = backend.mul_plain(backend.rotate(ct, rotation % n), plaintext)
            acc = term if acc is None else backend.add(acc, term)
    return backend.rescale(acc)


def chebyshev_inverse(lo: float, hi: float, degree: int = 15) -> ChebyshevPoly:
    """Chebyshev fit of 1/x on [lo, hi], expressed on [-1, 1].

    The caller maps its operand S to x = (2S - lo - hi) / (hi - lo)
    before evaluating.  Convergence factor per degree is
    (sqrt(r) - 1) / (sqrt(r) + 1) with r = hi/lo, so tight bounds pay
    off exponentially.
    """
    if lo <= 0:
        raise ValueError("inverse needs a positive interval")
    half_span = (hi - lo) / 2.0
    center = (hi + lo) / 2.0
    return chebyshev_fit(lambda x: 1.0 / (center + half_span * np.asarray(x)), degree)


def affine_to_unit(backend, ct, lo: float, hi: float):
    """Map slot values from [lo, hi] to [-1, 1] (one level)."""
    level = backend.level_of(ct)
    prime = backend.params.data_primes[level]
    gain = 2.0 / (hi - lo)
    pt_gain = backend.encode(
        np.full(backend.slot_count, gain), level, Fraction(prime)
    )
    scaled = backend.rescale(backend.mul_plain(ct, pt_gain))
    offset = -(hi + lo) / (hi - lo)
    pt_offset = backend.encode(
        np.full(backend.slot_count, offset),
        backend.level_of(scaled),
        backend.scale_of(scaled),
    )
    return backend.add_plain(scaled, pt_offset)


# ---------------------------------------------------------------------------
# Attention
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AttentionConfig:
    """Hyper-parameters of the polynomial softmax.

    Attributes:
        exp_range: scores are clipped (by construction: inputs in
            [-1, 1] and row-normalized weights keep them bounded) to
            [-exp_range, exp_range] before the exp approximation.
        exp_degree: Chebyshev degree for exp(exp_range * x).
        inverse_degree: Chebyshev degree for 1/x on the exp-sum range.
    """

    exp_range: float = 1.0
    exp_degree: int = 15
    inverse_degree: int = 15


class EncryptedAttention:
    """Single-head scaled dot-product attention over token ciphertexts.

    Args:
        backend: any :class:`repro.backend.FheBackend`.
        wq / wk / wv: (d, d) projection weight matrices (cleartext, as
            in the paper's threat model).
        config: polynomial softmax settings.
    """

    def __init__(self, backend, wq, wk, wv, config: AttentionConfig = AttentionConfig()):
        self.backend = backend
        self.wq = np.asarray(wq, dtype=np.float64)
        self.wk = np.asarray(wk, dtype=np.float64)
        self.wv = np.asarray(wv, dtype=np.float64)
        self.dim = self.wq.shape[0]
        if self.wq.shape != (self.dim, self.dim) or self.wk.shape != self.wq.shape \
                or self.wv.shape != self.wq.shape:
            raise ValueError("projection matrices must share one square shape")
        if self.dim & (self.dim - 1):
            raise ValueError("embedding dim must be a power of two (rotate_sum)")
        self.config = config
        self.exp_poly = chebyshev_fit(
            lambda x: np.exp(config.exp_range * np.asarray(x)), config.exp_degree
        )

    # -- cleartext references ------------------------------------------------
    def reference(self, tokens: np.ndarray) -> np.ndarray:
        """Exact softmax attention (for precision accounting)."""
        q = tokens @ self.wq.T
        k = tokens @ self.wk.T
        v = tokens @ self.wv.T
        scores = (q @ k.T) / math.sqrt(self.dim)
        weights = np.exp(scores)
        weights /= weights.sum(axis=1, keepdims=True)
        return weights @ v

    def polynomial_reference(self, tokens: np.ndarray) -> np.ndarray:
        """Cleartext evaluation of the *polynomial* softmax (the target
        the encrypted computation should match bit-for-bit-ish)."""
        q = tokens @ self.wq.T
        k = tokens @ self.wk.T
        v = tokens @ self.wv.T
        scores = (q @ k.T) / (math.sqrt(self.dim) * self.config.exp_range)
        exps = self.exp_poly(scores)
        lo, hi = self._sum_bounds(len(tokens))
        inv_poly = chebyshev_inverse(lo, hi, self.config.inverse_degree)
        sums = exps.sum(axis=1)
        inverse = inv_poly((2.0 * sums - lo - hi) / (hi - lo))
        return (exps * inverse[:, None]) @ v

    # -- encrypted path --------------------------------------------------------
    def _sum_bounds(self, seq_len: int):
        spread = math.e ** self.config.exp_range
        return seq_len / spread * 0.9, seq_len * spread * 1.1

    def __call__(self, token_cts: Sequence) -> List:
        """Attend over per-token ciphertexts (embedding in slots 0..d-1).

        Returns one output ciphertext per token.  Level budget: roughly
        4 + exp-depth + inverse-depth (about 16 levels at the default
        degrees), so encrypt inputs near the top of the modulus chain.
        """
        backend = self.backend
        seq_len = len(token_cts)
        queries = [square_matvec(backend, ct, self.wq) for ct in token_cts]
        keys = [square_matvec(backend, ct, self.wk) for ct in token_cts]
        values = [square_matvec(backend, ct, self.wv) for ct in token_cts]

        temperature = 1.0 / (math.sqrt(self.dim) * self.config.exp_range)
        exps = [
            [
                evaluate_chebyshev(
                    backend,
                    encrypted_inner_product(
                        backend, queries[i], keys[j], self.dim, temperature
                    ),
                    self.exp_poly,
                )
                for j in range(seq_len)
            ]
            for i in range(seq_len)
        ]

        lo, hi = self._sum_bounds(seq_len)
        inv_poly = chebyshev_inverse(lo, hi, self.config.inverse_degree)
        outputs = []
        for i in range(seq_len):
            row_sum = exps[i][0]
            for j in range(1, seq_len):
                row_sum = backend.add(row_sum, exps[i][j])
            inverse = evaluate_chebyshev(
                backend, affine_to_unit(backend, row_sum, lo, hi), inv_poly
            )
            acc = None
            for j in range(seq_len):
                weight_level = min(
                    backend.level_of(exps[i][j]), backend.level_of(inverse)
                )
                weight = backend.rescale(
                    backend.mul(
                        backend.level_down(exps[i][j], weight_level),
                        backend.level_down(inverse, weight_level),
                    )
                )
                mix_level = min(
                    backend.level_of(weight), backend.level_of(values[j])
                )
                term = backend.rescale(
                    backend.mul(
                        backend.level_down(weight, mix_level),
                        backend.level_down(values[j], mix_level),
                    )
                )
                acc = term if acc is None else backend.add(acc, term)
            outputs.append(acc)
        return outputs
