"""The Orion compiler: traced network -> executable FHE program.

Pipeline (paper Sections 4-6):

1. **Trace** the network into a layer DAG and parse its SESE region
   tree (residual blocks; repro.trace).
2. **Fold batch norms** into their producing convolutions (no level).
3. **Range-estimate** normalization constants from calibration data and
   fuse the scale-downs into weights and activation fits.
4. **Pack** every linear layer with single-shot multiplexing + BSGS
   (materialized plaintext diagonals, or closed-form counts in
   ``analyze`` mode for paper-scale networks).
5. **Approximate** activations: composite minimax sign for ReLU,
   Chebyshev fits for SiLU/custom, direct squaring for x^2.
6. **Place bootstraps** with the level-digraph planner and stamp every
   instruction with its execution level.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backend.costs import CostModel
from repro.ckks.params import CkksParameters
from repro.core.approx.chebyshev import chebyshev_fit
from repro.core.approx.evaluator import poly_eval_ops
from repro.core.approx.sign import CompositeSign
from repro.core.graphopt import OptContext, optimize_graph
from repro.core.graphopt.passes import sibling_profile
from repro.core.packing.analysis import analyze_conv_packing, merged_packing_stats
from repro.core.packing.layouts import MultiplexedLayout, VectorLayout
from repro.core.packing.matvec import (
    build_conv_packing,
    build_linear_packing,
    merge_packed_matvecs,
)
from repro.core.placement.items import (
    JoinSpec,
    LayerSpec,
    PlacementChain,
    PlacementRegion,
)
from repro.core.placement.planner import PlacementResult, solve_placement
from repro.core.program import (
    AddJoinInstr,
    FheProgram,
    Instruction,
    LinearInstr,
    MultJoinInstr,
    PolyInstr,
    RotateInstr,
    SliceInstr,
    SquareInstr,
)
from repro.core.ranges import RangeEstimate, estimate_ranges
from repro.trace.graph import LayerGraph, TracedValue, tracer
from repro.trace.sese import Chain, RegionItem, build_region_tree
from repro.autograd.tensor import Tensor, no_grad


@dataclass
class LayerReport:
    """Per-layer compile results (drives the benchmark tables)."""

    name: str
    kind: str
    rotations: int
    pmults: int
    depth: int
    num_cts: int


@dataclass
class CompiledNetwork:
    """Everything the benchmarks and executor need."""

    program: Optional[FheProgram]
    placement: PlacementResult
    chain: PlacementChain
    layer_reports: List[LayerReport]
    multiplicative_depth: int
    compile_seconds: float = 0.0
    graph_opt_seconds: float = 0.0
    graph_opt_report: object = None

    @property
    def total_rotations(self) -> int:
        return sum(r.rotations for r in self.layer_reports)

    @property
    def total_pmults(self) -> int:
        return sum(r.pmults for r in self.layer_reports)

    @property
    def num_bootstraps(self) -> int:
        return self.placement.num_bootstraps

    @property
    def modeled_seconds(self) -> float:
        return self.placement.modeled_seconds

    def run(self, backend, image: np.ndarray) -> np.ndarray:
        if self.program is None:
            raise RuntimeError("network compiled in analyze mode; cannot execute")
        return self.program.run(backend, image)

    def export(self, path: str, params: CkksParameters) -> "object":
        """Serialize this compilation to a serving artifact on disk.

        The artifact (``repro.serve.artifact``) carries the program,
        weight-plaintext tables, layer reports, and the key manifest —
        everything a serving worker needs to load and serve without ever
        invoking the compiler or the placement planner again.  Returns
        the written :class:`repro.serve.artifact.ServingArtifact`.
        """
        from repro.serve.artifact import save_artifact

        return save_artifact(self, params, path)

    def summary(self) -> Dict[str, float]:
        return {
            "rotations": self.total_rotations,
            "pmults": self.total_pmults,
            "bootstraps": self.num_bootstraps,
            "depth": self.multiplicative_depth,
            "modeled_seconds": self.modeled_seconds,
            "placement_seconds": self.placement.solve_seconds,
            "compile_seconds": self.compile_seconds,
            "graph_opt_seconds": self.graph_opt_seconds,
        }


class OrionCompiler:
    """Compiles one orion network for one parameter set."""

    # Class-wide count of compile() calls.  The serving runtime's
    # load-and-serve contract is "zero compiler invocations on the
    # serve path"; tests and the serving benchmark assert this counter
    # does not move while requests are served from an artifact.
    invocations: int = 0

    def __init__(
        self,
        params: CkksParameters,
        cost_model: Optional[CostModel] = None,
        mode: str = "materialize",
        optimize: Optional[bool] = None,
    ):
        if mode not in ("materialize", "analyze"):
            raise ValueError("mode must be 'materialize' or 'analyze'")
        self.params = params
        self.costs = cost_model or CostModel(params)
        self.mode = mode
        if optimize is None:
            flag = os.environ.get("REPRO_GRAPH_OPT", "on").strip().lower()
            optimize = flag not in ("off", "0", "false", "no")
        self.optimize = optimize

    # ------------------------------------------------------------------
    def compile(
        self,
        net,
        input_shape: Tuple[int, int, int],
        calibration_batches: Optional[List[np.ndarray]] = None,
        entry_level: Optional[int] = None,
    ) -> CompiledNetwork:
        from repro.obs.tracing import get_tracer

        obs = get_tracer()
        if not obs.enabled:
            return self._compile(
                net, input_shape, calibration_batches, entry_level
            )
        with obs.span(
            "compile",
            category="compile",
            mode=self.mode,
            optimize=self.optimize,
            ring_degree=self.params.ring_degree,
        ) as span:
            compiled = self._compile(
                net, input_shape, calibration_batches, entry_level
            )
            span.set(
                rotations=compiled.total_rotations,
                bootstraps=compiled.num_bootstraps,
                depth=compiled.multiplicative_depth,
            )
            return compiled

    def _compile(
        self,
        net,
        input_shape: Tuple[int, int, int],
        calibration_batches: Optional[List[np.ndarray]] = None,
        entry_level: Optional[int] = None,
    ) -> CompiledNetwork:
        from repro.obs.tracing import get_tracer

        OrionCompiler.invocations += 1
        start = time.perf_counter()
        net.eval()
        graph = self._trace(net, input_shape)
        folded = self._fold_batchnorms(graph)
        ranges = self._ranges(net, graph, calibration_batches, input_shape)

        # Graph-level optimizer: cost-gated rewrites over the traced DAG
        # (docs/graphopt.md).  Runs after range estimation — rewrites
        # preserve the original value ids their results flow into, so
        # the estimates stay valid — and before region parsing.
        graph_opt_seconds = 0.0
        graph_opt_report = None
        if self.optimize:
            opt_start = time.perf_counter()
            ctx = OptContext(
                params=self.params,
                costs=self.costs,
                input_shape=tuple(input_shape),
                folded=folded,
            )
            with get_tracer().span("graph_opt", category="compile"):
                graph_opt_report = optimize_graph(graph, ctx)
            graph_opt_seconds = time.perf_counter() - opt_start

        tree = build_region_tree(graph)
        build = _ProgramBuilder(self, graph, folded, ranges, input_shape)
        build.walk(tree)

        with get_tracer().span("placement", category="compile") as place_span:
            placement = solve_placement(
                build.chain,
                l_eff=self.params.effective_level,
                boot_cost=self.costs.bootstrap(),
                entry_level=entry_level,
            )
            place_span.set(
                entry_level=placement.entry_level,
                solve_seconds=placement.solve_seconds,
            )
        policy = placement.policy_map()
        level_by_uid: Dict[int, int] = {}
        for instr in build.instructions:
            decision = policy.get(instr.name)
            if decision is not None:
                instr.exec_level = decision.exec_level
                instr.boots_before = decision.bootstrap_before
            else:
                # Chain-less instructions (SliceInstr is free and holds
                # no placement item): inherit the producer's level.
                instr.exec_level = level_by_uid.get(
                    getattr(instr, "in_uid", -1), placement.entry_level
                )
                instr.boots_before = 0
            level_by_uid[instr.out_uid] = instr.exec_level

        program = None
        if self.mode == "materialize":
            program = FheProgram(
                instructions=build.instructions,
                input_uid=graph.input_uid,
                output_uid=build.final_uid,
                input_layout=build.layouts[graph.input_uid],
                output_layout=build.layouts[build.final_uid],
                input_norm=ranges.norm(graph.input_uid),
                output_denorm=ranges.norm(build.final_uid)
                * build.pending.get(build.final_uid, 1.0),
                entry_level=placement.entry_level,
            )
        return CompiledNetwork(
            program=program,
            placement=placement,
            chain=build.chain,
            layer_reports=build.reports,
            multiplicative_depth=build.chain.total_depth(),
            compile_seconds=time.perf_counter() - start,
            graph_opt_seconds=graph_opt_seconds,
            graph_opt_report=graph_opt_report,
        )

    # ------------------------------------------------------------------
    def _trace(self, net, input_shape) -> LayerGraph:
        dummy = np.zeros((1,) + tuple(input_shape))
        with no_grad():
            with tracer() as graph:
                net(TracedValue(Tensor(dummy), graph.input_uid))
        if graph.output_uid is None:
            raise ValueError("tracing recorded no layers — not an orion network?")
        return graph

    def _fold_batchnorms(self, graph: LayerGraph) -> Dict[int, Tuple]:
        """node index -> (weight, bias) with adjacent BN folded in.

        Returns entries for linear nodes (possibly folded) and marks
        folded BN nodes via the special value ("alias",).
        """
        folded: Dict[int, Tuple] = {}
        consumers = graph.consumers()
        producers = graph.producers()
        for node in graph.nodes:
            kind = getattr(node.module, "orion_kind", None)
            if kind != "batchnorm":
                continue
            producer = producers.get(node.inputs[0])
            only_consumer = len(consumers.get(node.inputs[0], [])) == 1
            if (
                producer is not None
                and only_consumer
                and getattr(producer.module, "orion_kind", None) == "linear"
                and hasattr(producer.module, "weight")
                and producer.module.weight is not None
            ):
                scale, shift = node.module.folded_affine()
                lin = producer.module
                base_weight = lin.weight.data
                if base_weight.ndim == 4:  # convolution
                    weight = base_weight * scale[:, None, None, None]
                elif base_weight.ndim == 2:  # dense Linear
                    weight = base_weight * scale[:, None]
                else:
                    continue
                if lin.bias is not None:
                    base_bias = lin.bias.data
                else:
                    base_bias = np.zeros(weight.shape[0])
                bias = base_bias * scale + shift
                folded[producer.index] = (weight, bias)
                folded[node.index] = ("alias",)
        return folded

    def _ranges(self, net, graph, calibration_batches, input_shape) -> RangeEstimate:
        if calibration_batches is None:
            return RangeEstimate({}, margin=1.0)
        return estimate_ranges(net, graph, calibration_batches)


class _ProgramBuilder:
    """Walks the region tree emitting instructions + placement items."""

    def __init__(self, compiler: OrionCompiler, graph, folded, ranges, input_shape):
        self.compiler = compiler
        self.graph = graph
        self.folded = folded
        self.ranges = ranges
        self.instructions: List[Instruction] = []
        self.reports: List[LayerReport] = []
        self.chain = PlacementChain()
        self.layouts: Dict[int, object] = {}
        self.alias: Dict[int, int] = {}
        self.pending: Dict[int, float] = {}
        self.final_uid = graph.input_uid
        channels, height, width = input_shape
        self.layouts[graph.input_uid] = MultiplexedLayout(
            channels, height, width, gap=1, slots=compiler.params.slot_count
        )

    # -- helpers -----------------------------------------------------------
    def _resolve(self, uid: int) -> int:
        while uid in self.alias:
            uid = self.alias[uid]
        return uid

    def _num_cts(self, uid: int) -> int:
        return self.layouts[self._resolve(uid)].num_ciphertexts

    def _poly_cost_fn(self, degree: int, num_cts: int):
        ops = _POLY_OPS_CACHE.setdefault(degree, poly_eval_ops(degree))
        costs = self.compiler.costs

        def cost(level: int) -> float:
            return num_cts * (
                ops.get("hmult", 0) * costs.hmult(level)
                + ops.get("pmult", 0) * costs.pmult(level)
                + ops.get("rescale", 0) * costs.rescale(level)
                + (ops.get("hadd", 0) + ops.get("padd", 0)) * costs.hadd(level)
            )

        return cost

    # -- tree walk -----------------------------------------------------------
    def walk(self, tree: Chain, target: Optional[PlacementChain] = None) -> int:
        """Emit a chain; returns the uid carrying the chain's output."""
        chain = self.chain if target is None else target
        last_uid = None
        for item in tree.items:
            if isinstance(item, RegionItem):
                last_uid = self._emit_region(item, chain)
            else:
                last_uid = self._emit_node(item.node, chain)
        if target is None and last_uid is not None:
            self.final_uid = self._resolve(last_uid)
        return last_uid

    def _emit_region(self, region: RegionItem, chain: PlacementChain) -> int:
        branch_a = PlacementChain()
        branch_b = PlacementChain()
        self.walk(region.branch_a, branch_a)
        self.walk(region.branch_b, branch_b)
        join = region.join
        a_uid = self._resolve(join.inputs[0])
        b_uid = self._resolve(join.inputs[1])
        if self.pending.get(a_uid, 1.0) != self.pending.get(b_uid, 1.0):
            raise ValueError("mismatched pending scale factors at a join")
        self.layouts[join.output] = self.layouts[a_uid]
        self.pending[join.output] = self.pending.get(a_uid, 1.0)
        num_cts = self._num_cts(a_uid) + self._num_cts(b_uid)
        costs = self.compiler.costs
        spec = JoinSpec(
            join.name, depth=0, cost_fn=lambda l: costs.hadd(l), boot_units=num_cts
        )
        chain.items.append(PlacementRegion(branch_a, branch_b, spec))
        self.instructions.append(
            AddJoinInstr(
                name=join.name,
                out_uid=join.output,
                exec_level=0,
                boots_before=0,
                a_uid=a_uid,
                b_uid=b_uid,
            )
        )
        return join.output

    def _emit_node(self, node, chain: PlacementChain) -> int:
        kind = getattr(node.module, "orion_kind", None)
        if kind == "linear":
            return self._emit_linear(node, chain)
        if kind == "batchnorm":
            return self._emit_batchnorm(node, chain)
        if kind == "reshape":
            in_uid = self._resolve(node.inputs[0])
            self.alias[node.output] = in_uid
            return node.output
        if kind == "relu":
            return self._emit_relu(node, chain)
        if kind == "poly":
            return self._emit_poly(node, chain)
        if kind == "fused_linear":
            return self._emit_fused_linear(node, chain)
        if kind == "slice":
            return self._emit_slice(node)
        if kind == "rotate":
            return self._emit_rotate(node, chain)
        raise ValueError(f"unsupported node kind {kind!r} for {node.name}")

    # -- linear layers -----------------------------------------------------
    def _effective_linear_params(self, node, out_uid: int):
        """Weights with BN folding, normalization, and pending factors.

        The packed layer computes out/M_out from in/M_in, so weights
        scale by M_in/M_out (times any pending factor from a preceding
        Square) and biases divide by M_out — the fused scale-down
        multiplications of paper Section 6.
        """
        module = node.module
        if node.index in self.folded:
            weight, bias = self.folded[node.index]
        else:
            weight = module.weight.data
            bias = module.bias.data if module.bias is not None else None
        in_uid = self._resolve(node.inputs[0])
        m_in = self.ranges.norm(in_uid)
        m_out = self.ranges.norm(out_uid)
        factor = (m_in / m_out) * self.pending.pop(in_uid, 1.0)
        weight = weight * factor
        if bias is not None:
            bias = np.asarray(bias) / m_out
        return weight, bias, in_uid

    def _emit_linear(self, node, chain: PlacementChain) -> int:
        module = node.module
        out_uid = node.output
        # A folded-away BN redirects the conv's output uid to the BN's.
        consumers = self.graph.consumers().get(out_uid, [])
        if len(consumers) == 1 and _is_alias(self.folded.get(consumers[0].index)):
            out_uid = consumers[0].output
        name = node.name
        mode = self.compiler.mode
        type_name = type(module).__name__

        if type_name in ("AvgPool2d", "AdaptiveAvgPool2d"):
            in_uid = self._resolve(node.inputs[0])
            in_layout = self.layouts[in_uid]
            k = module.kernel_size if type_name == "AvgPool2d" else in_layout.height
            stride = module.stride if type_name == "AvgPool2d" else k
            c = in_layout.channels
            m_in = self.ranges.norm(in_uid)
            m_out = self.ranges.norm(out_uid)
            factor = (m_in / m_out) * self.pending.pop(in_uid, 1.0)
            w_pool = np.full((c, 1, k, k), factor / (k * k))
            packed, stats = self._pack_conv(
                w_pool, None, in_layout, (stride, stride), (0, 0), (1, 1),
                c, name, mode,
            )
        else:
            weight, bias, in_uid = self._effective_linear_params(node, out_uid)
            in_layout = self.layouts[in_uid]
            if getattr(module, "kernel_size", None) is not None:  # convolution
                packed, stats = self._pack_conv(
                    weight, bias, in_layout, module.stride, module.padding,
                    module.dilation, module.groups, name, mode,
                )
            else:  # fully connected
                packed, stats = self._pack_fc(weight, bias, in_layout, name, mode)

        out_layout = stats["out_layout"]
        self.layouts[out_uid] = out_layout
        if out_uid != node.output:
            self.alias[node.output] = out_uid

        num_cts_in = in_layout.num_ciphertexts
        cost_obj = stats["cost_obj"]
        costs = self.compiler.costs
        chain.items.append(
            LayerSpec(
                name,
                depth=1,
                cost_fn=lambda l, c=cost_obj: c.cost(l, costs),
                boot_units=num_cts_in,
                cost_obj=cost_obj,
            )
        )
        self.instructions.append(
            LinearInstr(
                name=name, out_uid=out_uid, exec_level=0, boots_before=0,
                in_uid=in_uid, packed=packed,
            )
        )
        self.reports.append(
            LayerReport(
                name=name,
                kind="linear",
                rotations=stats["rotations"],
                pmults=stats["pmults"],
                depth=1,
                num_cts=out_layout.num_ciphertexts,
            )
        )
        return out_uid

    def _pack_conv(self, weight, bias, in_layout, stride, padding, dilation,
                   groups, name, mode):
        if isinstance(stride, int):
            stride = (stride, stride)
        if mode == "materialize":
            packed = build_conv_packing(
                weight, bias, in_layout, stride=stride, padding=padding,
                dilation=dilation, groups=groups, name=name,
            )
            return packed, {
                "out_layout": packed.out_layout,
                "rotations": packed.rotation_count(),
                "pmults": packed.pmult_count(),
                "cost_obj": _MatVecCost(packed),
            }
        stats = analyze_conv_packing(
            weight.shape, in_layout, stride=stride, padding=padding,
            dilation=dilation, groups=groups,
        )
        return None, {
            "out_layout": stats.out_layout,
            "rotations": stats.rotations,
            "pmults": stats.pmults,
            "cost_obj": _StatsCost(stats),
        }

    def _pack_fc(self, weight, bias, in_layout, name, mode):
        if mode == "materialize":
            packed = build_linear_packing(weight, bias, in_layout, name=name)
            return packed, {
                "out_layout": packed.out_layout,
                "rotations": packed.rotation_count(),
                "pmults": packed.pmult_count(),
                "cost_obj": _MatVecCost(packed),
            }
        from repro.core.packing.analysis import analyze_linear_packing

        stats = analyze_linear_packing(weight.shape[0], in_layout)
        return None, {
            "out_layout": stats.out_layout,
            "rotations": stats.rotations,
            "pmults": stats.pmults,
            "cost_obj": _StatsCost(stats),
        }

    # -- graph-optimizer rewrite artifacts ---------------------------------
    def _emit_fused_linear(self, node, chain: PlacementChain) -> int:
        """Lower a FusedLinear rewrite: pack every sibling against the
        shared input, merge into one stacked matvec.

        Bit-exactness bookkeeping: the pending scale factor (if any) is
        popped once and applied to the *first* sibling only — exactly
        what the un-optimized lowering does, where the first consumer
        pops it and later siblings see 1.0.
        """
        fmod = node.module
        in_uid = self._resolve(node.inputs[0])
        in_layout = self.layouts[in_uid]
        mode = self.compiler.mode
        m_in = self.ranges.norm(in_uid)
        pending = self.pending.pop(in_uid, 1.0)

        packeds = []
        profiles = []
        for part, (sib, term_uid) in enumerate(
            zip(fmod.siblings, fmod.terminal_uids)
        ):
            module = sib.module
            if sib.index in self.folded:
                weight, bias = self.folded[sib.index]
            else:
                weight = module.weight.data
                bias = module.bias.data if module.bias is not None else None
            m_out = self.ranges.norm(term_uid)
            factor = (m_in / m_out) * (pending if part == 0 else 1.0)
            weight = weight * factor
            if bias is not None:
                bias = np.asarray(bias) / m_out
            sub_name = f"{node.name}/{sib.name}"
            if getattr(module, "kernel_size", None) is not None:
                packed, _ = self._pack_conv(
                    weight, bias, in_layout, module.stride, module.padding,
                    module.dilation, module.groups, sub_name, mode,
                )
            else:
                packed, _ = self._pack_fc(weight, bias, in_layout, sub_name, mode)
            packeds.append(packed)
            if mode == "analyze":
                profiles.append(sibling_profile(module, in_layout))

        if mode == "materialize":
            merged = merge_packed_matvecs(packeds, name=node.name)
            out_layout = merged.out_layout
            rotations = merged.rotation_count()
            pmults = merged.pmult_count()
            cost_obj = _MatVecCost(merged)
        else:
            merged = None
            stats = merged_packing_stats(profiles)
            out_layout = stats.out_layout
            rotations = stats.rotations
            pmults = stats.pmults
            cost_obj = _StatsCost(stats)

        self.layouts[node.output] = out_layout
        costs = self.compiler.costs
        chain.items.append(
            LayerSpec(
                node.name,
                depth=1,
                cost_fn=lambda l, c=cost_obj: c.cost(l, costs),
                boot_units=in_layout.num_ciphertexts,
                cost_obj=cost_obj,
            )
        )
        self.instructions.append(
            LinearInstr(
                name=node.name, out_uid=node.output, exec_level=0,
                boots_before=0, in_uid=in_uid, packed=merged,
            )
        )
        self.reports.append(
            LayerReport(
                name=node.name,
                kind="linear",
                rotations=rotations,
                pmults=pmults,
                depth=1,
                num_cts=out_layout.num_ciphertexts,
            )
        )
        return node.output

    def _emit_slice(self, node) -> int:
        """A free ciphertext-list slice out of a stacked fused output.

        No placement item and no layer report: slicing moves list
        references, performing zero homomorphic operations.
        """
        in_uid = self._resolve(node.inputs[0])
        stacked = self.layouts[in_uid]
        part = node.module.part
        start, stop = stacked.ct_ranges()[part]
        self.layouts[node.output] = stacked.parts[part]
        self.instructions.append(
            SliceInstr(
                name=node.name, out_uid=node.output, exec_level=0,
                boots_before=0, in_uid=in_uid, start=start, stop=stop,
            )
        )
        return node.output

    def _emit_rotate(self, node, chain: PlacementChain) -> int:
        """An explicit slot rotation (orion.nn.Roll): one Galois key
        switch per ciphertext, zero multiplicative depth."""
        in_uid = self._resolve(node.inputs[0])
        in_layout = self.layouts[in_uid]
        out_uid = node.output
        self.layouts[out_uid] = in_layout
        if in_uid in self.pending:
            self.pending[out_uid] = self.pending.pop(in_uid)
        steps = node.module.shift % self.compiler.params.slot_count
        num_cts = in_layout.num_ciphertexts
        costs = self.compiler.costs
        chain.items.append(
            LayerSpec(
                node.name,
                depth=0,
                cost_fn=lambda l: (num_cts * costs.hrot(l)) if steps else 0.0,
                boot_units=num_cts,
            )
        )
        self.instructions.append(
            RotateInstr(
                name=node.name, out_uid=out_uid, exec_level=0,
                boots_before=0, in_uid=in_uid, steps=steps,
            )
        )
        self.reports.append(
            LayerReport(node.name, "rotate", num_cts if steps else 0, 0, 0, num_cts)
        )
        return out_uid

    # -- activations -------------------------------------------------------
    def _emit_relu(self, node, chain: PlacementChain) -> int:
        module = node.module
        in_uid = self._resolve(node.inputs[0])
        out_uid = node.output
        m_in = self.ranges.norm(in_uid)
        m_out = self.ranges.norm(out_uid)
        ratio = m_in / m_out
        composite = CompositeSign.build(tuple(module.degrees))
        stages = list(composite.relu_stages())
        stages[-1] = stages[-1].scaled(ratio)

        num_cts = self._num_cts(in_uid)
        branch = PlacementChain()
        prev_uid = in_uid
        for stage_index, stage in enumerate(stages):
            stage_name = f"{node.name}_sign{stage_index}"
            stage_uid = self.graph.fresh_uid()
            self.layouts[stage_uid] = self.layouts[in_uid]
            branch.items.append(
                LayerSpec(
                    stage_name,
                    depth=stage.depth,
                    cost_fn=self._poly_cost_fn(stage.degree, num_cts),
                    boot_units=num_cts,
                )
            )
            self.instructions.append(
                PolyInstr(
                    name=stage_name, out_uid=stage_uid, exec_level=0,
                    boots_before=0, in_uid=prev_uid, poly=stage,
                    target_kind="none",
                )
            )
            prev_uid = stage_uid

        join_name = f"{node.name}_mult"
        costs = self.compiler.costs
        join = JoinSpec(
            join_name,
            depth=2,  # scale-pin the sign branch (1) + the multiply (1)
            cost_fn=lambda l: num_cts
            * (costs.hmult(l) + costs.pmult(l) + 2 * costs.rescale(l)),
            boot_units=2 * num_cts,
        )
        chain.items.append(PlacementRegion(branch, PlacementChain(), join))
        self.instructions.append(
            MultJoinInstr(
                name=join_name, out_uid=out_uid, exec_level=0, boots_before=0,
                x_uid=in_uid, sign_uid=prev_uid,
            )
        )
        self.layouts[out_uid] = self.layouts[in_uid]
        total_depth = sum(s.depth for s in stages) + 2
        self.reports.append(
            LayerReport(node.name, "relu", 0, 0, total_depth, num_cts)
        )
        return out_uid

    def _emit_poly(self, node, chain: PlacementChain) -> int:
        module = node.module
        in_uid = self._resolve(node.inputs[0])
        out_uid = node.output
        self.layouts[out_uid] = self.layouts[in_uid]
        num_cts = self._num_cts(in_uid)
        m_in = self.ranges.norm(in_uid)
        m_out = self.ranges.norm(out_uid)
        costs = self.compiler.costs

        if type(module).__name__ == "Square":
            self.pending[out_uid] = (m_in * m_in / m_out) * self.pending.pop(
                in_uid, 1.0
            )
            chain.items.append(
                LayerSpec(
                    node.name,
                    depth=1,
                    cost_fn=lambda l: num_cts * (costs.hmult(l) + costs.rescale(l)),
                    boot_units=num_cts,
                )
            )
            self.instructions.append(
                SquareInstr(
                    name=node.name, out_uid=out_uid, exec_level=0,
                    boots_before=0, in_uid=in_uid,
                )
            )
            self.reports.append(LayerReport(node.name, "square", 0, 0, 1, num_cts))
            return out_uid

        degree = module.degree
        exact = module.exact_fn
        poly = chebyshev_fit(lambda u: exact(m_in * u) / m_out, degree)
        # +1 level: the output is pinned back to scale Delta so the
        # between-layer invariant holds (normalize_scale in PolyInstr).
        poly_depth = poly.depth + 1
        chain.items.append(
            LayerSpec(
                node.name,
                depth=poly_depth,
                cost_fn=self._poly_cost_fn(degree, num_cts),
                boot_units=num_cts,
            )
        )
        self.instructions.append(
            PolyInstr(
                name=node.name, out_uid=out_uid, exec_level=0, boots_before=0,
                in_uid=in_uid, poly=poly,
            )
        )
        self.reports.append(LayerReport(node.name, "poly", 0, 0, poly_depth, num_cts))
        return out_uid

    def _emit_batchnorm(self, node, chain: PlacementChain) -> int:
        if _is_alias(self.folded.get(node.index)):
            # Folded into the producing conv; uid already redirected.
            return node.output
        # Standalone BN: a diagonal linear map (one level) — a
        # depthwise 1x1 convolution on multiplexed inputs, a diagonal
        # dense matrix on vector inputs (BatchNorm1d after a Linear).
        in_uid = self._resolve(node.inputs[0])
        in_layout = self.layouts[in_uid]
        scale, shift = node.module.folded_affine()
        m_in = self.ranges.norm(in_uid)
        m_out = self.ranges.norm(node.output)
        factor = (m_in / m_out) * self.pending.pop(in_uid, 1.0)
        bias = shift / m_out
        if isinstance(in_layout, VectorLayout):
            weight = np.diag(scale * factor)
            packed, stats = self._pack_fc(
                weight, bias, in_layout, node.name, self.compiler.mode
            )
        else:
            c = in_layout.channels
            weight = scale.reshape(c, 1, 1, 1) * factor
            packed, stats = self._pack_conv(
                weight, bias, in_layout, (1, 1), (0, 0), (1, 1), c,
                node.name, self.compiler.mode,
            )
        self.layouts[node.output] = stats["out_layout"]
        costs = self.compiler.costs
        cost_obj = stats["cost_obj"]
        chain.items.append(
            LayerSpec(
                node.name, depth=1,
                cost_fn=lambda l, co=cost_obj: co.cost(l, costs),
                boot_units=in_layout.num_ciphertexts,
            )
        )
        self.instructions.append(
            LinearInstr(
                name=node.name, out_uid=node.output, exec_level=0,
                boots_before=0, in_uid=in_uid, packed=packed,
            )
        )
        self.reports.append(
            LayerReport(node.name, "batchnorm", stats["rotations"],
                        stats["pmults"], 1, in_layout.num_ciphertexts)
        )
        return node.output


class _MatVecCost:
    def __init__(self, packed):
        self.packed = packed

    def cost(self, level, cost_model):
        return self.packed.cost(level, cost_model)


class _StatsCost:
    def __init__(self, stats):
        self.stats = stats

    def cost(self, level, cost_model):
        return self.stats.cost(level, cost_model)


_POLY_OPS_CACHE: Dict[int, Dict[str, int]] = {}


def _is_alias(entry) -> bool:
    return isinstance(entry, tuple) and len(entry) == 1 and entry[0] == "alias"
