"""Trace-level graph optimizer: cost-gated rewrites over the layer DAG.

Runs between tracing and program building (see docs/graphopt.md).
Toggle with ``OrionCompiler(optimize=...)`` or ``REPRO_GRAPH_OPT``.
"""

from repro.core.graphopt.fused import FusedLinear, Slice
from repro.core.graphopt.passes import (
    OptContext,
    cancel_rotations,
    concat_linear_fusion,
    hoist_branch_rotations,
    infer_layouts,
)
from repro.core.graphopt.pipeline import (
    PASSES,
    GraphOptReport,
    optimize_graph,
)

__all__ = [
    "FusedLinear",
    "Slice",
    "OptContext",
    "GraphOptReport",
    "PASSES",
    "cancel_rotations",
    "concat_linear_fusion",
    "hoist_branch_rotations",
    "infer_layouts",
    "optimize_graph",
]
