"""Synthetic trace modules created by graph-optimizer rewrites.

These never execute a cleartext forward pass — rewrites run *after*
tracing and range estimation, so the modules only carry the metadata
the lowering in ``repro.core.compiler`` needs (``orion_kind`` plus the
wrapped original nodes).  Calling them is a bug and raises.
"""

from __future__ import annotations

from typing import Tuple


class FusedLinear:
    """Concat-fusion of sibling linear/conv nodes sharing one input.

    Wraps the original :class:`~repro.trace.graph.TraceNode` objects so
    the lowering can recover each sibling's module, folded weights (via
    ``node.index``), and range normalization (via ``terminal_uids``,
    the value ids the siblings originally produced — batchnorm-folded
    siblings terminate at their BN's output).  ``part_layouts`` records
    each sibling's output layout as inferred at rewrite time (used for
    layout propagation before lowering).
    """

    orion_kind = "fused_linear"

    def __init__(self, siblings: Tuple, terminal_uids: Tuple[int, ...],
                 part_layouts: Tuple):
        self.siblings = tuple(siblings)
        self.terminal_uids = tuple(terminal_uids)
        self.part_layouts = tuple(part_layouts)

    def forward(self, *args):
        raise RuntimeError(
            "FusedLinear is a compile-time rewrite artifact and has no "
            "cleartext forward; it must never be traced"
        )


class Slice:
    """Split part ``part`` back out of a FusedLinear's stacked output.

    Lowers to a free ciphertext-list slice
    (:class:`repro.core.program.SliceInstr`).
    """

    orion_kind = "slice"

    def __init__(self, part: int):
        self.part = part

    def forward(self, *args):
        raise RuntimeError(
            "Slice is a compile-time rewrite artifact and has no "
            "cleartext forward; it must never be traced"
        )
