"""The rewrite passes of the trace-level graph optimizer.

Every pass takes ``(graph, ctx)`` and returns the number of rewrites it
applied.  The shared contract (docs/graphopt.md):

- **Semantics-preserving.** A rewrite must leave the lowered program's
  packed cleartext semantics bit-exact (verified per pass on ToyBackend
  in ``tests/test_graphopt.py``); rewrites that merely approximate are
  not admitted.
- **Cost-gated.** A rewrite only fires when the :class:`CostModel`
  prices the rewritten form strictly cheaper at the parameter set's
  effective level — the e-graph-extraction discipline of rewriting
  freely but *extracting* by cost.
- **Geometry-only gating.** Gates may read shapes, layouts, and offset
  profiles but never weight values, so analyze-mode and
  materialize-mode compiles make identical decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.backend.costs import CostModel
from repro.core.packing.analysis import (
    OffsetProfile,
    conv_offset_profile,
    linear_offset_profile,
    merged_packing_stats,
)
from repro.core.packing.layouts import (
    MultiplexedLayout,
    StackedLayout,
    VectorLayout,
)
from repro.trace.graph import LayerGraph, TraceNode

from repro.core.graphopt.fused import FusedLinear, Slice


@dataclass
class OptContext:
    """Everything a pass may consult: parameters, prices, and the
    batch-norm folding table (rewrites must respect what the compiler
    already decided to fold)."""

    params: object  # CkksParameters
    costs: CostModel
    input_shape: Tuple[int, ...]
    folded: Dict[int, Tuple] = field(default_factory=dict)

    @property
    def slots(self) -> int:
        return self.params.slot_count

    @property
    def level(self) -> int:
        """Level rewrites are priced at (the planner may execute lower,
        but relative prices — the gate's input — are level-stable)."""
        return self.params.effective_level


def _kind(node: TraceNode) -> Optional[str]:
    return getattr(node.module, "orion_kind", None)


def _is_alias(entry) -> bool:
    return isinstance(entry, tuple) and len(entry) == 1 and entry[0] == "alias"


# ---------------------------------------------------------------------------
# Layout inference (mirrors _ProgramBuilder's layout propagation)
# ---------------------------------------------------------------------------
def infer_layouts(graph: LayerGraph, input_shape, slots: int) -> Dict[int, object]:
    """Propagate packing layouts over the traced graph.

    The optimizer runs before the program builder, so it mirrors the
    builder's propagation rules: convolutions multiply the gap by their
    stride, dense layers produce vectors, everything else (batchnorm,
    activations, reshapes, joins, rotations) passes its input layout
    through.
    """
    channels, height, width = input_shape
    layouts: Dict[int, object] = {
        graph.input_uid: MultiplexedLayout(channels, height, width, gap=1, slots=slots)
    }
    for node in graph.nodes:
        in_layout = layouts.get(node.inputs[0])
        if in_layout is None:
            continue
        kind = _kind(node)
        if kind == "linear":
            layouts[node.output] = _linear_out_layout(node.module, in_layout, slots)
        elif kind == "fused_linear":
            layouts[node.output] = StackedLayout(
                parts=tuple(node.module.part_layouts), slots=slots
            )
        elif kind == "slice":
            layouts[node.output] = in_layout.parts[node.module.part]
        else:
            # batchnorm / relu / poly / reshape / add / rotate: layout-
            # preserving (reshapes alias; the builder keeps the packed
            # layout and maps logical indices through it).
            layouts[node.output] = in_layout
    return layouts


def _linear_out_layout(module, in_layout, slots: int):
    type_name = type(module).__name__
    if type_name == "AvgPool2d":
        k, s = module.kernel_size, module.stride
        return MultiplexedLayout(
            channels=in_layout.channels,
            height=(in_layout.height - k) // s + 1,
            width=(in_layout.width - k) // s + 1,
            gap=in_layout.gap * s,
            slots=slots,
        )
    if type_name == "AdaptiveAvgPool2d":
        k = in_layout.height
        return MultiplexedLayout(
            channels=in_layout.channels, height=1, width=1,
            gap=in_layout.gap * k, slots=slots,
        )
    if getattr(module, "kernel_size", None) is not None:  # convolution
        kh, kw = module.kernel_size
        sh, sw = module.stride
        ph, pw = module.padding
        dh, dw = module.dilation
        out_h = (in_layout.height + 2 * ph - dh * (kh - 1) - 1) // sh + 1
        out_w = (in_layout.width + 2 * pw - dw * (kw - 1) - 1) // sw + 1
        return MultiplexedLayout(
            channels=module.out_channels, height=out_h, width=out_w,
            gap=in_layout.gap * sh, slots=slots,
        )
    return VectorLayout(module.out_features, slots)


def sibling_profile(module, in_layout) -> Optional[OffsetProfile]:
    """Geometry-only offset profile of a fusable linear node (None for
    layers the concat pass does not handle, e.g. pools)."""
    if getattr(module, "weight", None) is None:
        return None
    if getattr(module, "kernel_size", None) is not None:
        if not isinstance(in_layout, MultiplexedLayout):
            return None
        return conv_offset_profile(
            module.weight.data.shape, in_layout,
            stride=module.stride, padding=module.padding,
            dilation=module.dilation, groups=module.groups,
        )
    if hasattr(module, "out_features"):
        return linear_offset_profile(module.out_features, in_layout)
    return None


# ---------------------------------------------------------------------------
# Pass 1: concat-linear fusion
# ---------------------------------------------------------------------------
def concat_linear_fusion(graph: LayerGraph, ctx: OptContext) -> int:
    """Merge sibling linear/conv nodes consuming the same value.

    The siblings' diagonal tables concatenate along the output-block
    axis under one BSGS plan (``merge_packed_matvecs``), so the fused
    matvec pays one digit decomposition per input block instead of one
    per sibling and de-duplicates shared (input block, offset) inner
    products; free :class:`Slice` nodes then hand each branch its
    original value id.  Fires only when the cost model prices the
    merged layer cheaper than the siblings combined.
    """
    rewrites = 0
    changed = True
    while changed:
        changed = False
        layouts = infer_layouts(graph, ctx.input_shape, ctx.slots)
        for fork_uid in graph.fork_uids():
            cons = graph.consumers().get(fork_uid, [])
            if len(cons) != 2 or cons[0] is cons[1]:
                continue
            if any(_kind(node) != "linear" for node in cons):
                continue
            in_layout = layouts.get(fork_uid)
            if in_layout is None:
                continue
            profiles = [sibling_profile(node.module, in_layout) for node in cons]
            if any(p is None for p in profiles):
                continue
            if profiles[0].num_in != profiles[1].num_in:
                continue
            if profiles[0].fold_shifts != profiles[1].fold_shifts:
                continue
            merged = merged_packing_stats(profiles)
            separate = sum(
                p.stats().cost(ctx.level, ctx.costs) for p in profiles
            )
            gain = ctx.costs.sibling_fusion_gain(
                ctx.level,
                num_in=profiles[0].num_in,
                total_offsets=sum(max(0, p.stats()._offsets) for p in profiles),
                merged_offsets=max(0, merged._offsets),
                num_siblings=len(profiles),
            )
            if gain <= 0 or merged.cost(ctx.level, ctx.costs) >= separate:
                continue
            terminals = [_terminal_node(graph, node, ctx.folded) for node in cons]
            terminal_uids = [
                (t.output if t is not None else node.output)
                for t, node in zip(terminals, cons)
            ]
            if graph.output_uid in terminal_uids:
                # Slicing straight into the program output complicates
                # nothing downstream but the denorm bookkeeping; skip.
                continue
            _apply_concat_fusion(graph, fork_uid, cons, terminals,
                                 terminal_uids, profiles)
            rewrites += 1
            changed = True
            break  # caches and layouts are stale; restart the scan
    return rewrites


def _terminal_node(graph, node, folded) -> Optional[TraceNode]:
    """The folded-away BN riding on a sibling's output, if any (the
    same redirect `_emit_linear` performs)."""
    users = graph.consumers().get(node.output, [])
    if len(users) == 1 and _is_alias(folded.get(users[0].index)):
        return users[0]
    return None


def _apply_concat_fusion(graph, fork_uid, siblings, terminals, terminal_uids,
                         profiles) -> None:
    fused_mod = FusedLinear(
        siblings=tuple(siblings),
        terminal_uids=tuple(terminal_uids),
        part_layouts=tuple(p.out_layout for p in profiles),
    )
    total_len = sum(p.out_layout.logical_length for p in profiles)
    base_index = graph.fresh_index()
    fused_node = TraceNode(
        index=base_index,
        module=fused_mod,
        inputs=(fork_uid,),
        output=graph.fresh_uid(),
        input_shapes=(siblings[0].input_shapes[0],),
        output_shape=(total_len,),
    )
    slices = [
        TraceNode(
            index=base_index + 1 + part,
            module=Slice(part),
            inputs=(fused_node.output,),
            output=terminal_uids[part],
            input_shapes=((total_len,),),
            output_shape=sib.output_shape,
        )
        for part, sib in enumerate(siblings)
    ]
    position = graph.position_of(siblings[0])
    dead = list(siblings) + [t for t in terminals if t is not None]
    graph.remove_nodes(dead)
    graph.insert_nodes(position, [fused_node] + slices)


# ---------------------------------------------------------------------------
# Pass 2: cross-branch rotation hoisting
# ---------------------------------------------------------------------------
def hoist_branch_rotations(graph: LayerGraph, ctx: OptContext) -> int:
    """De-duplicate identical rotations of the same fork value.

    When several consumers of a fork point rotate it by the same
    offset (skip branches, attention heads), the rotation is computed
    once and its result forwarded to every user — (k-1) Galois key
    switches disappear.  Priced by the cost model for the pass
    contract; a pure de-duplication is always a win.
    """
    rewrites = 0
    changed = True
    while changed:
        changed = False
        for fork_uid in graph.fork_uids():
            rolls = [
                node for node in graph.consumers().get(fork_uid, [])
                if _kind(node) == "rotate"
            ]
            by_shift: Dict[int, List[TraceNode]] = {}
            for node in rolls:
                by_shift.setdefault(node.module.shift % ctx.slots, []).append(node)
            for group in by_shift.values():
                if len(group) < 2:
                    continue
                saved = (len(group) - 1) * ctx.costs.hrot(ctx.level)
                if saved <= 0:
                    continue
                keep = group[0]
                for dup in group[1:]:
                    graph.rewire_value(dup.output, keep.output)
                graph.remove_nodes(group[1:])
                rewrites += len(group) - 1
                changed = True
                break
            if changed:
                break
    return rewrites


# ---------------------------------------------------------------------------
# Pass 3: rotate/unrotate and layout-change elimination
# ---------------------------------------------------------------------------
def cancel_rotations(graph: LayerGraph, ctx: OptContext) -> int:
    """Cancel no-op rotations, compose adjacent rotation pairs, and
    drop redundant back-to-back reshapes.

    ``Roll(a) -> Roll(b)`` composes into ``Roll(a + b)`` (one key
    switch instead of two); a composed shift of zero — the
    rotate/unrotate pattern — vanishes entirely.  Rewritten rotations
    get a *fresh* module instance: trace nodes may share module objects
    across call sites, so mutating a shift in place would corrupt the
    other sites.
    """
    rewrites = 0
    changed = True
    while changed:
        changed = False
        consumers = graph.consumers()
        producers = graph.producers()
        for node in graph.nodes:
            kind = _kind(node)
            if kind == "rotate" and node.module.shift % ctx.slots == 0:
                graph.rewire_value(node.output, node.inputs[0])
                graph.remove_nodes([node])
                rewrites += 1
                changed = True
                break
            if kind == "rotate":
                prev = producers.get(node.inputs[0])
                if (
                    prev is not None
                    and _kind(prev) == "rotate"
                    and consumers.get(prev.output) == [node]
                ):
                    combined = _fresh_roll(prev.module.shift + node.module.shift)
                    merged = TraceNode(
                        index=graph.fresh_index(),
                        module=combined,
                        inputs=prev.inputs,
                        output=node.output,
                        input_shapes=prev.input_shapes,
                        output_shape=node.output_shape,
                    )
                    position = graph.position_of(prev)
                    graph.remove_nodes([prev, node])
                    graph.insert_nodes(position, [merged])
                    rewrites += 1
                    changed = True
                    break
            if kind == "reshape":
                prev = producers.get(node.inputs[0])
                if (
                    prev is not None
                    and _kind(prev) == "reshape"
                    and consumers.get(prev.output) == [node]
                ):
                    graph.rewire_value(node.output, prev.output)
                    graph.remove_nodes([node])
                    rewrites += 1
                    changed = True
                    break
    return rewrites


def _fresh_roll(shift: int):
    from repro.orion.nn import Roll

    return Roll(shift)
