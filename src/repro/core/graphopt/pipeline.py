"""Pass manager for the trace-level graph optimizer.

``optimize_graph`` runs the registered passes in order over a traced
:class:`~repro.trace.graph.LayerGraph`, in place, and returns a
:class:`GraphOptReport` of what fired.  It runs between
``OrionCompiler._trace`` and program building, so every rewrite sees
the whole network and the optimized graph flows through the unchanged
placement solver and lowering.

The pass order is deliberate: cancellation first (so hoisting and
fusion see a minimal graph), hoisting second (de-duplicated rotations
can expose new cancellations and new sibling pairs), cancellation
again, then concat-linear fusion last (it consumes fork structure the
earlier passes clean up).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.trace.graph import LayerGraph

from repro.core.graphopt.passes import (
    OptContext,
    cancel_rotations,
    concat_linear_fusion,
    hoist_branch_rotations,
)

GraphPass = Callable[[LayerGraph, OptContext], int]

#: (name, pass) pairs in execution order.
PASSES: List[Tuple[str, GraphPass]] = [
    ("cancel_rotations", cancel_rotations),
    ("hoist_branch_rotations", hoist_branch_rotations),
    ("cancel_rotations", cancel_rotations),
    ("concat_linear_fusion", concat_linear_fusion),
]


@dataclass
class GraphOptReport:
    """Per-pass rewrite counts from one ``optimize_graph`` run."""

    rewrites: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.rewrites.values())

    def record(self, name: str, count: int) -> None:
        if count:
            self.rewrites[name] = self.rewrites.get(name, 0) + count

    def summary(self) -> Dict[str, int]:
        return dict(self.rewrites, total=self.total)


def optimize_graph(graph: LayerGraph, ctx: OptContext) -> GraphOptReport:
    """Run all passes over ``graph`` in place; each is cost-gated and
    semantics-preserving, so the result is safe at any rewrite count."""
    report = GraphOptReport()
    for name, graph_pass in PASSES:
        report.record(name, graph_pass(graph, ctx))
    return report
