"""Packing: tensors -> ciphertext slots, linear layers -> BSGS matvecs.

Implements the paper's Section 3 (diagonal method, BSGS, hoisting) and
Section 4 (Toeplitz formulation, single-shot multiplexed convolutions,
multi-ciphertext blocked products) plus the baselines it compares
against (Gazelle packed SISO, Lee et al. multiplexed parallel convs).
"""

from repro.core.packing.layouts import MultiplexedLayout, VectorLayout
from repro.core.packing.bsgs import BsgsPlan, plan_bsgs
from repro.core.packing.diagonal import (
    extract_generalized_diagonals,
    matvec_diagonal_cleartext,
)
from repro.core.packing.matvec import PackedMatVec, build_conv_packing, build_linear_packing
from repro.core.packing.analysis import analyze_conv_packing
from repro.core.packing.lee import lee_conv_rotations

__all__ = [
    "MultiplexedLayout",
    "VectorLayout",
    "BsgsPlan",
    "plan_bsgs",
    "extract_generalized_diagonals",
    "matvec_diagonal_cleartext",
    "PackedMatVec",
    "build_conv_packing",
    "build_linear_packing",
    "analyze_conv_packing",
    "lee_conv_rotations",
]
