"""Closed-form packing analysis for layers too large to materialize.

For same-style multiplexed convolutions the diagonal offset of a weight
entry is *independent of spatial position* (paper Section 4.1: this is
the property that makes the Toeplitz form efficient).  So rotation and
PMult counts can be computed from the filter geometry and channel
structure alone by evaluating offsets at one interior output position —
no O(FLOPs) materialization.  This powers the Table 2 rows for Tiny
ImageNet / ImageNet / YOLO scale networks.

The analysis ignores image-border effects, which only *remove* matrix
entries (never add diagonals), and assumes channel regions do not
straddle ciphertext boundaries mid-position (true for all power-of-two
benchmark shapes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.packing.bsgs import plan_bsgs
from repro.core.packing.layouts import MultiplexedLayout, StackedLayout


@dataclass(frozen=True)
class PackingStats:
    """Operation counts of a packed linear layer (no plaintexts built)."""

    rotations: int
    pmults: int
    num_in_cts: int
    num_out_cts: int
    num_unique_offsets: int
    out_layout: MultiplexedLayout

    def cost(self, level: int, cost_model, hoisting: str = "fused") -> float:
        """Modeled latency; defaults to the fused price like
        :meth:`repro.core.packing.matvec.PackedMatVec.cost` so analyze
        and materialize modes agree on placement decisions."""
        diag = self.pmults
        # Split rotations between babies and giants the way the plan did.
        baby = self.rotations - self._giants
        return cost_model.matvec_cost(
            level, diag, baby, self._giants, hoisting,
            num_in=self.num_in_cts, num_out=self.num_out_cts,
            num_folds=self.num_folds,
            num_offsets=None if self._offsets < 0 else self._offsets,
        )

    _giants: int = 0
    num_folds: int = 0
    # Distinct nonzero (input block, offset) pairs; -1 = unknown (the
    # fused price then conservatively treats every diagonal as rotated).
    _offsets: int = -1


def _conv_tap_slots(
    weight_shape: Tuple[int, int, int, int],
    in_layout: MultiplexedLayout,
    stride=(1, 1),
    padding=(0, 0),
    dilation=(1, 1),
    groups: int = 1,
):
    """Representative (out_slot, in_slot) pairs of every conv tap.

    Each tap's diagonal offset is position-independent (Section 4.1),
    so evaluating every tap at *some* output position where it is valid
    enumerates the full offset structure.  Shared by
    :func:`analyze_conv_packing` and :func:`conv_offset_profile`.
    """
    c_out, c_in_g, kh, kw = weight_shape
    sh, sw = stride
    out_h = (in_layout.height + 2 * padding[0] - dilation[0] * (kh - 1) - 1) // sh + 1
    out_w = (in_layout.width + 2 * padding[1] - dilation[1] * (kw - 1) - 1) // sw + 1
    out_layout = MultiplexedLayout(
        channels=c_out,
        height=out_h,
        width=out_w,
        gap=in_layout.gap * sh,
        slots=in_layout.slots,
    )
    co_per_group = c_out // groups
    ci_per_group = in_layout.channels // groups if groups > 1 else c_in_g

    # Per-tap representative output positions.  (Tiny spatial maps may
    # have no position where all taps are valid simultaneously; taps
    # invalid everywhere contribute nothing.)
    def _tap_positions(kernel, dil, pad, stride_1d, in_size, out_size):
        reps = np.full(kernel, -1, dtype=np.int64)
        for tap in range(kernel):
            # smallest o with 0 <= o*s + tap*dil - pad < in_size
            low = -(-(pad - tap * dil) // stride_1d)
            o = max(0, low)
            if o < out_size and 0 <= o * stride_1d + tap * dil - pad < in_size:
                reps[tap] = o
        return reps

    oy_rep = _tap_positions(kh, dilation[0], padding[0], sh, in_layout.height, out_h)
    ox_rep = _tap_positions(kw, dilation[1], padding[1], sw, in_layout.width, out_w)

    co = np.arange(c_out)
    ci_rel = np.arange(c_in_g)
    dy = np.arange(kh)
    dx = np.arange(kw)
    co_g, ci_g, dy_g, dx_g = np.meshgrid(co, ci_rel, dy, dx, indexing="ij")
    group_of_co = co_g // co_per_group
    ci_global = group_of_co * ci_per_group + ci_g

    oy0 = oy_rep[dy_g]
    ox0 = ox_rep[dx_g]
    valid = (oy0 >= 0) & (ox0 >= 0)
    oy0 = np.where(valid, oy0, 0)
    ox0 = np.where(valid, ox0, 0)
    iy = oy0 * sh + dy_g * dilation[0] - padding[0]
    ix = ox0 * sw + dx_g * dilation[1] - padding[1]
    iy = np.clip(iy, 0, in_layout.height - 1)
    ix = np.clip(ix, 0, in_layout.width - 1)

    out_slot = out_layout.slot(co_g, oy0, ox0)
    in_slot = in_layout.slot(ci_global, iy, ix)
    return out_slot[valid], in_slot[valid], out_layout


def analyze_conv_packing(
    weight_shape: Tuple[int, int, int, int],
    in_layout: MultiplexedLayout,
    stride=(1, 1),
    padding=(0, 0),
    dilation=(1, 1),
    groups: int = 1,
) -> PackingStats:
    """Count diagonals/rotations of a conv without building plaintexts."""
    n = in_layout.slots
    out_slot, in_slot, out_layout = _conv_tap_slots(
        weight_shape, in_layout, stride, padding, dilation, groups
    )

    bo = out_slot // n
    bi = in_slot // n
    diag = (in_slot - out_slot) % n
    num_in_blocks = int(bi.max()) + 1
    key = (bo * num_in_blocks + bi) * n + diag
    unique_keys = np.unique(key)
    pmults = int(unique_keys.size)
    offsets = np.unique(unique_keys % n)
    # Distinct (input block, offset) pairs with a nonzero offset: the
    # key-switch inner products of the fused execution path.  Because
    # key = (bo*B + bi)*n + diag, reducing mod B*n isolates bi*n + diag.
    bi_diag = np.unique(unique_keys % (num_in_blocks * n))
    nonzero_offsets = int(np.count_nonzero(bi_diag % n))

    plan = plan_bsgs(offsets.tolist(), n)
    # Babies hoist per input ciphertext; giants per output ciphertext.
    rest = unique_keys // n
    bi_of_key = rest % (int(bi.max()) + 1)
    bo_of_key = rest // (int(bi.max()) + 1)
    babies = 0
    for block in np.unique(bi_of_key):
        offs = unique_keys[bi_of_key == block] % n
        babies += int(np.count_nonzero(np.unique(offs % plan.n1)))
    giants = 0
    for block in np.unique(bo_of_key):
        offs = unique_keys[bo_of_key == block] % n
        giants += int(np.count_nonzero(np.unique(offs - offs % plan.n1)))

    stats = PackingStats(
        rotations=babies + giants,
        pmults=pmults,
        num_in_cts=in_layout.num_ciphertexts,
        num_out_cts=out_layout.num_ciphertexts,
        num_unique_offsets=int(offsets.size),
        out_layout=out_layout,
        _giants=giants,
        _offsets=nonzero_offsets,
    )

    # Mirror build_conv_packing's Gazelle-hybrid choice for small outputs.
    from repro.core.packing.matvec import _conv_hybrid_modulus
    from repro.utils.intmath import int_log2

    m2 = _conv_hybrid_modulus(in_layout, out_layout)
    if m2 is not None:
        hybrid_offsets = np.unique((in_slot - out_slot) % m2)
        plan_h = plan_bsgs(hybrid_offsets.tolist(), n)
        folds = int_log2(n // m2)
        hybrid_rots = plan_h.num_rotations + folds
        if hybrid_rots < stats.rotations:
            stats = PackingStats(
                rotations=hybrid_rots,
                pmults=int(hybrid_offsets.size),
                num_in_cts=1,
                num_out_cts=1,
                num_unique_offsets=int(hybrid_offsets.size),
                out_layout=out_layout,
                _giants=sum(1 for g in plan_h.giants if g) + folds,
                num_folds=folds,
                _offsets=int(np.count_nonzero(hybrid_offsets)),
            )
    return stats


def analyze_linear_packing(
    out_features: int, in_layout, chunk_rows: int = 64
) -> PackingStats:
    """Exact rotation/PMult counts for a dense FC layer, no plaintexts.

    Mirrors :func:`repro.core.packing.matvec.build_linear_packing`: the
    same hybrid-vs-plain choice and the same BSGS planning, computed
    from the slot geometry alone (a dense matrix's offset set does not
    depend on the weight values).
    """
    from repro.core.packing.layouts import VectorLayout
    from repro.utils.intmath import int_log2, next_power_of_two

    n = in_layout.slots
    length = in_layout.logical_length
    in_slots = np.asarray(in_layout.slot_of_logical(np.arange(length)))
    single_block = in_layout.num_ciphertexts == 1 and out_features <= n // 2
    use_hybrid = single_block and out_features <= n // 4

    offsets = set()
    fold_count = 0
    if use_hybrid:
        m2 = next_power_of_two(out_features)
        for start in range(0, out_features, chunk_rows):
            rows = np.arange(start, min(start + chunk_rows, out_features))
            offsets.update(
                np.unique((in_slots[None, :] - rows[:, None]) % m2).tolist()
            )
        fold_count = int_log2(n // m2)
    else:
        for start in range(0, out_features, chunk_rows):
            rows = np.arange(start, min(start + chunk_rows, out_features))
            offsets.update(
                np.unique((in_slots[None, :] - rows[:, None]) % n).tolist()
            )
    plan = plan_bsgs(offsets, n)
    rotations = plan.num_rotations * in_layout.num_ciphertexts + fold_count
    pmults = len(offsets) * in_layout.num_ciphertexts
    out_layout = VectorLayout(out_features, n)
    return PackingStats(
        rotations=rotations,
        pmults=pmults,
        num_in_cts=in_layout.num_ciphertexts,
        num_out_cts=1,
        num_unique_offsets=len(offsets),
        out_layout=out_layout,
        _giants=sum(1 for g in plan.giants if g) + fold_count,
        num_folds=fold_count,
        _offsets=sum(1 for o in offsets if o) * in_layout.num_ciphertexts,
    )


# ---------------------------------------------------------------------------
# Offset profiles: the geometry the graph optimizer's fusion gate needs
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OffsetProfile:
    """The (out_block, in_block, offset) structure of one linear layer.

    Value-free: computed from shapes and layouts alone, so the
    concat-linear fusion gate makes the *identical* decision in analyze
    and materialize compile modes.  ``keys`` holds the distinct
    (bo, bi, offset) triples of the layer's diagonal table.
    """

    slots: int
    num_in: int
    num_out: int
    keys: Tuple[Tuple[int, int, int], ...]
    fold_shifts: Tuple[int, ...]
    out_layout: object

    def stats(self) -> PackingStats:
        return _stats_from_keys(
            self.keys, self.num_in, self.num_out, self.fold_shifts,
            self.out_layout, self.slots,
        )


def _stats_from_keys(
    keys, num_in: int, num_out: int, fold_shifts, out_layout, slots: int
) -> PackingStats:
    """PackingStats from an explicit (bo, bi, offset) key set.

    Uses the same :func:`plan_bsgs` over the same offset union and the
    same per-block baby/giant counting as
    :meth:`repro.core.packing.matvec.PackedMatVec.rotation_count`, so a
    merged profile's stats equal the merged materialized layer's counts.
    """
    offsets = sorted({off for (_, _, off) in keys})
    plan = plan_bsgs(offsets, slots)
    by_bi: dict = {}
    by_bo: dict = {}
    for bo, bi, off in keys:
        by_bi.setdefault(bi, set()).add(off)
        by_bo.setdefault(bo, set()).add(off)
    babies = sum(
        len({off % plan.n1 for off in offs} - {0}) for offs in by_bi.values()
    )
    giants = sum(
        len({off - off % plan.n1 for off in offs} - {0}) for offs in by_bo.values()
    )
    folds = len(fold_shifts)
    nonzero = len({(bi, off) for (_, bi, off) in keys if off})
    return PackingStats(
        rotations=babies + giants + folds * num_out,
        pmults=len(keys),
        num_in_cts=num_in,
        num_out_cts=num_out,
        num_unique_offsets=len(offsets),
        out_layout=out_layout,
        _giants=giants + folds * num_out,
        num_folds=folds,
        _offsets=nonzero,
    )


def conv_offset_profile(
    weight_shape: Tuple[int, int, int, int],
    in_layout: MultiplexedLayout,
    stride=(1, 1),
    padding=(0, 0),
    dilation=(1, 1),
    groups: int = 1,
) -> OffsetProfile:
    """Offset structure of a conv, mirroring the builder's plain-vs-
    hybrid choice (``analyze_conv_packing`` already makes it; a hybrid
    pick is visible as ``num_folds > 0``)."""
    from repro.utils.intmath import int_log2, next_power_of_two

    n = in_layout.slots
    out_slot, in_slot, out_layout = _conv_tap_slots(
        weight_shape, in_layout, stride, padding, dilation, groups
    )
    stats = analyze_conv_packing(
        weight_shape, in_layout, stride, padding, dilation, groups
    )
    if stats.num_folds:
        m2 = next_power_of_two(out_layout.total_slots)
        offsets = np.unique((in_slot - out_slot) % m2)
        keys = tuple((0, 0, int(off)) for off in offsets)
        fold_shifts = tuple(n >> (i + 1) for i in range(int_log2(n // m2)))
        return OffsetProfile(
            slots=n, num_in=1, num_out=1, keys=keys,
            fold_shifts=fold_shifts, out_layout=out_layout,
        )
    bo = out_slot // n
    bi = in_slot // n
    diag = (in_slot - out_slot) % n
    keys = tuple(
        sorted({(int(o), int(i), int(d)) for o, i, d in zip(bo, bi, diag)})
    )
    return OffsetProfile(
        slots=n,
        num_in=in_layout.num_ciphertexts,
        num_out=out_layout.num_ciphertexts,
        keys=keys,
        fold_shifts=(),
        out_layout=out_layout,
    )


def linear_offset_profile(out_features: int, in_layout) -> OffsetProfile:
    """Offset structure of a dense FC layer (mirrors
    ``analyze_linear_packing``'s hybrid rule and dense-offset model)."""
    from repro.core.packing.layouts import VectorLayout
    from repro.utils.intmath import int_log2, next_power_of_two

    n = in_layout.slots
    length = in_layout.logical_length
    in_slots = np.asarray(in_layout.slot_of_logical(np.arange(length)))
    single_block = in_layout.num_ciphertexts == 1 and out_features <= n // 2
    use_hybrid = single_block and out_features <= n // 4
    rows = np.arange(out_features)
    if use_hybrid:
        m2 = next_power_of_two(out_features)
        offsets = np.unique((in_slots[None, :] - rows[:, None]) % m2)
        fold_shifts = tuple(n >> (i + 1) for i in range(int_log2(n // m2)))
    else:
        offsets = np.unique((in_slots[None, :] - rows[:, None]) % n)
        fold_shifts = ()
    keys = tuple(
        (0, bi, int(off))
        for bi in range(in_layout.num_ciphertexts)
        for off in offsets
    )
    return OffsetProfile(
        slots=n,
        num_in=in_layout.num_ciphertexts,
        num_out=1,
        keys=keys,
        fold_shifts=fold_shifts,
        out_layout=VectorLayout(out_features, n),
    )


def merged_packing_stats(profiles) -> PackingStats:
    """Counts of the concat-fused layer formed from sibling profiles.

    Globalizes each profile's output blocks onto the stacked ciphertext
    axis and recounts over the union offset set — the exact computation
    :meth:`PackedMatVec.rotation_count` performs on the merged layer
    built by ``merge_packed_matvecs``, so analyze and materialize modes
    report identical fused counts.
    """
    first = profiles[0]
    for p in profiles[1:]:
        if p.slots != first.slots or p.num_in != first.num_in:
            raise ValueError("profiles must share slots and input blocks")
        if p.fold_shifts != first.fold_shifts:
            raise ValueError("profiles must share fold shifts")
    keys = []
    bo_base = 0
    for p in profiles:
        keys.extend((bo_base + bo, bi, off) for (bo, bi, off) in p.keys)
        bo_base += p.num_out
    out_layout = StackedLayout(
        parts=tuple(p.out_layout for p in profiles), slots=first.slots
    )
    return _stats_from_keys(
        keys, first.num_in, bo_base, first.fold_shifts, out_layout, first.slots
    )


def analyze_toeplitz_strided_diagonals(
    in_layout: MultiplexedLayout, kernel: Tuple[int, int], stride: int, c_out: int
) -> int:
    """Non-zero diagonal count of the *naive* strided Toeplitz matrix
    (paper Figure 5a): without row permutation, consecutive output rows
    shift the kernel by ``stride`` positions, so each (tap, channel
    pair) contributes one diagonal per output position and the count
    approaches c_i * h_i * w_i."""
    kh, kw = kernel
    out_h = (in_layout.height - kh) // stride + 1
    out_w = (in_layout.width - kw) // stride + 1
    n = in_layout.slots
    co = np.arange(c_out)
    oy, ox = np.meshgrid(np.arange(out_h), np.arange(out_w), indexing="ij")
    # Raster (gap-1) output layout: row index = co*oh*ow + oy*ow + ox.
    out_index = (
        co[:, None, None] * (out_h * out_w) + oy[None] * out_w + ox[None]
    )
    diags = set()
    for dy in range(kh):
        for dx in range(kw):
            for ci in range(in_layout.channels):
                in_slot = in_layout.slot(
                    np.full_like(oy, ci), oy * stride + dy, ox * stride + dx
                )
                d = (in_slot[None] - out_index) % n
                diags.update(np.unique(d).tolist())
    return len(diags)
