"""Baby-step giant-step planning over arbitrary diagonal-offset sets.

The classic BSGS result (paper Section 3.2, Fig. 2b): writing each
offset d = g*n1 + b splits the n rotations of the diagonal method into
~sqrt(n) baby steps (shared, hoistable) and ~sqrt(n) giant steps.  Real
convolution matrices have *sparse* offset sets, so instead of fixing
n1 = sqrt(n) we search over n1 for the split minimizing the actual
rotation count of the offsets present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.utils.intmath import is_power_of_two


@dataclass(frozen=True)
class BsgsPlan:
    """A chosen baby/giant split for a set of rotation offsets.

    Attributes:
        n1: baby-step modulus; offset d decomposes as
            (d - d % n1) + (d % n1) = giant + baby.
        babies: sorted distinct baby offsets (d % n1).
        giants: sorted distinct giant offsets (d - d % n1).
    """

    n1: int
    babies: Tuple[int, ...]
    giants: Tuple[int, ...]

    @property
    def num_rotations(self) -> int:
        """Ciphertext rotations performed (rotation by 0 is free)."""
        return sum(1 for b in self.babies if b) + sum(1 for g in self.giants if g)

    def split(self, offset: int) -> Tuple[int, int]:
        baby = offset % self.n1
        return offset - baby, baby


def plan_bsgs(offsets: Iterable[int], slots: int) -> BsgsPlan:
    """Choose the rotation-minimizing power-of-two baby modulus.

    Args:
        offsets: diagonal offsets in [0, slots).
        slots: the ciphertext slot count n.
    """
    offset_arr = np.unique(np.asarray(list(offsets), dtype=np.int64) % slots)
    if offset_arr.size == 0:
        return BsgsPlan(n1=1, babies=(), giants=())
    best: BsgsPlan | None = None
    n1 = 1
    while n1 <= slots:
        babies = np.unique(offset_arr % n1)
        giants = np.unique(offset_arr - (offset_arr % n1))
        count = int(np.count_nonzero(babies)) + int(np.count_nonzero(giants))
        plan = BsgsPlan(n1=n1, babies=tuple(babies.tolist()), giants=tuple(giants.tolist()))
        if best is None or count < best.num_rotations:
            best = plan
        n1 *= 2
    return best


def plan_bsgs_square_matrix(n: int) -> Tuple[int, int]:
    """Rotation counts for a dense n x n matrix (paper Figure 2).

    Returns:
        (plain_rotations, bsgs_rotations): n-1 for the plain diagonal
        method vs n1-1 + n2-1 with the balanced split n1*n2 = n.
    """
    if not is_power_of_two(n):
        raise ValueError("analysis assumes power-of-two n")
    n1 = 1 << ((n.bit_length() - 1) // 2)
    n2 = n // n1
    return n - 1, (n1 - 1) + (n2 - 1)


def group_offsets_by_giant(
    offsets: Iterable[int], plan: BsgsPlan
) -> Dict[int, List[int]]:
    """giant -> [full offsets] grouping used by the executor."""
    grouped: Dict[int, List[int]] = {}
    for offset in sorted(set(offsets)):
        giant, _ = plan.split(offset)
        grouped.setdefault(giant, []).append(offset)
    return grouped
