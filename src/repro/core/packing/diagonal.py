"""The diagonal method for dense matrices (paper Section 3.1, Fig. 2).

Used directly for small dense matrices (tests, Figure 2 benchmark) and
as the cleartext reference the packed executors are validated against.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def extract_generalized_diagonals(matrix: np.ndarray) -> Dict[int, np.ndarray]:
    """Extract nonzero generalized diagonals of a square matrix.

    diag_k[i] = M[i, (i + k) mod n]  (paper Section 3.1).

    Returns:
        mapping k -> diagonal vector, only for diagonals with any
        nonzero entry.
    """
    n, m = matrix.shape
    if n != m:
        raise ValueError("generalized diagonals need a square matrix")
    rows = np.arange(n)
    out: Dict[int, np.ndarray] = {}
    for k in range(n):
        diag = matrix[rows, (rows + k) % n]
        if np.any(diag != 0):
            out[k] = diag
    return out


def matvec_diagonal_cleartext(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Evaluate M @ v using only rotations and pointwise products.

    This mirrors the homomorphic dataflow exactly (rotate, multiply,
    accumulate) and must agree with ``matrix @ vector``.
    """
    diagonals = extract_generalized_diagonals(matrix)
    out = np.zeros(matrix.shape[0])
    for k, diag in diagonals.items():
        out += diag * np.roll(vector, -k)
    return out


def rotations_plain_diagonal(matrix: np.ndarray) -> int:
    """Rotation count of the plain diagonal method: one per nonzero
    diagonal, excluding the trivial rotation by zero."""
    return sum(1 for k in extract_generalized_diagonals(matrix) if k != 0)
