"""Ciphertext slot layouts for packed tensors.

A :class:`MultiplexedLayout` generalizes the raster-scan layout with a
*gap* parameter g (paper Section 4.3 / Figure 5): the spatial grid has
g x g sub-blocks per logical pixel, holding g^2 interleaved channels.
A fresh image is gap 1 (plain raster scan); every stride-s convolution
multiplies the gap by s while keeping the ciphertext densely packed.
Tensors larger than one ciphertext span multiple ciphertexts in
contiguous slot order (Section 4.3, "Multi-ciphertext").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.intmath import ceil_div


@dataclass(frozen=True)
class MultiplexedLayout:
    """Placement of a (channels, height, width) tensor into slots.

    Attributes:
        channels, height, width: logical tensor dimensions.
        gap: multiplexing factor g; g^2 channels interleave per spatial
            sub-block.
        slots: slot count n of one ciphertext.
    """

    channels: int
    height: int
    width: int
    gap: int
    slots: int

    # -- geometry -----------------------------------------------------
    @property
    def grid_height(self) -> int:
        return self.height * self.gap

    @property
    def grid_width(self) -> int:
        return self.width * self.gap

    @property
    def channels_per_block(self) -> int:
        return self.gap * self.gap

    @property
    def num_channel_blocks(self) -> int:
        return ceil_div(self.channels, self.channels_per_block)

    @property
    def total_slots(self) -> int:
        return self.num_channel_blocks * self.grid_height * self.grid_width

    @property
    def num_ciphertexts(self) -> int:
        return max(1, ceil_div(self.total_slots, self.slots))

    @property
    def logical_length(self) -> int:
        return self.channels * self.height * self.width

    @property
    def tensor_shape(self) -> tuple:
        """Shape of the tensor :meth:`pack` expects."""
        return (self.channels, self.height, self.width)

    # -- index mapping ---------------------------------------------------
    def slot(self, c, y, x):
        """Global slot index of logical element (c, y, x) (vectorized).

        slot = t*(G_h*G_w) + (y*g + uy)*G_w + (x*g + ux), where
        t = c // g^2 and (uy, ux) locate c % g^2 inside the sub-block.
        """
        c = np.asarray(c)
        y = np.asarray(y)
        x = np.asarray(x)
        g = self.gap
        t = c // self.channels_per_block
        u = c % self.channels_per_block
        uy = u // g
        ux = u % g
        return (
            t * (self.grid_height * self.grid_width)
            + (y * g + uy) * self.grid_width
            + (x * g + ux)
        )

    def slot_of_logical(self, index):
        """Slot of a raster-scan logical index c*(h*w) + y*w + x."""
        index = np.asarray(index)
        hw = self.height * self.width
        c = index // hw
        rem = index % hw
        return self.slot(c, rem // self.width, rem % self.width)

    # -- tensor <-> slot vectors --------------------------------------------
    def pack(self, tensor: np.ndarray) -> list:
        """Pack a (C,H,W) tensor into ``num_ciphertexts`` slot vectors."""
        if tensor.shape != (self.channels, self.height, self.width):
            raise ValueError(
                f"tensor shape {tensor.shape} does not match layout "
                f"({self.channels},{self.height},{self.width})"
            )
        flat = np.zeros(self.num_ciphertexts * self.slots)
        c, y, x = np.meshgrid(
            np.arange(self.channels),
            np.arange(self.height),
            np.arange(self.width),
            indexing="ij",
        )
        flat[self.slot(c, y, x).ravel()] = tensor.ravel()
        return [
            flat[i * self.slots : (i + 1) * self.slots]
            for i in range(self.num_ciphertexts)
        ]

    def unpack(self, vectors: list) -> np.ndarray:
        """Inverse of :meth:`pack`."""
        flat = np.concatenate(vectors)
        c, y, x = np.meshgrid(
            np.arange(self.channels),
            np.arange(self.height),
            np.arange(self.width),
            indexing="ij",
        )
        return flat[self.slot(c, y, x).ravel()].reshape(
            self.channels, self.height, self.width
        )

    def __repr__(self) -> str:
        return (
            f"MultiplexedLayout(c={self.channels}, h={self.height}, "
            f"w={self.width}, gap={self.gap}, cts={self.num_ciphertexts})"
        )


@dataclass(frozen=True)
class VectorLayout:
    """A flat vector occupying the first ``length`` slots."""

    length: int
    slots: int

    @property
    def num_ciphertexts(self) -> int:
        return max(1, ceil_div(self.length, self.slots))

    @property
    def total_slots(self) -> int:
        return self.length

    @property
    def logical_length(self) -> int:
        return self.length

    @property
    def tensor_shape(self) -> tuple:
        return (self.length,)

    def slot_of_logical(self, index):
        return np.asarray(index)

    def pack(self, vector: np.ndarray) -> list:
        flat = np.zeros(self.num_ciphertexts * self.slots)
        flat[: self.length] = np.asarray(vector).ravel()
        return [
            flat[i * self.slots : (i + 1) * self.slots]
            for i in range(self.num_ciphertexts)
        ]

    def unpack(self, vectors: list) -> np.ndarray:
        return np.concatenate(vectors)[: self.length]


@dataclass(frozen=True)
class StackedLayout:
    """Several independent layouts stacked along the ciphertext axis.

    The fused output of merged sibling linear layers (graph optimizer's
    concat-linear pass): output block b of part k lives at ciphertext
    index ``offset(k) + b``, where ``offset`` accumulates the earlier
    parts' ciphertext counts.  A cheap SliceInstr then splits the stack
    back into per-branch values, so downstream layers see the exact
    layout the un-fused program would have produced.
    """

    parts: tuple  # of single-tensor layouts (Multiplexed/Vector)
    slots: int

    def __post_init__(self):
        if not self.parts:
            raise ValueError("StackedLayout needs at least one part")
        for part in self.parts:
            if part.slots != self.slots:
                raise ValueError("all parts must share the slot count")

    @property
    def num_ciphertexts(self) -> int:
        return sum(part.num_ciphertexts for part in self.parts)

    @property
    def total_slots(self) -> int:
        return sum(part.total_slots for part in self.parts)

    @property
    def logical_length(self) -> int:
        return sum(part.logical_length for part in self.parts)

    @property
    def tensor_shape(self) -> tuple:
        return (self.logical_length,)

    def ct_ranges(self) -> list:
        """Per-part (start, stop) ciphertext index ranges."""
        ranges = []
        offset = 0
        for part in self.parts:
            ranges.append((offset, offset + part.num_ciphertexts))
            offset += part.num_ciphertexts
        return ranges

    def pack(self, tensors) -> list:
        """Pack a sequence of per-part tensors (one per part)."""
        if len(tensors) != len(self.parts):
            raise ValueError(
                f"expected {len(self.parts)} part tensors, got {len(tensors)}"
            )
        vectors = []
        for part, tensor in zip(self.parts, tensors):
            vectors.extend(part.pack(np.asarray(tensor)))
        return vectors

    def unpack(self, vectors: list) -> list:
        """Inverse of :meth:`pack`; returns one tensor per part."""
        outs = []
        for part, (start, stop) in zip(self.parts, self.ct_ranges()):
            outs.append(part.unpack(list(vectors[start:stop])))
        return outs

    def __repr__(self) -> str:
        return f"StackedLayout(parts={list(self.parts)!r})"


@dataclass(frozen=True)
class BlockReplicatedLayout:
    """``batch`` independent copies of a single-ciphertext layout.

    The slot-batching economics of serving (docs/serving.md): a layout
    occupying T <= n/B slots leaves its remaining capacity idle, so B
    clients' tensors are placed in disjoint blocks of S = n/B slots
    each.  Every packed linear layer whose single-client reads stay
    inside [0, S) — guaranteed because reads always land inside the
    input layout's occupied slots — then acts on all B blocks at once
    when its diagonal vectors are block-replicated
    (:meth:`repro.core.packing.matvec.PackedMatVec.batched`).

    ``pack`` takes a stacked array whose leading dimension is the batch
    (each entry shaped for the inner layout); ``unpack`` returns the
    same stacked shape.
    """

    inner: object
    batch: int
    slots: int

    def __post_init__(self):
        if self.inner.num_ciphertexts != 1:
            raise ValueError("block replication needs a single-ciphertext layout")
        if self.slots % self.batch:
            raise ValueError("batch must divide the slot count")
        if self.inner.total_slots > self.block_slots:
            raise ValueError(
                f"layout occupies {self.inner.total_slots} slots > block "
                f"size {self.block_slots} at batch {self.batch}"
            )

    @property
    def block_slots(self) -> int:
        return self.slots // self.batch

    @property
    def num_ciphertexts(self) -> int:
        return 1

    @property
    def total_slots(self) -> int:
        return self.slots

    @property
    def logical_length(self) -> int:
        return self.batch * self.inner.logical_length

    @property
    def tensor_shape(self) -> tuple:
        return (self.batch,) + tuple(self.inner.tensor_shape)

    def pack(self, tensors) -> list:
        tensors = np.asarray(tensors)
        if tensors.shape[0] != self.batch:
            raise ValueError(
                f"expected a leading batch dimension of {self.batch}, "
                f"got shape {tensors.shape}"
            )
        flat = np.zeros(self.slots)
        step = self.block_slots
        for j in range(self.batch):
            flat[j * step : (j + 1) * step] = self.inner.pack(tensors[j])[0][:step]
        return [flat]

    def unpack(self, vectors: list) -> np.ndarray:
        (flat,) = vectors
        step = self.block_slots
        outs = []
        for j in range(self.batch):
            padded = np.zeros(self.inner.slots)
            padded[:step] = flat[j * step : (j + 1) * step]
            outs.append(self.inner.unpack([padded]))
        return np.stack(outs)

    def __repr__(self) -> str:
        return f"BlockReplicatedLayout(batch={self.batch}, inner={self.inner!r})"
