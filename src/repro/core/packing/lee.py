"""Rotation-count model of Lee et al.'s multiplexed parallel convolutions.

Baseline for paper Table 3.  Lee et al. [52] (ICML '22) evaluate a
convolution by rotating the input once per filter tap, multiplying by
punctured plaintexts, accumulating over input channels with
rotate-and-sum, and — for strided convolutions — spending a *second*
multiplicative level on a mask-and-collect step to re-densify the
layout (their Figure 5; contrast with Orion's one-level single-shot
multiplexing).

Rotation components per convolution (see their Section 4):

- tap rotations: fh*fw - 1 (a rotation per filter offset, not
  BSGS-decomposable because each tap's punctured plaintext differs);
- input-channel accumulation: each of the co/po output groups needs
  log2(ci / ki^2) rotate-and-sum steps;
- output assembly: log2(po) rotations to combine the po outputs
  computed in parallel within one ciphertext;
- strided collect: 2*log2(s*ki) extra rotations for mask-and-collect.

where ki is the input multiplexing gap and po the number of output
copies that fit in the ciphertext alongside the input.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.core.packing.layouts import MultiplexedLayout


def _log2_ceil(x: float) -> int:
    return max(0, math.ceil(math.log2(max(1.0, x))))


def lee_conv_rotations(
    in_layout: MultiplexedLayout,
    kernel: Tuple[int, int],
    c_out: int,
    stride: int = 1,
) -> int:
    """Modeled rotation count of one Lee et al. multiplexed parallel conv."""
    kh, kw = kernel
    n = in_layout.slots
    ci = in_layout.channels
    gap_sq = in_layout.channels_per_block
    image_slots = in_layout.grid_height * in_layout.grid_width
    # Output copies computable in parallel within one ciphertext.
    po = max(1, n // max(1, image_slots * max(1, ci // gap_sq)))
    po = min(po, c_out)

    taps = kh * kw - 1
    # Rotate-and-sum spans the full input-channel extent of the
    # multiplexed block (log2(ci) steps), once per output-channel group.
    channel_acc = (c_out // po) * _log2_ceil(ci)
    assembly = _log2_ceil(po)
    collect = 2 * _log2_ceil(stride * in_layout.gap) if stride > 1 else 0
    return taps + channel_acc + assembly + collect


def lee_conv_depth(stride: int) -> int:
    """Multiplicative depth: 2 for strided convs (conv + mask-collect),
    1 otherwise — the depth Orion's single-shot multiplexing halves."""
    return 2 if stride > 1 else 1


def lee_avgpool_rotations(in_layout: MultiplexedLayout, kernel: int) -> int:
    """Average pooling as a depthwise conv under the same model."""
    return lee_conv_rotations(in_layout, (kernel, kernel), in_layout.channels, stride=kernel)


def lee_fc_rotations(in_features: int, out_features: int, slots: int) -> int:
    """Fully-connected layer: Halevi-Shoup diagonals without BSGS."""
    diagonals = min(in_features, slots)
    fold = _log2_ceil(in_features / max(1, out_features))
    return diagonals - 1 + fold


def lee_network_rotations(net, input_shape, slots: int) -> Tuple[int, int]:
    """Total (rotations, multiplicative depth) of a network under the
    Lee et al. scheme (the Table 3 baseline).

    Traces the network, propagates the multiplexed gap the same way
    their packing does, and sums per-layer rotation counts; strided
    convolutions cost an extra level each (mask-and-collect).
    """
    import numpy as np

    from repro.autograd.tensor import Tensor, no_grad
    from repro.trace.graph import TracedValue, tracer

    net.eval()
    with no_grad():
        with tracer() as graph:
            net(TracedValue(Tensor(np.zeros((1,) + tuple(input_shape))), graph.input_uid))

    layouts = {graph.input_uid: MultiplexedLayout(*input_shape, gap=1, slots=slots)}
    total_rotations = 0
    total_depth = 0
    for node in graph.nodes:
        kind = getattr(node.module, "orion_kind", None)
        module = node.module
        in_layout = layouts.get(node.inputs[0])
        type_name = type(module).__name__
        if kind == "linear" and type_name == "Conv2d":
            stride = module.stride[0]
            total_rotations += lee_conv_rotations(
                in_layout, module.kernel_size, module.out_channels, stride
            )
            total_depth += lee_conv_depth(stride)
            c, h, w = module.output_shape(
                (in_layout.channels, in_layout.height, in_layout.width)
            )
            layouts[node.output] = MultiplexedLayout(
                c, h, w, in_layout.gap * stride, slots
            )
        elif kind == "linear" and type_name == "AvgPool2d":
            k = module.kernel_size
            total_rotations += lee_avgpool_rotations(in_layout, k)
            total_depth += lee_conv_depth(k)
            c, h, w = module.output_shape(
                (in_layout.channels, in_layout.height, in_layout.width)
            )
            layouts[node.output] = MultiplexedLayout(c, h, w, in_layout.gap * k, slots)
        elif kind == "linear" and type_name == "AdaptiveAvgPool2d":
            k = in_layout.height
            total_rotations += lee_avgpool_rotations(in_layout, k)
            total_depth += lee_conv_depth(k)
            layouts[node.output] = MultiplexedLayout(
                in_layout.channels, 1, 1, in_layout.gap * k, slots
            )
        elif kind == "linear":  # fully connected
            total_rotations += lee_fc_rotations(
                module.in_features, module.out_features, slots
            )
            total_depth += 1
            layouts[node.output] = MultiplexedLayout(
                module.out_features, 1, 1, 1, slots
            )
        else:
            layouts[node.output] = in_layout
            if kind in ("relu",):
                total_depth += 14  # composite sign + multiply
            elif kind == "poly":
                degree = getattr(module, "degree", 2)
                total_depth += max(1, math.ceil(math.log2(degree + 1)))
    return total_rotations, total_depth
