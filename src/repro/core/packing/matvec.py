"""Packed matrix-vector products: construction and execution.

``build_conv_packing`` turns any convolution (stride/padding/dilation/
groups) into a :class:`PackedMatVec`: the single-shot multiplexed
formulation of paper Section 4.  The weight matrix rows are permuted so
the output lands in a dense multiplexed layout with gap g_out = g_in *
stride, and the whole mask-and-collect step of Lee et al. is fused into
the (pre-processable) weight plaintexts — one multiplicative level per
convolution, strided or not.

``build_linear_packing`` handles fully-connected layers, choosing
between the plain diagonal form and Gazelle's hybrid method (replicated
squat rows + rotate-and-sum fold) by modeled rotation count.

Execution defaults to the *fused* double-hoisted path on backends that
implement ``FheBackend.matvec_fused``: the giant pre-rotation of every
diagonal is folded back into the plaintext, so each diagonal offset
rotates the input ciphertext directly and all rotations of one input
share a single key-switch digit decomposition; products accumulate in
the extended Q_l * P basis and one deferred mod-down per output block
replaces the per-baby-step mod-downs (true double hoisting, Bossuat et
al.).  Backends without a fused path fall back to the per-rotation BSGS
pipeline: baby rotations go through ``rotate_hoisted`` and diagonals
are pre-rotated at build time so giant steps apply to accumulated sums
(Eq. 1 of the paper); ``hoisting="double-unfused"`` forces this
fallback for apples-to-apples benchmarking.

The Gazelle rotate-and-sum folds ride the same fast path: instead of
log2(n/m2) sequential key switches on successively accumulated
ciphertexts, the fold composition is expanded into rotations of the
original accumulator by every subset sum of the shifts and executed via
``FheBackend.rotate_sum_hoisted`` — one shared digit decomposition, one
deferred mod-down — whenever the backend supports it and the cost model
prices the expansion cheaper (see ``CostModel.fused_fold_cheaper``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from repro.core.packing.bsgs import BsgsPlan, plan_bsgs
from repro.core.packing.layouts import (
    BlockReplicatedLayout,
    MultiplexedLayout,
    StackedLayout,
    VectorLayout,
)
from repro.utils.intmath import int_log2, next_power_of_two


@dataclass
class PackedMatVec:
    """A compiled homomorphic linear layer.

    Attributes:
        slots: ciphertext slot count n.
        num_in: input ciphertexts.
        num_out: output ciphertexts.
        diags: (out_block, in_block) -> {offset -> plaintext vector}.
        plan: the BSGS split shared by all blocks.
        fold_shifts: rotate-and-sum shifts applied after accumulation
            (Gazelle hybrid; empty for the standard path).
        bias_vecs: optional per-output-block bias slot vectors.
        out_layout: layout of the produced tensor.
        name: label for ledger phases.
    """

    slots: int
    num_in: int
    num_out: int
    diags: Dict[Tuple[int, int], Dict[int, np.ndarray]]
    plan: BsgsPlan
    out_layout: object
    fold_shifts: Tuple[int, ...] = ()
    bias_vecs: Optional[List[np.ndarray]] = None
    name: str = "linear"
    # Weight/bias/zero plaintexts are static; encode once per (backend,
    # level, scale) and reuse across executions ("pre-processable").
    _pt_cache: WeakKeyDictionary = field(
        default_factory=WeakKeyDictionary, repr=False, compare=False
    )
    # Diagonals with the giant pre-rotation folded back out, keyed
    # (out_block, in_block, offset); built lazily for the fused path.
    _fused_terms: Optional[Dict] = field(
        default=None, repr=False, compare=False
    )
    # Cached subset-sum expansion of fold_shifts ("unset" = not yet
    # computed; None = subset sums collide, keep the sequential fold).
    _fold_steps: object = field(default="unset", repr=False, compare=False)
    # Batched (block-replicated) views for serve-time slot batching,
    # keyed by batch size (built lazily, shared across executions).
    _batched: Dict = field(default_factory=dict, repr=False, compare=False)

    # -- op-count queries (paper Tables 2-4) ---------------------------------
    def _babies_for_in_block(self, bi: int) -> List[int]:
        offsets = set()
        for (bo, bi2), dmap in self.diags.items():
            if bi2 == bi:
                offsets.update(dmap)
        return sorted({d % self.plan.n1 for d in offsets})

    def _giants_for_out_block(self, bo: int) -> List[int]:
        offsets = set()
        for (bo2, bi), dmap in self.diags.items():
            if bo2 == bo:
                offsets.update(dmap)
        return sorted({d - (d % self.plan.n1) for d in offsets})

    def rotation_count(self) -> int:
        total = 0
        for bi in range(self.num_in):
            total += sum(1 for b in self._babies_for_in_block(bi) if b)
        for bo in range(self.num_out):
            total += sum(1 for g in self._giants_for_out_block(bo) if g)
        total += len(self.fold_shifts) * self.num_out
        return total

    def pmult_count(self) -> int:
        return sum(len(dmap) for dmap in self.diags.values())

    def nonzero_offset_count(self) -> int:
        """Distinct (input block, nonzero offset) pairs: the key-switch
        inner products the fused path performs (offset-0 diagonals are
        plain pt * ct products, no key switch)."""
        return len(
            {
                (bi, offset)
                for (_, bi), dmap in self.diags.items()
                for offset in dmap
                if offset
            }
        )

    def counts(self) -> Tuple[int, int, int]:
        """(num_diagonals, num_baby_rotations, num_giant_rotations)."""
        babies = sum(
            sum(1 for b in self._babies_for_in_block(bi) if b)
            for bi in range(self.num_in)
        )
        giants = sum(
            sum(1 for g in self._giants_for_out_block(bo) if g)
            for bo in range(self.num_out)
        ) + len(self.fold_shifts) * self.num_out
        return self.pmult_count(), babies, giants

    def cost(self, level: int, cost_model, hoisting: str = "fused") -> float:
        """Modeled latency at the given level (drives placement).

        Defaults to the ``"fused"`` price, matching how :meth:`execute`
        actually runs on fused-capable backends; non-fused modes price
        the Gazelle folds inside the giant count, the fused mode prices
        them separately (``CostModel.fold_cost``).
        """
        diag, baby, giant = self.counts()
        return cost_model.matvec_cost(
            level, diag, baby, giant, hoisting,
            num_in=self.num_in, num_out=self.num_out,
            num_folds=len(self.fold_shifts),
            num_offsets=self.nonzero_offset_count(),
        )

    def _bsgs_rotation_count(self) -> int:
        """Baby + giant rotations of the BSGS plan (folds excluded —
        they execute as real rotations and charge themselves)."""
        return self.rotation_count() - len(self.fold_shifts) * self.num_out

    def required_rotation_steps(self) -> Tuple[int, ...]:
        """Every rotation step any execution mode of this layer can ask
        the backend for — the layer's contribution to an artifact's key
        manifest (docs/serving.md).

        Covers the fused path (composite offsets rotate the input
        directly), the per-rotation BSGS fallback (babies + giants), and
        both fold forms (sequential shifts and their subset-sum
        expansion).  Identity rotations are never required.
        """
        steps = set()
        for (_, bi), dmap in self.diags.items():
            for offset in dmap:
                giant, baby = self.plan.split(offset)
                steps.update((offset % self.slots, baby, giant % self.slots))
        steps.update(s % self.slots for s in self.fold_shifts)
        expansion = self._fold_expansion()
        if expansion:
            steps.update(expansion)
        return tuple(sorted(steps - {0}))

    def batched(self, batch: int) -> "PackedMatVec":
        """A view of this layer acting on ``batch`` block-replicated
        clients packed into one ciphertext (serve-time slot batching).

        Block-replicating every diagonal and bias vector into all B
        blocks of S = slots/B slots makes the *same* rotation/multiply
        schedule compute all clients at once: a diagonal's read at slot
        s + off inside client j's block stays on client j's data because
        single-client reads always land inside the input layout's
        occupied slots (see ``BlockReplicatedLayout``).

        Two Gazelle-hybrid adjustments keep each client self-contained:

        - **Scratch relocation.**  Hybrid row replication writes some
          partial products at wrapped positions near the ring top
          (rows j = c - offset < 0 mod n).  Replicated naively those
          would land in the *previous* client's block, so any scratch
          position outside [0, S) moves to j mod S — still congruent to
          its row modulo m2 (S is a multiple of m2), so the in-block
          fold collects it correctly — and its diagonal offset grows by
          the displacement (a whole number of blocks), which keeps the
          read on the client's own slots.  Only fold layers can have
          out-of-block scratch (plain layers write final outputs, which
          fit the block by the layout check).
        - **Fold truncation.**  Fold shifts spanning a whole block or
          more are dropped; the surviving suffix (S/2 ... m2) folds each
          client's row replicas inside its own block.

        The batched instance re-plans BSGS over its (possibly enlarged)
        offset set, shares nothing mutable with the original (fresh
        plaintext caches), and is cached per batch size.
        """
        if batch == 1:
            return self
        cached = self._batched.get(batch)
        if cached is not None:
            return cached
        if self.num_in != 1 or self.num_out != 1:
            raise ValueError("slot batching requires a single-ciphertext layer")
        if batch < 1 or self.slots % batch:
            raise ValueError(f"batch {batch} must divide {self.slots} slots")
        n = self.slots
        block = n // batch
        if self.out_layout.total_slots > block:
            raise ValueError(
                f"{self.name}: output occupies {self.out_layout.total_slots} "
                f"slots > block size {block} at batch {batch}"
            )
        def replicate(vec: np.ndarray) -> np.ndarray:
            """sum_j roll(vec, j*S) == tile of the block-folded vector."""
            return np.tile(vec.reshape(batch, block).sum(axis=0), batch)

        # new_offset -> {(out_block, in_block) -> out-position-indexed vector}
        acc: Dict[int, Dict[Tuple[int, int], np.ndarray]] = {}
        for (bo, bi), dmap in self.diags.items():
            for offset, stored in dmap.items():
                giant, _ = self.plan.split(offset)
                orig = np.roll(stored, -giant) if giant else stored
                # Split scratch by the block it falls in; relocate every
                # out-of-block piece into [0, S) with a compensating
                # whole-block offset shift (reads are unchanged:
                # j'' + off'' == j + off mod n).
                pieces = orig.reshape(batch, block)
                for q in range(batch):
                    piece = pieces[q]
                    if not piece.any():
                        continue
                    if q and not self.fold_shifts:
                        raise ValueError(
                            f"{self.name}: scratch escapes its block at "
                            f"batch {batch} and there is no fold to "
                            "relocate under"
                        )
                    new_offset = (offset + q * block) % n
                    relocated = np.zeros(n)
                    relocated[:block] = piece
                    by_block = acc.setdefault(new_offset, {})
                    if (bo, bi) in by_block:
                        by_block[(bo, bi)] = by_block[(bo, bi)] + relocated
                    else:
                        by_block[(bo, bi)] = relocated

        plan = plan_bsgs(sorted(acc), n)
        diags: Dict[Tuple[int, int], Dict[int, np.ndarray]] = {}
        for new_offset, by_block in acc.items():
            giant, _ = plan.split(new_offset)
            for (bo, bi), vec in by_block.items():
                replicated = replicate(vec)
                diags.setdefault((bo, bi), {})[new_offset] = (
                    np.roll(replicated, giant) if giant else replicated
                )
        bias_vecs = None
        if self.bias_vecs is not None:
            bias_vecs = [replicate(vec) for vec in self.bias_vecs]
        view = PackedMatVec(
            slots=n,
            num_in=self.num_in,
            num_out=self.num_out,
            diags=diags,
            plan=plan,
            out_layout=BlockReplicatedLayout(self.out_layout, batch, n),
            fold_shifts=tuple(s for s in self.fold_shifts if s < block),
            bias_vecs=bias_vecs,
            name=f"{self.name}@x{batch}",
        )
        self._batched[batch] = view
        return view

    def _fused_term_vectors(self) -> Dict:
        """Original diagonals for the fused path, keyed (bo, bi, offset).

        ``diags`` stores each diagonal pre-rotated down by its giant
        step (Eq. 1) so that ``rot_g(pt * rot_b(ct))`` aligns.  The
        fused path uses the identity ``rot_g(pt * rot_b(ct)) ==
        rot_g(pt) * rot_{g+b}(ct)``: it rotates the *input* by the
        composite offset and needs the diagonal with the pre-rotation
        undone (``rot_g`` of the stored vector is the original).
        """
        if self._fused_terms is None:
            terms: Dict = {}
            for (bo, bi), dmap in self.diags.items():
                for offset, vec in dmap.items():
                    giant, _ = self.plan.split(offset)
                    terms[(bo, bi, offset)] = np.roll(vec, -giant) if giant else vec
            self._fused_terms = terms
        return self._fused_terms

    def _fold_expansion(self) -> Optional[List[int]]:
        """Composite rotation steps equivalent to the sequential fold.

        ``t -> t + rot(t, s)`` applied over ``fold_shifts`` equals
        ``sum_S rot(t0, sum(S))`` over every subset S of the shifts.
        For the power-of-two shift ladders the builders emit, the subset
        sums are distinct — the nonzero ones are returned, all rotating
        the *original* accumulator so one decomposition is shared.
        Returns ``None`` when subset sums collide (multiplicities would
        be needed); callers then keep the sequential fold.  Computed
        once and cached (the expansion is O(2^folds) entries).
        """
        if self._fold_steps == "unset":
            sums = [0]
            for shift in self.fold_shifts:
                sums = sums + [(s + shift) % self.slots for s in sums]
            if len(set(sums)) != len(sums):
                self._fold_steps = None
            else:
                self._fold_steps = sorted(s for s in sums if s)
        return self._fold_steps

    def _apply_folds(self, backend, total, hoisting: str, level: int):
        """Run the Gazelle rotate-and-sum fold on one output block.

        Takes the fused expanded form (one shared decomposition, one
        deferred mod-down via ``backend.rotate_sum_hoisted``) when the
        backend supports it and the cost model says the expansion is
        cheaper; otherwise the classic log-depth sequential fold.

        ``level`` is the matvec's *input* level — the same level
        ``CostModel.fold_cost`` prices the folds at — so the executed
        form always matches the planner's model even though the fold
        itself runs one level lower (after the rescale).  The cheapness
        check runs before the O(2^folds) expansion is built.
        """
        if not self.fold_shifts:
            return total
        if (
            hoisting == "double"
            and getattr(backend, "supports_fused_fold", False)
            and backend.costs.fused_fold_cheaper(level, len(self.fold_shifts))
        ):
            steps = self._fold_expansion()
            if steps is not None:
                return backend.rotate_sum_hoisted(
                    total, steps, charged_rotations=len(self.fold_shifts)
                )
        for shift in self.fold_shifts:
            total = backend.add(total, backend.rotate(total, shift))
        return total

    # -- execution -------------------------------------------------------------
    def execute(self, backend, in_cts: List, pt_scale: Fraction, hoisting: str = "double"):
        """Run the matvec homomorphically.

        Args:
            backend: any :class:`FheBackend`.
            in_cts: input ciphertexts (all at the same level and scale).
            pt_scale: scale for the weight plaintexts; the compiler sets
                q_level * Delta / input_scale so the rescale after this
                layer lands exactly on Delta (errorless scale policy).
            hoisting: ``"double"`` (fused deferred-mod-down path when the
                backend supports it, else hoisted BSGS), ``"double-unfused"``
                (force the per-rotation BSGS pipeline), ``"single"``, or
                ``"none"``.

        Returns:
            list of output ciphertexts at level-1, scale input*pt/q.
        """
        level = backend.level_of(in_cts[0])
        per_backend = self._pt_cache.get(backend)
        if per_backend is None:
            per_backend = {}
            self._pt_cache[backend] = per_backend
        # All weight/zero/bias encodes are keyed by the backend's full
        # encode fingerprint (level, scale, ks config) — the serve-many
        # invariant that keeps a second request entering at a different
        # level from hitting a stale encode.
        cache_fp = backend.plaintext_cache_key(level, pt_scale)
        totals = None
        if hoisting == "double" and getattr(backend, "supports_fused_matvec", False):
            terms = self._fused_term_vectors()
            pt_cache = per_backend.setdefault(("fused",) + cache_fp, {})
            totals = backend.matvec_fused(
                in_cts,
                terms,
                self.num_out,
                pt_scale,
                pt_cache=pt_cache,
                charged_rotations=self._bsgs_rotation_count(),
            )
        if totals is None:
            mode = "double" if hoisting == "double-unfused" else hoisting
            totals = self._accumulate_bsgs(
                backend, in_cts, level, pt_scale, per_backend, mode
            )
        outputs = []
        for bo, total in enumerate(totals):
            if total is None:
                zero_pt = per_backend.get(("zero",) + cache_fp)
                if zero_pt is None:
                    zero_pt = backend.encode(np.zeros(self.slots), level, pt_scale)
                    per_backend[("zero",) + cache_fp] = zero_pt
                total = backend.mul_plain(in_cts[0], zero_pt)
            total = backend.rescale(total)
            total = self._apply_folds(backend, total, hoisting, level)
            if self.bias_vecs is not None:
                out_level = backend.level_of(total)
                out_scale = backend.scale_of(total)
                bias_key = ("bias", bo) + backend.plaintext_cache_key(
                    out_level, out_scale
                )
                bias_pt = per_backend.get(bias_key)
                if bias_pt is None:
                    bias_pt = backend.encode(self.bias_vecs[bo], out_level, out_scale)
                    per_backend[bias_key] = bias_pt
                total = backend.add_plain(total, bias_pt)
            outputs.append(total)
        return outputs

    def _accumulate_bsgs(
        self, backend, in_cts: List, level: int, pt_scale: Fraction,
        per_backend: Dict, hoisting: str,
    ) -> List:
        """Per-rotation BSGS accumulation (the pre-fused pipeline).

        Baby-rotates every input block (hoisted for ``"double"``),
        multiplies the pre-rotated diagonals in, applies giant rotations
        to accumulated sums, and returns one pre-rescale total per
        output block (``None`` where a block has no diagonals).
        """
        rotated: Dict[int, Dict[int, object]] = {}
        for bi in range(self.num_in):
            babies = self._babies_for_in_block(bi)
            if hoisting == "double":
                rotated[bi] = backend.rotate_hoisted(in_cts[bi], babies)
            else:
                rotated[bi] = backend.rotate_group(in_cts[bi], babies, hoisting=hoisting)
        pt_cache = per_backend.setdefault(
            ("diag",) + backend.plaintext_cache_key(level, pt_scale), {}
        )
        totals = []
        for bo in range(self.num_out):
            acc_by_giant: Dict[int, object] = {}
            for bi in range(self.num_in):
                dmap = self.diags.get((bo, bi))
                if not dmap:
                    continue
                for offset, vec in dmap.items():
                    giant, baby = self.plan.split(offset)
                    pt = pt_cache.get((bo, bi, offset))
                    if pt is None:
                        pt = backend.encode(vec, level, pt_scale)
                        pt_cache[(bo, bi, offset)] = pt
                    term = backend.mul_plain(rotated[bi][baby], pt)
                    if giant in acc_by_giant:
                        acc_by_giant[giant] = backend.add(acc_by_giant[giant], term)
                    else:
                        acc_by_giant[giant] = term
            if not acc_by_giant:
                totals.append(None)
                continue
            total = None
            for giant, part in sorted(acc_by_giant.items()):
                part = backend.rotate(part, giant)
                total = part if total is None else backend.add(total, part)
            totals.append(total)
        return totals

    # -- artifact serialization (docs/serving.md) ----------------------------
    def to_payload(self, store) -> Dict:
        """JSON-safe structure describing this layer; numpy arrays go
        through ``store(array) -> ref`` (the artifact's array registry)
        so the payload itself stays pure JSON."""
        diag_groups = []
        for (bo, bi), dmap in sorted(self.diags.items()):
            # Keep the builder's offset order: cleartext execution
            # accumulates in dict order, and bit-exact round-trips
            # require the same float summation order.
            offsets = list(dmap)
            stacked = np.stack([dmap[off] for off in offsets])
            diag_groups.append(
                {"bo": bo, "bi": bi, "offsets": offsets, "vecs": store(stacked)}
            )
        return {
            "slots": self.slots,
            "num_in": self.num_in,
            "num_out": self.num_out,
            "name": self.name,
            "plan": {
                "n1": self.plan.n1,
                "babies": list(self.plan.babies),
                "giants": list(self.plan.giants),
            },
            "fold_shifts": list(self.fold_shifts),
            "out_layout": layout_payload(self.out_layout),
            "bias": None
            if self.bias_vecs is None
            else store(np.stack(self.bias_vecs)),
            "diags": diag_groups,
        }

    @classmethod
    def from_payload(cls, payload: Dict, fetch) -> "PackedMatVec":
        """Inverse of :meth:`to_payload`; ``fetch(ref)`` returns the
        stored array bit-exactly."""
        diags: Dict[Tuple[int, int], Dict[int, np.ndarray]] = {}
        for group in payload["diags"]:
            stacked = fetch(group["vecs"])
            diags[(group["bo"], group["bi"])] = {
                int(off): stacked[i] for i, off in enumerate(group["offsets"])
            }
        bias_vecs = None
        if payload["bias"] is not None:
            bias_vecs = list(fetch(payload["bias"]))
        plan = BsgsPlan(
            n1=payload["plan"]["n1"],
            babies=tuple(payload["plan"]["babies"]),
            giants=tuple(payload["plan"]["giants"]),
        )
        return cls(
            slots=payload["slots"],
            num_in=payload["num_in"],
            num_out=payload["num_out"],
            diags=diags,
            plan=plan,
            out_layout=layout_from_payload(payload["out_layout"]),
            fold_shifts=tuple(payload["fold_shifts"]),
            bias_vecs=bias_vecs,
            name=payload["name"],
        )

    def execute_cleartext(self, in_vecs: List[np.ndarray]) -> List[np.ndarray]:
        """Reference execution with plain numpy (validates packing)."""
        outputs = []
        for bo in range(self.num_out):
            acc = np.zeros(self.slots)
            for bi in range(self.num_in):
                dmap = self.diags.get((bo, bi))
                if not dmap:
                    continue
                for offset, vec in dmap.items():
                    giant, baby = self.plan.split(offset)
                    acc_term = vec * np.roll(in_vecs[bi], -baby)
                    acc += np.roll(acc_term, -giant)
            for shift in self.fold_shifts:
                acc = acc + np.roll(acc, -shift)
            if self.bias_vecs is not None:
                acc = acc + self.bias_vecs[bo]
            outputs.append(acc)
        return outputs


def layout_payload(layout) -> Dict:
    """JSON description of a packing layout (artifact serialization)."""
    if isinstance(layout, MultiplexedLayout):
        return {
            "kind": "multiplexed",
            "channels": layout.channels,
            "height": layout.height,
            "width": layout.width,
            "gap": layout.gap,
            "slots": layout.slots,
        }
    if isinstance(layout, VectorLayout):
        return {"kind": "vector", "length": layout.length, "slots": layout.slots}
    if isinstance(layout, StackedLayout):
        return {
            "kind": "stacked",
            "parts": [layout_payload(part) for part in layout.parts],
            "slots": layout.slots,
        }
    raise TypeError(f"cannot serialize layout {type(layout).__name__}")


def layout_from_payload(payload: Dict):
    kind = payload["kind"]
    if kind == "multiplexed":
        return MultiplexedLayout(
            channels=payload["channels"],
            height=payload["height"],
            width=payload["width"],
            gap=payload["gap"],
            slots=payload["slots"],
        )
    if kind == "vector":
        return VectorLayout(length=payload["length"], slots=payload["slots"])
    if kind == "stacked":
        return StackedLayout(
            parts=tuple(layout_from_payload(p) for p in payload["parts"]),
            slots=payload["slots"],
        )
    raise ValueError(f"unknown layout kind {kind!r}")


def merge_packed_matvecs(packeds: List[PackedMatVec], name: str = "fused") -> PackedMatVec:
    """Concatenate sibling layers reading the same input into one layer.

    The graph optimizer's concat-linear fusion: all siblings' diagonal
    tables join under ONE BSGS plan over the union of their offsets, so
    the fused execution shares a single digit decomposition per input
    block and de-duplicates (input block, offset) inner products the
    siblings had in common — (k-1) * num_in decompositions and every
    shared rotation disappear outright.  Output block b of sibling k
    lands at global block ``offset(k) + b`` (a :class:`StackedLayout`);
    a cheap ciphertext-list slice recovers each branch afterwards.

    Bit-exactness: a stored diagonal contributes
    ``orig[j] * in[j + offset]`` to its output block regardless of how
    the plan splits the offset into baby and giant steps, so re-planning
    over the union set leaves every per-block sum made of the identical
    float products in the identical (insertion-preserved) order.

    Requires identical slot counts, input block counts, and fold shifts
    (``fold_shifts`` run per output block, so equal shift ladders fold
    each stacked block exactly as the separate layers did).
    """
    if len(packeds) < 2:
        raise ValueError("need at least two layers to merge")
    first = packeds[0]
    for p in packeds[1:]:
        if p.slots != first.slots:
            raise ValueError("merged layers must share the slot count")
        if p.num_in != first.num_in:
            raise ValueError("merged layers must read the same input blocks")
        if p.fold_shifts != first.fold_shifts:
            raise ValueError("merged layers must share fold shifts")
    union_offsets = sorted(
        {off for p in packeds for dmap in p.diags.values() for off in dmap}
    )
    plan = plan_bsgs(union_offsets, first.slots)
    diags: Dict[Tuple[int, int], Dict[int, np.ndarray]] = {}
    bias_vecs: Optional[List[np.ndarray]] = None
    if any(p.bias_vecs is not None for p in packeds):
        bias_vecs = []
    bo_base = 0
    for p in packeds:
        for (bo, bi), dmap in p.diags.items():
            merged = diags.setdefault((bo_base + bo, bi), {})
            for offset, vec in dmap.items():
                old_giant, _ = p.plan.split(offset)
                orig = np.roll(vec, -old_giant) if old_giant else vec
                new_giant, _ = plan.split(offset)
                merged[offset] = np.roll(orig, new_giant) if new_giant else orig
        if bias_vecs is not None:
            if p.bias_vecs is not None:
                bias_vecs.extend(p.bias_vecs)
            else:
                bias_vecs.extend(np.zeros(first.slots) for _ in range(p.num_out))
        bo_base += p.num_out
    return PackedMatVec(
        slots=first.slots,
        num_in=first.num_in,
        num_out=bo_base,
        diags=diags,
        plan=plan,
        out_layout=StackedLayout(
            parts=tuple(p.out_layout for p in packeds), slots=first.slots
        ),
        fold_shifts=first.fold_shifts,
        bias_vecs=bias_vecs,
        name=name,
    )


# ---------------------------------------------------------------------------
# Construction from raw (out_slot, in_slot, value) entry streams
# ---------------------------------------------------------------------------
class _DiagAccumulator:
    """Accumulates matrix entries into per-block diagonal vectors."""

    def __init__(self, slots: int):
        self.slots = slots
        self.vecs: Dict[Tuple[int, int, int], np.ndarray] = {}

    def add_entries(self, out_slot: np.ndarray, in_slot: np.ndarray, value: np.ndarray):
        n = self.slots
        out_slot = out_slot.ravel()
        in_slot = in_slot.ravel()
        value = value.ravel()
        if out_slot.size == 0:
            return
        bo = out_slot // n
        bi = in_slot // n
        out_local = out_slot % n
        diag = (in_slot - out_slot) % n
        # Lexsort entries by (bo, bi, diag) so each diagonal is one
        # contiguous run, then scatter-add every run in a single grouped
        # np.add.at into a (runs, n) buffer (no per-key Python masking).
        order = np.lexsort((diag, bi, bo))
        bo = bo[order]
        bi = bi[order]
        diag = diag[order]
        out_local = out_local[order]
        value = value[order]
        new_run = np.empty(order.size, dtype=bool)
        new_run[0] = True
        new_run[1:] = (
            (bo[1:] != bo[:-1]) | (bi[1:] != bi[:-1]) | (diag[1:] != diag[:-1])
        )
        run_id = np.cumsum(new_run) - 1
        starts = np.flatnonzero(new_run)
        buf = np.zeros((starts.size, n))
        np.add.at(buf, (run_id, out_local), value)
        for row, s in enumerate(starts):
            key = (int(bo[s]), int(bi[s]), int(diag[s]))
            vec = self.vecs.get(key)
            if vec is None:
                self.vecs[key] = buf[row]
            else:
                vec += buf[row]

    def finalize(self, num_in: int, num_out: int, out_layout, bias_vecs,
                 fold_shifts=(), name="linear") -> PackedMatVec:
        offsets = sorted({diag for (_, _, diag) in self.vecs})
        plan = plan_bsgs(offsets, self.slots)
        diags: Dict[Tuple[int, int], Dict[int, np.ndarray]] = {}
        for (bo, bi, diag), vec in self.vecs.items():
            giant, _ = plan.split(diag)
            # Pre-rotate the diagonal down by the giant step (Eq. 1).
            diags.setdefault((bo, bi), {})[diag] = np.roll(vec, giant)
        return PackedMatVec(
            slots=self.slots,
            num_in=num_in,
            num_out=num_out,
            diags=diags,
            plan=plan,
            out_layout=out_layout,
            fold_shifts=tuple(fold_shifts),
            bias_vecs=bias_vecs,
            name=name,
        )


def _conv_geometry(in_layout: MultiplexedLayout, kernel, stride, padding, dilation):
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    dh, dw = dilation
    out_h = (in_layout.height + 2 * ph - dh * (kh - 1) - 1) // sh + 1
    out_w = (in_layout.width + 2 * pw - dw * (kw - 1) - 1) // sw + 1
    return out_h, out_w


def build_conv_packing(
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    in_layout: MultiplexedLayout,
    stride=(1, 1),
    padding=(0, 0),
    dilation=(1, 1),
    groups: int = 1,
    name: str = "conv",
    force_hybrid: Optional[bool] = None,
) -> PackedMatVec:
    """Compile a convolution into a single-shot multiplexed matvec.

    The output layout's gap is g_in * stride (paper Figure 5b): strided
    convolutions densify into the channel dimension instead of leaving
    slot gaps, and the row permutation that achieves this is folded into
    the weight matrix — consuming one level total.  For outputs much
    smaller than the slot count, the Gazelle hybrid variant (replicated
    rows + rotate-and-sum fold; paper Section 8.2) is also built and the
    cheaper of the two (by rotation count) is kept.
    """
    if force_hybrid is None:
        plain = build_conv_packing(
            weight, bias, in_layout, stride, padding, dilation, groups,
            name, force_hybrid=False,
        )
        probe_m2 = _conv_hybrid_modulus(in_layout, plain.out_layout)
        if probe_m2 is None:
            return plain
        hybrid = build_conv_packing(
            weight, bias, in_layout, stride, padding, dilation, groups,
            name, force_hybrid=True,
        )
        return hybrid if hybrid.rotation_count() < plain.rotation_count() else plain
    c_out, c_in_g, kh, kw = weight.shape
    sh, sw = stride
    if sh != sw:
        raise ValueError("anisotropic strides are not supported")
    out_h, out_w = _conv_geometry(in_layout, (kh, kw), stride, padding, dilation)
    out_layout = MultiplexedLayout(
        channels=c_out,
        height=out_h,
        width=out_w,
        gap=in_layout.gap * sh,
        slots=in_layout.slots,
    )
    n = in_layout.slots
    # Gazelle hybrid (paper Section 8.2): when the output is much
    # smaller than the slot count, replicate the matrix rows modulo the
    # padded output length; diagonal offsets then collapse into [0, m2)
    # and a log2(n/m2) rotate-and-sum fold finishes the product.
    hybrid_m2 = _conv_hybrid_modulus(in_layout, out_layout) if force_hybrid else None
    if force_hybrid and hybrid_m2 is None:
        raise ValueError("hybrid conv packing requires a small single-ct output")
    acc = _DiagAccumulator(n)
    co_per_group = c_out // groups
    ci_per_group = in_layout.channels // groups if groups > 1 else c_in_g
    co_idx = np.arange(c_out)
    group_of_co = co_idx // co_per_group

    oy, ox = np.meshgrid(np.arange(out_h), np.arange(out_w), indexing="ij")
    out_slot_all = out_layout.slot(
        co_idx[:, None, None], oy[None], ox[None]
    )  # (c_out, out_h, out_w)

    for dy in range(kh):
        for dx in range(kw):
            iy = oy * sh + dy * dilation[0] - padding[0]
            ix = ox * sw + dx * dilation[1] - padding[1]
            valid = (
                (iy >= 0)
                & (iy < in_layout.height)
                & (ix >= 0)
                & (ix < in_layout.width)
            )
            if not valid.any():
                continue
            iy_v = iy[valid]
            ix_v = ix[valid]
            out_slot_v = out_slot_all[:, valid]  # (c_out, n_valid)
            for ci_rel in range(c_in_g):
                ci_global = group_of_co * ci_per_group + ci_rel  # (c_out,)
                in_slot_v = in_layout.slot(
                    ci_global[:, None], iy_v[None, :], ix_v[None, :]
                )
                values = np.broadcast_to(
                    weight[:, ci_rel, dy, dx][:, None], in_slot_v.shape
                )
                if hybrid_m2 is not None:
                    offs = (in_slot_v - out_slot_v) % hybrid_m2
                    j = (in_slot_v - offs) % n
                    acc.add_entries(j, (j + offs) % n, values)
                else:
                    acc.add_entries(out_slot_v, in_slot_v, values)

    bias_vecs = None
    if bias is not None:
        bias_tensor = np.broadcast_to(
            bias[:, None, None], (c_out, out_h, out_w)
        )
        bias_vecs = out_layout.pack(np.array(bias_tensor))
    fold_shifts = ()
    if hybrid_m2 is not None:
        fold_shifts = tuple(n >> (i + 1) for i in range(int_log2(n // hybrid_m2)))
    return acc.finalize(
        num_in=in_layout.num_ciphertexts,
        num_out=out_layout.num_ciphertexts,
        out_layout=out_layout,
        bias_vecs=bias_vecs,
        fold_shifts=fold_shifts,
        name=name,
    )


def _conv_hybrid_modulus(in_layout: MultiplexedLayout, out_layout) -> Optional[int]:
    """Padded output length m2 when the Gazelle hybrid applies."""
    n = in_layout.slots
    if in_layout.num_ciphertexts != 1 or out_layout.num_ciphertexts != 1:
        return None
    total = out_layout.total_slots
    if total > n // 2:
        return None
    return next_power_of_two(total)


def build_linear_packing(
    matrix: np.ndarray,
    bias: Optional[np.ndarray],
    in_layout,
    name: str = "fc",
    force_mode: Optional[str] = None,
) -> PackedMatVec:
    """Compile a dense (m x L) matrix over a packed input layout.

    Chooses between the plain diagonal form and the Gazelle hybrid
    (paper Section 8.2: "for small networks ... we rely on Gazelle's
    hybrid method"): replicate the squat matrix's rows modulo m2 (m
    padded to a power of two), BSGS over the m2 diagonal offsets, then
    rotate-and-sum fold log2(n/m2) times.
    """
    m, logical_len = matrix.shape
    if logical_len != in_layout.logical_length:
        raise ValueError(
            f"matrix width {logical_len} does not match layout length "
            f"{in_layout.logical_length}"
        )
    n = in_layout.slots
    out_layout = VectorLayout(m, n)
    rows, cols = np.nonzero(matrix)
    values = matrix[rows, cols]
    in_slots = in_layout.slot_of_logical(cols)

    single_block = in_layout.num_ciphertexts == 1 and m <= n // 2
    use_hybrid = force_mode == "hybrid" or (
        force_mode is None and single_block and m <= n // 4
    )
    if use_hybrid and not single_block:
        raise ValueError("hybrid method requires a single-ciphertext input")

    acc = _DiagAccumulator(n)
    if use_hybrid:
        m2 = next_power_of_two(m)
        offsets = (in_slots - rows) % m2
        j = (in_slots - offsets) % n
        # Entries land at row j with diagonal offset k in [0, m2); the
        # input slot (j + k) mod n stays inside the single ciphertext.
        acc.add_entries(j, (j + offsets) % n, values)
        fold_shifts = tuple(n >> (i + 1) for i in range(int_log2(n // m2)))
    else:
        acc.add_entries(rows, in_slots, values)
        fold_shifts = ()

    bias_vecs = out_layout.pack(bias) if bias is not None else None
    packed = acc.finalize(
        num_in=in_layout.num_ciphertexts,
        num_out=out_layout.num_ciphertexts,
        out_layout=out_layout,
        bias_vecs=bias_vecs,
        fold_shifts=fold_shifts,
        name=name,
    )
    if force_mode is None and not use_hybrid and single_block and m <= n // 2:
        # Also try hybrid and keep the cheaper plan (by rotation count).
        alt = build_linear_packing(matrix, bias, in_layout, name, force_mode="hybrid")
        if alt.rotation_count() < packed.rotation_count():
            return alt
    return packed
