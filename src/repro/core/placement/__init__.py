"""Automatic bootstrap placement (paper Section 5).

The network is a nested chain of items (layers and SESE regions).  For
each item we build a *level digraph* transition matrix T[a][o]: the
minimum latency to go from "a levels available before the item" to "o
levels available after it", where every entry already minimizes over
the execution level (a layer may run below the available level — paper
Fig. 6b: "even when a bootstrap occurs, the subsequent layer can still
be performed at l < L_eff") and over inserting a bootstrap first.
Chains compose by (min, +) matrix products; regions are black-boxed by
solving both branches jointly for every (entry, exit) level pair and
collapsing to an aggregate matrix (paper Fig. 6d).  Complexity is
O(L_eff^2 * depth) — linear in network depth (paper Table 5).
"""

from repro.core.placement.items import (
    JoinSpec,
    LayerSpec,
    PlacementChain,
    PlacementRegion,
)
from repro.core.placement.planner import LevelPolicy, PlacementResult, solve_placement
from repro.core.placement.baselines import dacapo_style_placement, lazy_placement

__all__ = [
    "LayerSpec",
    "JoinSpec",
    "PlacementChain",
    "PlacementRegion",
    "LevelPolicy",
    "PlacementResult",
    "solve_placement",
    "lazy_placement",
    "dacapo_style_placement",
]
