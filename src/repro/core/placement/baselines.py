"""Baseline bootstrap-placement strategies.

- ``lazy_placement``: bootstrap only when the next layer cannot run.
  Region-aware: a residual join requires both operands at one level, so
  when the joined value must be refreshed, *both* operands bootstrap —
  the effect that makes lazy placement expensive in residual networks
  (paper Section 5.1, Fhelipe Fig. 10).
- ``dacapo_style_placement``: a DaCapo-like [17] search — enumerate
  candidate bootstrap locations and iteratively improve the selected
  combination by local moves, evaluating every candidate configuration
  with a full latency pass over the region tree.  Similar quality to
  the level-digraph planner, far slower at scale (paper Section 5.2).
"""

from __future__ import annotations

import time
from typing import List

from repro.core.placement.items import (
    LayerSpec,
    PlacementChain,
    PlacementRegion,
)
from repro.core.placement.planner import INF, LevelPolicy, PlacementResult


def _flatten(chain: PlacementChain) -> List[LayerSpec]:
    flat: List[LayerSpec] = []
    for item in chain.items:
        if isinstance(item, PlacementRegion):
            flat.extend(_flatten(item.branch_a))
            flat.extend(_flatten(item.branch_b))
            flat.append(item.join)
        else:
            flat.append(item)
    return flat


class _Walk:
    """Evaluate a bootstrap policy over the region tree.

    ``should_boot(name, level, depth)`` decides whether the value is
    refreshed before a layer; infeasible layers force a bootstrap when
    ``force_feasible`` (the lazy rule) or poison the cost otherwise.
    """

    def __init__(self, l_eff: int, boot_cost: float, should_boot, force_feasible: bool):
        self.l_eff = l_eff
        self.boot_cost = boot_cost
        self.should_boot = should_boot
        self.force_feasible = force_feasible
        self.cost = 0.0
        self.boots = 0
        self.policies: List[LevelPolicy] = []
        self.feasible = True

    def run_layer(self, layer: LayerSpec, level: int) -> int:
        inserted = 0
        wants = self.should_boot(layer.name, level, layer.depth)
        if level < layer.depth and not wants:
            if self.force_feasible:
                wants = True
            else:
                self.feasible = False
                return 0
        if wants:
            inserted = layer.boot_units
            self.boots += inserted
            self.cost += inserted * self.boot_cost
            level = self.l_eff
        self.cost += layer.cost_fn(level)
        self.policies.append(
            LevelPolicy(layer.name, exec_level=level, bootstrap_before=inserted)
        )
        return level - layer.depth

    def run_chain(self, chain: PlacementChain, level: int) -> int:
        for item in chain.items:
            if not self.feasible:
                return 0
            if isinstance(item, PlacementRegion):
                exit_a = self.run_chain(item.branch_a, level)
                exit_b = self.run_chain(item.branch_b, level)
                # Both operands must meet at one level (free mod-down).
                level = self.run_layer(item.join, min(exit_a, exit_b))
            else:
                level = self.run_layer(item, level)
        return level


def lazy_placement(
    chain: PlacementChain, l_eff: int, boot_cost: float
) -> PlacementResult:
    """Bootstrap only when the next layer cannot run; refresh to L_eff."""
    start = time.perf_counter()
    walk = _Walk(l_eff, boot_cost, lambda name, level, depth: False, True)
    exit_level = walk.run_chain(chain, l_eff)
    return PlacementResult(
        policies=walk.policies,
        num_bootstraps=walk.boots,
        modeled_seconds=walk.cost,
        entry_level=l_eff,
        exit_level=exit_level,
        solve_seconds=time.perf_counter() - start,
    )


def _evaluate_configuration(
    chain: PlacementChain,
    boot_names: frozenset,
    l_eff: int,
    boot_cost: float,
) -> float:
    walk = _Walk(l_eff, boot_cost, lambda name, level, depth: name in boot_names, False)
    walk.run_chain(chain, l_eff)
    return walk.cost if walk.feasible else INF


def dacapo_style_placement(
    chain: PlacementChain,
    l_eff: int,
    boot_cost: float,
    max_rounds: int = 200,
) -> PlacementResult:
    """Candidate-combination search in the spirit of DaCapo [17]."""
    start = time.perf_counter()
    names = [layer.name for layer in _flatten(chain)]
    lazy = lazy_placement(chain, l_eff, boot_cost)
    current = frozenset(p.name for p in lazy.policies if p.bootstrap_before)
    current_cost = _evaluate_configuration(chain, current, l_eff, boot_cost)

    for _ in range(max_rounds):
        improved = False
        candidates = []
        for index, name in enumerate(names):
            if name in current:
                candidates.append(current - {name})
                for shift in (-2, -1, 1, 2):
                    target = index + shift
                    if 0 <= target < len(names) and names[target] not in current:
                        candidates.append(current - {name} | {names[target]})
            else:
                candidates.append(current | {name})
        for candidate in candidates:
            cost = _evaluate_configuration(chain, candidate, l_eff, boot_cost)
            if cost < current_cost:
                current, current_cost = frozenset(candidate), cost
                improved = True
        if not improved:
            break

    walk = _Walk(l_eff, boot_cost, lambda name, level, depth: name in current, True)
    exit_level = walk.run_chain(chain, l_eff)
    return PlacementResult(
        policies=walk.policies,
        num_bootstraps=walk.boots,
        modeled_seconds=walk.cost,
        entry_level=l_eff,
        exit_level=exit_level,
        solve_seconds=time.perf_counter() - start,
    )
