"""Placement problem structure: layers, joins, regions, chains."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Union


@dataclass
class LayerSpec:
    """A layer in the placement problem.

    Attributes:
        name: stable identifier (matches the program instruction).
        depth: multiplicative levels consumed.
        cost_fn: level -> modeled seconds for executing at that input
            level (paper Fig. 6b node weights).
        boot_units: bootstrap operations required to refresh this item's
            input — the number of ciphertexts the value spans (multi-
            ciphertext tensors, Section 4.3), doubled at joins because
            both incoming values must be refreshed.
    """

    name: str
    depth: int
    cost_fn: Callable[[int], float]
    boot_units: int = 1
    cost_obj: object = None  # optional packing stats for re-pricing


@dataclass
class JoinSpec(LayerSpec):
    """A join merging two branches (on.Add, or the ReLU x*sign multiply)."""


@dataclass
class PlacementRegion:
    """A fork/join SESE region (paper Fig. 6c)."""

    branch_a: "PlacementChain"
    branch_b: "PlacementChain"
    join: JoinSpec


Item = Union[LayerSpec, PlacementRegion]


@dataclass
class PlacementChain:
    """Straight-line sequence of placement items."""

    items: List[Item] = field(default_factory=list)

    def total_depth(self) -> int:
        """Depth of the longest root-to-leaf multiplication chain
        (paper Table 2 'Depth' column)."""
        depth = 0
        for item in self.items:
            if isinstance(item, PlacementRegion):
                depth += max(
                    item.branch_a.total_depth(), item.branch_b.total_depth()
                )
                depth += item.join.depth
            else:
                depth += item.depth
        return depth

    def layer_names(self) -> List[str]:
        names = []
        for item in self.items:
            if isinstance(item, PlacementRegion):
                names.extend(item.branch_a.layer_names())
                names.extend(item.branch_b.layer_names())
                names.append(item.join.name)
            else:
                names.append(item.name)
        return names
