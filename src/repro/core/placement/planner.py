"""The level-digraph shortest-path planner (paper Section 5.2).

Every item becomes an (L_eff+1) x (L_eff+1) transition matrix over
"available level before" x "available level after"; chains compose with
(min, +) products and regions collapse via joint per-(entry, exit)
shortest paths.  Argmins are recorded at every composition so the full
level management policy — the execution level of every layer and the
position of every bootstrap — is reconstructed exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.placement.items import (
    LayerSpec,
    PlacementChain,
    PlacementRegion,
)

INF = float("inf")


@dataclass
class LevelPolicy:
    """The planner's decision for one layer."""

    name: str
    exec_level: int
    bootstrap_before: int  # number of bootstrap ops inserted before


@dataclass
class PlacementResult:
    """Full placement solution.

    Attributes:
        policies: per-layer decisions in execution order.
        num_bootstraps: total bootstrap operations inserted.
        modeled_seconds: shortest-path total latency (cost model units).
        entry_level: chosen level for the (fresh or bootstrapped) input.
        exit_level: level of the network output.
        solve_seconds: wall-clock time of the planner itself (Table 5).
    """

    policies: List[LevelPolicy]
    num_bootstraps: int
    modeled_seconds: float
    entry_level: int
    exit_level: int
    solve_seconds: float

    def policy_map(self) -> Dict[str, LevelPolicy]:
        return {p.name: p for p in self.policies}


class _Solved:
    """A transition matrix plus a reconstructor for the chosen paths."""

    def __init__(self, matrix: np.ndarray, reconstruct):
        self.matrix = matrix  # (L+1, L+1): [available_in, available_out]
        self.reconstruct = reconstruct  # (a, o) -> List[LevelPolicy]


def _solve_layer(item: LayerSpec, l_eff: int, boot_cost: float) -> _Solved:
    """Matrix for a single layer.

    Entry [a][o]: run the layer with input level x = o + depth.  Without
    a bootstrap this needs x <= a (mod-down is free); with one (or, for
    joins, ``boot_multiplier``) bootstrap first, any x <= L_eff works.
    """
    size = l_eff + 1
    matrix = np.full((size, size), INF)
    boots_needed = item.boot_units
    choice = np.zeros((size, size), dtype=np.int8)  # 1 = bootstrap first
    for o in range(size):
        x = o + item.depth
        if x > l_eff:
            continue
        run_cost = item.cost_fn(x)
        for a in range(size):
            best = INF
            chose_boot = 0
            if x <= a:
                best = run_cost
            with_boot = boots_needed * boot_cost + run_cost
            if with_boot < best:
                best = with_boot
                chose_boot = 1
            matrix[a, o] = best
            choice[a, o] = chose_boot

    def reconstruct(a: int, o: int) -> List[LevelPolicy]:
        boots = boots_needed if choice[a, o] else 0
        return [LevelPolicy(item.name, exec_level=o + item.depth, bootstrap_before=boots)]

    return _Solved(matrix, reconstruct)


def _compose(first: _Solved, second: _Solved) -> _Solved:
    """(min, +) product of two transition matrices with argmin capture."""
    stacked = first.matrix[:, :, None] + second.matrix[None, :, :]  # (a, m, o)
    best_m = np.argmin(stacked, axis=1)  # (a, o)
    matrix = np.min(stacked, axis=1)

    def reconstruct(a: int, o: int) -> List[LevelPolicy]:
        m = int(best_m[a, o])
        return first.reconstruct(a, m) + second.reconstruct(m, o)

    return _Solved(matrix, reconstruct)


def _solve_region(region: PlacementRegion, l_eff: int, boot_cost: float) -> _Solved:
    """Black-box a SESE region into an aggregate matrix (paper Fig. 6d).

    Both branches run from the fork level a to a common pre-join level
    m (the residual constraint of Section 8.3), then the join executes.
    """
    branch_a = _solve_chain(region.branch_a, l_eff, boot_cost)
    branch_b = _solve_chain(region.branch_b, l_eff, boot_cost)
    join = _solve_layer(region.join, l_eff, boot_cost)

    joint = branch_a.matrix + branch_b.matrix  # (a, m): both branches to m
    combined = joint[:, :, None] + join.matrix[None, :, :]  # (a, m, o)
    best_m = np.argmin(combined, axis=1)
    matrix = np.min(combined, axis=1)

    def reconstruct(a: int, o: int) -> List[LevelPolicy]:
        m = int(best_m[a, o])
        return (
            branch_a.reconstruct(a, m)
            + branch_b.reconstruct(a, m)
            + join.reconstruct(m, o)
        )

    return _Solved(matrix, reconstruct)


def _solve_chain(chain: PlacementChain, l_eff: int, boot_cost: float) -> _Solved:
    size = l_eff + 1
    identity = np.full((size, size), INF)
    for a in range(size):
        identity[a, : a + 1] = 0.0  # free mod-down

    solved = _Solved(identity, lambda a, o: [])
    for item in chain.items:
        if isinstance(item, PlacementRegion):
            part = _solve_region(item, l_eff, boot_cost)
        else:
            part = _solve_layer(item, l_eff, boot_cost)
        solved = _compose(solved, part)
    return solved


def solve_placement(
    chain: PlacementChain,
    l_eff: int,
    boot_cost: float,
    entry_level: Optional[int] = None,
) -> PlacementResult:
    """Solve bootstrap placement and level management for a network.

    Args:
        chain: the network as a nested placement chain.
        l_eff: effective level after bootstrapping (paper Table 1).
        boot_cost: modeled bootstrap latency (paper Fig. 1c).
        entry_level: fix the input ciphertext level; default: the
            planner chooses (paper Fig. 6b considers every input node).
    """
    solve_placement.invocations += 1
    start = time.perf_counter()
    solved = _solve_chain(chain, l_eff, boot_cost)
    matrix = solved.matrix

    if entry_level is not None:
        candidates = [(matrix[entry_level, o], entry_level, o) for o in range(l_eff + 1)]
    else:
        candidates = [
            (matrix[a, o], a, o)
            for a in range(l_eff + 1)
            for o in range(l_eff + 1)
        ]
    cost, a_star, o_star = min(candidates, key=lambda t: t[0])
    if cost == INF:
        raise ValueError(
            "no feasible level policy: some layer needs more depth than "
            f"L_eff={l_eff} provides"
        )
    policies = solved.reconstruct(a_star, o_star)
    boots = sum(p.bootstrap_before for p in policies)
    elapsed = time.perf_counter() - start
    return PlacementResult(
        policies=policies,
        num_bootstraps=boots,
        modeled_seconds=float(cost),
        entry_level=a_star,
        exit_level=o_star,
        solve_seconds=elapsed,
    )


# Planner-invocation counter: the serving runtime's "zero planner calls
# on the serve path" contract is asserted against this (see
# OrionCompiler.invocations for the compiler-level counter).
solve_placement.invocations = 0
