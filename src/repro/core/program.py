"""The compiled FHE program and its backend-agnostic executor.

A :class:`FheProgram` is an ordered list of instructions over named
registers (one register = one packed tensor = a list of ciphertexts).
Each instruction carries its placement decision (execution level,
bootstraps inserted before it) and executes against any
:class:`repro.backend.FheBackend` — the exact toy backend for
validation-scale networks, the simulator for paper-scale ones.

Scale discipline (paper Section 6, "errorless neural network
evaluation"): between layers every ciphertext sits at scale exactly
Delta.  Linear-layer weight plaintexts are encoded at the *runtime*
scale q_l * Delta / s_in so the post-layer rescale lands exactly back
on Delta, whatever s_in the preceding activation produced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Dict, List

import numpy as np

from repro.core.approx.chebyshev import ChebyshevPoly
from repro.core.approx.evaluator import evaluate_chebyshev
from repro.core.packing.layouts import BlockReplicatedLayout
from repro.core.packing.matvec import (
    PackedMatVec,
    layout_from_payload,
    layout_payload,
)


class ExecutionState:
    """Registers and backend for one inference.

    Serving reuses one state object per worker: :meth:`reset` clears the
    registers between requests without touching the backend (whose
    plaintext caches and ledger must persist across requests).
    """

    def __init__(self, backend):
        self.backend = backend
        self.registers: Dict[int, List] = {}

    def get(self, uid: int) -> List:
        return self.registers[uid]

    def set(self, uid: int, cts: List) -> None:
        self.registers[uid] = cts

    def reset(self) -> None:
        """Drop all registers so the state can serve the next request."""
        self.registers.clear()

    # -- helpers shared by instructions -----------------------------------
    def apply_bootstraps(self, uid: int) -> None:
        """Refresh a register in place (a bootstrap benefits every
        consumer of the value, so mutation is semantically right)."""
        backend = self.backend
        self.registers[uid] = [backend.bootstrap(ct) for ct in self.registers[uid]]

    def aligned(self, uid: int, level: int) -> List:
        """A level-aligned *copy* of a register.

        Mod-down must NOT mutate the register: a fork value read by a
        residual shortcut at a high level may simultaneously feed a
        backbone layer executing lower.
        """
        backend = self.backend
        return [
            backend.level_down(ct, level) if backend.level_of(ct) > level else ct
            for ct in self.registers[uid]
        ]


@dataclass
class Instruction:
    """Base instruction: placement metadata common to all ops."""

    # Span/phase category (no annotation: class attribute, not a field).
    span_category = "op"

    name: str
    out_uid: int
    exec_level: int
    boots_before: int

    def prepare(self, state: ExecutionState, uids: List[int]) -> List[List]:
        if self.boots_before:
            for uid in uids:
                state.apply_bootstraps(uid)
        return [state.aligned(uid, self.exec_level) for uid in uids]

    def execute(self, state: ExecutionState) -> None:
        raise NotImplementedError


@dataclass
class LinearInstr(Instruction):
    """A packed linear layer (conv / fc / pool / folded bn)."""

    span_category = "linear"

    in_uid: int = 0
    packed: PackedMatVec = None

    def execute(self, state: ExecutionState) -> None:
        backend = state.backend
        with backend.ledger.phase(f"linear/{self.name}"):
            (cts,) = self.prepare(state, [self.in_uid])
            in_scale = backend.scale_of(cts[0])
            q_exec = backend.params.data_primes[self.exec_level]
            pt_scale = Fraction(q_exec) * Fraction(backend.params.scale) / in_scale
            state.set(self.out_uid, self.packed.execute(backend, cts, pt_scale))


def scale_log2(scale) -> float:
    """log2 of a ciphertext scale, exact-arithmetic safe.

    Scales are Fractions whose numerator/denominator can exceed float
    range; going through ``math.log2`` on the integer parts avoids the
    overflow a plain ``float(scale)`` would hit.
    """
    try:
        frac = Fraction(scale)
        if frac <= 0:
            return float("-inf")
        return math.log2(frac.numerator) - math.log2(frac.denominator)
    except (TypeError, ValueError, OverflowError):
        return 0.0


def normalize_scale(backend, ct, target_scale: Fraction):
    """Bring a ciphertext to an exact target scale, spending one level.

    Multiplies by a ones-plaintext at scale target * q_l / s and
    rescales: the output scale is exactly ``target_scale``.  This is how
    activation outputs are pinned back to Delta so the between-layer
    invariant of paper Section 6 holds at residual joins.  (The paper's
    depth-optimal evaluator [11] achieves this without the extra level;
    see EXPERIMENTS.md for the accounting difference.)
    """
    level = backend.level_of(ct)
    if level == 0:
        raise ValueError("no level left for scale normalization")
    q = backend.params.data_primes[level]
    ratio = Fraction(target_scale) * q / backend.scale_of(ct)
    if ratio < 1:
        raise ValueError("scale normalization ratio below one")
    ones = backend.encode(np.ones(backend.slot_count), level, ratio)
    return backend.rescale(backend.mul_plain(ct, ones))


@dataclass
class PolyInstr(Instruction):
    """Elementwise Chebyshev polynomial evaluation (activations).

    ``target_kind`` selects the exact output scale: 'delta' (between-
    layer invariant) or 'prime' (the ReLU sign branch, which targets
    the join level's prime so the x * sign product rescales to Delta).
    """

    span_category = "act"

    in_uid: int = 0
    poly: ChebyshevPoly = None
    target_kind: str = "delta"

    def execute(self, state: ExecutionState) -> None:
        backend = state.backend
        with backend.ledger.phase(f"act/{self.name}"):
            (in_cts,) = self.prepare(state, [self.in_uid])
            outs = []
            for ct in in_cts:
                out = evaluate_chebyshev(backend, ct, self.poly)
                if self.target_kind == "delta":
                    out = normalize_scale(backend, out, Fraction(backend.params.scale))
                outs.append(out)
            state.set(self.out_uid, outs)


@dataclass
class SquareInstr(Instruction):
    """x^2 by direct HMult (depth 1; used by the MNIST networks)."""

    span_category = "act"

    in_uid: int = 0

    def execute(self, state: ExecutionState) -> None:
        backend = state.backend
        with backend.ledger.phase(f"act/{self.name}"):
            (in_cts,) = self.prepare(state, [self.in_uid])
            outs = [backend.rescale(backend.mul(ct, ct)) for ct in in_cts]
            state.set(self.out_uid, outs)


@dataclass
class MultJoinInstr(Instruction):
    """The ReLU join: x * signish(x).

    Depth 2: one level pins the sign branch to the scale q_l of the
    multiply's rescale prime, so the product rescales to exactly Delta
    (restoring the between-layer invariant); the multiply itself spends
    the second level.
    """

    span_category = "act"

    x_uid: int = 0
    sign_uid: int = 0

    def execute(self, state: ExecutionState) -> None:
        backend = state.backend
        with backend.ledger.phase(f"act/{self.name}"):
            x_cts, sign_cts = self.prepare(state, [self.x_uid, self.sign_uid])
            outs = []
            for x_ct, s_ct in zip(x_cts, sign_cts):
                level = backend.level_of(s_ct)
                target = Fraction(backend.params.data_primes[level - 1])
                s_norm = normalize_scale(backend, s_ct, target)
                x_aligned = backend.level_down(x_ct, backend.level_of(s_norm))
                outs.append(backend.rescale(backend.mul(x_aligned, s_norm)))
            state.set(self.out_uid, outs)


@dataclass
class AddJoinInstr(Instruction):
    """Residual addition; both inputs sit at scale Delta by invariant."""

    span_category = "join"

    a_uid: int = 0
    b_uid: int = 0

    def execute(self, state: ExecutionState) -> None:
        backend = state.backend
        with backend.ledger.phase(f"join/{self.name}"):
            a_cts, b_cts = self.prepare(state, [self.a_uid, self.b_uid])
            outs = [backend.add(a, b) for a, b in zip(a_cts, b_cts)]
            state.set(self.out_uid, outs)


@dataclass
class AliasInstr(Instruction):
    """Free layout change (flatten / folded batchnorm placeholder)."""

    span_category = "move"

    in_uid: int = 0

    def execute(self, state: ExecutionState) -> None:
        state.set(self.out_uid, state.get(self.in_uid))


@dataclass
class SliceInstr(Instruction):
    """Take ciphertexts [start, stop) of a stacked register.

    The split that follows a concat-fused linear layer (graph
    optimizer): the fused output stacks every sibling's blocks along the
    ciphertext axis, and each branch resumes from its slice.  Free under
    FHE — no rotation, no level, no noise; the sliced list shares
    ciphertext objects with its source (bootstraps *replace* list
    entries, so sharing is safe).
    """

    span_category = "move"

    in_uid: int = 0
    start: int = 0
    stop: int = 0

    def execute(self, state: ExecutionState) -> None:
        state.set(self.out_uid, list(state.get(self.in_uid)[self.start : self.stop]))


@dataclass
class RotateInstr(Instruction):
    """Cyclic slot rotation of a register (orion.nn.Roll).

    One hoisted Galois key switch per ciphertext; a zero effective step
    is a no-op (the graph optimizer cancels those away, but the
    reference un-optimized path must still execute them safely).
    """

    span_category = "rotate"

    in_uid: int = 0
    steps: int = 0

    def execute(self, state: ExecutionState) -> None:
        backend = state.backend
        with backend.ledger.phase(f"rotate/{self.name}"):
            (cts,) = self.prepare(state, [self.in_uid])
            steps = self.steps % backend.slot_count
            if steps:
                cts = [backend.rotate(ct, steps) for ct in cts]
            state.set(self.out_uid, list(cts))


@dataclass
class FheProgram:
    """A fully compiled network ready to execute on a backend.

    Attributes:
        instructions: execution-ordered instruction list.
        input_uid / output_uid: register ids of network input/output.
        input_layout: packing layout for the input image.
        output_layout: layout holding the final logits.
        input_norm: divide inputs by this before encryption (range
            management; paper Section 6).
        output_denorm: multiply decrypted outputs by this.
        entry_level: level to encrypt the input at.
    """

    instructions: List[Instruction]
    input_uid: int
    output_uid: int
    input_layout: object
    output_layout: object
    input_norm: float
    output_denorm: float
    entry_level: int
    # Batched (slot-replicated) views for serving, keyed by batch size.
    _batched: Dict[int, "FheProgram"] = field(
        default_factory=dict, repr=False, compare=False
    )

    def encrypt_input(self, backend, image: np.ndarray) -> List:
        """Normalize, pack, and encrypt one input at the entry level."""
        vectors = self.input_layout.pack(np.asarray(image) / self.input_norm)
        return [
            backend.encrypt(
                backend.encode(vec, self.entry_level, backend.params.scale)
            )
            for vec in vectors
        ]

    def execute(self, state: ExecutionState, input_cts: List) -> List:
        """Run all instructions over pre-encrypted inputs; returns the
        output register (the state may be a reused, reset worker state)."""
        from repro.obs.tracing import get_tracer

        state.set(self.input_uid, input_cts)
        tracer = get_tracer()
        if not tracer.enabled:
            # The untraced fast path stays a plain loop: one attribute
            # read above is the entire cost of having tracing available.
            for instr in self.instructions:
                instr.execute(state)
            return state.get(self.output_uid)
        self._execute_traced(state, tracer)
        return state.get(self.output_uid)

    def _execute_traced(self, state: ExecutionState, tracer) -> None:
        """Per-instruction spans: op-count deltas from the ledger, plus
        ciphertext level/scale at exit (observe-only)."""
        backend = state.backend
        ledger = backend.ledger
        for instr in self.instructions:
            category = instr.span_category
            with tracer.span(
                f"{category}/{instr.name}",
                category=category,
                ledger=ledger,
                exec_level=instr.exec_level,
                boots_before=instr.boots_before,
            ) as span:
                instr.execute(state)
                out = state.registers.get(instr.out_uid)
                if out:
                    ct = out[0]
                    span.set(
                        level_out=backend.level_of(ct),
                        scale_log2_out=scale_log2(backend.scale_of(ct)),
                        num_cts=len(out),
                    )

    def decrypt_output(self, backend, output_cts: List) -> np.ndarray:
        out_vecs = [backend.decrypt(ct) for ct in output_cts]
        return self.output_layout.unpack(out_vecs) * self.output_denorm

    def run(self, backend, image: np.ndarray) -> np.ndarray:
        """Encrypt, execute, decrypt one input tensor (C, H, W)."""
        state = ExecutionState(backend)
        cts = self.encrypt_input(backend, image)
        outs = self.execute(state, cts)
        return self.decrypt_output(backend, outs)

    # -- serving hooks ------------------------------------------------------
    def required_rotation_steps(self, include_batched: bool = True) -> List[int]:
        """Every rotation step execution can request from the backend —
        the program's key manifest contribution (docs/serving.md).

        With ``include_batched`` (the default) the union also covers
        every power-of-two slot-batched view up to the program's
        capacity — batched Gazelle-hybrid layers relocate wrapped
        scratch rows into extra diagonal offsets, so a server batching
        requests must hold those keys too (no lazy keygen on the
        request path).  Bootstraps are excluded: the oracle refresh
        rotates nothing, and a real pipeline owns its own transform
        keys.
        """
        return sorted(self.required_rotation_step_levels(include_batched))

    def required_rotation_step_levels(
        self, include_batched: bool = True
    ) -> Dict[int, int]:
        """``{step: highest execution level}`` across the program.

        Every rotation a linear layer performs — BSGS babies, folded
        giants, Gazelle fold expansions — key-switches at that layer's
        ``exec_level`` (folds run one level *lower*, after the rescale,
        so ``exec_level`` bounds them too).  The per-step maximum is the
        level bound key generators need to emit *compressed* switching
        keys (:class:`repro.ckks.keys.SwitchingKey`): only the digits
        and limbs any key switch at ``level <= bound`` consumes.
        """
        levels: Dict[int, int] = {}

        def visit(program):
            slots = program.input_layout.slots
            for instr in program.instructions:
                if isinstance(instr, LinearInstr):
                    for step in instr.packed.required_rotation_steps():
                        levels[step] = max(
                            levels.get(step, -1), instr.exec_level
                        )
                elif isinstance(instr, RotateInstr):
                    step = instr.steps % slots
                    if step:
                        levels[step] = max(levels.get(step, -1), instr.exec_level)

        visit(self)
        if include_batched:
            batch = 2
            while batch <= self.slot_batch_capacity():
                visit(self.batched(batch))
                batch *= 2
        return levels

    def slot_batch_capacity(self) -> int:
        """Largest power-of-two client count one ciphertext can carry.

        The batched view places each client in a block of n/B slots, so
        every register's layout must be single-ciphertext and fit one
        block.  Returns 1 when the program cannot batch (multi-
        ciphertext registers or a full ciphertext already).
        """
        from repro.utils.intmath import next_power_of_two

        slots = self.input_layout.slots
        occupied = [self.input_layout]
        occupied += [
            instr.packed.out_layout
            for instr in self.instructions
            if isinstance(instr, LinearInstr)
        ]
        if any(layout.num_ciphertexts != 1 for layout in occupied):
            return 1
        # A slot rotation crosses client-block boundaries, so rotated
        # programs cannot slot-batch (each client would read a
        # neighbor's slots).
        if any(isinstance(instr, RotateInstr) for instr in self.instructions):
            return 1
        required = max(layout.total_slots for layout in occupied)
        return max(1, slots // next_power_of_two(required))

    def batched(self, batch: int) -> "FheProgram":
        """The same network over ``batch`` clients packed into one
        ciphertext (cross-request SIMD slot batching; docs/serving.md).

        Linear layers swap in their block-replicated views; elementwise
        activations and joins are batch-transparent.  ``run`` on the
        returned program takes a stacked ``(batch, C, H, W)`` input and
        returns stacked per-client outputs.  Views are cached, so the
        weight-plaintext caches inside the batched layers persist across
        requests just like the single-shot ones.
        """
        if batch == 1:
            return self
        cached = self._batched.get(batch)
        if cached is not None:
            return cached
        capacity = self.slot_batch_capacity()
        if batch > capacity:
            raise ValueError(
                f"batch {batch} exceeds this program's slot capacity {capacity}"
            )
        slots = self.input_layout.slots
        instructions = []
        for instr in self.instructions:
            if isinstance(instr, LinearInstr):
                instructions.append(
                    replace(instr, packed=instr.packed.batched(batch))
                )
            else:
                instructions.append(replace(instr))
        view = FheProgram(
            instructions=instructions,
            input_uid=self.input_uid,
            output_uid=self.output_uid,
            input_layout=BlockReplicatedLayout(self.input_layout, batch, slots),
            output_layout=BlockReplicatedLayout(self.output_layout, batch, slots),
            input_norm=self.input_norm,
            output_denorm=self.output_denorm,
            entry_level=self.entry_level,
        )
        self._batched[batch] = view
        return view

    # -- artifact serialization (docs/serving.md) ----------------------------
    def to_payload(self, store) -> Dict:
        """JSON-safe structure for the artifact store.

        ``store(array) -> ref`` registers numpy payloads (diagonal
        tables, biases) with the artifact's array registry; everything
        else — uids, levels, Chebyshev coefficients, layouts — is plain
        JSON, so the format is inspectable and versionable.
        """
        instrs = []
        for instr in self.instructions:
            entry = {
                "name": instr.name,
                "out_uid": instr.out_uid,
                "exec_level": instr.exec_level,
                "boots_before": instr.boots_before,
            }
            if isinstance(instr, LinearInstr):
                entry["kind"] = "linear"
                entry["in_uid"] = instr.in_uid
                entry["packed"] = instr.packed.to_payload(store)
            elif isinstance(instr, PolyInstr):
                entry["kind"] = "poly"
                entry["in_uid"] = instr.in_uid
                entry["coeffs"] = list(instr.poly.coeffs)
                entry["target_kind"] = instr.target_kind
            elif isinstance(instr, SquareInstr):
                entry["kind"] = "square"
                entry["in_uid"] = instr.in_uid
            elif isinstance(instr, MultJoinInstr):
                entry["kind"] = "multjoin"
                entry["x_uid"] = instr.x_uid
                entry["sign_uid"] = instr.sign_uid
            elif isinstance(instr, AddJoinInstr):
                entry["kind"] = "addjoin"
                entry["a_uid"] = instr.a_uid
                entry["b_uid"] = instr.b_uid
            elif isinstance(instr, AliasInstr):
                entry["kind"] = "alias"
                entry["in_uid"] = instr.in_uid
            elif isinstance(instr, SliceInstr):
                entry["kind"] = "slice"
                entry["in_uid"] = instr.in_uid
                entry["start"] = instr.start
                entry["stop"] = instr.stop
            elif isinstance(instr, RotateInstr):
                entry["kind"] = "rotate"
                entry["in_uid"] = instr.in_uid
                entry["steps"] = instr.steps
            else:
                raise TypeError(
                    f"cannot serialize instruction {type(instr).__name__}"
                )
            instrs.append(entry)
        return {
            "input_uid": self.input_uid,
            "output_uid": self.output_uid,
            "entry_level": self.entry_level,
            "input_norm": self.input_norm,
            "output_denorm": self.output_denorm,
            "input_layout": layout_payload(self.input_layout),
            "output_layout": layout_payload(self.output_layout),
            "instructions": instrs,
        }

    @classmethod
    def from_payload(cls, payload: Dict, fetch) -> "FheProgram":
        """Rebuild a program saved by :meth:`to_payload` (bit-exact:
        float norms round-trip through JSON's repr, arrays through the
        artifact's npz registry)."""
        instructions: List[Instruction] = []
        for entry in payload["instructions"]:
            kind = entry["kind"]
            common = dict(
                name=entry["name"],
                out_uid=entry["out_uid"],
                exec_level=entry["exec_level"],
                boots_before=entry["boots_before"],
            )
            if kind == "linear":
                instructions.append(
                    LinearInstr(
                        in_uid=entry["in_uid"],
                        packed=PackedMatVec.from_payload(entry["packed"], fetch),
                        **common,
                    )
                )
            elif kind == "poly":
                instructions.append(
                    PolyInstr(
                        in_uid=entry["in_uid"],
                        poly=ChebyshevPoly(tuple(entry["coeffs"])),
                        target_kind=entry["target_kind"],
                        **common,
                    )
                )
            elif kind == "square":
                instructions.append(SquareInstr(in_uid=entry["in_uid"], **common))
            elif kind == "multjoin":
                instructions.append(
                    MultJoinInstr(
                        x_uid=entry["x_uid"], sign_uid=entry["sign_uid"], **common
                    )
                )
            elif kind == "addjoin":
                instructions.append(
                    AddJoinInstr(a_uid=entry["a_uid"], b_uid=entry["b_uid"], **common)
                )
            elif kind == "alias":
                instructions.append(AliasInstr(in_uid=entry["in_uid"], **common))
            elif kind == "slice":
                instructions.append(
                    SliceInstr(
                        in_uid=entry["in_uid"],
                        start=entry["start"],
                        stop=entry["stop"],
                        **common,
                    )
                )
            elif kind == "rotate":
                instructions.append(
                    RotateInstr(in_uid=entry["in_uid"], steps=entry["steps"], **common)
                )
            else:
                raise ValueError(f"unknown instruction kind {kind!r}")
        return cls(
            instructions=instructions,
            input_uid=payload["input_uid"],
            output_uid=payload["output_uid"],
            input_layout=layout_from_payload(payload["input_layout"]),
            output_layout=layout_from_payload(payload["output_layout"]),
            input_norm=payload["input_norm"],
            output_denorm=payload["output_denorm"],
            entry_level=payload["entry_level"],
        )

    def run_cleartext_packed(self, image: np.ndarray) -> np.ndarray:
        """Reference: run the packed linear algebra without encryption.

        Executes the same compiled program over plain slot vectors
        (exact polynomial activations included), isolating packing
        correctness from CKKS noise.
        """
        values: Dict[int, List[np.ndarray]] = {}
        values[self.input_uid] = self.input_layout.pack(
            np.asarray(image) / self.input_norm
        )
        for instr in self.instructions:
            if isinstance(instr, LinearInstr):
                values[instr.out_uid] = instr.packed.execute_cleartext(
                    values[instr.in_uid]
                )
            elif isinstance(instr, PolyInstr):
                values[instr.out_uid] = [
                    instr.poly(vec) for vec in values[instr.in_uid]
                ]
            elif isinstance(instr, SquareInstr):
                values[instr.out_uid] = [v * v for v in values[instr.in_uid]]
            elif isinstance(instr, MultJoinInstr):
                values[instr.out_uid] = [
                    x * s
                    for x, s in zip(values[instr.x_uid], values[instr.sign_uid])
                ]
            elif isinstance(instr, AddJoinInstr):
                values[instr.out_uid] = [
                    a + b for a, b in zip(values[instr.a_uid], values[instr.b_uid])
                ]
            elif isinstance(instr, AliasInstr):
                values[instr.out_uid] = values[instr.in_uid]
            elif isinstance(instr, SliceInstr):
                values[instr.out_uid] = list(
                    values[instr.in_uid][instr.start : instr.stop]
                )
            elif isinstance(instr, RotateInstr):
                slots = self.input_layout.slots
                steps = instr.steps % slots
                values[instr.out_uid] = [
                    np.roll(vec, -steps) if steps else vec
                    for vec in values[instr.in_uid]
                ]
        out = values[self.output_uid]
        return self.output_layout.unpack(out) * self.output_denorm
