"""Range estimation (paper Section 6, ``net.fit()``).

High-precision bootstrapping and Chebyshev evaluation require values in
[-1, 1].  Orion runs the calibration set through the cleartext network,
records the largest magnitude seen at every inter-layer value, and
derives per-value normalization constants M so that the packed network
always carries values / M.  The scale-downs are *fused* into linear
layer weights (w' = w * M_in / M_out) and into activation fits
(g(u) = act(M_in * u) / M_out) — no extra multiplicative level.

Joins constrain their operands to share one constant (both addends must
be normalized identically), so constants propagate through Add and
layout-only nodes by union-find before the final maxima are taken.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.trace.graph import LayerGraph, TracedValue, tracer


class _UnionFind:
    def __init__(self):
        self.parent: Dict[int, int] = {}

    def find(self, x: int) -> int:
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


class RangeEstimate:
    """Per-value normalization constants keyed by trace uid."""

    def __init__(self, norms: Dict[int, float], margin: float):
        self._norms = norms
        self.margin = margin

    def norm(self, uid: int) -> float:
        return self._norms.get(uid, 1.0)


def estimate_ranges(
    net,
    graph: LayerGraph,
    calibration_batches: Iterable[np.ndarray],
    margin: float = 1.5,
) -> RangeEstimate:
    """Compute normalization constants from calibration data.

    Args:
        net: the orion network (eval mode recommended).
        graph: a trace of the network (provides the join structure).
        calibration_batches: iterable of input arrays (B, C, H, W).
        margin: safety factor on observed maxima (unseen data may
            slightly exceed the calibration range).
    """
    maxima: Dict[int, float] = {}
    with no_grad():
        for batch in calibration_batches:
            with tracer() as run:
                value = TracedValue(Tensor(np.asarray(batch)), run.input_uid)
                net(value)
            peak_in = float(np.max(np.abs(np.asarray(batch))))
            maxima[graph.input_uid] = max(maxima.get(graph.input_uid, 0.0), peak_in)
            if len(run.nodes) != len(graph.nodes):
                raise ValueError("calibration trace does not match the graph")
            for node, ref_node in zip(run.nodes, graph.nodes):
                # Traces of the same net line up node-for-node.
                maxima[ref_node.output] = max(
                    maxima.get(ref_node.output, 0.0), node.output_max_abs
                )

    # Join constraints: Add inputs/outputs and layout-only nodes share M.
    groups = _UnionFind()
    for node in graph.nodes:
        kind = getattr(node.module, "orion_kind", None)
        if kind == "add":
            groups.union(node.inputs[0], node.inputs[1])
            groups.union(node.inputs[0], node.output)
        elif kind in ("reshape",):
            groups.union(node.inputs[0], node.output)

    group_max: Dict[int, float] = {}
    for uid, peak in maxima.items():
        root = groups.find(uid)
        group_max[root] = max(group_max.get(root, 0.0), peak)

    norms = {}
    for uid in list(maxima) + [graph.input_uid]:
        peak = group_max[groups.find(uid)]
        norms[uid] = max(peak * margin, 1e-6)
    return RangeEstimate(norms, margin)
