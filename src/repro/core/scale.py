"""Scale-management policies (paper Section 6, Figure 7).

Orion's *errorless* policy encodes each linear layer's weights at the
scale q_j of the level the layer executes at, so the rescale after the
layer lands the ciphertext scale back on exactly Delta.  The baseline
is EVA's waterline policy [21]: encode everything at Delta and rescale
whenever the scale exceeds a waterline — simple, but the scale drifts
multiplicatively (Delta^2 / q_j != Delta) and decoded values inherit
the drift as error unless the runtime tracks it exactly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Tuple

import numpy as np


class ErrorlessScalePolicy:
    """Weight plaintexts at q_level * Delta / input_scale (Figure 7)."""

    name = "errorless"

    def plaintext_scale(self, backend, level: int, input_scale: Fraction) -> Fraction:
        q = backend.params.data_primes[level]
        return Fraction(q) * Fraction(backend.params.scale) / input_scale


class WaterlineScalePolicy:
    """EVA-style: always encode at Delta; the post-rescale scale drifts."""

    name = "waterline"

    def plaintext_scale(self, backend, level: int, input_scale: Fraction) -> Fraction:
        return Fraction(backend.params.scale)


def run_pmult_chain(
    backend, values: np.ndarray, weights: List[np.ndarray], policy
) -> Tuple[np.ndarray, Fraction]:
    """Multiply a ciphertext through a chain of plaintext vectors.

    Decodes *assuming* the scale is Delta at the end — which is exactly
    what a runtime that does not track drifting scales would do — so
    the waterline policy's scale drift shows up as value error while
    the errorless policy stays exact.

    Returns:
        (decoded values, final exact scale).
    """
    ct = backend.encode_encrypt(values)
    for w in weights:
        level = backend.level_of(ct)
        pt_scale = policy.plaintext_scale(backend, level, backend.scale_of(ct))
        pt = backend.encode(w, level, pt_scale)
        ct = backend.rescale(backend.mul_plain(ct, pt))
    final_scale = backend.scale_of(ct)
    decoded = backend.decrypt(ct)
    # A Delta-assuming runtime mis-scales the result by scale/Delta.
    drift = float(final_scale / Fraction(backend.params.scale))
    return decoded * drift, final_scale
