"""Synthetic dataset generators (offline stand-ins for the paper's data).

See DESIGN.md Section 1: the real MNIST/CIFAR/ImageNet/PASCAL-VOC files
are unavailable offline, so seeded generators produce datasets of the
same shapes with learnable class structure.  The reproducible quantity
in the paper's evaluation — agreement between FHE and cleartext outputs
(accuracy deltas, precision in bits) — is dataset-agnostic.
"""

from repro.datasets.synthetic import (
    DataLoader,
    SyntheticClassification,
    SyntheticDetection,
    cifar_like,
    imagenet_like,
    mnist_like,
    tiny_imagenet_like,
    voc_like,
)

__all__ = [
    "DataLoader",
    "SyntheticClassification",
    "SyntheticDetection",
    "mnist_like",
    "cifar_like",
    "tiny_imagenet_like",
    "imagenet_like",
    "voc_like",
]
