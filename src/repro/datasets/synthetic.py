"""Seeded synthetic image datasets with learnable class structure.

Each class is defined by a smooth per-class template (random low
frequency pattern) plus instance-level geometric jitter and pixel
noise, which gives small CNNs a realistic learning problem: classes
overlap, augmentation-style variation exists, and accuracy improves
smoothly with training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np


def _lowpass_template(rng, channels: int, height: int, width: int) -> np.ndarray:
    """A smooth random pattern built from a few 2D cosine modes."""
    ys, xs = np.mgrid[0:height, 0:width]
    out = np.zeros((channels, height, width))
    for c in range(channels):
        for _ in range(4):
            fy, fx = rng.uniform(0.5, 3.0, 2)
            phase_y, phase_x = rng.uniform(0, 2 * np.pi, 2)
            amp = rng.uniform(0.4, 1.0)
            out[c] += amp * np.cos(2 * np.pi * fy * ys / height + phase_y) * np.cos(
                2 * np.pi * fx * xs / width + phase_x
            )
    return out / np.abs(out).max()


@dataclass
class SyntheticClassification:
    """A fixed-size synthetic classification dataset.

    Attributes:
        images: float array (num_samples, C, H, W) in roughly [-1, 1].
        labels: int array (num_samples,).
        num_classes: label cardinality.
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __len__(self) -> int:
        return len(self.labels)

    def split(self, train_fraction: float = 0.8):
        cut = int(len(self) * train_fraction)
        train = SyntheticClassification(
            self.images[:cut], self.labels[:cut], self.num_classes
        )
        test = SyntheticClassification(
            self.images[cut:], self.labels[cut:], self.num_classes
        )
        return train, test


def _make_classification(
    shape: Tuple[int, int, int],
    num_classes: int,
    num_samples: int,
    seed: int,
    noise: float = 0.35,
) -> SyntheticClassification:
    channels, height, width = shape
    rng = np.random.default_rng(seed)
    templates = np.stack(
        [_lowpass_template(rng, channels, height, width) for _ in range(num_classes)]
    )
    labels = rng.integers(0, num_classes, num_samples)
    images = np.empty((num_samples, channels, height, width))
    for i, label in enumerate(labels):
        img = templates[label].copy()
        # Instance jitter: random cyclic shift plus amplitude scaling.
        shift_y = int(rng.integers(-height // 8, height // 8 + 1))
        shift_x = int(rng.integers(-width // 8, width // 8 + 1))
        img = np.roll(img, (shift_y, shift_x), axis=(1, 2))
        img *= rng.uniform(0.7, 1.3)
        img += rng.normal(0.0, noise, img.shape)
        images[i] = img
    images = np.clip(images, -2.0, 2.0) * 0.5
    return SyntheticClassification(images, labels, num_classes)


def mnist_like(num_samples: int = 512, seed: int = 0) -> SyntheticClassification:
    """28x28x1, 10 classes (stands in for MNIST [50])."""
    return _make_classification((1, 28, 28), 10, num_samples, seed)


def cifar_like(num_samples: int = 512, seed: int = 1) -> SyntheticClassification:
    """32x32x3, 10 classes (stands in for CIFAR-10 [47])."""
    return _make_classification((3, 32, 32), 10, num_samples, seed)


def tiny_imagenet_like(num_samples: int = 256, seed: int = 2) -> SyntheticClassification:
    """64x64x3, 20 classes (stands in for Tiny ImageNet [49])."""
    return _make_classification((3, 64, 64), 20, num_samples, seed)


def imagenet_like(num_samples: int = 32, seed: int = 3) -> SyntheticClassification:
    """224x224x3, 20 classes (stands in for ImageNet-1k [23])."""
    return _make_classification((3, 224, 224), 20, num_samples, seed)


@dataclass
class SyntheticDetection:
    """Detection dataset: images + per-image box/class annotations.

    Boxes are (class_id, cx, cy, w, h) in normalized [0, 1] coordinates,
    matching the YOLO-v1 target convention (paper Section 8.6).
    """

    images: np.ndarray
    annotations: list

    def __len__(self) -> int:
        return len(self.images)


def voc_like(
    num_samples: int = 32,
    image_size: int = 448,
    num_classes: int = 20,
    max_objects: int = 3,
    seed: int = 4,
) -> SyntheticDetection:
    """448x448x3 detection scenes (stands in for PASCAL-VOC [26]).

    Each scene contains 1..max_objects bright square "objects" whose
    texture encodes the class, on a smooth background.
    """
    rng = np.random.default_rng(seed)
    class_textures = [
        _lowpass_template(rng, 3, 32, 32) for _ in range(num_classes)
    ]
    images = np.empty((num_samples, 3, image_size, image_size))
    annotations = []
    for i in range(num_samples):
        background = _lowpass_template(rng, 3, image_size, image_size) * 0.2
        boxes = []
        for _ in range(int(rng.integers(1, max_objects + 1))):
            cls = int(rng.integers(0, num_classes))
            side = int(rng.integers(image_size // 8, image_size // 3))
            cx = rng.uniform(0.2, 0.8)
            cy = rng.uniform(0.2, 0.8)
            x0 = int(cx * image_size - side / 2)
            y0 = int(cy * image_size - side / 2)
            x0 = max(0, min(image_size - side, x0))
            y0 = max(0, min(image_size - side, y0))
            texture = class_textures[cls]
            reps = (side // 32 + 1, side // 32 + 1)
            tile = np.tile(texture, (1,) + reps)[:, :side, :side]
            background[:, y0 : y0 + side, x0 : x0 + side] = tile
            boxes.append(
                (
                    cls,
                    (x0 + side / 2) / image_size,
                    (y0 + side / 2) / image_size,
                    side / image_size,
                    side / image_size,
                )
            )
        images[i] = background
        annotations.append(boxes)
    return SyntheticDetection(images * 0.5, annotations)


class DataLoader:
    """Minimal shuffling batch iterator over a classification dataset."""

    def __init__(
        self,
        dataset: SyntheticClassification,
        batch_size: int = 32,
        shuffle: bool = True,
        seed: int = 0,
    ):
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = np.random.default_rng(seed)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset.images[idx], self.dataset.labels[idx]

    def __len__(self) -> int:
        return (len(self.dataset) + self.batch_size - 1) // self.batch_size
