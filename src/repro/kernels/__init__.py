"""Runtime-dispatched hot-path kernels (stacked inner products, NTT stages).

See :mod:`repro.kernels.dispatch` for the registry/selection contract and
:mod:`repro.kernels.ops` for the kernel implementations.  ``docs/kernels.md``
documents how to add a backend.
"""

from repro.kernels.dispatch import (
    BACKEND_NAMES,
    ENV_VAR,
    KernelDispatchError,
    KernelRegistry,
    active_backend,
    drain_dispatch_counts,
    enable_dispatch_counts,
    get,
    numba_available,
    registry,
    select_backend,
)
from repro.kernels.ops import lazy_reduction_chunk

__all__ = [
    "BACKEND_NAMES",
    "ENV_VAR",
    "KernelDispatchError",
    "KernelRegistry",
    "active_backend",
    "drain_dispatch_counts",
    "enable_dispatch_counts",
    "get",
    "lazy_reduction_chunk",
    "numba_available",
    "registry",
    "select_backend",
]
