"""Runtime kernel-dispatch registry.

The hot-path inner loops — NTT butterfly stages, Galois gathers of the
key-switch digit tensor, and the stacked key-switch inner products —
are factored behind this registry as *named kernels*, each with one or
more interchangeable *backend* implementations:

- ``numpy``   — the pure-numpy reference.  Always present; the
  correctness baseline every other backend is tested against.
- ``threaded``— slab-parallel numpy via a shared
  :class:`~concurrent.futures.ThreadPoolExecutor` (numpy releases the
  GIL inside its ufunc loops, so limb-slab threads genuinely overlap).
- ``numba``   — optional JIT-compiled loops; only selectable when numba
  imports.

Selection mirrors ISA-dispatched CPU kernels (pick the implementation
per machine capability, keep the algorithm fixed): a capability probe
(``os.cpu_count()``, numba importability) chooses the default, the
``REPRO_KERNELS`` environment variable or :func:`select_backend`
overrides it, and the resolved name is surfaced through
``OpLedger.snapshot()`` / serve telemetry so a run always records which
kernels produced it.  Every backend of every kernel is bit-exact with
the reference — dispatch changes wall-clock, never results.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Callable, Dict, Optional, Tuple

ENV_VAR = "REPRO_KERNELS"

#: Probe / selection order.  "auto" resolves via :meth:`KernelRegistry.probe`.
BACKEND_NAMES = ("numpy", "threaded", "numba")


class KernelDispatchError(RuntimeError):
    """Unknown kernel or unavailable/unselectable backend."""


def numba_available() -> bool:
    """Capability probe: can the optional numba backend be imported?"""
    return importlib.util.find_spec("numba") is not None


class KernelRegistry:
    """Named kernels with runtime-selectable backend implementations.

    One process-global instance (:data:`registry`) is shared by every
    context/backend; tests may instantiate private registries.

    Selection precedence (first match wins):

    1. :meth:`select` — the API override (``None`` clears it);
    2. ``REPRO_KERNELS`` environment variable (re-read whenever it
       changes, so a test may monkeypatch it mid-process);
    3. the capability probe: ``threaded`` when ``os.cpu_count() > 1``,
       else ``numpy``.  The probe never auto-selects ``numba`` — JIT
       warm-up dominates at toy ring sizes, so the compiled path is a
       deliberate opt-in even where it imports.

    A kernel missing an implementation for the selected backend falls
    back to its ``numpy`` reference (so registering a threaded variant
    for *one* kernel never forces threading everywhere).
    """

    def __init__(self):
        self._impls: Dict[str, Dict[str, Callable]] = {}
        self._override: Optional[str] = None
        # (env value at resolve time, resolved backend) — invalidated
        # whenever the env var changes or select() is called.
        self._resolved: Optional[Tuple[Optional[str], str]] = None
        # Per-kernel dispatch counts, opt-in (observability): counting
        # on every get() would put a dict update on the hottest call
        # site in the repo, so it stays off unless telemetry asks.
        self.count_dispatch = False
        self.dispatch_counts: Dict[str, int] = {}

    # -- registration ------------------------------------------------------
    def register(self, kernel: str, backend: str, fn: Optional[Callable] = None):
        """Register ``fn`` as the ``backend`` implementation of ``kernel``.

        Usable directly or as a decorator::

            @registry.register("ks_inner", "numpy")
            def _ks_inner_numpy(...): ...
        """
        if backend not in BACKEND_NAMES:
            raise KernelDispatchError(
                f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}"
            )

        def _add(impl: Callable) -> Callable:
            self._impls.setdefault(kernel, {})[backend] = impl
            return impl

        return _add if fn is None else _add(fn)

    def kernels(self) -> Tuple[str, ...]:
        return tuple(sorted(self._impls))

    def backends_for(self, kernel: str) -> Tuple[str, ...]:
        impls = self._impls.get(kernel)
        if impls is None:
            raise KernelDispatchError(f"unknown kernel {kernel!r}")
        return tuple(name for name in BACKEND_NAMES if name in impls)

    # -- selection ---------------------------------------------------------
    def available_backends(self) -> Tuple[str, ...]:
        """Backends selectable on this machine (capability-gated)."""
        names = ["numpy", "threaded"]
        if numba_available():
            names.append("numba")
        return tuple(names)

    def probe(self) -> str:
        """Capability-probed default backend for this machine."""
        cpus = os.cpu_count() or 1
        return "threaded" if cpus > 1 else "numpy"

    def select(self, backend: Optional[str]) -> str:
        """API override of the active backend (``None`` restores auto).

        Returns the backend now active.  Selecting an unavailable
        backend (e.g. ``numba`` without numba installed) fails loudly
        here, not deep inside a kernel call.
        """
        if backend is not None:
            self._check_selectable(backend)
        self._override = backend
        self._resolved = None
        return self.active

    def _check_selectable(self, backend: str) -> None:
        if backend == "auto":
            return
        if backend not in BACKEND_NAMES:
            raise KernelDispatchError(
                f"unknown kernel backend {backend!r}; expected one of "
                f"{BACKEND_NAMES + ('auto',)}"
            )
        if backend not in self.available_backends():
            raise KernelDispatchError(
                f"kernel backend {backend!r} is not available on this "
                "machine (is numba installed?)"
            )

    @property
    def active(self) -> str:
        """The backend name dispatch currently resolves to."""
        env = os.environ.get(ENV_VAR)
        if self._resolved is not None and self._resolved[0] == env:
            return self._resolved[1]
        if self._override is not None:
            name = self._override
        elif env:
            self._check_selectable(env)
            name = self.probe() if env == "auto" else env
        else:
            name = self.probe()
        self._resolved = (env, name)
        return name

    # -- dispatch ----------------------------------------------------------
    def get(self, kernel: str) -> Callable:
        """The ``kernel`` implementation for the active backend.

        Falls back to the ``numpy`` reference when the active backend
        has no implementation of this kernel.
        """
        impls = self._impls.get(kernel)
        if impls is None:
            raise KernelDispatchError(f"unknown kernel {kernel!r}")
        if self.count_dispatch:
            self.dispatch_counts[kernel] = (
                self.dispatch_counts.get(kernel, 0) + 1
            )
        fn = impls.get(self.active)
        if fn is None:
            fn = impls.get("numpy")
            if fn is None:
                raise KernelDispatchError(
                    f"kernel {kernel!r} has no numpy reference implementation"
                )
        return fn

    # -- dispatch counting (observability, opt-in) -------------------------
    def enable_dispatch_counts(self, enabled: bool = True) -> None:
        self.count_dispatch = enabled

    def drain_dispatch_counts(self) -> Dict[str, int]:
        """Return and clear the per-kernel dispatch counts."""
        counts = self.dispatch_counts
        self.dispatch_counts = {}
        return counts


#: The process-global registry every hot path dispatches through.
registry = KernelRegistry()


def get(kernel: str) -> Callable:
    """Shorthand for ``registry.get(kernel)`` (the hot-path entry)."""
    return registry.get(kernel)


def active_backend() -> str:
    """The globally active kernel backend name (telemetry hook)."""
    return registry.active


def select_backend(backend: Optional[str]) -> str:
    """Override the globally active backend (``None`` restores auto)."""
    return registry.select(backend)


def enable_dispatch_counts(enabled: bool = True) -> None:
    """Toggle per-kernel dispatch counting on the global registry."""
    registry.enable_dispatch_counts(enabled)


def drain_dispatch_counts() -> Dict[str, int]:
    """Return and clear the global registry's dispatch counts."""
    return registry.drain_dispatch_counts()
