"""Kernel implementations: stacked inner products, Galois gathers, NTT stages.

Every kernel is registered with the process-global
:data:`repro.kernels.dispatch.registry` under up to three backends
(``numpy`` reference, ``threaded`` limb-slab parallel, optional
``numba``).  All backends are bit-exact with the reference: results are
exact int64 modular arithmetic, so implementation choice can never
change a ciphertext.

Shared here too: :func:`lazy_reduction_chunk`, the single
correctly-headroomed bound on how many ``< max_q`` residue products an
int64 lazy accumulator absorbs between ``%`` passes.  Both the
key-switch inner products and the fused-matvec accumulation previously
computed their own (inconsistent) bounds; this helper is the one source
of truth.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

import numpy as np

from repro.kernels.dispatch import registry

_INT64_MAX = 2**63 - 1


# ---------------------------------------------------------------------------
# Shared lazy-accumulator bound
# ---------------------------------------------------------------------------
def lazy_reduction_chunk(max_q: int, max_chunk: Optional[int] = None) -> int:
    """How many ``< max_q`` residue products fit one int64 lazy pass.

    The accumulator may already hold a *reduced* value (``<= max_q - 1``
    left over from the previous ``%`` pass), so the bound reserves that
    headroom::

        (max_q - 1) + chunk * (max_q - 1)**2  <=  2**63 - 1

    This is the conservative form: it is also safe for a fresh (zero)
    accumulator, so every lazy int64 accumulation in the codebase uses
    this one helper.  ``max_chunk`` caps the result (tests force the
    chunked fallback that real parameter sets only hit with ~31-bit
    primes).  Raises when even a single product overflows — the exact
    backend needs < 32-bit primes.
    """
    chunk = (_INT64_MAX - (max_q - 1)) // ((max_q - 1) ** 2)
    if chunk < 1:
        raise ValueError(
            f"key-switch primes near 2^{max_q.bit_length()} overflow the "
            "int64 lazy accumulator; the exact backend needs < 32-bit primes"
        )
    if max_chunk is not None:
        chunk = min(chunk, int(max_chunk))
        if chunk < 1:
            raise ValueError("max_chunk must be at least 1")
    return chunk


# ---------------------------------------------------------------------------
# Threading support
# ---------------------------------------------------------------------------
_EXECUTOR: Optional[ThreadPoolExecutor] = None


def _executor() -> ThreadPoolExecutor:
    """Shared slab executor (numpy releases the GIL inside ufunc loops).

    At least two workers even on a single-core machine, so the threaded
    backend is *exercised* (correctness-tested) everywhere even where it
    cannot win wall-clock.
    """
    global _EXECUTOR
    if _EXECUTOR is None:
        workers = max(2, os.cpu_count() or 1)
        _EXECUTOR = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-kernel"
        )
    return _EXECUTOR


def _slab_bounds(size: int, slabs: int) -> List[tuple]:
    slabs = max(1, min(slabs, size))
    step = -(-size // slabs)
    return [(lo, min(lo + step, size)) for lo in range(0, size, step)]


def _run_slabs(tasks) -> None:
    pool = _executor()
    for future in [pool.submit(fn, *args) for fn, *args in tasks]:
        future.result()


# ---------------------------------------------------------------------------
# ks_inner: (stacked) key-switch inner products
# ---------------------------------------------------------------------------
def _product_sum(factors, pairs, out) -> None:
    """``out[..., c, k, n] = sum_d factors[..., d, k, n] * pairs[..., c, d, k, n]``.

    Einsum contracts the digit axis without materializing the full
    ``(..., C, D, K, N)`` product tensor (the memory traffic of which
    dominates at large rings); integer sums are exact, so the result is
    bit-identical to the materialize-then-sum form for any order.
    """
    if factors.ndim == 3 and pairs.ndim == 4:
        np.einsum("dkn,cdkn->ckn", factors, pairs, out=out)
    elif factors.ndim == 3 and pairs.ndim == 5:
        # One shared digit tensor against a stack of key tensors (the
        # hoisted-rotation hot path: digits stay cache-resident while
        # the offset axis streams).
        np.einsum("dkn,ocdkn->ockn", factors, pairs, out=out)
    elif factors.ndim == 4 and pairs.ndim == 5 and factors.shape[0] == pairs.shape[0]:
        np.einsum("odkn,ocdkn->ockn", factors, pairs, out=out)
    else:
        np.sum(np.expand_dims(factors, -4) * pairs, axis=-3, out=out)


def _ks_inner_into(out, factors, pairs, mod_col, chunk) -> None:
    """Chunked product-sum over the digit axis, into ``out``.

    ``factors``: ``(..., D, K, N)``; ``pairs``: ``(..., C, D, K, N)``;
    ``out``: the broadcast result shape minus the D axis.  Summation is
    lazy int64: ``chunk`` products are summed exactly, reduced once, and
    accumulated; a final ``%`` renormalizes.  The result is the exact
    modular sum for any chunking, so every backend (and any chunk cap)
    is bit-identical.
    """
    num_digits = pairs.shape[-3]
    if num_digits <= chunk:
        _product_sum(factors, pairs, out)
        out %= mod_col
        return
    out[...] = 0
    part = np.empty_like(out)
    for start in range(0, num_digits, chunk):
        _product_sum(
            factors[..., start : start + chunk, :, :],
            pairs[..., start : start + chunk, :, :],
            part,
        )
        part %= mod_col
        out += part
    out %= mod_col


def _ks_inner_shape(factors, pairs):
    lead = np.broadcast_shapes(factors.shape[:-3], pairs.shape[:-4])
    return lead + (pairs.shape[-4],) + pairs.shape[-2:]


@registry.register("ks_inner", "numpy")
def ks_inner_numpy(factors, pairs, mod_col, chunk):
    """``sum_d factors[..., d] * pairs[..., c, d] mod mod_col``.

    ``factors``: int64 ``(..., D, K, N)`` (e.g. permuted digit tensors,
    one row per offset — or lifted weight plaintexts, one per term);
    ``pairs``: int64 ``(..., C, D, K, N)`` (e.g. ``C = 2`` switching-key
    halves); ``mod_col``: ``(K, 1)`` moduli column; ``chunk``: from
    :func:`lazy_reduction_chunk`.  Returns ``(..., C, K, N)``.
    """
    out = np.empty(_ks_inner_shape(factors, pairs), dtype=np.int64)
    _ks_inner_into(out, factors, pairs, mod_col, chunk)
    return out


@registry.register("ks_inner", "threaded")
def ks_inner_threaded(factors, pairs, mod_col, chunk):
    """Limb-slab threaded ks_inner (bit-exact with the reference)."""
    num_limbs = pairs.shape[-2]
    bounds = _slab_bounds(num_limbs, os.cpu_count() or 1)
    if len(bounds) < 2:
        bounds = _slab_bounds(num_limbs, 2)
    out = np.empty(_ks_inner_shape(factors, pairs), dtype=np.int64)
    if len(bounds) < 2:
        _ks_inner_into(out, factors, pairs, mod_col, chunk)
        return out
    _run_slabs(
        (
            _ks_inner_into,
            out[..., lo:hi, :],
            factors[..., lo:hi, :],
            pairs[..., lo:hi, :],
            mod_col[lo:hi],
            chunk,
        )
        for lo, hi in bounds
    )
    return out


# ---------------------------------------------------------------------------
# ks_inner_stacked: one shared digit tensor against a stack of keys
# ---------------------------------------------------------------------------
def _ks_inner_stacked_into(out, digits, keys, mod_col, chunk) -> None:
    """Chunked stacked product-sum into ``out`` (``(C, K, O, N)``).

    ``digits``: ``(D, K, N)`` shared digit tensor; ``keys``: ``(O, C, D,
    K, N)`` stacked (inverse-permuted) switching keys.  The ``(C, K, O,
    N)`` output layout keeps the offset and slot axes adjacent, so the
    caller's per-offset Galois permutations collapse into ONE flat
    gather over the fused ``O * N`` axis.  Same lazy int64 chunking
    contract as :func:`_ks_inner_into` — bit-identical for any chunk.
    """
    num_digits = keys.shape[-3]
    if num_digits <= chunk:
        np.einsum("dkn,ocdkn->ckon", digits, keys, out=out)
        out %= mod_col[:, None]
        return
    out[...] = 0
    part = np.empty_like(out)
    for start in range(0, num_digits, chunk):
        np.einsum(
            "dkn,ocdkn->ckon",
            digits[start : start + chunk],
            keys[:, :, start : start + chunk],
            out=part,
        )
        part %= mod_col[:, None]
        out += part
    out %= mod_col[:, None]


@registry.register("ks_inner_stacked", "numpy")
def ks_inner_stacked_numpy(digits, keys, mod_col, chunk):
    """``out[c, k, o, n] = sum_d digits[d, k, n] * keys[o, c, d, k, n] mod q_k``.

    The hoisted-rotation hot path: the shared digit tensor stays
    cache-resident while the offset axis streams, and no per-offset
    digit gather is needed (the keys are stored inverse-permuted; see
    ``CkksContext._stacked_key_tensors``).  Returns ``(C, K, O, N)``.
    """
    num_offsets, num_c = keys.shape[0], keys.shape[1]
    num_limbs, n = keys.shape[-2], keys.shape[-1]
    out = np.empty((num_c, num_limbs, num_offsets, n), dtype=np.int64)
    _ks_inner_stacked_into(out, digits, keys, mod_col, chunk)
    return out


@registry.register("ks_inner_stacked", "threaded")
def ks_inner_stacked_threaded(digits, keys, mod_col, chunk):
    """Limb-slab threaded stacked inner product (bit-exact)."""
    num_offsets, num_c = keys.shape[0], keys.shape[1]
    num_limbs, n = keys.shape[-2], keys.shape[-1]
    bounds = _slab_bounds(num_limbs, os.cpu_count() or 1)
    if len(bounds) < 2:
        bounds = _slab_bounds(num_limbs, 2)
    out = np.empty((num_c, num_limbs, num_offsets, n), dtype=np.int64)
    if len(bounds) < 2:
        _ks_inner_stacked_into(out, digits, keys, mod_col, chunk)
        return out
    _run_slabs(
        (
            _ks_inner_stacked_into,
            out[:, lo:hi],
            digits[:, lo:hi],
            keys[..., lo:hi, :],
            mod_col[lo:hi],
            chunk,
        )
        for lo, hi in bounds
    )
    return out


# ---------------------------------------------------------------------------
# galois_gather: batched evaluation-form permutations
# ---------------------------------------------------------------------------
def _gather_rows(out, source, perms, lo, hi) -> None:
    for row in range(lo, hi):
        np.take(source, perms[row], axis=-1, out=out[row])


@registry.register("galois_gather", "numpy")
def galois_gather_numpy(source, perms):
    """Gather ``source[..., perms[o]]`` for every offset row.

    ``source``: ``(..., N)`` (the shared digit tensor, or stacked c0
    limbs); ``perms``: ``(O, N)`` evaluation-form Galois permutations.
    Returns ``(O, ...source shape)``: ONE flat ``np.take`` over the
    concatenated permutations (cheaper than a take per offset), with the
    offset axis moved out front as a view — the last axis stays
    contiguous, which is the layout the einsum product-sum streams.
    """
    perms = np.asarray(perms)
    num, n = perms.shape
    flat = np.take(source, perms.reshape(-1), axis=-1)
    return np.moveaxis(flat.reshape(source.shape[:-1] + (num, n)), -2, 0)


@registry.register("galois_gather", "threaded")
def galois_gather_threaded(source, perms):
    """Offset-parallel Galois gather (bit-exact with the reference)."""
    perms = np.asarray(perms)
    num = perms.shape[0]
    out = np.empty((num,) + source.shape, dtype=source.dtype)
    bounds = _slab_bounds(num, max(2, os.cpu_count() or 1))
    if len(bounds) < 2:
        _gather_rows(out, source, perms, 0, num)
        return out
    _run_slabs((_gather_rows, out, source, perms, lo, hi) for lo, hi in bounds)
    return out


# ---------------------------------------------------------------------------
# ntt_stage: one lazy butterfly stage across all limbs
# ---------------------------------------------------------------------------
def _ntt_stage_into(a, twiddles, q3, scratch, half) -> None:
    n = a.shape[-1]
    span = half * 2
    blocks = a.reshape(a.shape[:-1] + (n // span, span))
    left = blocks[..., :half]
    right = blocks[..., half:]
    t = scratch.reshape(a.shape[:-1] + (n // span, half))
    np.multiply(right, twiddles, out=t)
    t %= q3
    np.subtract(left, t, out=right)
    left += t


@registry.register("ntt_stage", "numpy")
def ntt_stage_numpy(a, twiddles, q3, scratch, half):
    """One lazy DIT butterfly stage, in place on ``a``.

    ``a``: int64 ``(..., K, N)`` signed lazy residues; ``twiddles``:
    ``(K, 1, half)`` stage twiddles; ``q3``: ``(K, 1, 1)`` moduli;
    ``scratch``: ``(..., K, N // 2)`` reusable product buffer.  Exactly
    one modular reduction (the twiddle product) plus one add and one
    subtract — the laziness contract of
    :class:`repro.ntt.chain.NttChainEngine`.
    """
    _ntt_stage_into(a, twiddles, q3, scratch, half)


@registry.register("ntt_stage", "threaded")
def ntt_stage_threaded(a, twiddles, q3, scratch, half):
    """Limb-slab threaded butterfly stage (bit-exact, in place).

    Splits the limb axis (``axis=-2``): each slab's butterflies touch
    disjoint rows of ``a`` and ``scratch``, so in-place mutation is
    race-free.  Slab views of the last axis reshape without copying
    (the N axis stays contiguous), preserving the in-place contract.
    """
    num_limbs = a.shape[-2]
    bounds = _slab_bounds(num_limbs, os.cpu_count() or 1)
    if len(bounds) < 2:
        bounds = _slab_bounds(num_limbs, 2)
    if len(bounds) < 2:
        _ntt_stage_into(a, twiddles, q3, scratch, half)
        return
    _run_slabs(
        (
            _ntt_stage_into,
            a[..., lo:hi, :],
            twiddles[lo:hi],
            q3[lo:hi],
            scratch[..., lo:hi, :],
            half,
        )
        for lo, hi in bounds
    )


# ---------------------------------------------------------------------------
# Optional numba backend (JIT-compiled loops; explicit opt-in)
# ---------------------------------------------------------------------------
def _register_numba() -> bool:
    """Compile and register the numba kernels if numba imports.

    Returns whether registration happened.  Kernels without a numba
    implementation (``ntt_stage``, ``galois_gather`` — gathers are
    already single C calls) fall back to the numpy reference via the
    registry, so a partial numba backend is well-defined.
    """
    try:
        import numba
    except ImportError:
        return False

    @numba.njit(cache=True, parallel=True)
    def _ks_inner_jit(factors, pairs, mods, chunk):  # pragma: no cover - needs numba
        num_stack, num_c = pairs.shape[0], pairs.shape[1]
        num_digits, num_limbs, n = pairs.shape[2], pairs.shape[3], pairs.shape[4]
        out = np.zeros((num_stack, num_c, num_limbs, n), dtype=np.int64)
        for flat in numba.prange(num_stack * num_c * num_limbs):
            o = flat // (num_c * num_limbs)
            c = (flat // num_limbs) % num_c
            k = flat % num_limbs
            q = mods[k]
            acc = out[o, c, k]
            pending = 0
            for d in range(num_digits):
                if pending == chunk:
                    for i in range(n):
                        acc[i] %= q
                    pending = 0
                f = factors[o, d, k]
                p = pairs[o, c, d, k]
                for i in range(n):
                    acc[i] += f[i] * p[i]
                pending += 1
            for i in range(n):
                acc[i] %= q
        return out

    @registry.register("ks_inner", "numba")
    def ks_inner_numba(factors, pairs, mod_col, chunk):  # pragma: no cover
        lead = np.broadcast_shapes(factors.shape[:-3], pairs.shape[:-4])
        stacked_f = np.ascontiguousarray(
            np.broadcast_to(
                factors, lead + factors.shape[-3:]
            ).reshape((-1,) + factors.shape[-3:])
        )
        stacked_p = np.ascontiguousarray(
            np.broadcast_to(
                pairs, lead + pairs.shape[-4:]
            ).reshape((-1,) + pairs.shape[-4:])
        )
        mods = np.ascontiguousarray(mod_col[:, 0])
        out = _ks_inner_jit(stacked_f, stacked_p, mods, chunk)
        return out.reshape(_ks_inner_shape(factors, pairs))

    return True


# The chunked-jit inner product differs from the reference only in when
# reductions happen, never in the value mod q — registration is safe at
# import time; selection stays an explicit opt-in (see dispatch.probe).
NUMBA_REGISTERED = _register_numba()
