"""The paper's model zoo (Table 2), built on orion.nn modules.

Every constructor takes an ``act`` factory selecting the activation
(ReLU with composite-sign degrees, SiLU with a Chebyshev degree, or x^2
for the MNIST networks) and, where useful, a ``width`` multiplier so
tests can exercise the same architectures at laptop scale.
"""

from repro.models.mnist import LeNet5, LolaCnn, SecureMlp
from repro.models.alexnet import AlexNet
from repro.models.vgg import Vgg16
from repro.models.resnet import CifarResNet, ResNet, resnet_cifar, resnet_imagenet
from repro.models.mobilenet import MobileNetV1
from repro.models.yolo import YoloV1

__all__ = [
    "SecureMlp",
    "LolaCnn",
    "LeNet5",
    "AlexNet",
    "Vgg16",
    "CifarResNet",
    "ResNet",
    "resnet_cifar",
    "resnet_imagenet",
    "MobileNetV1",
    "YoloV1",
]


def relu_act(degrees=(15, 15, 27)):
    """Factory for paper-default composite-minimax ReLU."""
    import repro.orion.nn as on

    return lambda: on.ReLU(degrees=degrees)


def silu_act(degree=127):
    """Factory for Chebyshev SiLU (paper Section 8.2)."""
    import repro.orion.nn as on

    return lambda: on.SiLU(degree=degree)


def square_act():
    """Factory for x^2 (MNIST networks)."""
    import repro.orion.nn as on

    return lambda: on.Square()
