"""AlexNet (CIFAR-10 variant, paper Table 2)."""

from __future__ import annotations

from typing import Callable

import repro.orion.nn as on


class AlexNet(on.Module):
    """Five conv layers + three FC layers, average pooling throughout.

    ``width`` scales channels (64 matches the paper-scale CIFAR
    variant; tests use 8-16).
    """

    def __init__(
        self,
        classes: int = 10,
        act: Callable = None,
        width: int = 64,
        image_size: int = 32,
    ):
        super().__init__()
        act = act or (lambda: on.ReLU(degrees=(15, 15, 27)))
        w = width
        self.conv1 = on.Conv2d(3, w, 5, 1, 2)
        self.act1 = act()
        self.pool1 = on.AvgPool2d(2)
        self.conv2 = on.Conv2d(w, 3 * w, 5, 1, 2)
        self.act2 = act()
        self.pool2 = on.AvgPool2d(2)
        self.conv3 = on.Conv2d(3 * w, 6 * w, 3, 1, 1)
        self.act3 = act()
        self.conv4 = on.Conv2d(6 * w, 4 * w, 3, 1, 1)
        self.act4 = act()
        self.conv5 = on.Conv2d(4 * w, 4 * w, 3, 1, 1)
        self.act5 = act()
        self.pool3 = on.AvgPool2d(2)
        self.flatten = on.Flatten()
        side = image_size // 8
        self.fc1 = on.Linear(4 * w * side * side, 8 * w)
        self.act6 = act()
        self.fc2 = on.Linear(8 * w, 8 * w)
        self.act7 = act()
        self.fc3 = on.Linear(8 * w, classes)

    def forward(self, x):
        x = self.pool1(self.act1(self.conv1(x)))
        x = self.pool2(self.act2(self.conv2(x)))
        x = self.act3(self.conv3(x))
        x = self.act4(self.conv4(x))
        x = self.pool3(self.act5(self.conv5(x)))
        x = self.flatten(x)
        x = self.act6(self.fc1(x))
        x = self.act7(self.fc2(x))
        return self.fc3(x)
