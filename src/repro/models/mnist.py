"""MNIST networks (paper Table 2): MLP, LoLA CNN, LeNet-5.

All use the x^2 activation, need no bootstrapping (depths 5, 5, 7), and
were the paper's headline Fhelipe/EVA speedup comparisons.
"""

from __future__ import annotations

import repro.orion.nn as on


class SecureMlp(on.Module):
    """The 3-layer MLP of SecureML [57] (784-128-128-10)."""

    def __init__(self, input_pixels: int = 784, hidden: int = 128, classes: int = 10):
        super().__init__()
        self.flatten = on.Flatten()
        self.fc1 = on.Linear(input_pixels, hidden)
        self.act1 = on.Square()
        self.fc2 = on.Linear(hidden, hidden)
        self.act2 = on.Square()
        self.fc3 = on.Linear(hidden, classes)

    def forward(self, x):
        x = self.flatten(x)
        x = self.act1(self.fc1(x))
        x = self.act2(self.fc2(x))
        return self.fc3(x)


class LolaCnn(on.Module):
    """The LoLA CryptoNets CNN [13]: conv, square, conv, square, fc."""

    def __init__(self, image_size: int = 28, channels: int = 5, classes: int = 10):
        super().__init__()
        self.conv1 = on.Conv2d(1, channels, 5, stride=2, padding=2)
        self.act1 = on.Square()
        self.conv2 = on.Conv2d(channels, channels * 2, 5, stride=2, padding=2)
        self.act2 = on.Square()
        self.flatten = on.Flatten()
        side = image_size // 4
        self.fc = on.Linear(channels * 2 * side * side, classes)

    def forward(self, x):
        x = self.act1(self.conv1(x))
        x = self.act2(self.conv2(x))
        return self.fc(self.flatten(x))


class LeNet5(on.Module):
    """LeNet-5 as used by CHET [22] / EVA [21], x^2 activations."""

    def __init__(self, image_size: int = 28, classes: int = 10):
        super().__init__()
        self.conv1 = on.Conv2d(1, 6, 5, stride=1, padding=2)
        self.act1 = on.Square()
        self.pool1 = on.AvgPool2d(2)
        self.conv2 = on.Conv2d(6, 16, 5, stride=1, padding=0)
        self.act2 = on.Square()
        self.pool2 = on.AvgPool2d(2)
        self.flatten = on.Flatten()
        side = (image_size // 2 - 4) // 2
        self.fc1 = on.Linear(16 * side * side, 120)
        self.act3 = on.Square()
        self.fc2 = on.Linear(120, 84)
        self.act4 = on.Square()
        self.fc3 = on.Linear(84, classes)

    def forward(self, x):
        x = self.pool1(self.act1(self.conv1(x)))
        x = self.pool2(self.act2(self.conv2(x)))
        x = self.flatten(x)
        x = self.act3(self.fc1(x))
        x = self.act4(self.fc2(x))
        return self.fc3(x)
