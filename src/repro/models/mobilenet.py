"""MobileNet-v1 (paper Table 2, Tiny ImageNet row).

Depthwise-separable convolutions: a depthwise 3x3 (groups = channels)
followed by a pointwise 1x1.  No residual connections — the paper notes
this lets the bootstrap planner run convolutions at higher average
levels than in ResNet-18 (Section 8.3).
"""

from __future__ import annotations

from typing import Callable

import repro.orion.nn as on

# (output channel multiple, stride) per separable block, torchvision order.
_BLOCKS = [
    (2, 1), (4, 2), (4, 1), (8, 2), (8, 1), (16, 2),
    (16, 1), (16, 1), (16, 1), (16, 1), (16, 1), (32, 2), (32, 1),
]


class _SeparableBlock(on.Module):
    def __init__(self, c_in: int, c_out: int, stride: int, act: Callable):
        super().__init__()
        self.depthwise = on.Conv2d(c_in, c_in, 3, stride, 1, groups=c_in, bias=False)
        self.bn1 = on.BatchNorm2d(c_in)
        self.act1 = act()
        self.pointwise = on.Conv2d(c_in, c_out, 1, 1, 0, bias=False)
        self.bn2 = on.BatchNorm2d(c_out)
        self.act2 = act()

    def forward(self, x):
        x = self.act1(self.bn1(self.depthwise(x)))
        return self.act2(self.bn2(self.pointwise(x)))


class MobileNetV1(on.Module):
    def __init__(self, classes: int = 200, act: Callable = None, width: int = 32,
                 num_blocks: int = None):
        super().__init__()
        act = act or (lambda: on.SiLU(degree=127))
        self.conv1 = on.Conv2d(3, width, 3, 2, 1, bias=False)
        self.bn1 = on.BatchNorm2d(width)
        self.act1 = act()
        blocks = _BLOCKS if num_blocks is None else _BLOCKS[:num_blocks]
        stages = []
        c_in = width
        for multiple, stride in blocks:
            c_out = multiple * width
            stages.append(_SeparableBlock(c_in, c_out, stride, act))
            c_in = c_out
        self.blocks = on.Sequential(*stages)
        self.pool = on.AdaptiveAvgPool2d(1)
        self.flatten = on.Flatten()
        self.fc = on.Linear(c_in, classes)

    def forward(self, x):
        x = self.act1(self.bn1(self.conv1(x)))
        x = self.blocks(x)
        return self.fc(self.flatten(self.pool(x)))
