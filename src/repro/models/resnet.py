"""ResNets: CIFAR (20/32/44/56/110) and ImageNet (18/34/50) variants.

The CIFAR family follows He et al. [34]: 6n+2 layers in three stages of
n BasicBlocks.  The ImageNet family mirrors torchvision's layout with
the paper's substitutions (max pool -> average pool, configurable
activation).  ``width`` scales channel counts for laptop-size tests.
"""

from __future__ import annotations

from typing import Callable, List

import repro.orion.nn as on

ActFactory = Callable[[], on.Module]


def _default_act() -> on.Module:
    return on.ReLU(degrees=(15, 15, 27))


class BasicBlock(on.Module):
    """Paper Listing 1's residual block."""

    expansion = 1

    def __init__(self, c_in: int, c_out: int, stride: int, act: ActFactory):
        super().__init__()
        self.conv1 = on.Conv2d(c_in, c_out, 3, stride, 1, bias=False)
        self.bn1 = on.BatchNorm2d(c_out)
        self.act1 = act()
        self.conv2 = on.Conv2d(c_out, c_out, 3, 1, 1, bias=False)
        self.bn2 = on.BatchNorm2d(c_out)
        self.act2 = act()
        self.add = on.Add()
        self.shortcut = on.Sequential()
        if stride != 1 or c_in != c_out:
            self.shortcut = on.Sequential(
                on.Conv2d(c_in, c_out, 1, stride, 0, bias=False),
                on.BatchNorm2d(c_out),
            )

    def forward(self, x):
        out = self.act1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = self.add(out, self.shortcut(x))
        return self.act2(out)


class Bottleneck(on.Module):
    """1x1 -> 3x3 -> 1x1 bottleneck (ResNet-50)."""

    expansion = 4

    def __init__(self, c_in: int, c_mid: int, stride: int, act: ActFactory):
        super().__init__()
        c_out = c_mid * self.expansion
        self.conv1 = on.Conv2d(c_in, c_mid, 1, 1, 0, bias=False)
        self.bn1 = on.BatchNorm2d(c_mid)
        self.act1 = act()
        self.conv2 = on.Conv2d(c_mid, c_mid, 3, stride, 1, bias=False)
        self.bn2 = on.BatchNorm2d(c_mid)
        self.act2 = act()
        self.conv3 = on.Conv2d(c_mid, c_out, 1, 1, 0, bias=False)
        self.bn3 = on.BatchNorm2d(c_out)
        self.act3 = act()
        self.add = on.Add()
        self.shortcut = on.Sequential()
        if stride != 1 or c_in != c_out:
            self.shortcut = on.Sequential(
                on.Conv2d(c_in, c_out, 1, stride, 0, bias=False),
                on.BatchNorm2d(c_out),
            )

    def forward(self, x):
        out = self.act1(self.bn1(self.conv1(x)))
        out = self.act2(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        out = self.add(out, self.shortcut(x))
        return self.act3(out)


class CifarResNet(on.Module):
    """6n+2-layer CIFAR ResNet (He et al. [34])."""

    def __init__(
        self,
        depth: int = 20,
        classes: int = 10,
        act: ActFactory = _default_act,
        width: int = 16,
        in_channels: int = 3,
    ):
        super().__init__()
        if (depth - 2) % 6 != 0:
            raise ValueError("CIFAR ResNet depth must be 6n+2")
        n = (depth - 2) // 6
        self.conv1 = on.Conv2d(in_channels, width, 3, 1, 1, bias=False)
        self.bn1 = on.BatchNorm2d(width)
        self.act1 = act()
        self.stage1 = self._stage(width, width, n, 1, act)
        self.stage2 = self._stage(width, 2 * width, n, 2, act)
        self.stage3 = self._stage(2 * width, 4 * width, n, 2, act)
        self.pool = on.AdaptiveAvgPool2d(1)
        self.flatten = on.Flatten()
        self.fc = on.Linear(4 * width, classes)

    @staticmethod
    def _stage(c_in: int, c_out: int, blocks: int, stride: int, act: ActFactory):
        layers: List[on.Module] = [BasicBlock(c_in, c_out, stride, act)]
        for _ in range(blocks - 1):
            layers.append(BasicBlock(c_out, c_out, 1, act))
        return on.Sequential(*layers)

    def forward(self, x):
        x = self.act1(self.bn1(self.conv1(x)))
        x = self.stage3(self.stage2(self.stage1(x)))
        return self.fc(self.flatten(self.pool(x)))


class ResNet(on.Module):
    """ImageNet-style ResNet (18/34/50), paper substitutions applied."""

    def __init__(
        self,
        layers: List[int],
        block=BasicBlock,
        classes: int = 1000,
        act: ActFactory = _default_act,
        width: int = 64,
        in_channels: int = 3,
    ):
        super().__init__()
        self.conv1 = on.Conv2d(in_channels, width, 7, 2, 3, bias=False)
        self.bn1 = on.BatchNorm2d(width)
        self.act1 = act()
        self.pool1 = on.AvgPool2d(2)  # paper replaces max pooling
        c = width
        self.layer1 = self._stage(block, c, width, layers[0], 1, act)
        c = width * block.expansion
        self.layer2 = self._stage(block, c, 2 * width, layers[1], 2, act)
        c = 2 * width * block.expansion
        self.layer3 = self._stage(block, c, 4 * width, layers[2], 2, act)
        c = 4 * width * block.expansion
        self.layer4 = self._stage(block, c, 8 * width, layers[3], 2, act)
        c = 8 * width * block.expansion
        self.pool2 = on.AdaptiveAvgPool2d(1)
        self.flatten = on.Flatten()
        self.fc = on.Linear(c, classes)

    @staticmethod
    def _stage(block, c_in, c_mid, blocks, stride, act):
        layers = [block(c_in, c_mid, stride, act)]
        c = c_mid * block.expansion
        for _ in range(blocks - 1):
            layers.append(block(c, c_mid, 1, act))
        return on.Sequential(*layers)

    def forward(self, x):
        x = self.pool1(self.act1(self.bn1(self.conv1(x))))
        x = self.layer4(self.layer3(self.layer2(self.layer1(x))))
        return self.fc(self.flatten(self.pool2(x)))

    def backbone_forward(self, x):
        """Forward without pooling/classifier (YOLO backbone use)."""
        x = self.pool1(self.act1(self.bn1(self.conv1(x))))
        return self.layer4(self.layer3(self.layer2(self.layer1(x))))


def resnet_cifar(depth: int, act: ActFactory = _default_act, width: int = 16,
                 classes: int = 10) -> CifarResNet:
    return CifarResNet(depth=depth, act=act, width=width, classes=classes)


def resnet_imagenet(depth: int, act: ActFactory = _default_act, width: int = 64,
                    classes: int = 1000) -> ResNet:
    configs = {
        18: ([2, 2, 2, 2], BasicBlock),
        34: ([3, 4, 6, 3], BasicBlock),
        50: ([3, 4, 6, 3], Bottleneck),
    }
    if depth not in configs:
        raise ValueError(f"unsupported ImageNet ResNet depth {depth}")
    layers, block = configs[depth]
    return ResNet(layers, block=block, act=act, width=width, classes=classes)
