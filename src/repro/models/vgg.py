"""VGG-16 (CIFAR-10 variant, paper Table 2)."""

from __future__ import annotations

from typing import Callable, List

import repro.orion.nn as on

_VGG16_PLAN = [1, 1, "P", 2, 2, "P", 4, 4, 4, "P", 8, 8, 8, "P", 8, 8, 8, "P"]


class Vgg16(on.Module):
    """13 conv layers (batch-normed) + classifier, avg pooling.

    ``width`` is the base channel count (64 at paper scale).
    """

    def __init__(self, classes: int = 10, act: Callable = None, width: int = 64,
                 image_size: int = 32):
        super().__init__()
        act = act or (lambda: on.ReLU(degrees=(15, 15, 27)))
        layers: List[on.Module] = []
        c_in = 3
        for entry in _VGG16_PLAN:
            if entry == "P":
                layers.append(on.AvgPool2d(2))
                continue
            c_out = entry * width
            layers.append(on.Conv2d(c_in, c_out, 3, 1, 1, bias=False))
            layers.append(on.BatchNorm2d(c_out))
            layers.append(act())
            c_in = c_out
        self.features = on.Sequential(*layers)
        self.flatten = on.Flatten()
        side = image_size // 32
        self.fc = on.Linear(8 * width * side * side, classes)

    def forward(self, x):
        return self.fc(self.flatten(self.features(x)))
