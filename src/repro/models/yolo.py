"""YOLO-v1 with a ResNet-34 backbone (paper Section 8.6 / Figure 8).

The paper's largest FHE computation: 139M parameters on 448x448x3
PASCAL-VOC images, predicting an S x S grid of B boxes and C class
scores per cell.  Output tensor: S*S*(B*5 + C) = 7*7*30 at paper scale.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

import repro.orion.nn as on
from repro.models.resnet import ResNet, BasicBlock


class YoloV1(on.Module):
    """Detection head on top of a ResNet-34-style backbone.

    Args:
        grid: S (cells per side).
        boxes: B boxes per cell.
        classes: C object classes.
        width: backbone width (64 at paper scale).
        head_width: detection head channel count (1024 at paper scale).
    """

    def __init__(
        self,
        grid: int = 7,
        boxes: int = 2,
        classes: int = 20,
        act: Callable = None,
        width: int = 64,
        head_width: int = 1024,
        fc_hidden: int = 2048,
        backbone_layers: List[int] = (3, 4, 6, 3),
    ):
        super().__init__()
        act = act or (lambda: on.SiLU(degree=127))
        self.grid = grid
        self.boxes = boxes
        self.classes = classes
        self.backbone = ResNet(
            list(backbone_layers), block=BasicBlock, act=act, width=width, classes=1
        )
        c = 8 * width
        self.head_conv1 = on.Conv2d(c, head_width, 3, 1, 1, bias=False)
        self.head_bn1 = on.BatchNorm2d(head_width)
        self.head_act1 = act()
        self.head_conv2 = on.Conv2d(head_width, head_width, 3, 2, 1, bias=False)
        self.head_bn2 = on.BatchNorm2d(head_width)
        self.head_act2 = act()
        self.flatten = on.Flatten()
        out_cells = grid * grid * (boxes * 5 + classes)
        # Head FC operates on the grid x grid spatial map; fc_hidden is
        # sized so the paper-scale model totals ~139M parameters.
        self.fc1 = on.Linear(head_width * grid * grid, fc_hidden)
        self.head_act3 = act()
        self.fc2 = on.Linear(fc_hidden, out_cells)

    def forward(self, x):
        x = self.backbone.backbone_forward(x)
        x = self.head_act1(self.head_bn1(self.head_conv1(x)))
        x = self.head_act2(self.head_bn2(self.head_conv2(x)))
        x = self.flatten(x)
        x = self.head_act3(self.fc1(x))
        return self.fc2(x)

    # -- detection decoding (cleartext post-processing) -----------------
    def decode(self, output: np.ndarray, threshold: float = 0.25) -> List[Tuple]:
        """Raw output vector -> [(class_id, confidence, cx, cy, w, h)].

        Mirrors YOLO-v1 post-processing: per-cell boxes with confidence
        = box objectness * best class score; simple per-class greedy
        suppression of overlapping boxes.
        """
        s, b, c = self.grid, self.boxes, self.classes
        grid = output.reshape(s, s, b * 5 + c)
        detections = []
        for gy in range(s):
            for gx in range(s):
                cell = grid[gy, gx]
                class_scores = cell[b * 5 :]
                best_class = int(np.argmax(class_scores))
                for box in range(b):
                    bx, by, bw, bh, obj = cell[box * 5 : box * 5 + 5]
                    confidence = float(obj * class_scores[best_class])
                    if confidence < threshold:
                        continue
                    cx = (gx + _sigmoid(bx)) / s
                    cy = (gy + _sigmoid(by)) / s
                    detections.append(
                        (best_class, confidence, cx, cy, abs(float(bw)), abs(float(bh)))
                    )
        return _suppress(detections)


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


def _iou(box_a, box_b) -> float:
    ax, ay, aw, ah = box_a
    bx, by, bw, bh = box_b
    ax0, ay0, ax1, ay1 = ax - aw / 2, ay - ah / 2, ax + aw / 2, ay + ah / 2
    bx0, by0, bx1, by1 = bx - bw / 2, by - bh / 2, bx + bw / 2, by + bh / 2
    ix = max(0.0, min(ax1, bx1) - max(ax0, bx0))
    iy = max(0.0, min(ay1, by1) - max(ay0, by0))
    inter = ix * iy
    union = aw * ah + bw * bh - inter
    return inter / union if union > 0 else 0.0


def _suppress(detections, iou_threshold: float = 0.5):
    detections = sorted(detections, key=lambda d: -d[1])
    kept = []
    for det in detections:
        if all(
            det[0] != k[0] or _iou(det[2:], k[2:]) < iou_threshold for k in kept
        ):
            kept.append(det)
    return kept
