"""A PyTorch-style neural network library over repro.autograd.

``repro.orion`` layers extend these modules the same way the paper's
``orion.nn`` extends ``torch.nn`` (Listing 1): the cleartext semantics
live here, the FHE compilation metadata lives in the subclass.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    AvgPool2d,
    AdaptiveAvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
)
from repro.nn.activations import ReLU, SiLU, Square
from repro.nn.optim import SGD, Adam

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Conv2d",
    "Linear",
    "BatchNorm1d",
    "BatchNorm2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Flatten",
    "ReLU",
    "SiLU",
    "Square",
    "SGD",
    "Adam",
]
