"""Cleartext activation modules (exact, not polynomial)."""

from __future__ import annotations

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class SiLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.silu(x)


class Square(Module):
    """x^2: the activation used by the paper's MNIST networks."""

    def forward(self, x: Tensor) -> Tensor:
        return F.square(x)
