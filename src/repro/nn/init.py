"""Weight initialization (Kaiming fan-in, matching torchvision defaults)."""

from __future__ import annotations

import numpy as np

_INIT_RNG = np.random.default_rng(0)


def seed_init(seed: int) -> None:
    """Reset the initialization stream (deterministic model builds)."""
    global _INIT_RNG
    _INIT_RNG = np.random.default_rng(seed)


def kaiming_uniform(shape, fan_in: int) -> np.ndarray:
    bound = np.sqrt(6.0 / fan_in)
    return _INIT_RNG.uniform(-bound, bound, size=shape)


def uniform_bias(shape, fan_in: int) -> np.ndarray:
    bound = 1.0 / np.sqrt(fan_in) if fan_in > 0 else 0.0
    return _INIT_RNG.uniform(-bound, bound, size=shape)
