"""Standard CNN layers over the autograd engine."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (value, value)


class Conv2d(Module):
    """2D convolution with arbitrary stride/padding/dilation/groups.

    Signature mirrors ``torch.nn.Conv2d`` so Orion models read like the
    paper's Listing 1.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        dilation: IntPair = 1,
        groups: int = 1,
        bias: bool = True,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.dilation = _pair(dilation)
        self.groups = groups
        if in_channels % groups or out_channels % groups:
            raise ValueError("channels must be divisible by groups")
        kh, kw = self.kernel_size
        fan_in = (in_channels // groups) * kh * kw
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels // groups, kh, kw), fan_in)
        )
        self.bias = Parameter(init.uniform_bias(out_channels, fan_in)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            dilation=self.dilation,
            groups=self.groups,
        )

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """(C,H,W) -> (C,H,W) shape inference used by the Orion compiler."""
        _, h, w = input_shape
        kh, kw = self.kernel_size
        out_h = F._conv_output_size(h, kh, self.stride[0], self.padding[0], self.dilation[0])
        out_w = F._conv_output_size(w, kw, self.stride[1], self.padding[1], self.dilation[1])
        return (self.out_channels, out_h, out_w)


class Linear(Module):
    """Fully-connected layer: y = x W^T + b."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), in_features)
        )
        self.bias = Parameter(init.uniform_bias(out_features, in_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class BatchNorm2d(Module):
    """Per-channel batch normalization with running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def folded_affine(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-channel (scale, shift) equivalent in eval mode.

        Used by the Orion compiler to fold batch norm into the adjacent
        convolution so it costs no multiplicative level.
        """
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = self.weight.data * inv_std
        shift = self.bias.data - self.running_mean * scale
        return scale, shift


class BatchNorm1d(BatchNorm2d):
    """Per-feature batch normalization for (B, C) inputs.

    Reuses the 2D statistics machinery by viewing features as 1x1
    spatial maps; ``folded_affine`` is inherited unchanged, so the
    Orion compiler folds Linear -> BatchNorm1d exactly like
    Conv2d -> BatchNorm2d.
    """

    def forward(self, x: Tensor) -> Tensor:
        if len(x.shape) != 2:
            raise ValueError(f"BatchNorm1d expects (B, C) input, got {x.shape}")
        as_2d = x.reshape(x.shape[0], x.shape[1], 1, 1)
        out = F.batch_norm2d(
            as_2d,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )
        return out.reshape(x.shape[0], x.shape[1])


class AvgPool2d(Module):
    """Average pooling (the paper replaces max pooling with this)."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        c, h, w = input_shape
        out_h = (h - self.kernel_size) // self.stride + 1
        out_w = (w - self.kernel_size) // self.stride + 1
        return (c, out_h, out_w)


class AdaptiveAvgPool2d(Module):
    """Global average pooling to a fixed output size (only 1x1 needed)."""

    def __init__(self, output_size: int = 1):
        super().__init__()
        if output_size != 1:
            raise NotImplementedError("only global (1x1) pooling is supported")
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, kernel=x.shape[-1], stride=x.shape[-1])


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)
