"""Module base class: parameter registration, modes, state dicts."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (requires_grad is always on at creation)."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with PyTorch-style attribute registration.

    Assigning a :class:`Parameter` or :class:`Module` to an attribute
    registers it; ``parameters()``, ``state_dict()`` and ``train()``
    walk the registry recursively.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- buffers (non-trainable state, e.g. batchnorm running stats) ----
    def register_buffer(self, name: str, array: np.ndarray) -> None:
        self._buffers[name] = array
        object.__setattr__(self, name, array)

    # -- traversal --------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self):
        for _, param in self.named_parameters():
            yield param

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    # -- modes -------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- (de)serialization ---------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name, buf in self._buffers.items():
            state[f"{prefix}{name}"] = np.array(buf, copy=True)
        for name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        for name, param in self._parameters.items():
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing parameter {key!r}")
            param.data = np.array(state[key], dtype=np.float64, copy=True)
        for name in self._buffers:
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing buffer {key!r}")
            buf = getattr(self, name)
            buf[...] = state[key]
        for name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{name}.")

    def save(self, path: str) -> None:
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})

    # -- call ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain modules in order (matches torch.nn.Sequential semantics)."""

    def __init__(self, *modules: Module):
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, str(index), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._modules.values())

    def __len__(self):
        return len(self._modules)
