"""Optimizers for training the model zoo on synthetic datasets."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        self.parameters: List[Parameter] = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class Adam:
    """Adam optimizer (used for the YOLO detection head)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.parameters: List[Parameter] = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()
