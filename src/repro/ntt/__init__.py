"""Negacyclic Number Theoretic Transform over NTT-friendly primes.

CKKS keeps polynomials in the NTT (evaluation) representation so that
polynomial multiplication in Z_q[X]/(X^N + 1) costs O(N) pointwise
products instead of O(N^2) (paper Section 2.5).  The per-prime tables
live in :class:`NttContext`; :class:`NttChainEngine` stacks them so a
whole RNS residue matrix is transformed in one vectorized pass, and
:func:`galois_eval_permutation` applies Galois automorphisms directly
on evaluation-form data as a cached slot-index gather.
"""

from repro.ntt.chain import NttChainEngine
from repro.ntt.transform import (
    NttContext,
    galois_eval_permutation,
    negacyclic_convolve_reference,
)

__all__ = [
    "NttChainEngine",
    "NttContext",
    "galois_eval_permutation",
    "negacyclic_convolve_reference",
]
