"""Negacyclic Number Theoretic Transform over NTT-friendly primes.

CKKS keeps polynomials in the NTT (evaluation) representation so that
polynomial multiplication in Z_q[X]/(X^N + 1) costs O(N) pointwise
products instead of O(N^2) (paper Section 2.5).
"""

from repro.ntt.transform import NttContext, negacyclic_convolve_reference

__all__ = ["NttContext", "negacyclic_convolve_reference"]
