"""Limb-batched negacyclic NTT across a whole RNS prime chain.

:class:`NttChainEngine` stacks the per-prime twiddle/twist tables of
:class:`repro.ntt.transform.NttContext` into ``(K, ...)`` arrays so that
an entire ``(L, N)`` residue matrix (or a ``(D, L, N)`` stack of digit
matrices) moves through every butterfly stage in a single vectorized
numpy pass, instead of one Python-level transform per limb.

Butterflies are fully lazy: each stage performs exactly one modular
reduction (the twiddle product) plus one add and one subtract, letting
the signed residues drift by +-q per stage.  A growth budget derived
from ``q_max^2`` bounds how many stages fit before a product could
overflow int64 — with the < 2^31 primes :class:`NttContext` admits the
budget is always >= 2, and with the <= 29-bit primes the toy parameter
sets use it exceeds 30 stages, so transforms up to N = 2^30 run with a
single trailing ``%`` and no per-stage corrections at all.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.ntt.transform import NttContext, _bit_reverse_cache


class _ChainTables(NamedTuple):
    """Tables for one subset (row selection) of the prime chain."""

    q: np.ndarray  # (K, 1) moduli column
    q3: np.ndarray  # (K, 1, 1) moduli for butterfly broadcasting
    twist: np.ndarray  # (K, N) forward twist psi^i
    twist_inv_n: np.ndarray  # (K, N) fused psi^-i / N for the inverse
    stages: List[np.ndarray]  # per-stage (K, 1, half) forward twiddles
    stages_inv: List[np.ndarray]  # per-stage (K, 1, half) inverse twiddles


class NttChainEngine:
    """Chain-level negacyclic NTT shared by all limbs of an RNS basis.

    Args:
        contexts: one :class:`NttContext` per prime, in chain order.
            Their precomputed tables are stacked; nothing is recomputed.

    Transforms accept arrays of shape ``(..., K, N)`` where ``K`` equals
    the number of selected rows and the transform runs along the last
    axis; any leading dimensions are batched for free (used to push all
    key-switch digits through the NTT in one call).
    """

    def __init__(self, contexts: Sequence[NttContext]):
        if not contexts:
            raise ValueError("need at least one NTT context")
        self.n = contexts[0].n
        if any(c.n != self.n for c in contexts):
            raise ValueError("all NTT contexts must share the ring degree")
        self.num_primes = len(contexts)
        q_max = max(c.q for c in contexts)
        # Signed residues grow by at most q per butterfly stage; a value
        # bounded by g*q multiplied by a twiddle (< q) must fit int64,
        # so up to ``budget`` stages may run between renormalizations.
        self._growth_budget = max(1, (2**63 - 1) // (q_max * q_max))
        q = np.array([c.q for c in contexts], dtype=np.int64)[:, None]
        twist = np.stack([c._twist for c in contexts])
        twist_inv_n = np.stack(
            [(c._twist_inv * c.n_inv) % c.q for c in contexts]
        )
        num_stages = len(contexts[0]._stage_twiddles)
        stages = [
            np.stack([c._stage_twiddles[s] for c in contexts])[:, None, :]
            for s in range(num_stages)
        ]
        stages_inv = [
            np.stack([c._stage_twiddles_inv[s] for c in contexts])[:, None, :]
            for s in range(num_stages)
        ]
        self._full = _ChainTables(
            q=q,
            q3=q[:, :, None],
            twist=twist,
            twist_inv_n=twist_inv_n,
            stages=stages,
            stages_inv=stages_inv,
        )
        self._subsets: Dict[Tuple[int, ...], _ChainTables] = {}

    def _tables(self, rows: Tuple[int, ...]) -> _ChainTables:
        """Row-gathered tables for a sub-chain, cached per selection."""
        if rows == tuple(range(self.num_primes)):
            return self._full
        cached = self._subsets.get(rows)
        if cached is None:
            idx = np.asarray(rows, dtype=np.intp)
            full = self._full
            cached = _ChainTables(
                q=full.q[idx],
                q3=full.q3[idx],
                twist=full.twist[idx],
                twist_inv_n=full.twist_inv_n[idx],
                stages=[s[idx] for s in full.stages],
                stages_inv=[s[idx] for s in full.stages_inv],
            )
            self._subsets[rows] = cached
        return cached

    def _fft(self, a: np.ndarray, stages: List[np.ndarray], tables: _ChainTables) -> np.ndarray:
        """Iterative DIT cyclic FFT over all selected limbs at once.

        ``a`` must hold residues in ``[0, q)``; returns ``(out, growth)``
        where ``out`` is a fresh array (the initial bit-reverse gather
        copies) of *signed lazy* residues with magnitude below
        ``growth * q``.  Callers renormalize — explicitly in
        :meth:`forward`, for free in :meth:`inverse`'s fused final
        multiply (numpy ``%`` maps negatives into ``[0, q)``).
        """
        n = self.n
        shape = a.shape
        a = a[..., _bit_reverse_cache(n)]
        if n == 1:
            return a, 1
        q3 = tables.q3
        budget = self._growth_budget
        growth = 1
        # Stage 0 pairs adjacent elements with twiddle 1: pure add/sub.
        blocks = a.reshape(shape[:-1] + (n // 2, 2))
        left = blocks[..., :1]
        right = blocks[..., 1:]
        t = right.copy()
        np.subtract(left, t, out=right)
        left += t
        growth += 1
        # One scratch buffer holds every stage's twiddle products.
        scratch = np.empty(shape[:-1] + (n // 2,), dtype=np.int64)
        # Hoisted kernel lookup: one dispatch for the whole transform.
        # Every backend of "ntt_stage" performs the identical lazy
        # butterfly (one %, one add, one subtract) in place.
        ntt_stage = kernels.get("ntt_stage")
        half = 2
        stage = 1
        while half < n:
            if growth > budget:
                # Rare (primes >= 30 bits or huge N): renormalize so the
                # next twiddle product fits in int64 again.
                a %= tables.q
                growth = 1
            # Signed drift is bounded by +q per stage, repaired at the end.
            ntt_stage(a, stages[stage], q3, scratch, half)
            growth += 1
            half *= 2
            stage += 1
        return a, growth

    def forward(self, data: np.ndarray, rows: Sequence[int]) -> np.ndarray:
        """Coefficient -> evaluation form for every selected limb.

        Args:
            data: int64 array of shape ``(..., len(rows), N)``.  Values
                may be any signed residues with ``|v| < 2^31``; the twist
                multiply renormalizes them into ``[0, q)``.  Broadcast
                (stride-0) views are fine — the twist materializes them.
            rows: indices into the engine's prime chain, one per limb
                row of ``data`` (repeats allowed).
        """
        tables = self._tables(tuple(rows))
        a = np.asarray(data, dtype=np.int64) * tables.twist
        a %= tables.q
        a, _ = self._fft(a, tables.stages, tables)
        a %= tables.q
        return a

    def inverse(self, data: np.ndarray, rows: Sequence[int]) -> np.ndarray:
        """Evaluation -> coefficient form; expects residues in [0, q)."""
        tables = self._tables(tuple(rows))
        a, growth = self._fft(np.asarray(data, dtype=np.int64), tables.stages_inv, tables)
        if growth > self._growth_budget:
            a %= tables.q
        # The fused twist * 1/N multiply renormalizes the lazy output:
        # |a| < growth*q and twist < q keep the product inside int64.
        np.multiply(a, tables.twist_inv_n, out=a)
        a %= tables.q
        return a
