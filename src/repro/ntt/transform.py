"""Vectorized iterative negacyclic NTT.

The transform works in Z_q[X]/(X^N + 1) with q = 1 (mod 2N), using a
primitive 2N-th root of unity psi.  Multiplying coefficients by powers
of psi before a cyclic NTT ("twisting") turns cyclic convolution into
negacyclic convolution, which is exactly reduction modulo X^N + 1.

Primes are kept below 2^31 so that a product of two residues fits in an
int64 and the butterflies vectorize cleanly in numpy.
"""

from __future__ import annotations

import numpy as np

from repro.utils.intmath import int_log2, mod_inverse, mod_pow

_MAX_PRIME_BITS = 31


def _find_primitive_root(q: int) -> int:
    """Smallest generator of the multiplicative group of Z_q (q prime)."""
    order = q - 1
    factors = []
    n = order
    f = 2
    while f * f <= n:
        if n % f == 0:
            factors.append(f)
            while n % f == 0:
                n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for g in range(2, q):
        if all(mod_pow(g, order // f, q) != 1 for f in factors):
            return g
    raise ValueError(f"no primitive root found for {q}")


class NttContext:
    """Precomputed tables for the negacyclic NTT modulo one prime.

    Attributes:
        q: the prime modulus (q = 1 mod 2N, q < 2^31).
        n: ring degree (power of two).
    """

    def __init__(self, q: int, n: int):
        if q.bit_length() > _MAX_PRIME_BITS:
            raise ValueError(
                f"prime {q} too large: must fit {_MAX_PRIME_BITS} bits so "
                "products fit in int64"
            )
        if (q - 1) % (2 * n) != 0:
            raise ValueError(f"{q} != 1 mod 2N for N={n}")
        self.q = q
        self.n = n
        self._log_n = int_log2(n)

        g = _find_primitive_root(q)
        psi = mod_pow(g, (q - 1) // (2 * n), q)  # primitive 2N-th root
        self.psi = psi
        self.psi_inv = mod_inverse(psi, q)
        omega = (psi * psi) % q  # primitive N-th root
        self.omega = omega
        self.omega_inv = mod_inverse(omega, q)
        self.n_inv = mod_inverse(n, q)

        # Twisting factors psi^i and their inverses.
        self._twist = self._powers(psi, n)
        self._twist_inv = self._powers(self.psi_inv, n)
        # Per-stage twiddle tables for the cyclic FFT.
        self._stage_twiddles = self._build_stage_twiddles(omega)
        self._stage_twiddles_inv = self._build_stage_twiddles(self.omega_inv)

    def _powers(self, base: int, count: int) -> np.ndarray:
        out = np.empty(count, dtype=np.int64)
        acc = 1
        for i in range(count):
            out[i] = acc
            acc = (acc * base) % self.q
        return out

    def _build_stage_twiddles(self, omega: int):
        """Twiddles omega^(n/(2*half) * j) for each stage's half-size."""
        tables = []
        half = 1
        while half < self.n:
            w = mod_pow(omega, self.n // (2 * half), self.q)
            tables.append(self._powers(w, half))
            half *= 2
        return tables

    # -- core transforms -----------------------------------------------
    def _fft(self, values: np.ndarray, tables) -> np.ndarray:
        """In-place style iterative DIT cyclic FFT over Z_q (vectorized)."""
        q = self.q
        n = self.n
        # Bit-reverse reorder (the fancy-index gather already copies).
        a = values[..., _bit_reverse_cache(n)]
        half = 1
        stage = 0
        while half < n:
            tw = tables[stage]
            span = half * 2
            blocks = a.reshape(a.shape[:-1] + (n // span, span))
            left = blocks[..., :half].copy()
            right = (blocks[..., half:] * tw) % q
            blocks[..., :half] = (left + right) % q
            blocks[..., half:] = (left - right) % q
            a = blocks.reshape(a.shape)
            half = span
            stage += 1
        return a

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficient -> evaluation representation (negacyclic).

        Accepts arrays of shape (..., N); transforms along the last axis.
        """
        coeffs = np.asarray(coeffs, dtype=np.int64) % self.q
        twisted = (coeffs * self._twist) % self.q
        return self._fft(twisted, self._stage_twiddles)

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """Evaluation -> coefficient representation (negacyclic)."""
        evals = np.asarray(evals, dtype=np.int64) % self.q
        coeffs = self._fft(evals, self._stage_twiddles_inv)
        coeffs = (coeffs * self.n_inv) % self.q
        return (coeffs * self._twist_inv) % self.q

    def multiply(self, a_coeffs: np.ndarray, b_coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic product of two coefficient-form polynomials."""
        fa = self.forward(a_coeffs)
        fb = self.forward(b_coeffs)
        return self.inverse((fa * fb) % self.q)


_BITREV_CACHE = {}


def _bit_reverse_cache(n: int) -> np.ndarray:
    if n not in _BITREV_CACHE:
        from repro.utils.intmath import bit_reverse_indices

        _BITREV_CACHE[n] = bit_reverse_indices(n)
    return _BITREV_CACHE[n]


_GALOIS_EVAL_CACHE = {}


def galois_eval_permutation(n: int, exponent: int) -> np.ndarray:
    """Slot-index permutation realizing X -> X^t on evaluation-form data.

    Forward-transform bin ``k`` holds the evaluation of the polynomial
    at ``psi^(2k+1)``, so the Galois map sigma_t sends bin ``k`` to the
    value previously held at the bin whose odd exponent is
    ``t * (2k+1) mod 2N``.  Applying sigma_t in NTT form is therefore a
    pure gather ``evals[perm]`` — no transforms and no sign flips.
    Cached per ``(n, t)`` like the bit-reversal tables.
    """
    if exponent % 2 == 0:
        raise ValueError("automorphism exponent must be odd")
    key = (n, exponent % (2 * n))
    perm = _GALOIS_EVAL_CACHE.get(key)
    if perm is None:
        k = np.arange(n, dtype=np.int64)
        perm = (((key[1] * (2 * k + 1)) % (2 * n)) - 1) // 2
        _GALOIS_EVAL_CACHE[key] = perm
    return perm


def negacyclic_convolve_reference(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """O(N^2) schoolbook negacyclic convolution, used to validate the NTT."""
    a = np.asarray(a, dtype=object)
    b = np.asarray(b, dtype=object)
    n = len(a)
    out = [0] * n
    for i in range(n):
        ai = int(a[i])
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            term = ai * int(b[j])
            if k < n:
                out[k] = (out[k] + term) % q
            else:
                out[k - n] = (out[k - n] - term) % q
    return np.array([x % q for x in out], dtype=np.int64)
