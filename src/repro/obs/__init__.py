"""repro.obs — unified observability: tracing, metrics, noise telemetry.

Three zero-dependency pillars (see docs/observability.md):

- :mod:`repro.obs.tracing` — context-propagated span trees with ledger
  op-count attribution, JSONL and Chrome ``trace_event`` export;
- :mod:`repro.obs.metrics` — counters / gauges / histograms with a
  Prometheus text-exposition writer;
- :mod:`repro.obs.noise`   — level/scale drift at rescale / mod-down /
  bootstrap boundaries.

:mod:`repro.obs.summary` holds the one shared histogram/ledger
summarizer that ``OpLedger.snapshot`` and ``WorkerStats`` both consume.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.noise import NoiseMonitor
from repro.obs.summary import (
    merge_histogram_summaries,
    summarize_histogram,
    summarize_ledger,
)
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    chrome_trace,
    disable,
    enable,
    get_tracer,
    set_tracer,
    use_tracer,
    write_chrome_trace,
)

__all__ = [
    "MetricsRegistry",
    "NoiseMonitor",
    "merge_histogram_summaries",
    "summarize_histogram",
    "summarize_ledger",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "disable",
    "enable",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "write_chrome_trace",
]
