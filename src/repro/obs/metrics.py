"""Zero-dependency metrics registry with Prometheus text exposition.

Three instrument kinds, all label-aware:

- **counter** — monotone totals (``repro_serve_requests_total``);
- **gauge**   — point-in-time values (``repro_serve_queue_depth``);
- **histogram** — latency distributions backed by the same log2
  buckets as :class:`repro.backend.ledger.LatencyHistogram`, so serving
  telemetry and metrics exposition share one bucketing scheme.

Naming convention (docs/observability.md): ``repro_<area>_<what>``
with Prometheus unit suffixes (``_seconds``, ``_total``).  Labels are
passed as kwargs and serialize sorted, so the same series is the same
series regardless of call-site kwarg order.

Registries serialize to plain dicts (:meth:`MetricsRegistry.to_payload`)
so fork-mode workers can ship them over the existing pipe protocol; the
parent folds them with :meth:`MetricsRegistry.merge_payload` (counters
and histogram buckets sum; gauges sum — every gauge exported here is a
per-worker quantity like queue depth, for which the pool-level reading
is the sum across shards).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class MetricsRegistry:
    """A process-local collection of named metric series."""

    def __init__(self):
        #: name -> (kind, help)
        self._meta: Dict[str, Tuple[str, str]] = {}
        self._counters: Dict[str, Dict[_LabelKey, float]] = {}
        self._gauges: Dict[str, Dict[_LabelKey, float]] = {}
        self._histograms: Dict[str, Dict[_LabelKey, object]] = {}

    def _declare(self, name: str, kind: str, help: str) -> None:
        existing = self._meta.get(name)
        if existing is None:
            self._meta[name] = (kind, help)
        elif existing[0] != kind:
            raise ValueError(
                f"metric {name!r} already declared as {existing[0]}, "
                f"cannot redeclare as {kind}"
            )

    # -- instruments -------------------------------------------------------
    def counter(
        self, name: str, value: float = 1.0, help: str = "", **labels
    ) -> None:
        """Add ``value`` (>= 0) to the counter series ``name{labels}``."""
        if value < 0:
            raise ValueError(f"counter {name!r} cannot decrease")
        self._declare(name, "counter", help)
        series = self._counters.setdefault(name, {})
        key = _label_key(labels)
        series[key] = series.get(key, 0.0) + value

    def gauge(self, name: str, value: float, help: str = "", **labels) -> None:
        """Set the gauge series ``name{labels}`` to ``value``."""
        self._declare(name, "gauge", help)
        self._gauges.setdefault(name, {})[_label_key(labels)] = value

    def observe(
        self, name: str, seconds: float, help: str = "", **labels
    ) -> None:
        """Record one observation into the histogram ``name{labels}``."""
        from repro.backend.ledger import LatencyHistogram

        self._declare(name, "histogram", help)
        series = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        histogram = series.get(key)
        if histogram is None:
            histogram = series[key] = LatencyHistogram()
        histogram.observe(seconds)

    def record_histogram(self, name: str, histogram, help: str = "", **labels):
        """Fold an existing ``LatencyHistogram`` into a series (the
        serving runtime already owns per-op histograms; re-observing
        every sample would double the work)."""
        from repro.backend.ledger import LatencyHistogram

        self._declare(name, "histogram", help)
        series = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        mine = series.get(key)
        if mine is None:
            mine = series[key] = LatencyHistogram(
                base_seconds=histogram.base,
                num_buckets=len(histogram.buckets),
            )
        mine.merge(histogram)

    # -- reads -------------------------------------------------------------
    def counter_value(self, name: str, **labels) -> float:
        return self._counters.get(name, {}).get(_label_key(labels), 0.0)

    def gauge_value(self, name: str, **labels) -> Optional[float]:
        return self._gauges.get(name, {}).get(_label_key(labels))

    def histogram_value(self, name: str, **labels):
        return self._histograms.get(name, {}).get(_label_key(labels))

    @property
    def names(self) -> List[str]:
        return sorted(self._meta)

    # -- Prometheus text exposition ---------------------------------------
    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Histograms render with cumulative ``le`` buckets at the
        LatencyHistogram upper edges (``base * 2^(i+1)``) plus
        ``+Inf``, ``_sum``, and ``_count`` — directly scrapable.
        """
        lines: List[str] = []
        for name in sorted(self._meta):
            kind, help = self._meta[name]
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            if kind == "counter":
                for key, value in sorted(self._counters.get(name, {}).items()):
                    lines.append(f"{name}{_format_labels(key)} {_num(value)}")
            elif kind == "gauge":
                for key, value in sorted(self._gauges.get(name, {}).items()):
                    lines.append(f"{name}{_format_labels(key)} {_num(value)}")
            else:
                for key, hist in sorted(self._histograms.get(name, {}).items()):
                    cumulative = 0
                    for i, bucket_count in enumerate(hist.buckets):
                        cumulative += bucket_count
                        edge = hist.base * (2.0 ** (i + 1))
                        bucket_key = key + (("le", _num(edge)),)
                        lines.append(
                            f"{name}_bucket{_format_labels(bucket_key)} "
                            f"{cumulative}"
                        )
                    inf_key = key + (("le", "+Inf"),)
                    lines.append(
                        f"{name}_bucket{_format_labels(inf_key)} {hist.count}"
                    )
                    lines.append(
                        f"{name}_sum{_format_labels(key)} {_num(hist.total)}"
                    )
                    lines.append(
                        f"{name}_count{_format_labels(key)} {hist.count}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    # -- serialization (pipe protocol) ------------------------------------
    def to_payload(self) -> Dict:
        payload: Dict = {"meta": {}, "counters": {}, "gauges": {}, "histograms": {}}
        for name, (kind, help) in self._meta.items():
            payload["meta"][name] = [kind, help]
        for name, series in self._counters.items():
            payload["counters"][name] = [
                [list(map(list, key)), value] for key, value in series.items()
            ]
        for name, series in self._gauges.items():
            payload["gauges"][name] = [
                [list(map(list, key)), value] for key, value in series.items()
            ]
        for name, series in self._histograms.items():
            payload["histograms"][name] = [
                [
                    list(map(list, key)),
                    {
                        "base": hist.base,
                        "buckets": list(hist.buckets),
                        "count": hist.count,
                        "total": hist.total,
                    },
                ]
                for key, hist in series.items()
            ]
        return payload

    def merge_payload(self, payload: Dict) -> None:
        """Fold a serialized registry into this one (counters and
        histogram buckets sum; gauges sum across workers)."""
        from repro.backend.ledger import LatencyHistogram

        for name, (kind, help) in payload.get("meta", {}).items():
            self._declare(name, kind, help)
        for name, series in payload.get("counters", {}).items():
            mine = self._counters.setdefault(name, {})
            for raw_key, value in series:
                key = tuple(tuple(pair) for pair in raw_key)
                mine[key] = mine.get(key, 0.0) + value
        for name, series in payload.get("gauges", {}).items():
            mine = self._gauges.setdefault(name, {})
            for raw_key, value in series:
                key = tuple(tuple(pair) for pair in raw_key)
                mine[key] = mine.get(key, 0.0) + value
        for name, series in payload.get("histograms", {}).items():
            mine = self._histograms.setdefault(name, {})
            for raw_key, state in series:
                key = tuple(tuple(pair) for pair in raw_key)
                incoming = LatencyHistogram(
                    base_seconds=state["base"],
                    num_buckets=len(state["buckets"]),
                )
                incoming.buckets = list(state["buckets"])
                incoming.count = state["count"]
                incoming.total = state["total"]
                existing = mine.get(key)
                if existing is None:
                    mine[key] = incoming
                else:
                    existing.merge(incoming)

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_payload(other.to_payload())

    def reset(self) -> None:
        self._meta.clear()
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def _num(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)
