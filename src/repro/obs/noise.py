"""Noise-budget telemetry: level/scale drift at chain boundaries.

RNS-CKKS precision regressions are invisible in op counts — a program
can run the right number of rescales and still land at the wrong scale.
A :class:`NoiseMonitor` attached to a backend records, at every
rescale / mod-down / bootstrap boundary, the ciphertext's level and
scale before and after, and tracks:

- per-op boundary counts (``rescales`` / ``mod_downs`` / ``bootstraps``);
- the minimum level any ciphertext touched (how close the run came to
  exhausting the modulus chain);
- the maximum absolute log2 drift of the scale from the context's
  Delta (``max_scale_drift_log2`` — a precision regression shows up
  here before it shows up in decrypted values).

When a tracer is active, each boundary event also lands on the current
innermost span, so drift localizes to a layer (`linear/conv2`), not
just a run.  Recording is observe-only: levels and scales are read,
never written, so enabling the monitor cannot perturb bit-exactness.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

#: (op, level_before, level_after, drift_log2_after)
NoiseEvent = Tuple[str, int, int, float]

_BOUNDARY_OPS = ("rescale", "mod_down", "bootstrap")


class NoiseMonitor:
    """Accumulates level/scale drift at modulus-chain boundaries."""

    def __init__(self, delta_scale=None, keep_events: int = 0):
        #: the context's Delta (int/Fraction); drift is measured
        #: against it.  None disables drift (counts/levels only).
        self.delta_scale = delta_scale
        #: how many raw events to retain (0 = counts only; serving
        #: keeps 0, tests and the example keep a window).
        self.keep_events = keep_events
        self.counts: Dict[str, int] = {op: 0 for op in _BOUNDARY_OPS}
        self.min_level: Optional[int] = None
        self.max_scale_drift_log2 = 0.0
        self.events: List[NoiseEvent] = []

    def record(
        self,
        op: str,
        level_before: int,
        level_after: int,
        scale_before=None,
        scale_after=None,
    ) -> None:
        if op not in self.counts:
            self.counts[op] = 0
        self.counts[op] += 1
        if self.min_level is None or level_after < self.min_level:
            self.min_level = level_after
        drift = self._drift_log2(scale_after)
        if drift > self.max_scale_drift_log2:
            self.max_scale_drift_log2 = drift
        event: NoiseEvent = (op, level_before, level_after, drift)
        if self.keep_events:
            self.events.append(event)
            if len(self.events) > self.keep_events:
                del self.events[0]
        from repro.obs.tracing import get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            span = tracer.current_span
            if span is not None:
                span.add_noise(event)

    def _drift_log2(self, scale) -> float:
        if scale is None or not self.delta_scale:
            return 0.0
        try:
            ratio = float(scale / self.delta_scale)
        except OverflowError:
            return float("inf")
        if ratio <= 0.0:
            return float("inf")
        return abs(math.log2(ratio))

    # -- aggregation -------------------------------------------------------
    @property
    def rescales(self) -> int:
        return self.counts["rescale"]

    @property
    def mod_downs(self) -> int:
        return self.counts["mod_down"]

    @property
    def bootstraps(self) -> int:
        return self.counts["bootstrap"]

    def stats(self) -> Dict:
        return {
            "rescales": self.rescales,
            "mod_downs": self.mod_downs,
            "bootstraps": self.bootstraps,
            "min_level": self.min_level,
            "max_scale_drift_log2": self.max_scale_drift_log2,
        }

    def merge(self, other: "NoiseMonitor") -> None:
        for op, count in other.counts.items():
            self.counts[op] = self.counts.get(op, 0) + count
        if other.min_level is not None and (
            self.min_level is None or other.min_level < self.min_level
        ):
            self.min_level = other.min_level
        if other.max_scale_drift_log2 > self.max_scale_drift_log2:
            self.max_scale_drift_log2 = other.max_scale_drift_log2

    def reset(self) -> None:
        self.counts = {op: 0 for op in _BOUNDARY_OPS}
        self.min_level = None
        self.max_scale_drift_log2 = 0.0
        self.events = []

    def __repr__(self) -> str:
        return (
            f"NoiseMonitor(rescales={self.rescales}, "
            f"mod_downs={self.mod_downs}, boots={self.bootstraps}, "
            f"min_level={self.min_level}, "
            f"drift_log2={self.max_scale_drift_log2:.3g})"
        )
