"""Shared telemetry summarizers.

Before this module, ``OpLedger.snapshot()`` / ``LatencyHistogram.
snapshot()`` and ``WorkerStats`` each re-derived per-op latency
summaries (count-weighted means, percentile merges) with their own
arithmetic.  Both now consume these functions, so the summary shape —
and the merge semantics — live in exactly one place.

A histogram summary is the plain dict
``{"count", "mean_seconds", "p50_seconds", "p99_seconds"}``; merging
two summaries is count-weighted on the mean and takes the max of each
percentile (the conservative bound: the merged distribution's true
percentile cannot exceed the max of the parts' bucket upper edges).
"""

from __future__ import annotations

from typing import Dict


def summarize_histogram(histogram) -> Dict[str, float]:
    """The canonical summary of one ``LatencyHistogram``."""
    return {
        "count": histogram.count,
        "mean_seconds": histogram.mean,
        "p50_seconds": histogram.quantile(0.5),
        "p99_seconds": histogram.quantile(0.99),
    }


def merge_histogram_summaries(
    a: Dict[str, float], b: Dict[str, float]
) -> Dict[str, float]:
    """Merge two histogram summaries (count-weighted mean, max
    percentiles).  Used when only summaries — not the underlying
    buckets — survived serialization (fork-mode worker payloads)."""
    total = a["count"] + b["count"]
    if total:
        mean = (
            a["mean_seconds"] * a["count"] + b["mean_seconds"] * b["count"]
        ) / total
    else:
        mean = 0.0
    return {
        "count": total,
        "mean_seconds": mean,
        "p50_seconds": max(a["p50_seconds"], b["p50_seconds"]),
        "p99_seconds": max(a["p99_seconds"], b["p99_seconds"]),
    }


def summarize_ledger(ledger) -> Dict[str, float]:
    """The canonical summary of one ``OpLedger`` (per-op counts, total
    modeled seconds, rotation total, active kernel backend)."""
    from repro.kernels import active_backend

    out: Dict[str, float] = {
        op: ledger.counts[op] for op in ledger.TRACKED_OPS
    }
    out["seconds"] = ledger.seconds
    out["rotations"] = ledger.rotations
    # Which kernel backend produced these charges (numpy / threaded /
    # numba) — bit-exact across backends, but runs must record it.
    out["kernel_backend"] = active_backend()
    return out
