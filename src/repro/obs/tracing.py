"""Structured span tracing: context-propagated, sampling-aware, cheap.

One :class:`Tracer` per process (installed with :func:`set_tracer` /
:func:`use_tracer`) records a tree of :class:`Span` objects.  Spans are
opened with ``tracer.span(name, ...)`` as context managers and nest via
an explicit stack, so a serving batch renders as

    serve.batch
    ├── encrypt
    ├── execute
    │   ├── linear/conv1          ops={hrot_hoisted: 12, pmult: 20, ...}
    │   ├── act/act1
    │   └── ...
    └── decrypt

Design constraints (docs/observability.md):

- **Disabled tracing is a no-op object, not a branch forest.**  The
  module-level default is :data:`NULL_TRACER`; its ``span()`` returns a
  shared :data:`NULL_SPAN` whose enter/exit/set do nothing.  Hot paths
  that would pay even for building the kwargs dict guard with one
  ``tracer.enabled`` attribute read (the executor's fast path).  The
  overhead of the disabled path is gated in CI
  (``tracing_overhead`` section of ``BENCH_ckks_hotpath.json``).
- **Observe-only.**  Spans read ledgers, levels, and scales; they never
  touch ciphertexts.  Bit-exactness with tracing on is asserted by the
  tier-1 ``REPRO_TRACE=on`` CI leg.
- **Op-count attribution.**  A span opened with ``ledger=`` snapshots
  the ledger's counters at entry and stores the delta at exit, so
  per-span op counts reconcile *exactly* against ``OpLedger`` totals.
- **Sampling.**  ``sample_rate`` applies to *root* spans via
  deterministic systematic sampling (every ``1/rate``-th root); an
  unsampled root skips its entire subtree.
- **Exportable.**  :meth:`Tracer.drain` returns JSON-safe span payloads;
  :func:`chrome_trace` converts per-worker tracks into Chrome
  ``trace_event`` JSON loadable in Perfetto (one thread track per pool
  shard); :meth:`Tracer.to_jsonl` emits one flattened record per line.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, List, Optional


class Span:
    """One timed, attributed region of execution."""

    __slots__ = (
        "name",
        "category",
        "start",
        "end",
        "attrs",
        "children",
        "ops",
        "seconds",
        "noise",
        "_counts0",
        "_seconds0",
        "_ledger",
    )

    def __init__(self, name: str, category: str, attrs: Optional[Dict] = None):
        self.name = name
        self.category = category
        self.start = 0.0
        self.end = 0.0
        self.attrs = attrs or {}
        self.children: List[Span] = []
        #: op -> count delta of the bound ledger over this span's lifetime.
        self.ops: Dict[str, int] = {}
        #: modeled seconds delta of the bound ledger.
        self.seconds = 0.0
        #: noise events recorded while this span was innermost
        #: (op, level_before, level_after, drift_log2) tuples.
        self.noise: List = []
        self._counts0 = None
        self._seconds0 = 0.0
        self._ledger = None

    # -- annotation (no-op safe: NULL_SPAN mirrors these) ------------------
    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def add_noise(self, event) -> None:
        self.noise.append(event)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def child_seconds(self) -> float:
        """Wall-clock covered by direct children (coverage audits)."""
        return sum(c.duration for c in self.children)

    # -- serialization -----------------------------------------------------
    def to_payload(self) -> Dict:
        payload = {
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }
        if self.ops:
            payload["ops"] = dict(self.ops)
        if self.seconds:
            payload["modeled_seconds"] = self.seconds
        if self.noise:
            payload["noise"] = [list(event) for event in self.noise]
        if self.children:
            payload["children"] = [c.to_payload() for c in self.children]
        return payload

    @classmethod
    def from_payload(cls, payload: Dict) -> "Span":
        span = cls(payload["name"], payload.get("category", ""))
        span.start = payload["start"]
        span.end = payload["end"]
        span.attrs = dict(payload.get("attrs", {}))
        span.ops = dict(payload.get("ops", {}))
        span.seconds = payload.get("modeled_seconds", 0.0)
        span.noise = [tuple(event) for event in payload.get("noise", [])]
        span.children = [
            cls.from_payload(c) for c in payload.get("children", ())
        ]
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"{len(self.children)} children)"
        )


class _SpanContext:
    """The context manager ``Tracer.span`` returns (one per call)."""

    __slots__ = ("tracer", "name", "category", "ledger", "attrs", "span")

    def __init__(self, tracer, name, category, ledger, attrs):
        self.tracer = tracer
        self.name = name
        self.category = category
        self.ledger = ledger
        self.attrs = attrs
        self.span = None

    def __enter__(self):
        tracer = self.tracer
        if tracer._skipping:
            tracer._skipping += 1
            return NULL_SPAN
        if not tracer._stack and not tracer._sample_root():
            tracer._skipping = 1
            return NULL_SPAN
        span = Span(self.name, self.category, self.attrs)
        ledger = self.ledger
        if ledger is not None:
            span._ledger = ledger
            span._counts0 = dict(ledger.counts)
            span._seconds0 = ledger.seconds
        tracer._stack.append(span)
        span.start = tracer.clock()
        self.span = span
        return span

    def __exit__(self, *exc):
        tracer = self.tracer
        if self.span is None:
            if tracer._skipping:
                tracer._skipping -= 1
            return False
        span = tracer._stack.pop()
        span.end = tracer.clock()
        ledger = span._ledger
        if ledger is not None:
            base = span._counts0
            span.ops = {
                op: count - base.get(op, 0)
                for op, count in ledger.counts.items()
                if count != base.get(op, 0)
            }
            span.seconds = ledger.seconds - span._seconds0
            span._ledger = span._counts0 = None
        tracer._attach(span)
        return False


class Tracer:
    """An enabled tracer: records sampled span trees per process/worker.

    Args:
        sample_rate: fraction of *root* spans recorded (systematic:
            every ``1/rate``-th root; children follow their root).
        max_roots: bound on retained root spans; further roots are
            dropped (counted in :attr:`dropped_roots`) so a long-lived
            worker cannot grow without bound between flushes.
        clock: the time source (``time.perf_counter``).  All span
            timestamps share it; :attr:`clock_offset` maps it onto the
            Unix epoch so traces from different processes align.
    """

    enabled = True

    def __init__(
        self,
        sample_rate: float = 1.0,
        max_roots: int = 10_000,
        clock=time.perf_counter,
    ):
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        if max_roots < 1:
            raise ValueError("max_roots must be at least 1")
        self.sample_rate = sample_rate
        self.max_roots = max_roots
        self.clock = clock
        self.clock_offset = time.time() - clock()
        self.roots: List[Span] = []
        self.dropped_roots = 0
        self._stack: List[Span] = []
        self._skipping = 0
        self._acc = 0.0

    # -- span lifecycle ----------------------------------------------------
    def span(
        self, name: str, category: str = "", ledger=None, **attrs
    ) -> _SpanContext:
        """Open a nested span (use as a context manager)."""
        return _SpanContext(self, name, category, ledger, attrs)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        category: str = "",
        **attrs,
    ) -> Optional[Span]:
        """Record an externally-timed span (async request lifetimes).

        ``start``/``end`` must come from this tracer's :attr:`clock`.
        The span lands under the current innermost span, or as a root
        (root sampling applies, same as ``span()``).
        """
        if self._skipping:
            return None
        if not self._stack and not self._sample_root():
            return None
        span = Span(name, category, attrs)
        span.start = start
        span.end = end
        self._attach(span)
        return span

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def _sample_root(self) -> bool:
        self._acc += self.sample_rate
        if self._acc < 1.0 - 1e-12:
            return False
        self._acc -= 1.0
        return True

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        elif len(self.roots) < self.max_roots:
            self.roots.append(span)
        else:
            self.dropped_roots += 1

    # -- export ------------------------------------------------------------
    def drain(self) -> List[Dict]:
        """Return all finished root spans as payloads and clear them.

        The flush primitive: process workers drain on ``stats`` /
        ``drain`` / ``close`` so telemetry recorded after the last step
        is never lost, and repeated flushes never duplicate spans.
        """
        payloads = [span.to_payload() for span in self.roots]
        self.roots = []
        return payloads

    def reset(self) -> None:
        self.roots = []
        self._stack = []
        self._skipping = 0
        self._acc = 0.0
        self.dropped_roots = 0

    def to_jsonl(self) -> str:
        """One flattened JSON record per span, depth-first."""
        lines: List[str] = []

        def walk(span: Span, depth: int, parent: Optional[str]):
            record = {
                "name": span.name,
                "category": span.category,
                "depth": depth,
                "parent": parent,
                "start": span.start + self.clock_offset,
                "duration_seconds": span.duration,
                "attrs": span.attrs,
            }
            if span.ops:
                record["ops"] = span.ops
            if span.seconds:
                record["modeled_seconds"] = span.seconds
            if span.noise:
                record["noise"] = [list(event) for event in span.noise]
            lines.append(json.dumps(record, sort_keys=True, default=str))
            for child in span.children:
                walk(child, depth + 1, span.name)

        for root in self.roots:
            walk(root, 0, None)
        return "\n".join(lines) + ("\n" if lines else "")


class _NullSpan:
    """The shared do-nothing span the disabled path hands out."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self

    def add_noise(self, event) -> None:
        pass

    @property
    def duration(self) -> float:
        return 0.0


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is a class attribute so the hot-path guard
    ``if tracer.enabled`` is one attribute read with no descriptor
    indirection.
    """

    enabled = False
    clock = staticmethod(time.perf_counter)
    clock_offset = 0.0
    sample_rate = 0.0
    dropped_roots = 0

    @property
    def roots(self):
        return []

    @property
    def current_span(self):
        return None

    def span(self, name, category="", ledger=None, **attrs):
        return NULL_SPAN

    def record_span(self, name, start, end, category="", **attrs):
        return None

    def drain(self):
        return []

    def reset(self):
        pass

    def to_jsonl(self):
        return ""


NULL_SPAN = _NullSpan()
NULL_TRACER = NullTracer()

_active = NULL_TRACER


def get_tracer():
    """The process-active tracer (the :data:`NULL_TRACER` by default)."""
    return _active


def set_tracer(tracer) -> None:
    """Install ``tracer`` as the process-active tracer (None disables)."""
    global _active
    _active = NULL_TRACER if tracer is None else tracer


def enable(sample_rate: float = 1.0, max_roots: int = 10_000) -> Tracer:
    """Install and return a fresh enabled :class:`Tracer`."""
    tracer = Tracer(sample_rate=sample_rate, max_roots=max_roots)
    set_tracer(tracer)
    return tracer


def disable() -> None:
    set_tracer(None)


@contextmanager
def use_tracer(tracer):
    """Temporarily install ``tracer`` (workers scope their own tracer
    around each batch so nested library spans land on the right tree)."""
    global _active
    previous = _active
    _active = NULL_TRACER if tracer is None else tracer
    try:
        yield _active
    finally:
        _active = previous


# -- Chrome trace_event export ----------------------------------------------


def chrome_trace(
    tracks: List[Dict],
    process_name: str = "repro.serve",
) -> Dict:
    """Convert per-worker span tracks into Chrome ``trace_event`` JSON.

    Args:
        tracks: one dict per track: ``{"tid": int, "name": str,
            "spans": [span payloads], "clock_offset": float}``.  The
            clock offset (``time.time() - perf_counter()`` of the
            producing process) aligns every track on the Unix epoch so
            a multi-process pool renders coherently.

    Load the result in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``: one thread lane per pool shard.
    """
    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]

    def emit(span: Dict, tid: int, offset: float) -> None:
        start_us = (span["start"] + offset) * 1e6
        dur_us = max(0.0, span["end"] - span["start"]) * 1e6
        args = dict(span.get("attrs", {}))
        if span.get("ops"):
            args["ops"] = span["ops"]
        if span.get("modeled_seconds"):
            args["modeled_seconds"] = span["modeled_seconds"]
        if span.get("noise"):
            args["noise"] = span["noise"]
        events.append(
            {
                "name": span["name"],
                "cat": span.get("category") or "span",
                "ph": "X",
                "ts": start_us,
                "dur": dur_us,
                "pid": 0,
                "tid": tid,
                "args": {k: _json_safe(v) for k, v in args.items()},
            }
        )
        for child in span.get("children", ()):
            emit(child, tid, offset)

    for track in tracks:
        tid = int(track["tid"])
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": track.get("name", f"worker-{tid}")},
            }
        )
        offset = float(track.get("clock_offset", 0.0))
        for span in track.get("spans", ()):
            emit(span, tid, offset)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


def write_chrome_trace(path: str, tracks: List[Dict], **kwargs) -> str:
    """Write :func:`chrome_trace` JSON to ``path``; returns the path."""
    with open(path, "w") as f:
        json.dump(chrome_trace(tracks, **kwargs), f)
    return path
