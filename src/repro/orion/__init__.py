"""The Orion user-facing API (paper Section 6, Listing 1).

Usage mirrors the paper exactly:

    import repro.orion.nn as on

    class BasicBlock(on.Module):
        def __init__(self, ci, co, stride=1):
            super().__init__()
            self.conv1 = on.Conv2d(ci, co, 3, stride, 1)
            self.bn1 = on.BatchNorm2d(co)
            self.act1 = on.ReLU(degrees=[15, 15, 27])
            ...

Networks train with the cleartext engine (repro.nn / repro.autograd),
then ``repro.orion.net.OrionNetwork`` handles ``fit`` (range
estimation), ``compile`` (packing + bootstrap placement + scale
management), and encrypted inference on any FHE backend.
"""

from repro.orion import nn
from repro.orion.net import OrionNetwork

__all__ = ["nn", "OrionNetwork"]
