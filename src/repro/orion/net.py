"""OrionNetwork: the fit / compile / encrypted-inference pipeline.

Mirrors the paper's user workflow (Section 6): train the network with
normal scripts, call ``fit`` with (a sample of) the training data for
range estimation, ``compile`` once per parameter set, then run
encrypted inferences on any backend and validate against the cleartext
forward pass.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.backend.costs import CostModel
from repro.ckks.params import CkksParameters
from repro.core.compiler import CompiledNetwork, OrionCompiler


class OrionNetwork:
    """Wraps an orion module with the compile/run lifecycle."""

    def __init__(self, module, input_shape: Tuple[int, int, int]):
        self.module = module
        self.input_shape = tuple(input_shape)
        self._calibration: Optional[List[np.ndarray]] = None

    # -- paper API ---------------------------------------------------------
    def fit(self, batches: Iterable[np.ndarray], max_batches: int = 8) -> None:
        """Record calibration data for range estimation (net.fit())."""
        collected = []
        for index, batch in enumerate(batches):
            if index >= max_batches:
                break
            if isinstance(batch, tuple):
                batch = batch[0]
            collected.append(np.asarray(batch))
        if not collected:
            raise ValueError("fit() needs at least one calibration batch")
        self._calibration = collected

    def compile(
        self,
        params: CkksParameters,
        cost_model: Optional[CostModel] = None,
        mode: str = "materialize",
        entry_level: Optional[int] = None,
        optimize: Optional[bool] = None,
    ) -> CompiledNetwork:
        compiler = OrionCompiler(params, cost_model, mode=mode, optimize=optimize)
        return compiler.compile(
            self.module,
            self.input_shape,
            calibration_batches=self._calibration,
            entry_level=entry_level,
        )

    # -- serving (docs/serving.md) -------------------------------------------
    def export(
        self,
        path: str,
        params: CkksParameters,
        cost_model: Optional[CostModel] = None,
        entry_level: Optional[int] = None,
        optimize: Optional[bool] = None,
    ):
        """Compile once and write a serving artifact to ``path``.

        Returns the :class:`repro.serve.artifact.ServingArtifact`.  This
        is the *offline* half of compile-once/serve-many: workers then
        ``repro.serve.load_artifact(path)`` and serve without ever
        touching the compiler or the planner.
        """
        compiled = self.compile(
            params, cost_model, entry_level=entry_level, optimize=optimize
        )
        return compiled.export(path, params)

    def export_delta(
        self,
        path: str,
        base_path: str,
        params: CkksParameters,
        cost_model: Optional[CostModel] = None,
        entry_level: Optional[int] = None,
        optimize: Optional[bool] = None,
    ):
        """Compile and write a *delta* artifact against ``base_path``.

        The weight-update half of compile-once/serve-many: after
        retraining the same architecture, export only the pre-encoded
        tables that changed.  Workers merge it with
        :func:`repro.serve.apply_artifact_delta` and hot-swap the
        running pool via ``Server.reload()``.  Fails loudly if the
        compile is not structurally compatible with the base.
        """
        from repro.serve.artifact import save_artifact_delta

        compiled = self.compile(
            params, cost_model, entry_level=entry_level, optimize=optimize
        )
        return save_artifact_delta(compiled, params, base_path, path)

    def serve(
        self,
        params: CkksParameters,
        backend=None,
        cost_model: Optional[CostModel] = None,
        **server_kwargs,
    ):
        """Compile in-process and stand up an :class:`InferenceServer`.

        Convenience for single-process deployments and notebooks; the
        production path is :meth:`export` + ``repro.serve.load_artifact``
        on each worker.
        """
        from repro.backend.toy import ToyBackend
        from repro.ckks.keys import KeyManifest
        from repro.serve.artifact import ServingArtifact
        from repro.serve.runtime import InferenceServer

        compiled = self.compile(params, cost_model)
        manifest = KeyManifest.for_program(params, compiled.program)
        artifact = ServingArtifact(
            manifest=manifest,
            program=compiled.program,
            layer_reports=[],
            summary=compiled.summary(),
        )
        if backend is None:
            backend = ToyBackend(params)
        return InferenceServer(artifact, backend, **server_kwargs)

    # -- cleartext reference -------------------------------------------------
    def forward_cleartext(self, images: np.ndarray) -> np.ndarray:
        """Exact (non-polynomial) forward pass for validation."""
        self.module.eval()
        batched = images if images.ndim == 4 else images[None]
        with no_grad():
            out = self.module(Tensor(batched))
        result = out.data
        return result if images.ndim == 4 else result[0]

    @staticmethod
    def precision_bits(fhe_output: np.ndarray, clear_output: np.ndarray) -> float:
        """Mean output precision -log2(mean |difference|) (Section 7)."""
        eps = float(np.mean(np.abs(fhe_output - clear_output)))
        return float(-np.log2(max(eps, 1e-300)))
