"""orion.nn: PyTorch-style modules carrying FHE compilation metadata.

Each leaf module provides (a) exact cleartext semantics (training and
validation run through repro.nn), and (b) the metadata the Orion
compiler needs: its kind, multiplicative depth, and any polynomial
approximation configuration.  ``__call__`` additionally records the
module into an active trace (repro.trace) so the compiler can recover
the layer DAG.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro import nn as base_nn
from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.trace.graph import TracedValue, record_node, trace_active


class Module(base_nn.Module):
    """Base class for all orion modules.

    Subclass this (like paper Listing 1) to build networks.  Leaf
    modules set ``orion_kind``; containers leave it ``None`` and simply
    compose children in ``forward``.
    """

    orion_kind: Optional[str] = None  # None = container

    def __call__(self, *args):
        if self.orion_kind is None or trace_active() is None:
            return self.forward(*args)
        values: List[TracedValue] = []
        for arg in args:
            if isinstance(arg, TracedValue):
                values.append(arg)
            else:
                raise TypeError(
                    f"{type(self).__name__} received a raw tensor during "
                    "tracing; all values must flow from the traced input"
                )
        out_tensor = self.forward(*(v.tensor for v in values))
        return record_node(self, values, out_tensor)


# ---------------------------------------------------------------------------
# Linear layers (each consumes exactly one level; paper Section 4)
# ---------------------------------------------------------------------------
class Conv2d(Module, base_nn.Conv2d):
    """Convolution with arbitrary stride/padding/dilation/groups."""

    orion_kind = "linear"

    def __init__(self, in_channels, out_channels, kernel_size, stride=1, padding=0,
                 dilation=1, groups=1, bias=True):
        base_nn.Conv2d.__init__(
            self, in_channels, out_channels, kernel_size, stride, padding,
            dilation, groups, bias,
        )


class Linear(Module, base_nn.Linear):
    orion_kind = "linear"

    def __init__(self, in_features, out_features, bias=True):
        base_nn.Linear.__init__(self, in_features, out_features, bias)


class AvgPool2d(Module, base_nn.AvgPool2d):
    orion_kind = "linear"

    def __init__(self, kernel_size, stride=None):
        base_nn.AvgPool2d.__init__(self, kernel_size, stride)


class AdaptiveAvgPool2d(Module, base_nn.AdaptiveAvgPool2d):
    orion_kind = "linear"

    def __init__(self, output_size=1):
        base_nn.AdaptiveAvgPool2d.__init__(self, output_size)


class BatchNorm2d(Module, base_nn.BatchNorm2d):
    """Batch norm; folded into the adjacent convolution at compile time
    so it consumes no level (paper Section 5.1 counts linear layers as
    one level each — conv+bn together form one linear layer)."""

    orion_kind = "batchnorm"

    def __init__(self, num_features, eps=1e-5, momentum=0.1):
        base_nn.BatchNorm2d.__init__(self, num_features, eps, momentum)


class BatchNorm1d(Module, base_nn.BatchNorm1d):
    """Per-feature batch norm; folded into the adjacent dense Linear at
    compile time exactly like BatchNorm2d folds into Conv2d."""

    orion_kind = "batchnorm"

    def __init__(self, num_features, eps=1e-5, momentum=0.1):
        base_nn.BatchNorm1d.__init__(self, num_features, eps, momentum)


class Flatten(Module, base_nn.Flatten):
    """Layout-only: flattening is free under packed layouts."""

    orion_kind = "reshape"


class Roll(Module):
    """Cyclic slot rotation by ``shift`` (positive = leftward, matching
    the backend's ``rotate`` convention: slot i reads slot i + shift).

    Cleartext semantics roll the flattened feature vector; under FHE
    this lowers to one hoisted Galois rotation.  The graph optimizer
    hoists identical rolls across fork branches and cancels
    roll/unroll pairs.
    """

    orion_kind = "rotate"

    def __init__(self, shift: int):
        super().__init__()
        self.shift = int(shift)

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        flat = np.roll(x.data.reshape(batch, -1), -self.shift, axis=1)
        data = flat.reshape(x.shape)
        shift = self.shift

        def backward(grad):
            if x.requires_grad:
                rolled = np.roll(grad.reshape(batch, -1), shift, axis=1)
                x._accumulate(rolled.reshape(x.shape))

        return Tensor._make(np.asarray(data), (x,), backward)


class Add(Module):
    """Elementwise join for residual connections (paper Listing 1)."""

    orion_kind = "add"

    def forward(self, a: Tensor, b: Tensor) -> Tensor:
        return a + b


# ---------------------------------------------------------------------------
# Activations (polynomial evaluations under FHE; paper Sections 6-7)
# ---------------------------------------------------------------------------
class _ActivationBase(Module):
    """Shared machinery for polynomially-approximated activations.

    Cleartext forward is the *exact* function (training matches normal
    practice); the compiler swaps in the fitted polynomial.  Range
    estimation records the observed input range during ``fit``.
    """

    orion_kind = "poly"

    def __init__(self):
        super().__init__()
        self.observed_max: float = 0.0
        self._recording: bool = False

    def start_range_recording(self):
        self.observed_max = 0.0
        self._recording = True

    def stop_range_recording(self):
        self._recording = False

    def _observe(self, x: Tensor) -> None:
        if self._recording:
            peak = float(np.max(np.abs(x.data))) if x.size else 0.0
            self.observed_max = max(self.observed_max, peak)

    def exact_fn(self, values: np.ndarray) -> np.ndarray:
        """The true activation on a numpy array (for fitting)."""
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError


class ReLU(_ActivationBase):
    """ReLU via composite minimax sign polynomials (paper Section 7).

    ``degrees`` configures the composition (default [15, 15, 27] after
    Lee et al. [53]); total depth = sum(ceil(log2(d+1))) + 1 for the
    final multiply, i.e. 14 for the default.
    """

    orion_kind = "relu"

    def __init__(self, degrees: Sequence[int] = (15, 15, 27)):
        super().__init__()
        self.degrees = tuple(degrees)

    def exact_fn(self, values):
        return np.maximum(values, 0.0)

    def forward(self, x: Tensor) -> Tensor:
        self._observe(x)
        return F.relu(x)


class SiLU(_ActivationBase):
    """SiLU approximated by one Chebyshev polynomial of ``degree``."""

    def __init__(self, degree: int = 127):
        super().__init__()
        self.degree = degree

    def exact_fn(self, values):
        return values / (1.0 + np.exp(-values))

    def forward(self, x: Tensor) -> Tensor:
        self._observe(x)
        return F.silu(x)


class Square(_ActivationBase):
    """x^2: exact degree-2 polynomial (MNIST networks, paper Table 2)."""

    def __init__(self):
        super().__init__()
        self.degree = 2

    def exact_fn(self, values):
        return values * values

    def forward(self, x: Tensor) -> Tensor:
        self._observe(x)
        return F.square(x)


class Activation(_ActivationBase):
    """Arbitrary user activation fit with a degree-``degree`` Chebyshev
    polynomial (paper Section 6: extending support "is straightforward
    and follows a process similar to defining custom PyTorch modules")."""

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray], degree: int = 31,
                 name: str = "custom"):
        super().__init__()
        self.fn = fn
        self.degree = degree
        self.custom_name = name

    def exact_fn(self, values):
        return self.fn(values)

    def forward(self, x: Tensor) -> Tensor:
        self._observe(x)
        data = self.fn(x.data)
        out = Tensor._make(np.asarray(data), (x,), _numeric_backward(self.fn, x))
        return out


def _numeric_backward(fn, x: Tensor, eps: float = 1e-5):
    def backward(grad):
        if x.requires_grad:
            deriv = (fn(x.data + eps) - fn(x.data - eps)) / (2 * eps)
            x._accumulate(grad * deriv)

    return backward


# Re-export containers so models can be written entirely against this module.
Sequential = base_nn.Sequential
