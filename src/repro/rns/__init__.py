"""Residue Number System arithmetic for CKKS polynomials.

A CKKS polynomial with a huge modulus Q = prod(q_i) is stored as a
matrix of shape (num_limbs, N): one row of small residues per prime
(paper Section 2.4).  Addition and multiplication act limb-wise; the
expensive cross-limb operations (rescale, mod-down, fast basis
conversion, CRT reconstruction) live here too.  All hot paths are
limb-batched int64 numpy (the chain-level NTT engine, broadcastable
moduli columns, tensorized divide-and-round); exact big-integer CRT is
kept only as the validation reference.
"""

from repro.rns.basis import RnsBasis
from repro.rns.poly import RnsPolynomial

__all__ = ["RnsBasis", "RnsPolynomial"]
