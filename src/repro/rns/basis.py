"""RNS basis: a chain of NTT-friendly primes with shared tables.

Besides the per-prime :class:`NttContext` tables, the basis owns one
:class:`NttChainEngine` that transforms whole ``(L, N)`` residue
matrices in a single vectorized pass (``forward_chain``/``inverse_chain``),
plus caches for the ``(L, 1)`` moduli columns and modular-inverse
columns that every pointwise ring operation broadcasts against.  The
exact big-integer CRT stays available for validation; the hot paths
(:meth:`convert_residues`) never leave int64.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.ntt import NttChainEngine, NttContext
from repro.utils.intmath import mod_inverse


class RnsBasis:
    """A fixed ordered chain of primes ``(q_0, ..., q_L[, p_special...])``.

    The basis owns one :class:`NttContext` per prime and the precomputed
    CRT constants needed for exact reconstruction.  Polynomials refer to
    a *prefix* of the chain via their limb count — dropping limbs is how
    levels are consumed (paper Section 2.4).

    Args:
        primes: the full modulus chain, data primes first, any special
            (key-switching) primes last.
        ring_degree: polynomial ring degree N (power of two).
        num_special: how many trailing primes are key-switching primes
            that never hold message data.
    """

    def __init__(self, primes: Sequence[int], ring_degree: int, num_special: int = 0):
        if len(set(primes)) != len(primes):
            raise ValueError("primes in an RNS basis must be distinct")
        if num_special >= len(primes):
            raise ValueError("need at least one data prime")
        self.primes: Tuple[int, ...] = tuple(int(q) for q in primes)
        self.ring_degree = ring_degree
        self.num_special = num_special
        self.ntts: Dict[int, NttContext] = {
            q: NttContext(q, ring_degree) for q in self.primes
        }
        self.engine = NttChainEngine([self.ntts[q] for q in self.primes])
        self._prime_index: Dict[int, int] = {q: i for i, q in enumerate(self.primes)}
        self._inv_cache: Dict[Tuple[int, int], int] = {}
        self._rows_cache: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        self._mod_col_cache: Dict[Tuple[int, ...], np.ndarray] = {}
        self._inv_col_cache: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        self._convert_cache: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], tuple] = {}

    # -- structure -----------------------------------------------------
    @property
    def num_data_primes(self) -> int:
        return len(self.primes) - self.num_special

    @property
    def special_primes(self) -> Tuple[int, ...]:
        if self.num_special == 0:
            return ()
        return self.primes[-self.num_special:]

    def data_primes(self, num_limbs: int) -> Tuple[int, ...]:
        """The first ``num_limbs`` data primes."""
        if num_limbs > self.num_data_primes:
            raise ValueError("requested more limbs than data primes")
        return self.primes[:num_limbs]

    def modulus(self, num_limbs: int) -> int:
        """Q_l = product of the first ``num_limbs`` data primes."""
        q = 1
        for prime in self.data_primes(num_limbs):
            q *= prime
        return q

    def special_modulus(self) -> int:
        p = 1
        for prime in self.special_primes:
            p *= prime
        return p

    def inverse(self, value: int, prime: int) -> int:
        """Cached modular inverse of ``value`` modulo ``prime``."""
        key = (value % prime, prime)
        if key not in self._inv_cache:
            self._inv_cache[key] = mod_inverse(value % prime, prime)
        return self._inv_cache[key]

    # -- broadcast-column caches ---------------------------------------
    def moduli_column(self, primes: Sequence[int]) -> np.ndarray:
        """Cached ``(L, 1)`` int64 column of the given prime chain."""
        key = tuple(primes)
        col = self._mod_col_cache.get(key)
        if col is None:
            col = np.array(key, dtype=np.int64)[:, None]
            col.setflags(write=False)
            self._mod_col_cache[key] = col
        return col

    def inverse_column(self, value: int, primes: Sequence[int]) -> np.ndarray:
        """Cached ``(L, 1)`` column of ``value^-1 mod q`` per prime."""
        key = (value, tuple(primes))
        col = self._inv_col_cache.get(key)
        if col is None:
            col = np.array(
                [self.inverse(value, q) for q in key[1]], dtype=np.int64
            )[:, None]
            col.setflags(write=False)
            self._inv_col_cache[key] = col
        return col

    # -- chain-level NTT ------------------------------------------------
    def chain_rows(self, primes: Sequence[int]) -> Tuple[int, ...]:
        """Engine row indices for a sub-chain of this basis (cached)."""
        key = tuple(primes)
        rows = self._rows_cache.get(key)
        if rows is None:
            rows = tuple(self._prime_index[q] for q in key)
            self._rows_cache[key] = rows
        return rows

    def forward_chain(self, data: np.ndarray, primes: Sequence[int]) -> np.ndarray:
        """Batched coefficient -> NTT transform of all limb rows at once.

        ``data`` has shape ``(..., len(primes), N)``; leading dimensions
        (e.g. key-switch digits) are transformed in the same pass.
        """
        return self.engine.forward(data, self.chain_rows(primes))

    def inverse_chain(self, data: np.ndarray, primes: Sequence[int]) -> np.ndarray:
        """Batched NTT -> coefficient transform of all limb rows at once."""
        return self.engine.inverse(data, self.chain_rows(primes))

    # -- divide-and-round (rescale / mod-down core) ---------------------
    def divide_round_last(
        self, data: np.ndarray, primes: Sequence[int], is_ntt: bool
    ) -> np.ndarray:
        """Drop the last limb, dividing by its prime with exact rounding.

        Computes ``round(x / q_last)`` limb-wise on a ``(..., L, N)``
        residue tensor: ``(x_i - [x]_{q_last}) * q_last^{-1} mod q_i``
        with a centered lift of ``[x]_{q_last}``.  Evaluation-form input
        stays in evaluation form: only the dropped limb is
        inverse-transformed and its lift re-transformed onto the
        remaining limbs in one batched pass.  Leading dimensions (e.g.
        the (c0, c1) pair of a ciphertext) ride along for free.
        """
        primes = tuple(primes)
        if len(primes) < 2:
            raise ValueError("need at least two limbs to divide")
        last_prime = primes[-1]
        remaining = primes[:-1]
        mod_col = self.moduli_column(remaining)
        inv_col = self.inverse_column(last_prime, remaining)
        last_rows = data[..., -1:, :]
        if is_ntt:
            last_rows = self.inverse_chain(last_rows, (last_prime,))
        half = last_prime // 2
        centered = np.where(last_rows > half, last_rows - last_prime, last_rows)
        shape = data.shape[:-2] + (len(remaining), data.shape[-1])
        if is_ntt:
            lift = self.forward_chain(np.broadcast_to(centered, shape), remaining)
        else:
            lift = centered % mod_col
        return ((data[..., :-1, :] - lift) * inv_col) % mod_col

    # -- fast RNS basis conversion --------------------------------------
    def _convert_tables(self, src: Tuple[int, ...], dst: Tuple[int, ...]):
        key = (src, dst)
        tables = self._convert_cache.get(key)
        if tables is None:
            q_total = 1
            for p in src:
                q_total *= p
            # v_i = |x * (Q/q_i)^{-1}|_{q_i}; then
            # x = sum_i v_i * (Q/q_i) - alpha * Q with alpha = round(sum v_i/q_i).
            inv_qhat = np.array(
                [self.inverse(q_total // p, p) for p in src], dtype=np.int64
            )[:, None]
            qhat_mod = np.array(
                [[(q_total // s) % d for s in src] for d in dst], dtype=np.int64
            )[:, :, None]
            q_mod = np.array([q_total % d for d in dst], dtype=np.int64)[:, None]
            src_col = self.moduli_column(src)
            dst_col = self.moduli_column(dst)
            tables = (inv_qhat, qhat_mod, q_mod, src_col, dst_col[:, None, :], dst_col)
            self._convert_cache[key] = tables
        return tables

    def convert_residues(
        self, limbs: np.ndarray, src_primes: Sequence[int], dst_primes: Sequence[int]
    ) -> np.ndarray:
        """Fast int64 RNS basis conversion (HPS-style, no big integers).

        Converts residues of the *centered* value represented by
        ``limbs`` over ``src_primes`` into residues over ``dst_primes``.
        The overflow count alpha is recovered with a float64 sum of
        ``v_i / q_i``, which is exact unless the centered value lies
        within ~2^-48 of +-Q/2 — far outside anything the evaluator
        produces.  Use :meth:`crt_reconstruct` when bit-exactness at the
        extreme boundary matters more than speed.
        """
        src = tuple(src_primes)
        dst = tuple(dst_primes)
        inv_qhat, qhat_mod, q_mod, src_col, dst_3d, dst_col = self._convert_tables(
            src, dst
        )
        v = (limbs * inv_qhat) % src_col  # (S, N)
        alpha = np.rint((v / src_col).sum(axis=0)).astype(np.int64)  # (N,)
        terms = (v[None, :, :] * qhat_mod) % dst_3d  # (D, S, N)
        out = (terms.sum(axis=1) - alpha[None, :] * q_mod) % dst_col
        # Shared primes carry over verbatim (Q = 0 mod q_i for q_i | Q).
        src_pos = {p: i for i, p in enumerate(src)}
        for j, p in enumerate(dst):
            i = src_pos.get(p)
            if i is not None:
                out[j] = limbs[i]
        return out

    def decompose_digits(
        self,
        rows: np.ndarray,
        src_primes: Sequence[int],
        dst_primes: Sequence[int],
        alpha: int,
    ) -> np.ndarray:
        """Group coefficient-form limbs into key-switch digits over ``dst``.

        ``rows`` holds the residues of one polynomial over ``src_primes``
        (shape ``(len(src_primes), N)``).  Limbs are grouped ``alpha`` at
        a time; each group's centered CRT value is re-expressed over
        ``dst_primes`` (the Q_l * P key-switch chain).  Single-limb
        groups use the centered broadcast (rows may be negative — the
        NTT engine's twist multiply reduces them); wider groups go
        through the int64 :meth:`convert_residues` lift, which is exact
        except for values within ~2^-48 of the +-Q_group/2 boundary —
        the same guarantee the hot path already accepts in
        :meth:`RnsPolynomial.extend_primes` (use :meth:`crt_reconstruct`
        for boundary-exact validation).

        Returns an int64 ``(ceil(len(src)/alpha), len(dst), N)`` tensor
        in coefficient form, ready for one batched forward NTT.
        """
        src = tuple(src_primes)
        dst = tuple(dst_primes)
        num_limbs = len(src)
        shape = (len(dst), rows.shape[-1])
        digits = []
        for lo in range(0, num_limbs, alpha):
            hi = min(lo + alpha, num_limbs)
            if hi - lo == 1:
                q = src[lo]
                centered = np.where(rows[lo] > q // 2, rows[lo] - q, rows[lo])
                digits.append(np.broadcast_to(centered, shape))
            else:
                digits.append(self.convert_residues(rows[lo:hi], src[lo:hi], dst))
        return np.stack(digits)

    # -- CRT -----------------------------------------------------------
    def crt_reconstruct(self, limbs: np.ndarray, primes: Sequence[int]) -> np.ndarray:
        """Exact CRT: residue matrix -> centered big integers.

        Args:
            limbs: array of shape (len(primes), N).
            primes: the moduli corresponding to each row.

        Returns:
            object-dtype array of Python ints in (-Q/2, Q/2].
        """
        primes = list(primes)
        q_total = 1
        for p in primes:
            q_total *= p
        acc = np.zeros(limbs.shape[1], dtype=object)
        for row, p in zip(limbs, primes):
            q_hat = q_total // p
            coeff = (q_hat * self.inverse(q_hat, p)) % q_total
            acc = acc + row.astype(object) * coeff
        acc = acc % q_total
        half = q_total // 2
        return np.where(acc > half, acc - q_total, acc)

    def reduce_bigints(self, values: np.ndarray, primes: Sequence[int]) -> np.ndarray:
        """Reduce an object array of big ints into residue rows."""
        rows = [np.mod(values, p).astype(np.int64) for p in primes]
        return np.stack(rows)
