"""RNS basis: a chain of NTT-friendly primes with shared tables."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.ntt import NttContext
from repro.utils.intmath import mod_inverse


class RnsBasis:
    """A fixed ordered chain of primes ``(q_0, ..., q_L[, p_special...])``.

    The basis owns one :class:`NttContext` per prime and the precomputed
    CRT constants needed for exact reconstruction.  Polynomials refer to
    a *prefix* of the chain via their limb count — dropping limbs is how
    levels are consumed (paper Section 2.4).

    Args:
        primes: the full modulus chain, data primes first, any special
            (key-switching) primes last.
        ring_degree: polynomial ring degree N (power of two).
        num_special: how many trailing primes are key-switching primes
            that never hold message data.
    """

    def __init__(self, primes: Sequence[int], ring_degree: int, num_special: int = 0):
        if len(set(primes)) != len(primes):
            raise ValueError("primes in an RNS basis must be distinct")
        if num_special >= len(primes):
            raise ValueError("need at least one data prime")
        self.primes: Tuple[int, ...] = tuple(int(q) for q in primes)
        self.ring_degree = ring_degree
        self.num_special = num_special
        self.ntts: Dict[int, NttContext] = {
            q: NttContext(q, ring_degree) for q in self.primes
        }
        self._inv_cache: Dict[Tuple[int, int], int] = {}

    # -- structure -----------------------------------------------------
    @property
    def num_data_primes(self) -> int:
        return len(self.primes) - self.num_special

    @property
    def special_primes(self) -> Tuple[int, ...]:
        if self.num_special == 0:
            return ()
        return self.primes[-self.num_special:]

    def data_primes(self, num_limbs: int) -> Tuple[int, ...]:
        """The first ``num_limbs`` data primes."""
        if num_limbs > self.num_data_primes:
            raise ValueError("requested more limbs than data primes")
        return self.primes[:num_limbs]

    def modulus(self, num_limbs: int) -> int:
        """Q_l = product of the first ``num_limbs`` data primes."""
        q = 1
        for prime in self.data_primes(num_limbs):
            q *= prime
        return q

    def special_modulus(self) -> int:
        p = 1
        for prime in self.special_primes:
            p *= prime
        return p

    def inverse(self, value: int, prime: int) -> int:
        """Cached modular inverse of ``value`` modulo ``prime``."""
        key = (value % prime, prime)
        if key not in self._inv_cache:
            self._inv_cache[key] = mod_inverse(value % prime, prime)
        return self._inv_cache[key]

    # -- CRT -----------------------------------------------------------
    def crt_reconstruct(self, limbs: np.ndarray, primes: Sequence[int]) -> np.ndarray:
        """Exact CRT: residue matrix -> centered big integers.

        Args:
            limbs: array of shape (len(primes), N).
            primes: the moduli corresponding to each row.

        Returns:
            object-dtype array of Python ints in (-Q/2, Q/2].
        """
        primes = list(primes)
        q_total = 1
        for p in primes:
            q_total *= p
        acc = np.zeros(limbs.shape[1], dtype=object)
        for row, p in zip(limbs, primes):
            q_hat = q_total // p
            coeff = (q_hat * self.inverse(q_hat, p)) % q_total
            acc = acc + row.astype(object) * coeff
        acc = acc % q_total
        half = q_total // 2
        return np.where(acc > half, acc - q_total, acc)

    def reduce_bigints(self, values: np.ndarray, primes: Sequence[int]) -> np.ndarray:
        """Reduce an object array of big ints into residue rows."""
        rows = [np.mod(values, p).astype(np.int64) for p in primes]
        return np.stack(rows)
