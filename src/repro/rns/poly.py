"""RNS polynomials: the working datatype of the toy CKKS backend.

An :class:`RnsPolynomial` holds one residue row per active prime and a
flag saying whether rows are in coefficient or NTT (evaluation) form.
Pointwise ring operations act limb-wise; rescaling and mod-down move
between levels of the modulus chain (paper Sections 2.4-2.5).

Hot-path design: representation changes run through the basis's
:class:`repro.ntt.NttChainEngine` (all limbs in one vectorized pass),
Galois automorphisms on evaluation-form data are a cached slot-index
gather (no transforms), rescaling inverse-transforms only the dropped
limb, and basis extension uses fast int64 conversion.  No operation
here allocates an object-dtype (Python bigint) array except the
explicitly ``*_reference`` / ``to_bigint_coeffs`` validation paths.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.ntt import galois_eval_permutation
from repro.rns.basis import RnsBasis

ScalarPerLimb = Union[int, Sequence[int]]


class RnsPolynomial:
    """A polynomial in R_{Q} = Z_Q[X]/(X^N + 1), RNS-decomposed.

    Attributes:
        basis: the owning :class:`RnsBasis`.
        primes: the active prime chain for this polynomial (a subset of
            the basis chain: some prefix of data primes, optionally
            followed by the special primes during key switching).
        data: int64 array of shape (len(primes), N).
        is_ntt: True when rows are in evaluation (NTT) representation.
    """

    __slots__ = ("basis", "primes", "data", "is_ntt")

    def __init__(self, basis: RnsBasis, primes, data: np.ndarray, is_ntt: bool):
        self.basis = basis
        self.primes = tuple(primes)
        self.data = data
        self.is_ntt = is_ntt
        if data.shape != (len(self.primes), basis.ring_degree):
            raise ValueError(
                f"data shape {data.shape} does not match "
                f"({len(self.primes)}, {basis.ring_degree})"
            )

    @property
    def _moduli(self) -> np.ndarray:
        """Cached ``(L, 1)`` moduli column for broadcasting."""
        return self.basis.moduli_column(self.primes)

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_bigint_coeffs(
        cls, basis: RnsBasis, primes, coeffs: np.ndarray, to_ntt: bool = True
    ) -> "RnsPolynomial":
        """Build from (possibly huge) integer coefficients."""
        data = basis.reduce_bigints(np.asarray(coeffs, dtype=object), primes)
        poly = cls(basis, primes, data, is_ntt=False)
        return poly.to_ntt() if to_ntt else poly

    @classmethod
    def zero(cls, basis: RnsBasis, primes, is_ntt: bool = True) -> "RnsPolynomial":
        data = np.zeros((len(tuple(primes)), basis.ring_degree), dtype=np.int64)
        return cls(basis, primes, data, is_ntt=is_ntt)

    def copy(self) -> "RnsPolynomial":
        return RnsPolynomial(self.basis, self.primes, self.data.copy(), self.is_ntt)

    # -- representation changes -------------------------------------------
    def to_ntt(self) -> "RnsPolynomial":
        if self.is_ntt:
            return self
        data = self.basis.forward_chain(self.data, self.primes)
        return RnsPolynomial(self.basis, self.primes, data, is_ntt=True)

    def to_coeff(self) -> "RnsPolynomial":
        if not self.is_ntt:
            return self
        data = self.basis.inverse_chain(self.data, self.primes)
        return RnsPolynomial(self.basis, self.primes, data, is_ntt=False)

    def to_bigint_coeffs(self) -> np.ndarray:
        """Centered big-integer coefficients (exact CRT)."""
        coeff = self.to_coeff()
        return self.basis.crt_reconstruct(coeff.data, coeff.primes)

    # -- ring operations ---------------------------------------------------
    def _check_compatible(self, other: "RnsPolynomial") -> None:
        if self.primes != other.primes:
            raise ValueError(
                f"prime chains differ: {len(self.primes)} vs {len(other.primes)} limbs"
            )
        if self.is_ntt != other.is_ntt:
            raise ValueError("operands must be in the same representation")

    def __add__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other)
        data = (self.data + other.data) % self._moduli
        return RnsPolynomial(self.basis, self.primes, data, self.is_ntt)

    def __sub__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other)
        data = (self.data - other.data) % self._moduli
        return RnsPolynomial(self.basis, self.primes, data, self.is_ntt)

    def __neg__(self) -> "RnsPolynomial":
        data = (-self.data) % self._moduli
        return RnsPolynomial(self.basis, self.primes, data, self.is_ntt)

    def __mul__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Negacyclic product; both operands must be in NTT form."""
        self._check_compatible(other)
        if not self.is_ntt:
            raise ValueError("multiply polynomials in NTT form")
        data = (self.data * other.data) % self._moduli
        return RnsPolynomial(self.basis, self.primes, data, is_ntt=True)

    def scalar_mul(self, scalar: ScalarPerLimb) -> "RnsPolynomial":
        """Multiply by an integer (or one integer per limb)."""
        if isinstance(scalar, (int, np.integer)):
            factors = [int(scalar) % q for q in self.primes]
        else:
            factors = [int(s) % q for s, q in zip(scalar, self.primes)]
        factor_col = np.array(factors, dtype=np.int64)[:, None]
        data = (self.data * factor_col) % self._moduli
        return RnsPolynomial(self.basis, self.primes, data, self.is_ntt)

    # -- automorphisms -------------------------------------------------------
    def automorphism(self, exponent: int) -> "RnsPolynomial":
        """Apply the Galois map X -> X^exponent (exponent odd mod 2N).

        Used for slot rotations (exponent = 5^k) and conjugation
        (exponent = 2N - 1); see paper Section 2.5.3.  On evaluation-form
        data this is a cached slot-index permutation (one gather, no NTT
        round-trips); on coefficient-form data it is the signed
        coefficient permutation.
        """
        n = self.basis.ring_degree
        two_n = 2 * n
        if exponent % 2 == 0:
            raise ValueError("automorphism exponent must be odd")
        exponent %= two_n
        if self.is_ntt:
            perm = galois_eval_permutation(n, exponent)
            return RnsPolynomial(
                self.basis, self.primes, self.data[:, perm], is_ntt=True
            )
        src = np.arange(n, dtype=np.int64)
        dest = (src * exponent) % two_n
        sign_flip = dest >= n
        dest = np.where(sign_flip, dest - n, dest)
        signed = np.where(sign_flip[None, :], -self.data, self.data)
        out = np.zeros_like(self.data)
        out[:, dest] = signed
        out %= self._moduli
        return RnsPolynomial(self.basis, self.primes, out, is_ntt=False)

    # -- level movement ---------------------------------------------------
    def drop_limbs(self, count: int = 1) -> "RnsPolynomial":
        """Forget the last ``count`` limbs without dividing (mod-reduce)."""
        if count <= 0:
            return self
        if count >= len(self.primes):
            raise ValueError("cannot drop all limbs")
        return RnsPolynomial(
            self.basis, self.primes[:-count], self.data[:-count].copy(), self.is_ntt
        )

    def divide_and_round_by_last(self) -> "RnsPolynomial":
        """Divide by the last prime in the chain and round (exactly).

        This is the core of both CKKS rescaling (divide by q_l, paper
        Section 2.5.2) and the key-switch mod-down (divide by the special
        prime P).  Computes round(x / q_last) limb-wise:
        (x_i - [x]_{q_last}) * q_last^{-1} mod q_i, with a centered lift
        of [x]_{q_last} so the result is a proper rounding.

        Evaluation-form inputs stay in evaluation form: only the dropped
        limb is inverse-transformed, its centered lift is re-transformed
        onto the remaining limbs in one batched pass, and the division
        happens pointwise — no full NTT round-trip.  The tensor core
        lives in :meth:`RnsBasis.divide_round_last` so rescaling can
        batch (c0, c1) pairs through it in one call.
        """
        data = self.basis.divide_round_last(self.data, self.primes, self.is_ntt)
        return RnsPolynomial(self.basis, self.primes[:-1], data, self.is_ntt)

    def extend_primes(self, new_primes) -> "RnsPolynomial":
        """Extend the residue representation to more primes (fast path).

        Converts the centered value to the new chain with the basis's
        int64 fast conversion (:meth:`RnsBasis.convert_residues`); used
        to raise ciphertext digits to the Q*P basis during hybrid key
        switching.  See :meth:`extend_primes_reference` for the exact
        big-integer CRT version this is validated against.
        """
        new_primes = tuple(new_primes)
        coeff = self.to_coeff()
        data = self.basis.convert_residues(coeff.data, coeff.primes, new_primes)
        result = RnsPolynomial(self.basis, new_primes, data, is_ntt=False)
        return result.to_ntt() if self.is_ntt else result

    def extend_primes_reference(self, new_primes) -> "RnsPolynomial":
        """Exact big-integer basis extension (validation reference).

        Reconstructs the centered integer value with the full CRT and
        reduces modulo the new chain.  Allocates object-dtype arrays;
        never used on the evaluator hot path.
        """
        bigints = self.to_bigint_coeffs()
        return RnsPolynomial.from_bigint_coeffs(
            self.basis, tuple(new_primes), bigints, to_ntt=self.is_ntt
        )

    def __repr__(self) -> str:
        form = "ntt" if self.is_ntt else "coeff"
        return f"RnsPolynomial(limbs={len(self.primes)}, N={self.basis.ring_degree}, {form})"
