"""repro.serve: the compile-once / serve-many encrypted inference runtime.

The layer above :class:`repro.core.compiler.OrionCompiler` and
:class:`repro.core.program.FheProgram` that the ROADMAP's production
north star needs (docs/serving.md):

- :mod:`repro.serve.artifact` — a versioned on-disk artifact holding a
  compiled program, its weight-plaintext tables, and the key manifest,
  so a model compiles once and every worker loads the artifact instead
  of re-running the planner;
- :mod:`repro.serve.scheduler` — cross-request SIMD slot batching: a
  queue that coalesces pending requests into the unused slot blocks of
  one ciphertext and runs the *same* program once for all of them;
- :mod:`repro.serve.keys` — a multi-tenant key registry generating
  exactly the key material an artifact's manifest declares;
- :mod:`repro.serve.runtime` — the :class:`InferenceServer` worker loop
  tying the three together, with per-request telemetry merged into the
  operation ledger.
"""

from repro.serve.artifact import (
    ArtifactSchemaError,
    ServingArtifact,
    load_artifact,
    save_artifact,
)
from repro.serve.keys import KeyRegistry
from repro.serve.runtime import InferenceServer, ServeResult
from repro.serve.scheduler import PendingRequest, SlotBatchingScheduler

__all__ = [
    "ArtifactSchemaError",
    "ServingArtifact",
    "load_artifact",
    "save_artifact",
    "KeyRegistry",
    "InferenceServer",
    "ServeResult",
    "PendingRequest",
    "SlotBatchingScheduler",
]
