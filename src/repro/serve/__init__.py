"""repro.serve: the compile-once / serve-many encrypted inference runtime.

The layer above :class:`repro.core.compiler.OrionCompiler` and
:class:`repro.core.program.FheProgram` that the ROADMAP's production
north star needs (docs/serving.md).  The front door is::

    from repro import serve

    with serve.open("model.npz", serve.ServerConfig(workers=4)) as server:
        ticket = server.submit(image, client_id="alice")
        results = server.drain()
        stats = server.stats()          # typed, schema-versioned

Behind it:

- :mod:`repro.serve.api`      — :func:`open`, :class:`ServerConfig`,
  :class:`Server`: the redesigned single entry point;
- :mod:`repro.serve.pool`     — :class:`WorkerPool` /
  :class:`Dispatcher`: sharded workers, rendezvous routing, admission
  control (:class:`AdmissionError` backpressure);
- :mod:`repro.serve.mmapio`   — :class:`ArtifactMap`: shared read-only
  mmapped artifact tables (one physical copy per machine);
- :mod:`repro.serve.stats`    — :class:`ServerStats` /
  :class:`WorkerStats`: the typed telemetry schema shared with
  ``BENCH_serving.json``;
- :mod:`repro.serve.artifact` — the versioned on-disk artifact;
- :mod:`repro.serve.scheduler` — cross-request SIMD slot batching;
- :mod:`repro.serve.keys`     — the multi-tenant key registry;
- :mod:`repro.serve.runtime`  — the per-worker inference loop.

``InferenceServer`` and ``SlotBatchingScheduler`` remain importable
from this package for one release as deprecation shims; new code goes
through :func:`open`.
"""

import warnings as _warnings

from repro.serve.api import Server, ServerConfig, open
from repro.serve.artifact import (
    ArtifactDeltaError,
    ArtifactSchemaError,
    ServingArtifact,
    apply_artifact_delta,
    artifact_fingerprint,
    load_artifact,
    save_artifact,
    save_artifact_delta,
)
from repro.serve.keys import KeyRegistry, KeySpillError
from repro.serve.mmapio import ArtifactMap, is_mmap_backed
from repro.serve.pool import (
    AdmissionError,
    ArtifactSpec,
    Dispatcher,
    WorkerPool,
)
from repro.serve.runtime import InferenceServer as _InferenceServer
from repro.serve.runtime import ServeResult
from repro.serve.scheduler import PendingRequest
from repro.serve.scheduler import SlotBatchingScheduler as _SlotBatchingScheduler
from repro.serve.stats import (
    STATS_SCHEMA_VERSION,
    HistogramStats,
    NoiseStats,
    ServerStats,
    StatsSchemaError,
    WorkerStats,
)


class InferenceServer(_InferenceServer):
    """Deprecated alias for :class:`repro.serve.runtime.InferenceServer`.

    The single-worker loop is now an internal building block of the
    pool; construct deployments with :func:`repro.serve.open` instead.
    Behavior is identical to the internal class (the parity tests in
    ``tests/test_serve_pool.py`` pin this) — only the import location
    is deprecated.
    """

    def __init__(self, *args, **kwargs):
        _warnings.warn(
            "repro.serve.InferenceServer is deprecated; use "
            "repro.serve.open(artifact, ServerConfig(...)) — or import "
            "repro.serve.runtime.InferenceServer if you really need the "
            "bare worker loop",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)


class SlotBatchingScheduler(_SlotBatchingScheduler):
    """Deprecated alias for
    :class:`repro.serve.scheduler.SlotBatchingScheduler` — batching is
    configured through :class:`ServerConfig` now."""

    def __init__(self, *args, **kwargs):
        _warnings.warn(
            "repro.serve.SlotBatchingScheduler is deprecated; configure "
            "batching via ServerConfig (or import "
            "repro.serve.scheduler.SlotBatchingScheduler directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)


__all__ = [
    # front door
    "open",
    "Server",
    "ServerConfig",
    # pool
    "WorkerPool",
    "Dispatcher",
    "AdmissionError",
    "ArtifactSpec",
    # shared artifact memory
    "ArtifactMap",
    "is_mmap_backed",
    # telemetry schema
    "ServerStats",
    "WorkerStats",
    "HistogramStats",
    "NoiseStats",
    "StatsSchemaError",
    "STATS_SCHEMA_VERSION",
    # artifacts & keys
    "ArtifactSchemaError",
    "ArtifactDeltaError",
    "ServingArtifact",
    "load_artifact",
    "save_artifact",
    "save_artifact_delta",
    "apply_artifact_delta",
    "artifact_fingerprint",
    "KeyRegistry",
    "KeySpillError",
    # results / scheduling primitives
    "ServeResult",
    "PendingRequest",
    # deprecated shims
    "InferenceServer",
    "SlotBatchingScheduler",
]
