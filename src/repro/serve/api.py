"""The serving front door: ``serve.open(artifact, config) -> Server``.

PR 4's surface grew organically — ``InferenceServer`` construction
kwargs, caller-assembled schedulers and registries, raw-dict
``stats()`` — and could not express workers, shards, or admission
control without breaking every caller.  This module is the deliberate
redesign:

- :class:`ServerConfig` — one validated, frozen dataclass holding every
  serving knob (worker count, batch window, admission limits, kernel
  backend, key policy) instead of constructor-kwarg sprawl;
- :func:`open` — the single entry point: give it an artifact path (or
  several, or an already-loaded :class:`ServingArtifact`) and a config,
  get a :class:`Server`;
- :class:`Server` — the facade over the dispatcher + worker pool, with
  typed, schema-versioned :meth:`Server.stats`.

The old ``InferenceServer`` / ``SlotBatchingScheduler`` names remain
importable from :mod:`repro.serve` for one release behind deprecation
shims; ``tests/test_serve_pool.py`` pins shim == new-path behavior.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import write_chrome_trace
from repro.serve.artifact import ServingArtifact
from repro.serve.pool import (
    ArtifactSpec,
    Dispatcher,
    WorkerPool,
)
from repro.serve.runtime import ServeResult
from repro.serve.stats import (
    STATS_SCHEMA_VERSION,
    ServerStats,
)

_KERNEL_BACKENDS = ("auto", "numpy", "threaded", "numba")


@dataclass(frozen=True)
class ServerConfig:
    """Every serving knob, validated once, in one place.

    Args:
        workers: pool size (shards).
        mode: ``"inline"`` (in-process workers; deterministic, the mode
            every correctness gate runs under) or ``"process"`` (real
            ``multiprocessing`` children over the same mmapped files).
        batching: enable cross-request slot batching inside each worker.
        max_batch: cap on the slot-batch size (power-of-two floored).
        batch_window_seconds: default latency budget a request may wait
            in the batching window (the old ``max_wait_seconds``).
        max_queue_depth: bound on each worker's pending queue; beyond it
            the dispatcher rejects with :class:`AdmissionError`.
        admission_budget_seconds: optional modeled-backlog latency
            budget; a routed worker whose backlog would exceed it
            rejects at admission instead of queueing.
        routing_seed: seed folded into rendezvous routing, pinning the
            client -> worker assignment reproducibly.
        key_policy: ``"shared"`` (all workers hold the same key domain —
            any worker's response decrypts under the pool key) or
            ``"per_worker"`` (each worker its own domain).
        key_seed: base seed for worker key generation.
        key_cache_dir: optional spill directory for per-worker
            :class:`repro.serve.keys.KeyRegistry` instances.  When set,
            cold tenant key chains are demoted to fingerprint-addressed
            files under it instead of being destroyed, and promoted
            back (bit-exactly) on the next request; when ``None`` (the
            default) demotion discards keys.  See docs/keys.md.
        max_tenants: per-(worker, artifact) key-registry LRU capacity —
            how many tenants' key chains stay resident in RAM before
            the coldest spill (or drop, without ``key_cache_dir``).
        kernel_backend: optional :mod:`repro.kernels` selection applied
            in each worker (``None`` keeps the ambient selection).
        preload: seed backend caches from the artifact's pre-encoded
            tables at worker start.
        backend_factory: ``(params, seed) -> FheBackend`` override
            (defaults to the exact toy backend for toy-sized primes).
        tracing: give every worker a :class:`repro.obs.Tracer` so each
            served batch produces a span tree; export the result with
            :meth:`Server.trace` / :meth:`Server.export_chrome_trace`.
            Observe-only: outputs are bit-identical either way.
        trace_sample_rate: fraction of root spans recorded when tracing
            (systematic sampling, in ``(0, 1]``).
    """

    workers: int = 1
    mode: str = "inline"
    batching: bool = True
    max_batch: Optional[int] = None
    batch_window_seconds: float = 0.05
    max_queue_depth: int = 32
    admission_budget_seconds: Optional[float] = None
    routing_seed: int = 0
    key_policy: str = "shared"
    key_seed: int = 0
    key_cache_dir: Optional[str] = None
    max_tenants: int = 16
    kernel_backend: Optional[str] = None
    preload: bool = True
    backend_factory: Optional[Callable] = None
    tracing: bool = False
    trace_sample_rate: float = 1.0

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("ServerConfig.workers must be at least 1")
        if self.mode not in ("inline", "process"):
            raise ValueError(
                f"ServerConfig.mode must be 'inline' or 'process', "
                f"got {self.mode!r}"
            )
        if self.max_batch is not None and self.max_batch < 1:
            raise ValueError("ServerConfig.max_batch must be at least 1")
        if self.batch_window_seconds < 0:
            raise ValueError(
                "ServerConfig.batch_window_seconds must be non-negative"
            )
        if self.max_queue_depth < 1:
            raise ValueError("ServerConfig.max_queue_depth must be at least 1")
        if (
            self.admission_budget_seconds is not None
            and self.admission_budget_seconds <= 0
        ):
            raise ValueError(
                "ServerConfig.admission_budget_seconds must be positive"
            )
        if self.key_policy not in ("shared", "per_worker"):
            raise ValueError(
                f"ServerConfig.key_policy must be 'shared' or 'per_worker', "
                f"got {self.key_policy!r}"
            )
        if self.max_tenants < 1:
            raise ValueError("ServerConfig.max_tenants must be at least 1")
        if (
            self.kernel_backend is not None
            and self.kernel_backend not in _KERNEL_BACKENDS
        ):
            raise ValueError(
                f"ServerConfig.kernel_backend must be one of "
                f"{_KERNEL_BACKENDS}, got {self.kernel_backend!r}"
            )
        if not 0.0 < self.trace_sample_rate <= 1.0:
            raise ValueError(
                "ServerConfig.trace_sample_rate must be in (0, 1], got "
                f"{self.trace_sample_rate!r}"
            )

    def with_overrides(self, **changes) -> "ServerConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)


ArtifactSource = Union[str, ServingArtifact]


def _artifact_specs(
    source: Union[ArtifactSource, Dict[str, ArtifactSource], List[ArtifactSource], Tuple],
) -> Tuple[ArtifactSpec, ...]:
    """Normalize ``open``'s artifact argument into named specs."""
    if isinstance(source, dict):
        items = list(source.items())
    elif isinstance(source, (list, tuple)):
        items = [(None, entry) for entry in source]
    else:
        items = [(None, source)]
    specs: List[ArtifactSpec] = []
    seen = set()
    for index, (artifact_id, entry) in enumerate(items):
        if isinstance(entry, ServingArtifact):
            name = artifact_id or f"artifact{index}"
            spec = ArtifactSpec(artifact_id=name, artifact=entry)
        elif isinstance(entry, (str, os.PathLike)):
            path = os.fspath(entry)
            stem = os.path.splitext(os.path.basename(path))[0]
            name = artifact_id or stem
            spec = ArtifactSpec(artifact_id=name, path=path)
        else:
            raise TypeError(
                f"expected an artifact path or ServingArtifact, got "
                f"{type(entry).__name__}"
            )
        if spec.artifact_id in seen:
            raise ValueError(f"duplicate artifact id {spec.artifact_id!r}")
        seen.add(spec.artifact_id)
        specs.append(spec)
    if not specs:
        raise ValueError("open() needs at least one artifact")
    return tuple(specs)


class Server:
    """A running serving deployment (dispatcher + worker pool).

    Use :func:`open` to construct one; do not instantiate directly.
    Context-manager friendly: leaving the ``with`` block drains and
    shuts the pool down.

    The request surface is three calls: :meth:`submit` enqueues a
    request for slot batching (``step()`` later runs the due batches),
    :meth:`serve_now` runs one request immediately, and :meth:`drain`
    flushes everything queued.  Observability is :meth:`stats` (typed,
    schema-versioned), :meth:`metrics` / :meth:`metrics_text`
    (Prometheus), and :meth:`trace` / :meth:`export_chrome_trace`
    (span tracks).  Lifecycle extras: :meth:`warm` pre-pays keygen and
    encodes, :meth:`reload` hot-swaps an updated artifact file into the
    running pool.

    Example::

        cfg = ServerConfig(workers=4, admission_budget_seconds=0.25)
        with serve.open("mnist_mlp.npz", cfg) as server:
            ticket = server.submit(image, client_id="tenant-a")
            results = server.drain()
    """

    def __init__(self, specs: Tuple[ArtifactSpec, ...], config: ServerConfig):
        self.config = config
        self.artifact_ids: Tuple[str, ...] = tuple(
            spec.artifact_id for spec in specs
        )
        self._default_artifact = self.artifact_ids[0]
        if config.kernel_backend is not None and config.mode == "inline":
            from repro import kernels

            kernels.select_backend(
                None
                if config.kernel_backend == "auto"
                else config.kernel_backend
            )
        pool = WorkerPool(
            specs,
            config.workers,
            mode=config.mode,
            kernel_backend=config.kernel_backend,
            key_seed=config.key_seed,
            key_policy=config.key_policy,
            key_cache_dir=config.key_cache_dir,
            max_tenants=config.max_tenants,
            batching=config.batching,
            max_batch=config.max_batch,
            batch_window_seconds=config.batch_window_seconds,
            preload=config.preload,
            backend_factory=config.backend_factory,
            tracing=config.tracing,
            trace_sample_rate=config.trace_sample_rate,
        )
        self._dispatcher = Dispatcher(
            pool,
            max_queue_depth=config.max_queue_depth,
            admission_budget_seconds=config.admission_budget_seconds,
            routing_seed=config.routing_seed,
        )
        # Accumulated per-worker trace tracks (worker_id -> track dict);
        # fed by _pump_telemetry, exported by trace().
        self._trace_tracks: Dict[int, Dict] = {}
        self._metrics_payloads: Dict[int, Dict] = {}

    # -- request flow --------------------------------------------------------
    def submit(
        self,
        image,
        client_id: str = "anon",
        artifact: Optional[str] = None,
        now: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> int:
        """Enqueue a request; returns its (pool-global) ticket.

        Raises :class:`repro.serve.pool.AdmissionError` when the routed
        worker is saturated (backpressure — retry after the hint).
        """
        return self._dispatcher.submit(
            self._resolve(artifact), client_id, image, now=now, deadline=deadline
        )

    def serve_now(
        self,
        image,
        client_id: str = "anon",
        artifact: Optional[str] = None,
    ) -> ServeResult:
        """Run one request immediately on its routed worker."""
        return self._dispatcher.serve_now(
            self._resolve(artifact), client_id, image
        )

    def step(self, now: Optional[float] = None) -> List[ServeResult]:
        """Run every due batch on every worker."""
        return self._dispatcher.step(now)

    def drain(self) -> List[ServeResult]:
        """Flush every queue; afterwards ``stats().in_flight == 0``."""
        return self._dispatcher.drain()

    def warm(self, batch_sizes=None) -> None:
        """Pre-run key/cache warm-up on every worker (off the books).

        Runs one throwaway batch per listed batch size so lazy key
        generation and plaintext encodes happen here, not under the
        first paying request.  ``batch_sizes`` defaults to each
        server's common sizes.
        """
        for worker in self._dispatcher.pool.workers:
            worker.warm(batch_sizes)

    def reload(self, artifact: Optional[str] = None) -> None:
        """Hot-swap a new version of an artifact into the running pool.

        The caller first replaces the artifact's file on disk — e.g. by
        applying a weight delta with
        :func:`repro.serve.artifact.apply_artifact_delta` — and then
        calls this.  Every worker re-opens the path (the ``<path>.mmap``
        stamp discipline notices the changed bytes and re-extracts) and
        rebuilds its serving lane around the new tables while **keeping
        its backend and key domain**: clients holding ciphertexts keep
        decrypting, which is why the new version must carry the same key
        manifest.  Requires an idle pool — :meth:`drain` first;
        ``RuntimeError`` if requests are in flight or the manifest
        changed, ``ValueError`` for in-memory (pathless) artifacts.
        """
        self._dispatcher.reload(self._resolve(artifact))

    def close(self) -> None:
        """Shut the pool down (process workers join their children)."""
        self._dispatcher.close()

    def _resolve(self, artifact: Optional[str]) -> str:
        if artifact is None:
            return self._default_artifact
        if artifact not in self.artifact_ids:
            raise KeyError(
                f"unknown artifact {artifact!r}; serving {self.artifact_ids}"
            )
        return artifact

    # -- observability -----------------------------------------------------
    def stats(self) -> ServerStats:
        """Typed, schema-versioned pool telemetry (docs/serving.md)."""
        from repro import kernels

        dispatcher = self._dispatcher
        return ServerStats(
            schema_version=STATS_SCHEMA_VERSION,
            artifacts=self.artifact_ids,
            requests_submitted=dispatcher.requests_submitted,
            requests_admitted=dispatcher.requests_admitted,
            requests_rejected=dispatcher.requests_rejected,
            requests_completed=dispatcher.requests_completed,
            in_flight=dispatcher.in_flight,
            kernel_backend=kernels.active_backend(),
            workers=tuple(
                worker.stats() for worker in dispatcher.pool.workers
            ),
        )

    def _pump_telemetry(self) -> None:
        """Pull every worker's telemetry bundle into the server-side
        accumulators (trace spans append; metrics payloads replace)."""
        for worker in self._dispatcher.pool.workers:
            bundle = worker.telemetry()
            if bundle["metrics"] is not None:
                self._metrics_payloads[worker.worker_id] = bundle["metrics"]
            track = self._trace_tracks.get(worker.worker_id)
            if track is None:
                track = {
                    "tid": worker.worker_id,
                    "name": f"worker-{worker.worker_id}",
                    "spans": [],
                    "clock_offset": 0.0,
                    "dropped_roots": 0,
                }
                self._trace_tracks[worker.worker_id] = track
            track["spans"].extend(bundle["trace"])
            track["clock_offset"] = bundle["clock_offset"]
            track["dropped_roots"] = bundle["dropped_roots"]

    def metrics(self) -> MetricsRegistry:
        """One aggregated :class:`repro.obs.MetricsRegistry` for the
        deployment: every worker's counters/gauges/histograms (fetched
        over the pipe protocol in fork mode) plus the dispatcher's
        admission-conservation counters."""
        self._pump_telemetry()
        registry = MetricsRegistry()
        for worker_id in sorted(self._metrics_payloads):
            registry.merge_payload(self._metrics_payloads[worker_id])
        dispatcher = self._dispatcher
        for outcome, count in (
            ("submitted", dispatcher.requests_submitted),
            ("admitted", dispatcher.requests_admitted),
            ("rejected", dispatcher.requests_rejected),
        ):
            registry.counter(
                "repro_admission_requests_total",
                count,
                help="Dispatcher admission outcomes.",
                outcome=outcome,
            )
        registry.counter(
            "repro_requests_completed_total",
            dispatcher.requests_completed,
            help="Requests whose results were delivered.",
        )
        registry.gauge(
            "repro_in_flight_requests",
            dispatcher.in_flight,
            help="Admitted requests not yet completed.",
        )
        return registry

    def metrics_text(self) -> str:
        """Prometheus text exposition of :meth:`metrics`."""
        return self.metrics().to_prometheus_text()

    def trace(self) -> List[Dict]:
        """Per-worker span tracks accumulated so far (tracing pools
        only; empty tracks otherwise).  Feed to
        :func:`repro.obs.chrome_trace` or :meth:`export_chrome_trace`."""
        self._pump_telemetry()
        return [
            self._trace_tracks[worker_id]
            for worker_id in sorted(self._trace_tracks)
        ]

    def export_chrome_trace(self, path: str) -> str:
        """Write the pool's Chrome ``trace_event`` JSON (Perfetto-
        loadable, one thread lane per worker shard); returns ``path``."""
        return write_chrome_trace(path, self.trace())

    @property
    def workers(self) -> int:
        return len(self._dispatcher.pool)

    def route(self, client_id: str, artifact: Optional[str] = None) -> int:
        """Which worker a client's requests land on (deterministic)."""
        return self._dispatcher.route(self._resolve(artifact), client_id)

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.drain()
        self.close()


def open(
    source: Union[ArtifactSource, Dict[str, ArtifactSource], List[ArtifactSource]],
    config: Optional[ServerConfig] = None,
) -> Server:
    """Open a serving deployment over one or more artifacts.

    Args:
        source: an artifact path (``.npz``), a loaded
            :class:`ServingArtifact`, or a dict/list of either for
            mixed-model serving (dict keys name the artifacts; paths
            default to their file stem).
        config: a :class:`ServerConfig`; defaults to a single inline
            worker.

    Returns:
        a :class:`Server` — use it as a context manager so the pool is
        drained and shut down on exit.

    Paths are opened through :class:`repro.serve.mmapio.ArtifactMap`,
    so every worker shares one mmapped copy of the tables.  In-memory
    artifacts are accepted for ``inline`` pools only — process workers
    need a path to map.  Delta artifacts
    (:func:`repro.serve.artifact.save_artifact_delta`) cannot be
    opened directly: apply them to their base first with
    :func:`repro.serve.artifact.apply_artifact_delta`.

    Example::

        import repro.serve as serve

        with serve.open({"mnist": "mnist_mlp.npz"}) as server:
            result = server.serve_now(image, client_id="tenant-a")
    """
    return Server(_artifact_specs(source), config or ServerConfig())
