"""The serving artifact store: compile once, serve from disk forever.

A :class:`ServingArtifact` is a single ``.npz`` file containing

- a JSON manifest (``__manifest__``) with a **schema version**, the
  serialized :class:`repro.core.program.FheProgram` (instructions,
  placement decisions, layouts, norms), the layer reports and compile
  summary, and the :class:`repro.ckks.keys.KeyManifest` naming the exact
  parameter set and Galois steps execution will request;
- the weight-plaintext tables as raw numpy payloads (diagonal vectors,
  biases — float64, bit-exact round-trip);
- optionally, the tables **pre-encoded** into RNS plaintext polynomials
  at the exact (level, scale) each layer executes at, so a worker can
  seed its backend's caches before the first request ever arrives.

Keys are deliberately absent: they are per-client secrets, produced on
the client side (or by :class:`repro.serve.keys.KeyRegistry` acting for
one) from the key manifest.

Loading never invokes the compiler or the placement planner — the
"zero compiler invocations on the serve path" contract asserted by
``tests/test_serve.py`` and ``benchmarks/bench_serving_throughput.py``.

Programs produced with the graph-level optimizer on (docs/graphopt.md)
round-trip through the same schema unchanged: fused stacked layouts,
``SliceInstr``, and ``RotateInstr`` all serialize through the existing
layout/instruction payload kinds, so artifacts written by an optimized
compile load on workers that never saw the optimizer.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from fractions import Fraction
from typing import Dict, List, Optional

import numpy as np

from repro.ckks.keys import KeyManifest
from repro.core.program import FheProgram, LinearInstr

# Version 2: the key manifest gained ``rotation_step_levels`` — the
# per-step level bounds key generators use to emit *compressed*
# switching keys (only the digits/limbs each key's recorded level
# consumes).  Version-1 artifacts lack the bounds and must be
# re-exported (the loader fails loudly rather than silently generating
# full-chain keys for an artifact that promises compressed ones).
#
# Version 3: the manifest gained a ``kind`` field.  ``"full"`` is the
# self-contained artifact everything before version 3 implicitly was;
# ``"delta"`` ships only the pre-encoded tables that *changed* against
# a base artifact (named by content fingerprint), plus the complete new
# manifest document.  A delta is resolved against its base at load time
# (:func:`load_artifact` with ``base_path``) or merged into a new full
# artifact file (:func:`apply_artifact_delta`) for the mmap serve path.
SCHEMA_VERSION = 3
FORMAT_NAME = "repro-serving-artifact"
FINGERPRINT_BYTES = 16


class ArtifactDeltaError(ValueError):
    """Raised when a delta artifact cannot be built or resolved."""


class ArtifactSchemaError(ValueError):
    """Raised when an artifact's schema version or format is wrong."""


class _ArrayStore:
    """Assigns stable refs to numpy payloads destined for the npz."""

    def __init__(self):
        self.arrays: Dict[str, np.ndarray] = {}

    def __call__(self, array: np.ndarray) -> str:
        ref = f"a{len(self.arrays)}"
        self.arrays[ref] = np.asarray(array)
        return ref


class ServingArtifact:
    """An on-disk compilation, loaded (or about to be written).

    Attributes:
        manifest: the key manifest (parameters + required Galois steps).
        program: the executable program, placement decisions included.
        layer_reports: per-layer compile stats (rotations, pmults, ...).
        summary: the compile summary (depth, bootstraps, modeled time).
        encoded: optional pre-encoded plaintext tables, as written by
            :func:`save_artifact` (see :meth:`preload`).
    """

    def __init__(
        self,
        manifest: KeyManifest,
        program: FheProgram,
        layer_reports: List[Dict],
        summary: Dict,
        encoded: Optional[List[Dict]] = None,
    ):
        self.manifest = manifest
        self.program = program
        self.layer_reports = layer_reports
        self.summary = summary
        self.encoded = encoded

    # -- capacity ----------------------------------------------------------
    def slot_batch_capacity(self) -> int:
        return self.program.slot_batch_capacity()

    # -- cache warm-up ------------------------------------------------------
    def preload(self, backend) -> int:
        """Seed ``backend``'s weight-plaintext caches from the artifact's
        pre-encoded tables; returns the number of plaintexts installed.

        Entries are installed under the backend's full encode
        fingerprint (level, scale, ks_alpha, prime chain), so a backend
        built for different parameters simply — and loudly — cannot
        consume them.
        """
        if not self.encoded:
            return 0
        from repro.ckks.ciphertext import Plaintext
        from repro.rns.poly import RnsPolynomial

        context = getattr(backend, "context", None)
        if context is None:
            return 0  # functional backends encode for free
        if tuple(backend.params.primes) != tuple(
            self.manifest.params_dict["primes"]
        ):
            raise ValueError(
                "backend parameters do not match the artifact's key manifest"
            )
        linears = [
            instr
            for instr in self.program.instructions
            if isinstance(instr, LinearInstr)
        ]
        by_name = {instr.name: instr for instr in linears}
        installed = 0
        for section in self.encoded:
            instr = by_name.get(section["name"])
            if instr is None:
                continue
            level = section["level"]
            pt_scale = Fraction(section["pt_scale"][0], section["pt_scale"][1])
            fp = backend.plaintext_cache_key(level, pt_scale)
            ks_chain = context._ks_chain(level)
            data_primes = context._data_chain(level)
            packed = instr.packed
            per_backend = packed._pt_cache.get(backend)
            if per_backend is None:
                per_backend = {}
                packed._pt_cache[backend] = per_backend
            cache = per_backend.setdefault(("fused",) + fp, {})
            for term in section["terms"]:
                poly = RnsPolynomial(
                    context.basis, data_primes, term["data"], is_ntt=True
                )
                pt = Plaintext(
                    poly=poly,
                    level=level,
                    scale=pt_scale,
                    slot_count=backend.slot_count,
                )
                pt_ext = (
                    poly.extend_primes(ks_chain).data if term["off"] else None
                )
                cache[(term["bo"], term["bi"], term["off"], fp)] = (pt, pt_ext)
                installed += 1
        return installed

    # -- io ----------------------------------------------------------------
    def to_doc(self, store: "_ArrayStore") -> Dict:
        """Serialize into a manifest document, pushing arrays to ``store``.

        The refs handed out by ``store`` are assigned in a deterministic
        traversal order, so two compiles of the same architecture yield
        ref-aligned documents — the property the delta format diffs on.
        """
        manifest_doc = {
            "format": FORMAT_NAME,
            "schema_version": SCHEMA_VERSION,
            "kind": "full",
            "key_manifest": self.manifest.to_dict(),
            "program": self.program.to_payload(store),
            "layer_reports": self.layer_reports,
            "summary": self.summary,
            "encoded": None,
        }
        if self.encoded is not None:
            manifest_doc["encoded"] = [
                {
                    "name": section["name"],
                    "level": section["level"],
                    "pt_scale": section["pt_scale"],
                    "terms": [
                        {
                            "bo": term["bo"],
                            "bi": term["bi"],
                            "off": term["off"],
                            "data": store(term["data"]),
                        }
                        for term in section["terms"]
                    ],
                }
                for section in self.encoded
            ]
        return manifest_doc

    def save(self, path: str, compress: bool = False) -> str:
        """Write the artifact.

        Uncompressed (the default) every array member is ``ZIP_STORED``
        contiguously in the file, so serving workers can map the tables
        **in place** (:class:`repro.serve.mmapio.ArtifactMap`) and share
        one resident copy across the whole pool.  ``compress=True``
        trades that for a smaller file — mapping then goes through the
        one-time sidecar extraction instead.
        """
        store = _ArrayStore()
        manifest_doc = self.to_doc(store)
        return _write_npz(path, manifest_doc, store.arrays, compress=compress)


def _write_npz(
    path: str, manifest_doc: Dict, arrays: Dict[str, np.ndarray], compress: bool
) -> str:
    """Write a manifest + arrays npz atomically (tmp + ``os.replace``).

    Atomic publication matters for :func:`apply_artifact_delta` merging
    over a live base: readers either see the old file or the new one,
    and the ``<path>.mmap`` stamp (size + mtime) invalidates cleanly.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    buffer = io.BytesIO()
    writer = np.savez_compressed if compress else np.savez
    writer(
        buffer,
        __manifest__=np.frombuffer(
            json.dumps(manifest_doc).encode("utf-8"), dtype=np.uint8
        ),
        **arrays,
    )
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(buffer.getvalue())
    os.replace(tmp, path)
    return path


def build_artifact(compiled, params) -> ServingArtifact:
    """Build the in-memory :class:`ServingArtifact` for a
    :class:`repro.core.compiler.CompiledNetwork`, without writing it.

    Pre-encodes every fused weight-plaintext table at the exact
    (level, scale) it executes at — discovered by tracing one dummy
    inference through the exact-scale functional simulator, which is
    how runtime scales are defined — whenever the parameter set fits
    the exact toy backend's NTT bound (sub-32-bit primes).
    """
    if compiled.program is None:
        raise ValueError("cannot export a network compiled in analyze mode")
    program = compiled.program
    manifest = KeyManifest.for_program(params, program)
    reports = [
        {
            "name": r.name,
            "kind": r.kind,
            "rotations": r.rotations,
            "pmults": r.pmults,
            "depth": r.depth,
            "num_cts": r.num_cts,
        }
        for r in compiled.layer_reports
    ]
    encoded = None
    if max(params.primes) < 2**31:
        encoded = _pre_encode_tables(program, params)
    return ServingArtifact(
        manifest=manifest,
        program=program,
        layer_reports=reports,
        summary=compiled.summary(),
        encoded=encoded,
    )


def save_artifact(
    compiled, params, path: str, compress: bool = False
) -> ServingArtifact:
    """Serialize a :class:`repro.core.compiler.CompiledNetwork` to
    ``path`` as a full (self-contained) artifact; see
    :func:`build_artifact` for what goes in it and
    :func:`save_artifact_delta` for the weight-update variant.
    """
    artifact = build_artifact(compiled, params)
    artifact.save(path, compress=compress)
    return artifact


def _pre_encode_tables(program: FheProgram, params) -> List[Dict]:
    """Encode every linear layer's fused diagonal table into RNS
    plaintext polynomials at its runtime (level, scale).

    The runtime scale of each layer depends on what the preceding
    activation produced (paper Section 6's errorless policy encodes
    weights at q_l * Delta / s_in), so the (level, scale) pairs are
    *observed* by running one dummy input through the exact-scale
    simulator rather than re-derived here.  Encoding itself needs no
    keys — only the ring and prime chain.
    """
    from repro.backend.sim import SimBackend
    from repro.ckks.context import CkksContext
    from repro.ckks.params import RingType

    if params.ring_type is not RingType.STANDARD:
        return None
    sim = SimBackend(params, noise_free=True)
    program.run(sim, np.zeros(program.input_layout.tensor_shape))
    # An encode-only context: CkksContext generates keys too, but at
    # artifact-export scale that one-time cost is irrelevant and it
    # guarantees the encoder/basis match the toy backend bit for bit.
    context = CkksContext(params, seed=0)
    sections: List[Dict] = []
    for instr in program.instructions:
        if not isinstance(instr, LinearInstr):
            continue
        packed = instr.packed
        per_backend = packed._pt_cache.get(sim)
        if not per_backend:
            continue
        fused_keys = [key for key in per_backend if key[0] == "fused"]
        if not fused_keys:
            continue
        (_, level, pt_scale, *_rest) = fused_keys[0]
        terms = []
        for (bo, bi, off), vec in sorted(packed._fused_term_vectors().items()):
            pt = context.encode(vec, level=level, scale=pt_scale)
            terms.append({"bo": bo, "bi": bi, "off": off, "data": pt.poly.data})
        sections.append(
            {
                "name": instr.name,
                "level": level,
                "pt_scale": [pt_scale.numerator, pt_scale.denominator],
                "terms": terms,
            }
        )
    return sections


def artifact_from_doc(manifest_doc: Dict, get_array, path: str = "<artifact>"):
    """Build a :class:`ServingArtifact` from a parsed ``__manifest__``
    document plus an array resolver (``ref -> ndarray``).

    Shared by :func:`load_artifact` (arrays materialized from the npz)
    and :meth:`repro.serve.mmapio.ArtifactMap.load` (arrays are
    zero-copy views into shared read-only mapped memory).
    """
    if manifest_doc.get("format") != FORMAT_NAME:
        raise ArtifactSchemaError(
            f"{path}: unknown format {manifest_doc.get('format')!r}"
        )
    version = manifest_doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ArtifactSchemaError(
            f"{path}: schema version {version!r} is not supported "
            f"(this build reads version {SCHEMA_VERSION}); "
            "re-export the artifact"
        )
    kind = manifest_doc.get("kind", "full")
    if kind == "delta":
        raise ArtifactDeltaError(
            f"{path}: this is a *delta* artifact; load it with "
            "load_artifact(path, base_path=...) against its base, or "
            "merge it into a full artifact with apply_artifact_delta() "
            "before serving (the mmap path only maps full artifacts)"
        )
    if kind != "full":
        raise ArtifactSchemaError(f"{path}: unknown artifact kind {kind!r}")
    program = FheProgram.from_payload(manifest_doc["program"], get_array)
    encoded = None
    if manifest_doc.get("encoded") is not None:
        encoded = [
            {
                "name": section["name"],
                "level": section["level"],
                "pt_scale": tuple(section["pt_scale"]),
                "terms": [
                    {
                        "bo": term["bo"],
                        "bi": term["bi"],
                        "off": term["off"],
                        "data": get_array(term["data"]),
                    }
                    for term in section["terms"]
                ],
            }
            for section in manifest_doc["encoded"]
        ]
    return ServingArtifact(
        manifest=KeyManifest.from_dict(manifest_doc["key_manifest"]),
        program=program,
        layer_reports=manifest_doc["layer_reports"],
        summary=manifest_doc["summary"],
        encoded=encoded,
    )


def _read_npz(path: str):
    """Read a manifest document + materialized arrays from an npz."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path, allow_pickle=False) as data:
        if "__manifest__" not in data:
            raise ArtifactSchemaError(f"{path}: not a serving artifact")
        manifest_doc = json.loads(bytes(data["__manifest__"]).decode("utf-8"))
        arrays = {key: data[key] for key in data.files if key != "__manifest__"}
    return manifest_doc, arrays


def artifact_fingerprint(path: str) -> str:
    """Content fingerprint of an artifact file (truncated sha256).

    Deltas record their base's fingerprint, so applying a delta against
    a rebuilt — byte-different — base fails loudly instead of silently
    mixing tables from two compilations.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()[: 2 * FINGERPRINT_BYTES]


def _check_delta_doc(manifest_doc: Dict, path: str) -> None:
    if manifest_doc.get("format") != FORMAT_NAME:
        raise ArtifactSchemaError(
            f"{path}: unknown format {manifest_doc.get('format')!r}"
        )
    version = manifest_doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ArtifactSchemaError(
            f"{path}: schema version {version!r} is not supported "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    if manifest_doc.get("kind") != "delta":
        raise ArtifactDeltaError(
            f"{path}: expected a delta artifact, found kind "
            f"{manifest_doc.get('kind', 'full')!r}"
        )


def _normalize_json(doc) -> Dict:
    # Round-trip through JSON so tuples/lists and int/float spellings
    # compare equal regardless of which side came off disk.
    return json.loads(json.dumps(doc))


def save_artifact_delta(
    compiled, params, base_path: str, path: str, compress: bool = False
) -> ServingArtifact:
    """Export ``compiled`` as a *delta* against the artifact at
    ``base_path``, shipping only the array payloads that changed.

    The intended use is weight updates: the same architecture recompiled
    with retrained weights produces a ref-aligned manifest whose
    pre-encoded tables differ only where the weights did.  The delta
    file carries the complete new manifest document (so resolution never
    consults the base's JSON) plus the changed arrays; unchanged arrays
    are pulled from the base at load/apply time.

    Fails loudly (:class:`ArtifactDeltaError`) when the new compile is
    not structurally compatible with the base — different array refs,
    shapes, dtypes, or a different key manifest.  The key-manifest check
    is load-bearing: :meth:`repro.serve.api.Server.reload` refuses to
    rotate the key domain under clients holding live ciphertexts, so a
    delta that would change it could never be hot-swapped anyway.

    Returns the in-memory :class:`ServingArtifact` (the full new one,
    not the delta).
    """
    artifact = build_artifact(compiled, params)
    store = _ArrayStore()
    new_doc = artifact.to_doc(store)

    base_doc, base_arrays = _read_npz(base_path)
    if base_doc.get("format") != FORMAT_NAME:
        raise ArtifactSchemaError(
            f"{base_path}: unknown format {base_doc.get('format')!r}"
        )
    if base_doc.get("schema_version") != SCHEMA_VERSION:
        raise ArtifactSchemaError(
            f"{base_path}: base artifact has schema version "
            f"{base_doc.get('schema_version')!r}; re-export it at "
            f"version {SCHEMA_VERSION} before building deltas against it"
        )
    if base_doc.get("kind", "full") != "full":
        raise ArtifactDeltaError(
            f"{base_path}: cannot build a delta against a delta; "
            "apply_artifact_delta() it into a full artifact first"
        )
    if _normalize_json(new_doc["key_manifest"]) != _normalize_json(
        base_doc["key_manifest"]
    ):
        raise ArtifactDeltaError(
            f"{base_path}: key manifests differ — the delta would change "
            "the key domain, which cannot be hot-swapped under live "
            "clients; export a full artifact instead"
        )
    if set(store.arrays) != set(base_arrays):
        raise ArtifactDeltaError(
            f"{base_path}: array refs differ from the base "
            f"({len(store.arrays)} vs {len(base_arrays)}); the program "
            "structure changed — export a full artifact instead"
        )
    changed = []
    for ref in sorted(store.arrays, key=lambda r: int(r[1:])):
        new_arr, base_arr = store.arrays[ref], base_arrays[ref]
        if new_arr.shape != base_arr.shape or new_arr.dtype != base_arr.dtype:
            raise ArtifactDeltaError(
                f"{base_path}: array {ref} changed shape/dtype "
                f"({base_arr.shape}/{base_arr.dtype} -> "
                f"{new_arr.shape}/{new_arr.dtype}); the program structure "
                "changed — export a full artifact instead"
            )
        if not np.array_equal(new_arr, base_arr):
            changed.append(ref)
    delta_doc = {
        "format": FORMAT_NAME,
        "schema_version": SCHEMA_VERSION,
        "kind": "delta",
        "base_fingerprint": artifact_fingerprint(base_path),
        "changed": changed,
        "artifact": new_doc,
    }
    _write_npz(
        path,
        delta_doc,
        {ref: store.arrays[ref] for ref in changed},
        compress=compress,
    )
    return artifact


def _resolve_delta(delta_doc, delta_arrays, base_path, delta_path):
    """Merge a delta's manifest + arrays with its base's arrays."""
    _check_delta_doc(delta_doc, delta_path)
    actual = artifact_fingerprint(base_path)
    expected = delta_doc.get("base_fingerprint")
    if actual != expected:
        raise ArtifactDeltaError(
            f"{delta_path}: base fingerprint mismatch — delta was built "
            f"against {expected}, but {base_path} hashes to {actual}; "
            "the base artifact changed since the delta was exported"
        )
    base_doc, base_arrays = _read_npz(base_path)
    if base_doc.get("kind", "full") != "full":
        raise ArtifactDeltaError(
            f"{base_path}: delta bases must be full artifacts"
        )
    missing = [ref for ref in delta_doc["changed"] if ref not in base_arrays]
    if missing:
        raise ArtifactDeltaError(
            f"{delta_path}: changed refs {missing} not present in the base"
        )
    merged = dict(base_arrays)
    merged.update(delta_arrays)
    return delta_doc["artifact"], merged


def load_artifact(path: str, base_path: Optional[str] = None) -> ServingArtifact:
    """Load an artifact; fails loudly on any schema mismatch.

    ``base_path`` names the full base artifact a *delta* resolves
    against: the base's content fingerprint must match the one recorded
    in the delta, unchanged tables come from the base, changed ones from
    the delta.  Loading a delta without ``base_path`` — or a full
    artifact with one — is an error.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    manifest_doc, arrays = _read_npz(path)
    if manifest_doc.get("kind") == "delta":
        if base_path is None:
            raise ArtifactDeltaError(
                f"{path}: this is a delta artifact; pass base_path= to "
                "resolve it, or apply_artifact_delta() it into a full "
                "artifact"
            )
        manifest_doc, arrays = _resolve_delta(
            manifest_doc, arrays, base_path, path
        )
    elif base_path is not None:
        raise ArtifactDeltaError(
            f"{path}: base_path given but this is not a delta artifact"
        )
    return artifact_from_doc(manifest_doc, lambda ref: arrays[ref], path=path)


def apply_artifact_delta(
    base_path: str, delta_path: str, out_path: Optional[str] = None
) -> str:
    """Merge a delta into its base, writing a *full* artifact.

    The merged file is published atomically (tmp + ``os.replace``), so
    with ``out_path`` left at its default — overwrite the base in place
    — a serving pool watching the file sees either the old artifact or
    the new one, never a torn write, and the ``<path>.mmap`` sidecar
    stamp (size + mtime) invalidates on the swap.  Pair with
    :meth:`repro.serve.api.Server.reload` to hot-swap the running pool.

    Returns the output path.
    """
    if not delta_path.endswith(".npz"):
        delta_path = delta_path + ".npz"
    delta_doc, delta_arrays = _read_npz(delta_path)
    full_doc, merged = _resolve_delta(
        delta_doc, delta_arrays, base_path, delta_path
    )
    if out_path is None:
        out_path = base_path
    return _write_npz(out_path, full_doc, merged, compress=False)
