"""Multi-tenant key material for serving, driven by the key manifest.

An artifact names its exact parameter set and the Galois steps its
program will request (:class:`repro.ckks.keys.KeyManifest`).  The
:class:`KeyRegistry` turns that manifest into per-client backends:
each client gets its own secret/rotation keys (generated once, eagerly,
from the manifest — never lazily on the request path), cached under
``(manifest fingerprint, client id)`` and evicted LRU.

Slot batching operates *within* one client's key domain: a batched
ciphertext is encrypted under a single key, so only requests sharing a
backend coalesce (the runtime enforces this).  Different tenants are
isolated by construction — separate secrets, separate backends,
separate plaintext caches.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Dict, Optional, Tuple

from repro.ckks.keys import KeyManifest


def default_backend_factory(params, seed: int):
    """Exact toy backend when the primes fit its NTT bound; the
    functional simulator (keyless) otherwise."""
    if max(params.primes) < 2**31:
        from repro.backend.toy import ToyBackend

        return ToyBackend(params, seed=seed)
    from repro.backend.sim import SimBackend

    return SimBackend(params, seed=seed)


class KeyRegistry:
    """Per-client backend/key cache keyed by the artifact's manifest.

    Args:
        manifest: the artifact's key manifest.
        backend_factory: ``(params, seed) -> FheBackend``; defaults to
            the exact toy backend for toy-sized primes.
        max_clients: LRU capacity (multi-tenant memory bound).
    """

    def __init__(
        self,
        manifest: KeyManifest,
        backend_factory: Optional[Callable] = None,
        max_clients: int = 16,
    ):
        if max_clients < 1:
            raise ValueError("max_clients must be at least 1")
        self.manifest = manifest
        self.params = manifest.to_params()
        self.backend_factory = backend_factory or default_backend_factory
        self.max_clients = max_clients
        self._fingerprint = manifest.fingerprint()
        self._clients: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        # In-flight refcounts: a pinned client's keys must never be
        # LRU-evicted mid-request (evicting them would force a silent
        # re-keygen — and a *different* key domain — under a request
        # that already encrypted against the old keys).
        self._pins: Dict[Tuple[str, str], int] = {}
        self.keygen_count = 0

    def __len__(self) -> int:
        return len(self._clients)

    def backend_for(self, client_id: str, seed: Optional[int] = None):
        """The client's backend, with the manifest's keys pre-generated.

        The first call for a client performs keygen (secret, relin,
        and exactly the manifest's rotation keys); later calls return
        the cached backend so its plaintext caches keep paying off.
        """
        key = (self._fingerprint, client_id)
        backend = self._clients.get(key)
        if backend is not None:
            self._clients.move_to_end(key)
            return backend
        if seed is None:
            # Stable, collision-resistant per-client seed (builtin
            # hash() is process-randomized and 2^31-collision-prone —
            # unacceptable for tenant key derivation).
            digest = hashlib.sha256(
                f"{self._fingerprint}/{client_id}".encode()
            ).digest()
            seed = int.from_bytes(digest[:4], "big") % (2**31)
        backend = self.backend_factory(self.params, seed)
        self._prepare(backend)
        self.keygen_count += 1
        self._clients[key] = backend
        self._shrink()
        return backend

    def _shrink(self) -> None:
        """Evict LRU entries past capacity, skipping pinned clients.

        A client with in-flight requests (pin count > 0) is never
        evicted even if it is the least recently used, and neither is
        the most recently used entry (a request that just built its
        backend must get the chance to pin it).  The cache may
        temporarily exceed ``max_clients`` while everything is pinned,
        and shrinks back as pins release.
        """
        if len(self._clients) <= self.max_clients:
            return
        for key in list(self._clients)[:-1]:
            if len(self._clients) <= self.max_clients:
                return
            if self._pins.get(key, 0) > 0:
                continue
            del self._clients[key]

    def _prepare(self, backend) -> None:
        context = getattr(backend, "context", None)
        if context is None:
            return  # functional backends hold no key material
        # The manifest's per-step level bounds (traced from placement)
        # turn eager keygen into *compressed* keygen: each rotation key
        # stores only the digits/limbs a key switch at its recorded
        # level can consume.  Manifests without level data fall back to
        # full-chain keys.
        context.generate_rotation_keys(
            self.manifest.rotation_steps, levels=self.manifest.step_level_map()
        )
        if self.manifest.needs_conjugation:
            context.galois_key(context.encoder.conjugation_exponent)

    def key_material_bytes(self, client_id: str) -> int:
        """Stored rotation-key bytes for one client (compression metric)."""
        backend = self._clients.get((self._fingerprint, client_id))
        if backend is None:
            raise KeyError(f"unknown client {client_id!r}")
        context = getattr(backend, "context", None)
        if context is None:
            return 0
        return sum(
            key.size_bytes() for key in context.keys.galois.values()
        )

    # -- in-flight pinning ---------------------------------------------------
    def pin(self, client_id: str) -> None:
        """Mark a request in flight for the client: its keys become
        ineligible for LRU eviction until :meth:`unpin`."""
        key = (self._fingerprint, client_id)
        if key not in self._clients:
            raise KeyError(f"unknown client {client_id!r}")
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, client_id: str) -> None:
        """Release one in-flight pin; frees eviction when it hits zero."""
        key = (self._fingerprint, client_id)
        count = self._pins.get(key, 0)
        if count <= 0:
            raise RuntimeError(f"client {client_id!r} is not pinned")
        if count == 1:
            del self._pins[key]
            self._shrink()  # release any deferred over-capacity eviction
        else:
            self._pins[key] = count - 1

    def pin_count(self, client_id: str) -> int:
        return self._pins.get((self._fingerprint, client_id), 0)

    @contextmanager
    def lease(self, client_id: str, seed: Optional[int] = None):
        """The request-path entry point: yields the client's backend
        with its keys pinned for the duration of the request."""
        backend = self.backend_for(client_id, seed=seed)
        self.pin(client_id)
        try:
            yield backend
        finally:
            self.unpin(client_id)

    def evict(self, client_id: str) -> bool:
        """Drop a client's keys (tenant offboarding); True if present.

        Refuses (``RuntimeError``) while the client has in-flight
        requests — offboarding must wait for the pins to release.
        """
        key = (self._fingerprint, client_id)
        if self._pins.get(key, 0) > 0:
            raise RuntimeError(
                f"client {client_id!r} has {self._pins[key]} in-flight "
                "request(s); cannot evict its key material"
            )
        return self._clients.pop(key, None) is not None
