"""Multi-tenant key material for serving, driven by the key manifest.

An artifact names its exact parameter set and the Galois steps its
program will request (:class:`repro.ckks.keys.KeyManifest`).  The
:class:`KeyRegistry` turns that manifest into per-client backends:
each client gets its own secret/rotation keys (generated once, eagerly,
from the manifest — never lazily on the request path), cached under
``(manifest fingerprint, client id)`` and evicted LRU.

With a ``cache_dir`` configured, LRU demotion becomes **spill-to-disk**
instead of key destruction: a cold tenant's key chain is serialized to
fingerprint-addressed storage (seed-expandable keys persist only their
``b_i`` halves plus the 32-byte PRG seed — about half the compressed
in-memory footprint) and transparently *promoted* back on the next
request.  Promotion restores the exact key material **and** the saved
rng stream position, so a promoted tenant's encryptions — and therefore
its outputs — are bit-identical to a replica that was never spilled.

Slot batching operates *within* one client's key domain: a batched
ciphertext is encrypted under a single key, so only requests sharing a
backend coalesce (the runtime enforces this).  Different tenants are
isolated by construction — separate secrets, separate backends,
separate plaintext caches, separate spill files.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.ckks.keys import KeyChain, KeyManifest, SwitchingKey

#: Spill-file format tag and version (stored in the ``__spill__`` JSON
#: member; loaders reject anything else loudly).
SPILL_FORMAT = "repro-key-spill"
SPILL_VERSION = 1


def default_backend_factory(params, seed: int):
    """Exact toy backend when the primes fit its NTT bound; the
    functional simulator (keyless) otherwise."""
    if max(params.primes) < 2**31:
        from repro.backend.toy import ToyBackend

        return ToyBackend(params, seed=seed)
    from repro.backend.sim import SimBackend

    return SimBackend(params, seed=seed)


class KeySpillError(RuntimeError):
    """A spill file failed validation (wrong format, version, or shape)."""


def _serialize_switching_key(
    key: SwitchingKey, arrays: Dict[str, np.ndarray], prefix: str
) -> Dict:
    """Stack one switching key's persistent halves into ``arrays``.

    Seed-expandable keys (the normal case — every key the context
    generates carries a PRG seed) store only the stacked ``b_i`` halves;
    the uniform ``a_i`` halves regenerate from the seed on restore.
    Keys without a seed fall back to storing both halves.
    """
    arrays[f"{prefix}_b"] = np.stack([b.data for b, _ in key.pairs])
    if key.seed is None:
        arrays[f"{prefix}_a"] = np.stack([a.data for _, a in key.pairs])
    return {
        "digits": len(key.pairs),
        "max_level": key.max_level,
        "seed": key.seed.hex() if key.seed is not None else None,
    }


def _restore_switching_key(
    context, arrays: Dict[str, np.ndarray], prefix: str, meta: Dict
) -> SwitchingKey:
    """Rebuild a switching key from its spill-file members."""
    from repro.rns.poly import RnsPolynomial

    max_level = meta["max_level"]
    chain = (
        context._full_chain() if max_level is None else context._ks_chain(max_level)
    )
    b_stack = arrays[f"{prefix}_b"]
    if b_stack.shape[0] != meta["digits"]:
        raise KeySpillError(
            f"spill member {prefix}_b has {b_stack.shape[0]} digits, "
            f"manifest says {meta['digits']}"
        )
    b_halves = [
        RnsPolynomial(
            context.basis, chain, np.ascontiguousarray(b_stack[i]), is_ntt=True
        )
        for i in range(meta["digits"])
    ]
    if meta["seed"] is not None:
        return SwitchingKey.from_seed(
            bytes.fromhex(meta["seed"]), b_halves, context.basis, max_level=max_level
        )
    a_stack = arrays[f"{prefix}_a"]
    pairs = [
        (
            b_halves[i],
            RnsPolynomial(
                context.basis, chain, np.ascontiguousarray(a_stack[i]), is_ntt=True
            ),
        )
        for i in range(meta["digits"])
    ]
    return SwitchingKey(pairs, max_level=max_level)


class KeyRegistry:
    """Per-client backend/key cache keyed by the artifact's manifest.

    Args:
        manifest: the artifact's key manifest.
        backend_factory: ``(params, seed) -> FheBackend``; defaults to
            the exact toy backend for toy-sized primes.
        max_clients: LRU capacity (multi-tenant memory bound).
        cache_dir: optional spill directory.  When set, LRU demotion
            serializes the victim's key chain (and rng stream position)
            under ``cache_dir/<manifest fingerprint>/`` instead of
            destroying it, and :meth:`backend_for` promotes spilled
            tenants back transparently.  When unset (the default) the
            registry behaves as before: demotion discards keys and the
            next request pays full keygen.
    """

    def __init__(
        self,
        manifest: KeyManifest,
        backend_factory: Optional[Callable] = None,
        max_clients: int = 16,
        cache_dir: Optional[str] = None,
    ):
        if max_clients < 1:
            raise ValueError("max_clients must be at least 1")
        self.manifest = manifest
        self.params = manifest.to_params()
        self.backend_factory = backend_factory or default_backend_factory
        self.max_clients = max_clients
        self.cache_dir = cache_dir
        self._fingerprint = manifest.fingerprint()
        self._clients: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        # In-flight refcounts: a pinned client's keys must never be
        # LRU-evicted (or spilled) mid-request — demoting them would
        # force a silent re-keygen — and a *different* key domain —
        # under a request that already encrypted against the old keys.
        self._pins: Dict[Tuple[str, str], int] = {}
        self.keygen_count = 0
        self.spill_count = 0
        self.promote_count = 0

    def __len__(self) -> int:
        return len(self._clients)

    def _client_seed(self, client_id: str) -> int:
        # Stable, collision-resistant per-client seed (builtin hash()
        # is process-randomized and 2^31-collision-prone — unacceptable
        # for tenant key derivation).
        digest = hashlib.sha256(
            f"{self._fingerprint}/{client_id}".encode()
        ).digest()
        return int.from_bytes(digest[:4], "big") % (2**31)

    def backend_for(self, client_id: str, seed: Optional[int] = None):
        """The client's backend, with the manifest's keys pre-generated.

        The first call for a client performs keygen (secret, relin,
        and exactly the manifest's rotation keys); later calls return
        the cached backend so its plaintext caches keep paying off.
        A client whose keys were spilled to disk is promoted back here
        — key material and rng stream restored bit-exactly — instead
        of re-running keygen.
        """
        key = (self._fingerprint, client_id)
        backend = self._clients.get(key)
        if backend is not None:
            self._clients.move_to_end(key)
            return backend
        if seed is None:
            seed = self._client_seed(client_id)
        spill_path = self._spill_path(client_id)
        if spill_path is not None and os.path.exists(spill_path):
            backend = self._promote(client_id, seed, spill_path)
            if backend is not None:
                self._clients[key] = backend
                self._shrink()
                return backend
        backend = self.backend_factory(self.params, seed)
        self._prepare(backend)
        self.keygen_count += 1
        self._clients[key] = backend
        self._shrink()
        return backend

    def _shrink(self) -> None:
        """Demote LRU entries past capacity, skipping pinned clients.

        A client with in-flight requests (pin count > 0) is never
        demoted even if it is the least recently used, and neither is
        the most recently used entry (a request that just built its
        backend must get the chance to pin it).  The cache may
        temporarily exceed ``max_clients`` while everything is pinned,
        and shrinks back as pins release.  With a ``cache_dir``,
        demotion spills the victim's keys to disk first; without one
        it discards them (the pre-spill behaviour).
        """
        if len(self._clients) <= self.max_clients:
            return
        for key in list(self._clients)[:-1]:
            if len(self._clients) <= self.max_clients:
                return
            if self._pins.get(key, 0) > 0:
                continue
            self._spill(key[1], self._clients[key])
            del self._clients[key]

    def _prepare(self, backend) -> None:
        context = getattr(backend, "context", None)
        if context is None:
            return  # functional backends hold no key material
        # The manifest's per-step level bounds (traced from placement)
        # turn eager keygen into *compressed* keygen: each rotation key
        # stores only the digits/limbs a key switch at its recorded
        # level can consume.  Manifests without level data fall back to
        # full-chain keys.
        context.generate_rotation_keys(
            self.manifest.rotation_steps, levels=self.manifest.step_level_map()
        )
        if self.manifest.needs_conjugation:
            context.galois_key(context.encoder.conjugation_exponent)

    # -- spill-to-disk -------------------------------------------------------
    def _spill_dir(self) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, self._fingerprint)

    def _spill_path(self, client_id: str) -> Optional[str]:
        spill_dir = self._spill_dir()
        if spill_dir is None:
            return None
        name = hashlib.sha256(client_id.encode()).hexdigest()[:24]
        return os.path.join(spill_dir, f"{name}.npz")

    def _spill(self, client_id: str, backend) -> bool:
        """Serialize one client's key chain to its spill file.

        Returns False (plain discard) when no cache dir is configured
        or the backend holds no key material (functional simulator).
        """
        path = self._spill_path(client_id)
        context = getattr(backend, "context", None)
        if path is None or context is None:
            return False
        arrays: Dict[str, np.ndarray] = {}
        keys = context.keys
        arrays["secret"] = keys.secret.data
        arrays["public_b"] = keys.public[0].data
        arrays["public_a"] = keys.public[1].data
        meta = {
            "format": SPILL_FORMAT,
            "version": SPILL_VERSION,
            "fingerprint": self._fingerprint,
            "client_id": client_id,
            "rng_state": context.rng.get_state(),
            "relin": _serialize_switching_key(keys.relin, arrays, "relin"),
            "galois": {
                str(exponent): _serialize_switching_key(
                    key, arrays, f"g{exponent}"
                )
                for exponent, key in keys.galois.items()
            },
        }
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as f:
            np.savez(
                f,
                __spill__=np.frombuffer(
                    json.dumps(meta).encode("utf-8"), dtype=np.uint8
                ),
                **arrays,
            )
        os.replace(tmp, path)  # atomic publish: readers never see a torn file
        self.spill_count += 1
        return True

    def _promote(self, client_id: str, seed: int, path: str):
        """Restore a spilled client: exact keys, exact rng position.

        Builds a skeleton backend through the normal factory (so the
        backend type and ledger wiring match a fresh build), then
        replaces its key chain with the deserialized one and rewinds
        the context rng to the spilled stream position.  The promoted
        backend is indistinguishable from one that never left RAM —
        minus the warm plaintext caches, which rebuild on use.
        Returns ``None`` for keyless (functional) backends, falling
        back to a fresh build.
        """
        from repro.rns.poly import RnsPolynomial

        backend = self.backend_factory(self.params, seed)
        context = getattr(backend, "context", None)
        if context is None:
            return None
        with np.load(path, allow_pickle=False) as data:
            if "__spill__" not in data:
                raise KeySpillError(f"{path}: not a key spill file")
            meta = json.loads(bytes(data["__spill__"]).decode("utf-8"))
            if meta.get("format") != SPILL_FORMAT:
                raise KeySpillError(
                    f"{path}: format {meta.get('format')!r}, "
                    f"expected {SPILL_FORMAT!r}"
                )
            if meta.get("version") != SPILL_VERSION:
                raise KeySpillError(
                    f"{path}: spill version {meta.get('version')!r}, this "
                    f"build reads version {SPILL_VERSION} — evict and re-keygen"
                )
            if meta.get("fingerprint") != self._fingerprint:
                raise KeySpillError(
                    f"{path}: manifest fingerprint mismatch "
                    f"({meta.get('fingerprint')!r} != {self._fingerprint!r})"
                )
            arrays = {k: data[k] for k in data.files if k != "__spill__"}
        chain = context._full_chain()
        secret = RnsPolynomial(
            context.basis, chain, np.ascontiguousarray(arrays["secret"]), is_ntt=True
        )
        public = (
            RnsPolynomial(
                context.basis,
                chain,
                np.ascontiguousarray(arrays["public_b"]),
                is_ntt=True,
            ),
            RnsPolynomial(
                context.basis,
                chain,
                np.ascontiguousarray(arrays["public_a"]),
                is_ntt=True,
            ),
        )
        restored = KeyChain(
            secret=secret,
            # s^2 is derived material: recompute instead of storing.
            secret_squared=secret * secret,
            public=public,
            relin=_restore_switching_key(context, arrays, "relin", meta["relin"]),
            galois={
                int(exponent): _restore_switching_key(
                    context, arrays, f"g{exponent}", key_meta
                )
                for exponent, key_meta in meta["galois"].items()
            },
        )
        context.install_keychain(restored)
        context.rng.set_state(meta["rng_state"])
        os.remove(path)  # promoted = resident again; disk copy retired
        self.promote_count += 1
        return backend

    def spill(self, client_id: str) -> bool:
        """Explicitly demote one resident client to disk.

        Returns True if the client's keys now live in the spill file.
        Refuses (``RuntimeError``) while the client is pinned, exactly
        like :meth:`evict`.  Clients without key material (functional
        backends) or registries without a ``cache_dir`` fall back to
        plain eviction semantics and return False.
        """
        key = (self._fingerprint, client_id)
        backend = self._clients.get(key)
        if backend is None:
            raise KeyError(f"unknown client {client_id!r}")
        if self._pins.get(key, 0) > 0:
            raise RuntimeError(
                f"client {client_id!r} has {self._pins[key]} in-flight "
                "request(s); cannot spill its key material"
            )
        spilled = self._spill(client_id, backend)
        del self._clients[key]
        return spilled

    def resident_clients(self) -> List[str]:
        """Client ids currently resident in RAM (LRU order, oldest first)."""
        return [client_id for _, client_id in self._clients]

    def spilled_count(self) -> int:
        """Number of clients whose keys live only in spill files."""
        spill_dir = self._spill_dir()
        if spill_dir is None or not os.path.isdir(spill_dir):
            return 0
        return sum(1 for name in os.listdir(spill_dir) if name.endswith(".npz"))

    def key_bytes(self) -> Dict[str, int]:
        """``{"resident": ..., "spilled": ...}`` key-material bytes.

        Resident bytes count every resident client's stored rotation-key
        material (:meth:`key_material_bytes`); spilled bytes are the
        on-disk spill-file sizes under this manifest's fingerprint.
        Surfaced per worker through ``ServerStats`` and the Prometheus
        exposition, and gated by the serving-pool benchmark budget.
        """
        resident = sum(
            self.key_material_bytes(client_id)
            for client_id in self.resident_clients()
        )
        spilled = 0
        spill_dir = self._spill_dir()
        if spill_dir is not None and os.path.isdir(spill_dir):
            for name in os.listdir(spill_dir):
                if name.endswith(".npz"):
                    try:
                        spilled += os.path.getsize(os.path.join(spill_dir, name))
                    except OSError:
                        pass  # raced with a concurrent promote
        return {"resident": resident, "spilled": spilled}

    def key_material_bytes(self, client_id: str) -> int:
        """Stored rotation-key bytes for one client (compression metric).

        For a resident client this is the sum of its switching keys'
        :meth:`repro.ckks.keys.SwitchingKey.size_bytes` (seed-expandable
        keys count their ``b_i`` halves plus the 32-byte seed).  For a
        spilled client it is the spill file's on-disk size.
        """
        backend = self._clients.get((self._fingerprint, client_id))
        if backend is None:
            path = self._spill_path(client_id)
            if path is not None and os.path.exists(path):
                return os.path.getsize(path)
            raise KeyError(f"unknown client {client_id!r}")
        context = getattr(backend, "context", None)
        if context is None:
            return 0
        return sum(
            key.size_bytes() for key in context.keys.galois.values()
        )

    # -- pool integration ----------------------------------------------------
    def adopt(self, client_id: str, backend) -> None:
        """Register an externally built backend under this registry.

        The pool's worker backends are built by the worker (same
        factory, deterministic seed — the bit-exactness contract) and
        then adopted here so the registry's LRU/pin/spill discipline
        and key-bytes accounting cover them.  Adoption performs no
        keygen and does not touch :attr:`keygen_count`.
        """
        key = (self._fingerprint, client_id)
        if key in self._clients:
            raise ValueError(f"client {client_id!r} already registered")
        self._clients[key] = backend
        self._shrink()

    # -- in-flight pinning ---------------------------------------------------
    def pin(self, client_id: str) -> None:
        """Mark a request in flight for the client: its keys become
        ineligible for LRU demotion until :meth:`unpin`."""
        key = (self._fingerprint, client_id)
        if key not in self._clients:
            raise KeyError(f"unknown client {client_id!r}")
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, client_id: str) -> None:
        """Release one in-flight pin; frees demotion when it hits zero."""
        key = (self._fingerprint, client_id)
        count = self._pins.get(key, 0)
        if count <= 0:
            raise RuntimeError(f"client {client_id!r} is not pinned")
        if count == 1:
            del self._pins[key]
            self._shrink()  # release any deferred over-capacity demotion
        else:
            self._pins[key] = count - 1

    def pin_count(self, client_id: str) -> int:
        return self._pins.get((self._fingerprint, client_id), 0)

    @contextmanager
    def lease(self, client_id: str, seed: Optional[int] = None):
        """The request-path entry point: yields the client's backend
        with its keys pinned for the duration of the request."""
        backend = self.backend_for(client_id, seed=seed)
        self.pin(client_id)
        try:
            yield backend
        finally:
            self.unpin(client_id)

    def evict(self, client_id: str) -> bool:
        """Drop a client's keys everywhere (tenant offboarding).

        Removes both the resident backend and any spill file; True if
        either existed.  Refuses (``RuntimeError``) while the client
        has in-flight requests — offboarding must wait for the pins to
        release.
        """
        key = (self._fingerprint, client_id)
        if self._pins.get(key, 0) > 0:
            raise RuntimeError(
                f"client {client_id!r} has {self._pins[key]} in-flight "
                "request(s); cannot evict its key material"
            )
        present = self._clients.pop(key, None) is not None
        path = self._spill_path(client_id)
        if path is not None and os.path.exists(path):
            os.remove(path)
            present = True
        return present
