"""Multi-tenant key material for serving, driven by the key manifest.

An artifact names its exact parameter set and the Galois steps its
program will request (:class:`repro.ckks.keys.KeyManifest`).  The
:class:`KeyRegistry` turns that manifest into per-client backends:
each client gets its own secret/rotation keys (generated once, eagerly,
from the manifest — never lazily on the request path), cached under
``(manifest fingerprint, client id)`` and evicted LRU.

Slot batching operates *within* one client's key domain: a batched
ciphertext is encrypted under a single key, so only requests sharing a
backend coalesce (the runtime enforces this).  Different tenants are
isolated by construction — separate secrets, separate backends,
separate plaintext caches.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, Optional, Tuple

from repro.ckks.keys import KeyManifest


def default_backend_factory(params, seed: int):
    """Exact toy backend when the primes fit its NTT bound; the
    functional simulator (keyless) otherwise."""
    if max(params.primes) < 2**31:
        from repro.backend.toy import ToyBackend

        return ToyBackend(params, seed=seed)
    from repro.backend.sim import SimBackend

    return SimBackend(params, seed=seed)


class KeyRegistry:
    """Per-client backend/key cache keyed by the artifact's manifest.

    Args:
        manifest: the artifact's key manifest.
        backend_factory: ``(params, seed) -> FheBackend``; defaults to
            the exact toy backend for toy-sized primes.
        max_clients: LRU capacity (multi-tenant memory bound).
    """

    def __init__(
        self,
        manifest: KeyManifest,
        backend_factory: Optional[Callable] = None,
        max_clients: int = 16,
    ):
        if max_clients < 1:
            raise ValueError("max_clients must be at least 1")
        self.manifest = manifest
        self.params = manifest.to_params()
        self.backend_factory = backend_factory or default_backend_factory
        self.max_clients = max_clients
        self._fingerprint = manifest.fingerprint()
        self._clients: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        self.keygen_count = 0

    def __len__(self) -> int:
        return len(self._clients)

    def backend_for(self, client_id: str, seed: Optional[int] = None):
        """The client's backend, with the manifest's keys pre-generated.

        The first call for a client performs keygen (secret, relin,
        and exactly the manifest's rotation keys); later calls return
        the cached backend so its plaintext caches keep paying off.
        """
        key = (self._fingerprint, client_id)
        backend = self._clients.get(key)
        if backend is not None:
            self._clients.move_to_end(key)
            return backend
        if seed is None:
            # Stable, collision-resistant per-client seed (builtin
            # hash() is process-randomized and 2^31-collision-prone —
            # unacceptable for tenant key derivation).
            digest = hashlib.sha256(
                f"{self._fingerprint}/{client_id}".encode()
            ).digest()
            seed = int.from_bytes(digest[:4], "big") % (2**31)
        backend = self.backend_factory(self.params, seed)
        self._prepare(backend)
        self.keygen_count += 1
        self._clients[key] = backend
        while len(self._clients) > self.max_clients:
            self._clients.popitem(last=False)
        return backend

    def _prepare(self, backend) -> None:
        context = getattr(backend, "context", None)
        if context is None:
            return  # functional backends hold no key material
        # The manifest's per-step level bounds (traced from placement)
        # turn eager keygen into *compressed* keygen: each rotation key
        # stores only the digits/limbs a key switch at its recorded
        # level can consume.  Manifests without level data fall back to
        # full-chain keys.
        context.generate_rotation_keys(
            self.manifest.rotation_steps, levels=self.manifest.step_level_map()
        )
        if self.manifest.needs_conjugation:
            context.galois_key(context.encoder.conjugation_exponent)

    def key_material_bytes(self, client_id: str) -> int:
        """Stored rotation-key bytes for one client (compression metric)."""
        backend = self._clients.get((self._fingerprint, client_id))
        if backend is None:
            raise KeyError(f"unknown client {client_id!r}")
        context = getattr(backend, "context", None)
        if context is None:
            return 0
        return sum(
            key.size_bytes() for key in context.keys.galois.values()
        )

    def evict(self, client_id: str) -> bool:
        """Drop a client's keys (tenant offboarding); True if present."""
        return self._clients.pop((self._fingerprint, client_id), None) is not None
