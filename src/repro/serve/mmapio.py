"""Shared read-only artifact memory: mmap the tables, never copy them.

A fleet of serving workers must not pay one copy of the weight and
pre-encoded plaintext tables *per worker* — the tables are immutable
after export, so every worker should read the same physical pages
(the Cell-BE local-store discipline: stage shared read-only data once,
stream it, never duplicate it).  :class:`ArtifactMap` opens a serving
artifact so that every numpy payload is **mmap-backed**:

- artifacts written uncompressed (``ZIP_STORED`` members — the default
  for serving exports) are mapped *in place*: one ``mmap`` of the
  ``.npz`` file, with each member's ``.npy`` data exposed as a
  zero-copy ndarray view at its offset inside the archive;
- compressed artifacts cannot be mapped in place (deflate streams are
  not addressable), so their members are extracted **once** into a
  sidecar directory next to the artifact (``<path>.mmap/``) and then
  opened with ``np.load(..., mmap_mode="r")``.  The extraction is
  stamped with the artifact's size/mtime and re-used by every worker
  on the machine — N workers still share one resident copy via the
  page cache.

Either way the arrays come back **read-only** (any in-place write
raises), so the "never copied, never mutated on the request path"
invariant of ``tests/test_serve_pool.py`` is enforced by the OS, not
by convention.
"""

from __future__ import annotations

import json
import mmap
import os
import zipfile
from typing import Dict, Optional

import numpy as np
from numpy.lib import format as npy_format

from repro.serve.artifact import ArtifactSchemaError

_LOCAL_HEADER_SIZE = 30  # fixed part of a zip local file header (PK\x03\x04)


def is_mmap_backed(array: np.ndarray) -> bool:
    """True when ``array``'s buffer ultimately lives in an mmap.

    Walks the ``base`` chain: views of views of a ``np.memmap`` (or of
    an ndarray wrapping an ``mmap.mmap`` buffer) all count — what
    matters is the physical pages, not the wrapper type.
    """
    node = array
    while node is not None:
        if isinstance(node, (np.memmap, mmap.mmap)):
            return True
        if isinstance(node, memoryview):
            node = node.obj
            continue
        node = getattr(node, "base", None)
    return False


def _npy_view(buffer: mmap.mmap, start: int, size: int) -> np.ndarray:
    """A zero-copy read-only ndarray over one ``.npy`` member at
    ``buffer[start:start+size]``."""
    magic = bytes(buffer[start : start + 6])
    if magic != npy_format.MAGIC_PREFIX:
        raise ArtifactSchemaError("zip member is not a .npy payload")
    major, minor = buffer[start + 6], buffer[start + 7]
    if major == 1:
        header_len = int.from_bytes(buffer[start + 8 : start + 10], "little")
        header_start = start + 10
    else:
        header_len = int.from_bytes(buffer[start + 8 : start + 12], "little")
        header_start = start + 12
    header = bytes(buffer[header_start : header_start + header_len]).decode("latin1")
    shape, fortran, dtype = _parse_header_dict(header)
    data_start = header_start + header_len
    count = int(np.prod(shape)) if shape else 1
    array = np.frombuffer(buffer, dtype=dtype, count=count, offset=data_start)
    array = array.reshape(shape, order="F" if fortran else "C")
    if data_start + array.nbytes > start + size:
        raise ArtifactSchemaError("zip member truncated")
    return array


def _parse_header_dict(header: str):
    """Parse the ``.npy`` header dict literal -> (shape, fortran, dtype)."""
    import ast

    doc = ast.literal_eval(header)
    return tuple(doc["shape"]), bool(doc["fortran_order"]), np.dtype(doc["descr"])


class ArtifactMap:
    """A serving artifact opened over shared read-only memory.

    Args:
        path: the ``.npz`` artifact path.
        sidecar_dir: where compressed artifacts extract their members
            for mapping (default: ``<path>.mmap/`` next to the file).

    Attributes:
        path: the artifact path.
        inplace: True when members were mapped directly inside the zip
            (uncompressed artifact); False when the sidecar was used.
    """

    def __init__(self, path: str, sidecar_dir: Optional[str] = None):
        if not path.endswith(".npz"):
            path = path + ".npz"
        if not os.path.exists(path):
            raise FileNotFoundError(path)
        self.path = path
        self._sidecar_dir = sidecar_dir or (path + ".mmap")
        self._file = None
        self._mmap: Optional[mmap.mmap] = None
        self._arrays: Dict[str, np.ndarray] = {}
        self.inplace = False
        self._open()

    # -- opening -----------------------------------------------------------
    def _open(self) -> None:
        with zipfile.ZipFile(self.path) as archive:
            members = archive.infolist()
            stored = all(
                info.compress_type == zipfile.ZIP_STORED for info in members
            )
        if stored:
            self._open_inplace()
        else:
            self._open_sidecar()
        for name, array in self._arrays.items():
            if array.flags.writeable:  # pragma: no cover - mmap('r') is RO
                array.flags.writeable = False
            if not is_mmap_backed(array):  # pragma: no cover - invariant
                raise ArtifactSchemaError(
                    f"{self.path}: member {name} is not mmap-backed"
                )

    def _open_inplace(self) -> None:
        """Map every ``ZIP_STORED`` member in place inside the archive."""
        self._file = open(self.path, "rb")
        self._mmap = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        with zipfile.ZipFile(self.path) as archive:
            for info in archive.infolist():
                # The central directory's extra field can differ from the
                # local header's: read the local header to find the data.
                header = self._mmap[
                    info.header_offset : info.header_offset + _LOCAL_HEADER_SIZE
                ]
                if header[:4] != b"PK\x03\x04":
                    raise ArtifactSchemaError(
                        f"{self.path}: bad local header for {info.filename}"
                    )
                name_len = int.from_bytes(header[26:28], "little")
                extra_len = int.from_bytes(header[28:30], "little")
                data_start = (
                    info.header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len
                )
                name = info.filename
                if name.endswith(".npy"):
                    name = name[: -len(".npy")]
                self._arrays[name] = _npy_view(
                    self._mmap, data_start, info.file_size
                )
        self.inplace = True

    def _open_sidecar(self) -> None:
        """Extract compressed members once, then map the extractions."""
        stat = os.stat(self.path)
        stamp = f"{stat.st_size}:{int(stat.st_mtime_ns)}"
        stamp_path = os.path.join(self._sidecar_dir, "STAMP")
        fresh = False
        try:
            with open(stamp_path) as f:
                fresh = f.read().strip() == stamp
        except OSError:
            pass
        if not fresh:
            self._extract_sidecar(stamp)
        with np.load(os.path.join(self._sidecar_dir, "__names__.npz")) as names:
            member_names = [str(n) for n in names["names"]]
        for name in member_names:
            member = os.path.join(self._sidecar_dir, name + ".npy")
            self._arrays[name] = np.load(member, mmap_mode="r")
        self.inplace = False

    def _extract_sidecar(self, stamp: str) -> None:
        tmp_dir = self._sidecar_dir + ".tmp"
        os.makedirs(tmp_dir, exist_ok=True)
        names = []
        with np.load(self.path, allow_pickle=False) as data:
            for name in data.files:
                np.save(os.path.join(tmp_dir, name + ".npy"), data[name])
                names.append(name)
        np.savez(
            os.path.join(tmp_dir, "__names__.npz"), names=np.array(names)
        )
        with open(os.path.join(tmp_dir, "STAMP"), "w") as f:
            f.write(stamp)
        # Atomic-enough publish: a concurrent extractor racing us writes
        # identical content, so replacing an existing dir is safe.
        if os.path.isdir(self._sidecar_dir):
            import shutil

            shutil.rmtree(self._sidecar_dir)
        os.replace(tmp_dir, self._sidecar_dir)

    # -- access ------------------------------------------------------------
    @property
    def arrays(self) -> Dict[str, np.ndarray]:
        """Member name -> read-only mmap-backed array (no ``__manifest__``)."""
        return {
            name: array
            for name, array in self._arrays.items()
            if name != "__manifest__"
        }

    def manifest_doc(self) -> Dict:
        manifest = self._arrays.get("__manifest__")
        if manifest is None:
            raise ArtifactSchemaError(f"{self.path}: not a serving artifact")
        return json.loads(bytes(manifest).decode("utf-8"))

    def mapped_bytes(self) -> int:
        """Total bytes of table memory served from the map."""
        return sum(array.nbytes for array in self.arrays.values())

    def load(self):
        """Build the :class:`~repro.serve.artifact.ServingArtifact` whose
        numpy payloads are views into this map (zero table copies)."""
        from repro.serve.artifact import artifact_from_doc

        return artifact_from_doc(
            self.manifest_doc(), lambda ref: self._arrays[ref], path=self.path
        )

    def close(self) -> None:
        """Drop the mapping (arrays handed out keep it alive until GC'd)."""
        self._arrays = {}
        if self._mmap is not None:
            # The mmap object stays referenced by any outstanding array
            # views; closing here would invalidate them, so just drop
            # our handle and let refcounting reclaim the mapping.
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "ArtifactMap":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
