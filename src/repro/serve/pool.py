"""The sharded worker pool: dispatcher + N workers over shared tables.

The asynchronous-architecture decoupling that fleet-scale serving
needs: a front-of-house :class:`Dispatcher` that routes, admits, and
accounts for requests, and a :class:`WorkerPool` of N workers each
running *today's* :class:`repro.serve.runtime.InferenceServer` loop —
one server per hosted artifact, slot-batching its own queue by the
existing cost/deadline rule.  Nothing about the execution hot path
changes; the pool is pure orchestration:

- **Shared read-only artifact memory.**  Workers open artifacts through
  :class:`repro.serve.mmapio.ArtifactMap`: the weight and pre-encoded
  plaintext tables are mmapped once per machine, so per-worker RSS
  stays flat as the pool grows (the tables are physically shared pages;
  ``verify_mmap_tables`` asserts no worker ever copied them).
- **Deterministic routing.**  Rendezvous (highest-random-weight)
  hashing of ``(routing_seed, artifact, client)`` over the workers:
  a client's requests always land on the same worker, so its requests
  coalesce into that worker's slot batches, and the assignment is
  reproducible run-to-run — the property the bit-exactness gates are
  built on.  Load imbalance surfaces as backpressure, never as
  non-deterministic migration.
- **Admission control.**  Per-worker queues are bounded
  (``max_queue_depth``); once the routed worker is full — or its
  modeled backlog exceeds the configured latency budget — the
  dispatcher refuses the request with :class:`AdmissionError` carrying
  a ``retry_after_ms`` hint, rather than letting queues grow without
  bound.  Conservation holds at every instant:
  ``submitted == admitted + rejected`` and
  ``admitted == completed + in_flight``.
- **Two execution modes.**  ``inline`` runs every worker in-process
  (deterministic, the mode the correctness gates run under — process
  parallelism is unmeasurable on a single-core host anyway);
  ``process`` forks real ``multiprocessing`` workers that each map the
  same artifact files and serve from their own queues.
"""

from __future__ import annotations

import hashlib
import math
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import kernels
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.serve.artifact import ServingArtifact
from repro.serve.keys import KeyRegistry, default_backend_factory
from repro.serve.mmapio import ArtifactMap, is_mmap_backed
from repro.serve.runtime import InferenceServer, ServeResult
from repro.serve.stats import WorkerStats

#: Registry client id under which each worker's own serving backend is
#: adopted (and pinned for the worker's lifetime): the pool backend is
#: permanently in flight, so the LRU may spill cold *tenant* keys around
#: it but never the keys requests are being served under.
POOL_CLIENT_ID = "__pool__"


class AdmissionError(RuntimeError):
    """The dispatcher refused a request (backpressure).

    Attributes:
        retry_after_ms: the dispatcher's hint for when capacity should
            free up (modeled batch latency, or the backlog's overhang
            past the latency budget).
        worker_id: the worker the request routed to.
        queue_depth: that worker's queue depth at refusal time.
    """

    def __init__(
        self,
        message: str,
        retry_after_ms: float,
        worker_id: int,
        queue_depth: int,
    ):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms
        self.worker_id = worker_id
        self.queue_depth = queue_depth


@dataclass(frozen=True)
class WorkerProfile:
    """What the dispatcher knows about one (worker, artifact) lane."""

    capacity: int
    modeled_seconds: float
    mmap_backed: bool


def verify_mmap_tables(server: InferenceServer, artifact_path: str) -> bool:
    """Assert the worker's tables are mmap-backed views, never copies.

    Checks both table tiers an artifact ships: the float diagonal/bias
    weight tables inside every linear instruction, and the pre-encoded
    RNS plaintext polynomials preloading installed into the backend's
    caches.  Raises ``RuntimeError`` naming the offender on violation —
    a copied table silently multiplies fleet RSS by the worker count,
    which is exactly the regression this guard exists to catch.
    """
    from repro.core.program import LinearInstr

    for instr in server.program.instructions:
        if not isinstance(instr, LinearInstr):
            continue
        packed = instr.packed
        for (bo, bi), dmap in packed.diags.items():
            for off, vec in dmap.items():
                if not is_mmap_backed(vec):
                    raise RuntimeError(
                        f"{artifact_path}: weight diagonal "
                        f"{instr.name}[bo={bo},bi={bi},off={off}] was "
                        "copied off the artifact map"
                    )
        if packed.bias_vecs is not None:
            for vec in packed.bias_vecs:
                if not is_mmap_backed(vec):
                    raise RuntimeError(
                        f"{artifact_path}: bias table of {instr.name} was "
                        "copied off the artifact map"
                    )
        per_backend = packed._pt_cache.get(server.backend)
        if not per_backend:
            continue
        # Only the ("fused", ...) caches hold the artifact's pre-encoded
        # tables (artifact.preload installs them there); zero/bias
        # plaintexts under other keys are small runtime encodes, not
        # table copies.
        for key, cache in per_backend.items():
            if not (isinstance(key, tuple) and key and key[0] == "fused"):
                continue
            for pt, _pt_ext in cache.values():
                if not is_mmap_backed(pt.poly.data):
                    raise RuntimeError(
                        f"{artifact_path}: pre-encoded plaintext table of "
                        f"{instr.name} was copied off the artifact map"
                    )
    return True


@dataclass(frozen=True)
class ArtifactSpec:
    """One artifact hosted by the pool."""

    artifact_id: str
    path: Optional[str] = None
    artifact: Optional[ServingArtifact] = None

    def __post_init__(self):
        if self.path is None and self.artifact is None:
            raise ValueError("ArtifactSpec needs a path or a loaded artifact")


def _worker_seed(key_seed: int, key_policy: str, worker_id: int) -> int:
    # "shared": every worker holds the same key domain (bit-identical
    # keygen), so any worker's response decrypts under the pool key and
    # a solo replay with key_seed reproduces any worker bit-for-bit.
    if key_policy == "shared":
        return key_seed
    return key_seed + worker_id


def _build_servers(
    worker_id: int,
    specs: Tuple[ArtifactSpec, ...],
    *,
    key_seed: int,
    key_policy: str,
    batching: bool,
    max_batch: Optional[int],
    batch_window_seconds: float,
    preload: bool,
    backend_factory: Optional[Callable],
    key_cache_dir: Optional[str] = None,
    max_tenants: int = 16,
    shared_artifacts: Optional[Dict[str, ServingArtifact]] = None,
    tracer: Optional[Tracer] = None,
) -> Tuple[
    Dict[str, InferenceServer],
    Dict[str, WorkerProfile],
    Dict[str, KeyRegistry],
]:
    """Load every hosted artifact (mmap when given a path) and stand up
    one InferenceServer per artifact for this worker.

    Each (worker, artifact) lane also gets a
    :class:`repro.serve.keys.KeyRegistry` over the artifact's manifest:
    the worker's own backend is built by the factory exactly as before
    (same deterministic seed — the bit-exactness contract is untouched)
    and then *adopted* and pinned under :data:`POOL_CLIENT_ID`, so the
    registry's resident/spilled key-bytes accounting covers the pool and
    any per-tenant backends share its LRU/pin/spill discipline.
    """
    factory = backend_factory or default_backend_factory
    seed = _worker_seed(key_seed, key_policy, worker_id)
    servers: Dict[str, InferenceServer] = {}
    profiles: Dict[str, WorkerProfile] = {}
    registries: Dict[str, KeyRegistry] = {}
    for spec in specs:
        mmapped = False
        if shared_artifacts is not None and spec.artifact_id in shared_artifacts:
            artifact = shared_artifacts[spec.artifact_id]
            mmapped = spec.path is not None
        elif spec.path is not None:
            artifact = ArtifactMap(spec.path).load()
            mmapped = True
            if shared_artifacts is not None:
                shared_artifacts[spec.artifact_id] = artifact
        else:
            artifact = spec.artifact
        backend = factory(artifact.manifest.to_params(), seed)
        registry = KeyRegistry(
            artifact.manifest,
            backend_factory=factory,
            max_clients=max_tenants,
            cache_dir=key_cache_dir,
        )
        registry.adopt(POOL_CLIENT_ID, backend)
        registry.pin(POOL_CLIENT_ID)
        server = InferenceServer(
            artifact,
            backend,
            batching=batching,
            max_batch=max_batch,
            max_wait_seconds=batch_window_seconds,
            preload=preload,
            tracer=tracer,
        )
        if mmapped:
            verify_mmap_tables(server, spec.path)
        servers[spec.artifact_id] = server
        registries[spec.artifact_id] = registry
        profiles[spec.artifact_id] = WorkerProfile(
            capacity=server.scheduler.capacity,
            modeled_seconds=server.scheduler.modeled_run_seconds,
            mmap_backed=mmapped,
        )
    return servers, profiles, registries


class InlineWorker:
    """One shard running in-process: a dict of InferenceServers.

    The deterministic reference implementation — identical code to what
    a process worker runs in its child, minus the queue transport.
    """

    def __init__(
        self,
        worker_id: int,
        specs: Tuple[ArtifactSpec, ...],
        *,
        shared_artifacts: Optional[Dict[str, ServingArtifact]] = None,
        **build_opts,
    ):
        self.worker_id = worker_id
        self.specs = tuple(specs)
        tracing = build_opts.pop("tracing", False)
        sample_rate = build_opts.pop("trace_sample_rate", 1.0)
        #: one tracer per worker shard — its spans become this worker's
        #: track in the Chrome-trace export.
        self.tracer = Tracer(sample_rate=sample_rate) if tracing else None
        if tracing:
            # Kernel dispatch counting is opt-in (a dict increment on the
            # hot path); only a tracing pool pays for it.
            kernels.enable_dispatch_counts()
        # Cumulative process-wide kernel dispatch counts accumulated from
        # the registry's destructive drain (see metrics_registry).
        self._dispatch_totals: Dict[str, int] = {}
        # Kept for hot reload: a swapped-in artifact rebuilds its server
        # with the same batching/preload options it was opened with.
        self._build_opts = dict(build_opts)
        self.servers, self.profiles, self.registries = _build_servers(
            worker_id,
            specs,
            shared_artifacts=shared_artifacts,
            tracer=self.tracer,
            **build_opts,
        )
        # Inner (per-server) ticket -> the dispatcher's global ticket.
        self._tickets: Dict[Tuple[str, int], int] = {}

    # -- intake ------------------------------------------------------------
    def submit(
        self,
        ticket: int,
        artifact_id: str,
        client_id: str,
        payload,
        now: Optional[float],
        deadline: Optional[float],
    ) -> None:
        inner = self.servers[artifact_id].submit(
            payload, client_id=client_id, now=now, deadline=deadline
        )
        self._tickets[(artifact_id, inner)] = ticket

    def serve_now(
        self, ticket: int, artifact_id: str, client_id: str, payload
    ) -> ServeResult:
        result = self.servers[artifact_id].serve_now(payload, client_id=client_id)
        return self._stamp(result, artifact_id, ticket)

    # -- execution ---------------------------------------------------------
    def begin_step(self, now: Optional[float]) -> None:
        pass  # inline workers run synchronously in finish_step

    def finish_step(self, now: Optional[float]) -> List[ServeResult]:
        results: List[ServeResult] = []
        for artifact_id, server in self.servers.items():
            for result in server.step(now):
                results.append(self._stamp(result, artifact_id))
        return results

    def drain(self) -> List[ServeResult]:
        results: List[ServeResult] = []
        for artifact_id, server in self.servers.items():
            for result in server.drain():
                results.append(self._stamp(result, artifact_id))
        return results

    def warm(self, batch_sizes=None) -> None:
        for server in self.servers.values():
            server.warm(batch_sizes=batch_sizes)

    def reload(self, artifact_id: str, artifact: Optional[ServingArtifact] = None):
        """Hot-swap a new artifact version into this worker.

        Re-opens the artifact's path (whose bytes the caller has already
        replaced — e.g. via
        :func:`repro.serve.artifact.apply_artifact_delta` — so the
        ``<path>.mmap`` stamp discipline re-extracts automatically) and
        rebuilds the lane's :class:`InferenceServer` around it.  The
        existing backend is **reused**: a weight update must not rotate
        the key domain out from under clients that hold ciphertexts, so
        the swapped-in artifact is required to carry the *same* key
        manifest.  The lane's queue must be empty (``drain()`` first).
        Returns the refreshed :class:`WorkerProfile`.
        """
        old = self.servers[artifact_id]
        if len(old.scheduler):
            raise RuntimeError(
                f"artifact {artifact_id!r} has queued requests on worker "
                f"{self.worker_id}; drain() before reload"
            )
        spec = next(s for s in self.specs if s.artifact_id == artifact_id)
        if artifact is None:
            if spec.path is None:
                raise ValueError(
                    f"artifact {artifact_id!r} was opened in-memory; hot "
                    "reload needs a path-backed artifact"
                )
            artifact = ArtifactMap(spec.path).load()
        registry = self.registries[artifact_id]
        if artifact.manifest.fingerprint() != registry.manifest.fingerprint():
            raise RuntimeError(
                f"artifact {artifact_id!r}: reload changes the key manifest "
                "— tenants hold ciphertexts under the current keys; open a "
                "new server for key-incompatible artifacts"
            )
        server = InferenceServer(
            artifact,
            old.backend,
            batching=self._build_opts["batching"],
            max_batch=self._build_opts["max_batch"],
            max_wait_seconds=self._build_opts["batch_window_seconds"],
            preload=self._build_opts["preload"],
            tracer=self.tracer,
        )
        if spec.path is not None:
            verify_mmap_tables(server, spec.path)
        self.servers[artifact_id] = server
        self.profiles[artifact_id] = WorkerProfile(
            capacity=server.scheduler.capacity,
            modeled_seconds=server.scheduler.modeled_run_seconds,
            mmap_backed=spec.path is not None,
        )
        return self.profiles[artifact_id]

    def _stamp(
        self, result: ServeResult, artifact_id: str, ticket: Optional[int] = None
    ) -> ServeResult:
        if ticket is None:
            ticket = self._tickets.pop((artifact_id, result.ticket))
        result.ticket = ticket
        result.artifact_id = artifact_id
        result.worker_id = self.worker_id
        return result

    # -- observability -----------------------------------------------------
    def queue_depths(self) -> Dict[str, int]:
        return {
            artifact_id: len(server.scheduler)
            for artifact_id, server in self.servers.items()
        }

    def queue_depth(self) -> int:
        return sum(self.queue_depths().values())

    def stats(self) -> WorkerStats:
        combined: Optional[WorkerStats] = None
        for artifact_id, server in self.servers.items():
            stats = WorkerStats.from_server(
                self.worker_id,
                server,
                queue_depth=len(server.scheduler),
                mmap_backed=self.profiles[artifact_id].mmap_backed,
                registry=self.registries.get(artifact_id),
            )
            combined = stats if combined is None else combined.merged_with(stats)
        return combined

    def metrics_registry(self) -> MetricsRegistry:
        """This worker's counters/gauges/histograms as a fresh
        :class:`repro.obs.MetricsRegistry` snapshot (naming scheme:
        docs/observability.md)."""
        registry = MetricsRegistry()
        worker = str(self.worker_id)
        for artifact_id, server in self.servers.items():
            labels = {"worker": worker, "artifact": artifact_id}
            registry.counter(
                "repro_serve_requests_total",
                server.requests_served,
                help="Requests served (slot-batched or single).",
                **labels,
            )
            registry.counter(
                "repro_serve_batches_total",
                server.batches_run,
                help="Batched program executions run.",
                **labels,
            )
            registry.counter(
                "repro_modeled_seconds_total",
                server.ledger.seconds,
                help="Cost-model seconds charged by the op ledger.",
                **labels,
            )
            for op, count in sorted(server.ledger.counts.items()):
                registry.counter(
                    "repro_fhe_ops_total",
                    count,
                    help="FHE primitive operations executed, by op.",
                    op=op,
                    **labels,
                )
            noise = server.noise.stats()
            for op, count in (
                ("rescale", noise["rescales"]),
                ("mod_down", noise["mod_downs"]),
                ("bootstrap", noise["bootstraps"]),
            ):
                registry.counter(
                    "repro_noise_boundary_total",
                    count,
                    help="Modulus-chain boundary events, by boundary op.",
                    op=op,
                    **labels,
                )
            registry.gauge(
                "repro_serve_queue_depth",
                len(server.scheduler),
                help="Requests waiting in the slot-batching queue.",
                **labels,
            )
            if noise["min_level"] is not None:
                registry.gauge(
                    "repro_noise_min_level",
                    noise["min_level"],
                    help="Lowest ciphertext level any boundary op reached.",
                    **labels,
                )
            registry.gauge(
                "repro_noise_max_scale_drift_log2",
                noise["max_scale_drift_log2"],
                help="Max |log2(scale/Delta)| seen after a boundary op.",
                **labels,
            )
            key_registry = self.registries.get(artifact_id)
            if key_registry is not None:
                key_bytes = key_registry.key_bytes()
                for state, value in sorted(key_bytes.items()):
                    registry.gauge(
                        "repro_key_material_bytes",
                        value,
                        help="Key-registry material bytes, by residency.",
                        state=state,
                        **labels,
                    )
                registry.counter(
                    "repro_key_spills_total",
                    key_registry.spill_count,
                    help="Tenant key chains demoted to spill files.",
                    **labels,
                )
                registry.counter(
                    "repro_key_promotes_total",
                    key_registry.promote_count,
                    help="Tenant key chains promoted back from disk.",
                    **labels,
                )
            registry.record_histogram(
                "repro_request_latency_seconds",
                server.request_latency,
                help="Wall-clock latency per served request.",
                **labels,
            )
            for phase, histogram in sorted(server.op_histograms.items()):
                registry.record_histogram(
                    "repro_phase_modeled_seconds",
                    histogram,
                    help="Modeled seconds per batch, by program phase.",
                    phase=phase,
                    **labels,
                )
        # Dispatch counts are process-global (the kernel registry is a
        # module singleton), so this metric carries no worker label:
        # whichever worker drains first claims the counts, and summing
        # across workers always yields the true process total.
        for kernel, count in kernels.drain_dispatch_counts().items():
            self._dispatch_totals[kernel] = (
                self._dispatch_totals.get(kernel, 0) + count
            )
        for kernel, count in sorted(self._dispatch_totals.items()):
            registry.counter(
                "repro_kernel_dispatch_total",
                count,
                help="Kernel registry dispatches (process-wide).",
                kernel=kernel,
            )
        return registry

    def telemetry(self) -> Dict:
        """One plain-JSON bundle of everything observable about this
        worker: stats payload, metrics payload, and the trace-span
        backlog.  ``trace`` has drain semantics — each completed root
        span is returned exactly once — so callers accumulate without
        deduplicating; this is also what makes the fork-mode flush on
        ``drain()``/``close()`` lossless."""
        tracer = self.tracer
        return {
            "stats": self.stats().to_payload(),
            "metrics": self.metrics_registry().to_payload(),
            "trace": tracer.drain() if tracer is not None else [],
            "clock_offset": tracer.clock_offset if tracer is not None else 0.0,
            "dropped_roots": tracer.dropped_roots if tracer is not None else 0,
        }

    def close(self) -> None:
        pass


# -- process workers --------------------------------------------------------


def _process_worker_main(
    worker_id: int,
    specs: Tuple[ArtifactSpec, ...],
    build_opts: Dict,
    kernel_backend: Optional[str],
    request_queue,
    response_queue,
) -> None:
    """Child entry point: map the artifacts, serve the queue until stop.

    The child maps the same artifact files as every sibling (shared
    page-cache residency — the whole point), builds its own key domain,
    and then runs a plain message loop: submit / step / drain / stats.
    """
    try:
        if kernel_backend is not None:
            from repro import kernels

            kernels.select_backend(
                None if kernel_backend == "auto" else kernel_backend
            )
        worker = InlineWorker(worker_id, specs, **build_opts)
        response_queue.put(
            ("ready", worker_id, {aid: p for aid, p in worker.profiles.items()})
        )
    except Exception as exc:  # pragma: no cover - startup failure path
        response_queue.put(("error", worker_id, repr(exc)))
        return
    while True:
        message = request_queue.get()
        kind = message[0]
        try:
            if kind == "submit":
                _, ticket, artifact_id, client_id, payload, now, deadline = message
                worker.submit(ticket, artifact_id, client_id, payload, now, deadline)
            elif kind == "serve_now":
                _, ticket, artifact_id, client_id, payload = message
                result = worker.serve_now(ticket, artifact_id, client_id, payload)
                response_queue.put(("result", worker_id, _result_payload(result)))
                response_queue.put(("done", worker_id, 1))
            elif kind == "step":
                results = worker.finish_step(message[1])
                for result in results:
                    response_queue.put(("result", worker_id, _result_payload(result)))
                response_queue.put(("done", worker_id, len(results)))
            elif kind == "drain":
                results = worker.drain()
                for result in results:
                    response_queue.put(("result", worker_id, _result_payload(result)))
                response_queue.put(("done", worker_id, len(results)))
            elif kind == "stats":
                response_queue.put(
                    ("stats", worker_id, worker.stats().to_payload())
                )
            elif kind == "telemetry":
                response_queue.put(("telemetry", worker_id, worker.telemetry()))
            elif kind == "warm":
                worker.warm(message[1])
                response_queue.put(("done", worker_id, 0))
            elif kind == "reload":
                profile = worker.reload(message[1])
                response_queue.put(("profile", worker_id, (message[1], profile)))
            elif kind == "stop":
                response_queue.put(("stopped", worker_id, None))
                return
        except Exception as exc:  # pragma: no cover - fail loudly upstream
            response_queue.put(("error", worker_id, repr(exc)))
            return


def _result_payload(result: ServeResult) -> Dict:
    return {
        "ticket": result.ticket,
        "client_id": result.client_id,
        "output": np.asarray(result.output),
        "batch_size": result.batch_size,
        "reason": result.reason,
        "wall_seconds": result.wall_seconds,
        "modeled_seconds": result.modeled_seconds,
        "artifact_id": result.artifact_id,
        "worker_id": result.worker_id,
    }


class ProcessWorker:
    """One shard as a real ``multiprocessing`` child over the same maps.

    The parent mirrors queue depths (incremented on submit, decremented
    as results stream back) so admission control never needs a blocking
    round trip into the child.
    """

    def __init__(
        self,
        worker_id: int,
        specs: Tuple[ArtifactSpec, ...],
        *,
        kernel_backend: Optional[str] = None,
        **build_opts,
    ):
        import multiprocessing

        for spec in specs:
            if spec.path is None:
                raise ValueError(
                    "process workers need artifact paths (shared mmap), "
                    f"got an in-memory artifact for {spec.artifact_id!r}"
                )
        if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only guard
            raise RuntimeError("process mode requires a fork-capable platform")
        context = multiprocessing.get_context("fork")
        self.worker_id = worker_id
        self._requests = context.Queue()
        self._responses = context.Queue()
        self._depths: Dict[str, int] = {spec.artifact_id: 0 for spec in specs}
        # Parent-side telemetry mirror: the child's latest stats/metrics
        # payloads plus the undelivered trace spans.  Refreshed by
        # _fetch_telemetry — notably on drain() and close(), so the last
        # batches before shutdown are never lost (the child's buffers
        # would die with the fork otherwise).
        self._cached_stats_payload: Optional[Dict] = None
        self._cached_metrics_payload: Optional[Dict] = None
        self._pending_trace: List[Dict] = []
        self._clock_offset = 0.0
        self._dropped_roots = 0
        self._process = context.Process(
            target=_process_worker_main,
            args=(
                worker_id,
                specs,
                build_opts,
                kernel_backend,
                self._requests,
                self._responses,
            ),
            daemon=True,
        )
        self._process.start()
        kind, _, payload = self._responses.get()
        if kind == "error":
            raise RuntimeError(f"worker {worker_id} failed to start: {payload}")
        self.profiles: Dict[str, WorkerProfile] = dict(payload)

    # -- intake ------------------------------------------------------------
    def submit(self, ticket, artifact_id, client_id, payload, now, deadline):
        self._requests.put(
            ("submit", ticket, artifact_id, client_id, np.asarray(payload), now, deadline)
        )
        self._depths[artifact_id] += 1

    def serve_now(self, ticket, artifact_id, client_id, payload) -> ServeResult:
        self._requests.put(
            ("serve_now", ticket, artifact_id, client_id, np.asarray(payload))
        )
        results = self._collect()
        return results[0]

    # -- execution ---------------------------------------------------------
    def begin_step(self, now: Optional[float]) -> None:
        self._requests.put(("step", now))

    def finish_step(self, now: Optional[float]) -> List[ServeResult]:
        return self._collect()

    def drain(self) -> List[ServeResult]:
        self._requests.put(("drain",))
        results = self._collect()
        # Flush the child's telemetry after the final batches: without
        # this, metrics and trace spans recorded by drain-time runs only
        # exist in the fork and disappear at close().
        self._fetch_telemetry()
        return results

    def warm(self, batch_sizes=None) -> None:
        self._requests.put(("warm", batch_sizes))
        self._collect()

    def reload(self, artifact_id: str) -> WorkerProfile:
        """Hot-swap the artifact inside the child; mirror its profile."""
        self._requests.put(("reload", artifact_id))
        while True:
            kind, _, payload = self._responses.get()
            if kind == "profile":
                _, profile = payload
                self.profiles[artifact_id] = profile
                return profile
            if kind == "error":
                raise RuntimeError(f"worker {self.worker_id} died: {payload}")

    def _collect(self) -> List[ServeResult]:
        """Read responses until the worker's 'done' marker."""
        results: List[ServeResult] = []
        while True:
            kind, _, payload = self._responses.get()
            if kind == "result":
                result = ServeResult(**payload)
                self._depths[result.artifact_id] -= 1
                results.append(result)
            elif kind == "done":
                return results
            elif kind == "error":
                raise RuntimeError(f"worker {self.worker_id} died: {payload}")

    # -- observability -----------------------------------------------------
    def queue_depths(self) -> Dict[str, int]:
        return dict(self._depths)

    def queue_depth(self) -> int:
        return sum(self._depths.values())

    def stats(self) -> WorkerStats:
        if not self._process.is_alive():
            # The fork is gone; answer from the last flushed snapshot
            # (populated by drain()/close()) instead of deadlocking on a
            # queue nobody serves.
            if self._cached_stats_payload is None:
                raise RuntimeError(
                    f"worker {self.worker_id} is gone and left no stats"
                )
            return WorkerStats.from_payload(self._cached_stats_payload)
        self._requests.put(("stats",))
        while True:
            kind, _, payload = self._responses.get()
            if kind == "stats":
                self._cached_stats_payload = payload
                return WorkerStats.from_payload(payload)
            if kind == "error":
                raise RuntimeError(f"worker {self.worker_id} died: {payload}")

    def _fetch_telemetry(self) -> None:
        """Round-trip one telemetry snapshot from the child into the
        parent-side mirror.  Trace spans accumulate (the child drains
        its buffer, so no span arrives twice); stats/metrics payloads
        are cumulative and simply replace the cache."""
        if not self._process.is_alive():
            return
        self._requests.put(("telemetry",))
        while True:
            try:
                kind, _, payload = self._responses.get(timeout=30.0)
            except Exception:  # pragma: no cover - child wedged/raced exit
                return
            if kind == "telemetry":
                self._cached_stats_payload = payload["stats"]
                self._cached_metrics_payload = payload["metrics"]
                self._pending_trace.extend(payload["trace"])
                self._clock_offset = payload["clock_offset"]
                self._dropped_roots = payload["dropped_roots"]
                return
            if kind == "error":
                raise RuntimeError(f"worker {self.worker_id} died: {payload}")

    def telemetry(self) -> Dict:
        """Same bundle as :meth:`InlineWorker.telemetry`, served from
        the parent-side mirror (refreshed first if the child is alive).
        Trace spans keep their drain semantics across the pipe: the
        pending buffer is handed over exactly once."""
        self._fetch_telemetry()
        trace, self._pending_trace = self._pending_trace, []
        return {
            "stats": self._cached_stats_payload,
            "metrics": self._cached_metrics_payload,
            "trace": trace,
            "clock_offset": self._clock_offset,
            "dropped_roots": self._dropped_roots,
        }

    def close(self) -> None:
        if self._process.is_alive():
            # Final telemetry flush before the fork (and its buffers)
            # goes away; errors here must not block shutdown.
            try:
                self._fetch_telemetry()
            except RuntimeError:  # pragma: no cover - child died mid-close
                pass
            self._requests.put(("stop",))
            self._process.join(timeout=10.0)
            if self._process.is_alive():  # pragma: no cover - stuck child
                self._process.terminate()
                self._process.join(timeout=5.0)


class WorkerPool:
    """N workers sharding the hosted artifacts (lifecycle owner)."""

    def __init__(
        self,
        specs: Tuple[ArtifactSpec, ...],
        num_workers: int,
        *,
        mode: str = "inline",
        kernel_backend: Optional[str] = None,
        **build_opts,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.specs = tuple(specs)
        self.mode = mode
        self.workers: List[object] = []
        if mode == "inline":
            # One shared load of each mmapped artifact for the whole
            # pool: the program object (and its mapped tables) is
            # reference-shared; per-worker state lives in the backends.
            shared: Dict[str, ServingArtifact] = {}
            for worker_id in range(num_workers):
                self.workers.append(
                    InlineWorker(
                        worker_id,
                        self.specs,
                        shared_artifacts=shared,
                        **build_opts,
                    )
                )
        elif mode == "process":
            for worker_id in range(num_workers):
                self.workers.append(
                    ProcessWorker(
                        worker_id,
                        self.specs,
                        kernel_backend=kernel_backend,
                        **build_opts,
                    )
                )
        else:
            raise ValueError(f"unknown pool mode {mode!r}")

    def __len__(self) -> int:
        return len(self.workers)

    def reload(self, artifact_id: str) -> None:
        """Hot-swap a new version of one artifact into every worker.

        Inline pools re-open the (replaced) artifact file once and share
        the fresh load across workers, mirroring construction; process
        workers each re-map the file in their own child (page cache
        makes the bytes physically shared anyway).
        """
        spec = next(
            (s for s in self.specs if s.artifact_id == artifact_id), None
        )
        if spec is None:
            raise KeyError(f"unknown artifact {artifact_id!r}")
        if self.mode == "inline":
            fresh = None
            if spec.path is not None:
                fresh = ArtifactMap(spec.path).load()
            for worker in self.workers:
                worker.reload(artifact_id, artifact=fresh)
        else:
            for worker in self.workers:
                worker.reload(artifact_id)

    def close(self) -> None:
        for worker in self.workers:
            worker.close()


class Dispatcher:
    """Routing, admission, and conservation accounting for a pool."""

    def __init__(
        self,
        pool: WorkerPool,
        *,
        max_queue_depth: int = 32,
        admission_budget_seconds: Optional[float] = None,
        routing_seed: int = 0,
    ):
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        self.pool = pool
        self.max_queue_depth = max_queue_depth
        self.admission_budget_seconds = admission_budget_seconds
        self.routing_seed = routing_seed
        self.requests_submitted = 0
        self.requests_admitted = 0
        self.requests_rejected = 0
        self.requests_completed = 0
        self._next_ticket = 0
        self._closed = False

    # -- routing -----------------------------------------------------------
    def route(self, artifact_id: str, client_id: str) -> int:
        """Rendezvous-hash the request onto a worker (deterministic)."""
        best_worker, best_score = 0, -1
        for worker_id in range(len(self.pool)):
            digest = hashlib.sha256(
                f"{self.routing_seed}/{artifact_id}/{client_id}/{worker_id}".encode()
            ).digest()
            score = int.from_bytes(digest[:8], "big")
            if score > best_score:
                best_worker, best_score = worker_id, score
        return best_worker

    # -- admission ---------------------------------------------------------
    def _backlog_seconds(self, worker) -> float:
        """Modeled time to clear the worker's current queues."""
        total = 0.0
        for artifact_id, depth in worker.queue_depths().items():
            if depth == 0:
                continue
            profile = worker.profiles[artifact_id]
            batches = math.ceil(depth / max(1, profile.capacity))
            total += batches * profile.modeled_seconds
        return total

    def _admit(self, worker, artifact_id: str) -> None:
        depth = worker.queue_depth()
        profile = worker.profiles[artifact_id]
        if depth >= self.max_queue_depth:
            retry_ms = max(1.0, profile.modeled_seconds * 1e3)
            self.requests_rejected += 1
            raise AdmissionError(
                f"worker {worker.worker_id} queue is full "
                f"({depth}/{self.max_queue_depth}); retry in ~{retry_ms:.0f}ms",
                retry_after_ms=retry_ms,
                worker_id=worker.worker_id,
                queue_depth=depth,
            )
        if self.admission_budget_seconds is not None:
            estimate = self._backlog_seconds(worker) + profile.modeled_seconds
            if estimate > self.admission_budget_seconds:
                overhang = estimate - self.admission_budget_seconds
                retry_ms = max(1.0, overhang * 1e3)
                self.requests_rejected += 1
                raise AdmissionError(
                    f"worker {worker.worker_id} backlog {estimate * 1e3:.0f}ms "
                    f"exceeds the {self.admission_budget_seconds * 1e3:.0f}ms "
                    f"latency budget; retry in ~{retry_ms:.0f}ms",
                    retry_after_ms=retry_ms,
                    worker_id=worker.worker_id,
                    queue_depth=depth,
                )

    # -- request flow --------------------------------------------------------
    def submit(
        self,
        artifact_id: str,
        client_id: str,
        payload,
        now: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> int:
        if self._closed:
            raise RuntimeError("dispatcher is closed")
        worker = self.pool.workers[self.route(artifact_id, client_id)]
        self.requests_submitted += 1
        self._admit(worker, artifact_id)  # raises AdmissionError (counted)
        ticket = self._next_ticket
        self._next_ticket += 1
        worker.submit(ticket, artifact_id, client_id, payload, now, deadline)
        self.requests_admitted += 1
        return ticket

    def serve_now(self, artifact_id: str, client_id: str, payload) -> ServeResult:
        if self._closed:
            raise RuntimeError("dispatcher is closed")
        worker = self.pool.workers[self.route(artifact_id, client_id)]
        self.requests_submitted += 1
        self._admit(worker, artifact_id)
        ticket = self._next_ticket
        self._next_ticket += 1
        self.requests_admitted += 1
        result = worker.serve_now(ticket, artifact_id, client_id, payload)
        self.requests_completed += 1
        return result

    def step(self, now: Optional[float] = None) -> List[ServeResult]:
        """Run every due batch on every worker (process workers overlap)."""
        for worker in self.pool.workers:
            worker.begin_step(now)
        results: List[ServeResult] = []
        for worker in self.pool.workers:
            results.extend(worker.finish_step(now))
        self.requests_completed += len(results)
        return results

    def drain(self) -> List[ServeResult]:
        """Flush every queue (graceful shutdown: zero in-flight after)."""
        results: List[ServeResult] = []
        for worker in self.pool.workers:
            results.extend(worker.drain())
        self.requests_completed += len(results)
        return results

    def reload(self, artifact_id: str) -> None:
        """Hot-swap one artifact across the pool (quiesced swap).

        Requires zero in-flight requests — call :meth:`drain` first —
        so no request ever sees half a swap.  Routing, admission
        counters, and tenant key domains all survive the reload.
        """
        if self._closed:
            raise RuntimeError("dispatcher is closed")
        if self.in_flight:
            raise RuntimeError(
                f"{self.in_flight} request(s) in flight; drain() before "
                "reloading an artifact"
            )
        self.pool.reload(artifact_id)

    def close(self) -> None:
        self._closed = True
        self.pool.close()

    # -- observability -----------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self.requests_admitted - self.requests_completed
