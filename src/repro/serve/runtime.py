"""The inference server: a worker loop over reusable execution state.

Ties the serving pieces together (docs/serving.md):

- loads a program from a :class:`repro.serve.artifact.ServingArtifact`
  (never invoking the compiler — the construction-time counters are
  snapshotted so tests can assert exactly that);
- owns one *pool* backend (a single key domain: slot batching packs
  several requests into one ciphertext, which is only meaningful under
  one encryption key — cross-tenant isolation lives in
  :class:`repro.serve.keys.KeyRegistry`);
- drives a :class:`repro.serve.scheduler.SlotBatchingScheduler`,
  executing due batches through the program's block-replicated views
  and de-multiplexing per-client outputs;
- attributes cost to requests: every run executes under a scratch
  :class:`repro.backend.ledger.OpLedger` that is merged into the
  server's cumulative ledger afterwards, while per-op and per-request
  latency histograms accumulate the serving telemetry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro import kernels
from repro.backend.ledger import LatencyHistogram, OpLedger
from repro.core.program import ExecutionState
from repro.obs.noise import NoiseMonitor
from repro.obs.tracing import use_tracer
from repro.serve.scheduler import Batch, SlotBatchingScheduler


@dataclass
class ServeResult:
    """One completed request.

    ``artifact_id`` / ``worker_id`` are stamped by the worker pool
    (:mod:`repro.serve.pool`); a bare :class:`InferenceServer` leaves
    them ``None``.
    """

    ticket: int
    client_id: str
    output: np.ndarray
    batch_size: int
    reason: str
    wall_seconds: float
    modeled_seconds: float
    artifact_id: Optional[str] = None
    worker_id: Optional[int] = None


class InferenceServer:
    """Compile-once / serve-many worker over one key domain.

    Args:
        artifact: a loaded :class:`ServingArtifact` (or anything with
            ``program``/``summary``/``preload`` in its shape).
        backend: the pool backend requests are encrypted under.
        batching: enable cross-request slot batching.
        max_batch: cap on the batch size (defaults to the program's
            slot capacity).
        max_wait_seconds: default latency budget per request.
        preload: seed the backend's plaintext caches from the
            artifact's pre-encoded tables at construction.
    """

    def __init__(
        self,
        artifact,
        backend,
        batching: bool = True,
        max_batch: Optional[int] = None,
        max_wait_seconds: float = 0.05,
        preload: bool = True,
        tracer=None,
    ):
        from repro.core.compiler import OrionCompiler
        from repro.core.placement.planner import solve_placement

        self.artifact = artifact
        self.program = artifact.program
        self.backend = backend
        capacity = 1
        if batching:
            capacity = self.program.slot_batch_capacity()
            if max_batch is not None:
                if max_batch < 1:
                    raise ValueError("max_batch must be at least 1")
                # Batch sizes must be powers of two (block replication
                # divides the slot count), so floor the cap to one.
                capacity = min(
                    capacity, 1 << (max_batch.bit_length() - 1)
                )
        self.scheduler = SlotBatchingScheduler(
            capacity=capacity,
            modeled_run_seconds=float(artifact.summary.get("modeled_seconds", 0.0)),
            max_wait_seconds=max_wait_seconds,
        )
        self.state = ExecutionState(backend)
        self.ledger = OpLedger()
        self.request_latency = LatencyHistogram()
        self.op_histograms: Dict[str, LatencyHistogram] = {}
        self.requests_served = 0
        self.batches_run = 0
        #: optional repro.obs.Tracer; when set and enabled, every batch
        #: run produces a "serve.batch" span tree plus one
        #: "serve.request" span per completed request.
        self.tracer = tracer
        # Noise telemetry is always on: level/scale drift at modulus-
        # chain boundaries is counts-only (no events retained), cheap,
        # and observe-only — surfaced in ServerStats schema v2.
        self.noise = NoiseMonitor(delta_scale=backend.params.scale)
        backend.noise_monitor = self.noise
        self.preloaded_plaintexts = (
            artifact.preload(backend) if preload else 0
        )
        # Serve-path purity: neither the compiler nor the placement
        # planner may run while this server lives.
        self._compiler_invocations_at_load = OrionCompiler.invocations
        self._planner_invocations_at_load = solve_placement.invocations

    # -- serve-path purity ---------------------------------------------------
    @property
    def compilations_since_load(self) -> int:
        from repro.core.compiler import OrionCompiler

        return OrionCompiler.invocations - self._compiler_invocations_at_load

    @property
    def placements_since_load(self) -> int:
        from repro.core.placement.planner import solve_placement

        return solve_placement.invocations - self._planner_invocations_at_load

    # -- warm-up -------------------------------------------------------------
    def warm(self, batch_sizes=None) -> None:
        """Run a zeros inference through the given execution shapes so
        galois keys and weight-plaintext caches are populated before the
        first real request (off the books: nothing is recorded)."""
        if batch_sizes is None:
            batch_sizes = (1, self.scheduler.capacity)
        shape = self.program.input_layout.tensor_shape
        scratch = OpLedger()
        main_ledger = self.backend.ledger
        main_monitor = self.backend.noise_monitor
        self.backend.ledger = scratch
        self.backend.noise_monitor = None
        try:
            for size in sorted(set(batch_sizes)):
                program = self.program.batched(size)
                dummy = np.zeros(shape) if size == 1 else np.zeros((size,) + shape)
                program.run(self.backend, dummy)
        finally:
            self.backend.ledger = main_ledger
            self.backend.noise_monitor = main_monitor

    # -- request intake ------------------------------------------------------
    def submit(
        self,
        image: np.ndarray,
        client_id: str = "anon",
        now: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> int:
        """Enqueue a request; returns its ticket."""
        request = self.scheduler.submit(client_id, image, now=now, deadline=deadline)
        self._stamp_trace(request)
        return request.ticket

    def serve_now(self, image: np.ndarray, client_id: str = "anon") -> ServeResult:
        """Run one request immediately, bypassing the queue."""
        request = self.scheduler.submit(client_id, image)
        self._stamp_trace(request)
        self.scheduler.queue.remove(request)
        return self._run_batch(Batch(requests=[request], reason="single"))[0]

    def _stamp_trace(self, request) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            request.trace_enqueued = tracer.clock()

    # -- worker loop ---------------------------------------------------------
    def step(self, now: Optional[float] = None) -> List[ServeResult]:
        """Run every batch the decision rule says is due."""
        results: List[ServeResult] = []
        while True:
            batch = self.scheduler.due(now)
            if batch is None:
                return results
            results.extend(self._run_batch(batch))

    def drain(self) -> List[ServeResult]:
        """Flush the queue regardless of deadlines (end of tick)."""
        results: List[ServeResult] = []
        for batch in self.scheduler.flush():
            results.extend(self._run_batch(batch))
        return results

    # -- execution -----------------------------------------------------------
    def _run_batch(self, batch: Batch) -> List[ServeResult]:
        size = batch.size
        program = self.program.batched(size)
        if size > 1:
            inputs = np.stack([np.asarray(r.payload) for r in batch.requests])
        else:
            inputs = np.asarray(batch.requests[0].payload)
        scratch = OpLedger()
        main_ledger = self.backend.ledger
        self.backend.ledger = scratch
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            try:
                outputs, wall = self._run_traced(
                    tracer, program, inputs, batch, scratch
                )
            finally:
                self.backend.ledger = main_ledger
        else:
            start = time.perf_counter()
            try:
                self.state.reset()
                cts = program.encrypt_input(self.backend, inputs)
                out_cts = program.execute(self.state, cts)
                outputs = program.decrypt_output(self.backend, out_cts)
            finally:
                self.backend.ledger = main_ledger
            wall = time.perf_counter() - start
        self._record(scratch, wall, size)
        main_ledger.merge(scratch)
        self.ledger.merge(scratch)
        self.batches_run += 1
        self.requests_served += size
        results = []
        for index, request in enumerate(batch.requests):
            output = outputs[index] if size > 1 else outputs
            results.append(
                ServeResult(
                    ticket=request.ticket,
                    client_id=request.client_id,
                    output=output,
                    batch_size=size,
                    reason=batch.reason,
                    wall_seconds=wall,
                    modeled_seconds=scratch.seconds / size,
                )
            )
        return results

    def _run_traced(self, tracer, program, inputs, batch: Batch, scratch):
        """The traced batch body: a "serve.batch" root span (bound to
        the scratch ledger, so its op counts are exactly this batch's)
        with encrypt / execute / decrypt children, plus one
        "serve.request" span per request covering enqueue → complete.
        All spans are observe-only; the computation is identical to the
        untraced path (asserted by the bit-exactness tracing tests)."""
        with use_tracer(tracer):
            with tracer.span(
                "serve.batch",
                category="serve",
                ledger=scratch,
                batch_size=batch.size,
                reason=batch.reason,
                kernel_backend=kernels.active_backend(),
            ):
                start = tracer.clock()
                self.state.reset()
                with tracer.span("encrypt", category="serve", ledger=scratch):
                    cts = program.encrypt_input(self.backend, inputs)
                with tracer.span("execute", category="serve", ledger=scratch):
                    out_cts = program.execute(self.state, cts)
                with tracer.span("decrypt", category="serve", ledger=scratch):
                    outputs = program.decrypt_output(self.backend, out_cts)
                end = tracer.clock()
        for request in batch.requests:
            enqueued = request.trace_enqueued
            tracer.record_span(
                "serve.request",
                start if enqueued is None else enqueued,
                end,
                category="serve",
                client_id=request.client_id,
                ticket=request.ticket,
                batch_size=batch.size,
                reason=batch.reason,
            )
        return outputs, end - start

    def _record(self, scratch: OpLedger, wall: float, size: int) -> None:
        # Every request in the batch *waited* the full run — the
        # histogram reports latency; amortized per-request cost lives in
        # ServeResult.modeled_seconds and the throughput benchmarks.
        for _ in range(size):
            self.request_latency.observe(wall)
        for phase, seconds in scratch.seconds_by_phase.items():
            op = phase.split("/", 1)[0]
            histogram = self.op_histograms.get(op)
            if histogram is None:
                histogram = LatencyHistogram()
                self.op_histograms[op] = histogram
            histogram.observe(seconds)

    # -- observability -------------------------------------------------------
    def stats(self) -> Dict:
        return {
            "requests_served": self.requests_served,
            "batches_run": self.batches_run,
            "capacity": self.scheduler.capacity,
            "preloaded_plaintexts": self.preloaded_plaintexts,
            "compilations_since_load": self.compilations_since_load,
            "placements_since_load": self.placements_since_load,
            "request_latency": self.request_latency.snapshot(),
            "modeled_seconds": self.ledger.seconds,
            "kernel_backend": kernels.active_backend(),
            "ops": {
                op: histogram.snapshot()
                for op, histogram in sorted(self.op_histograms.items())
            },
            "ledger": self.ledger.snapshot(),
            "noise": self.noise.stats(),
        }
