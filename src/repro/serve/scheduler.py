"""Cross-request SIMD slot batching: the queue and the decision rule.

One encrypted MNIST-scale inference occupies a small fraction of a
ciphertext's slots; the rest ride along as zeros.  The scheduler
coalesces pending requests into those unused slots — B clients in B
blocks of n/B slots — so the *same* compiled program (with its linear
layers swapped for block-replicated views, see
:meth:`repro.core.program.FheProgram.batched`) serves all of them in
one execution: ~B x requests/sec for ~1 x the latency.

The decision rule (docs/serving.md) is cost-model-driven:

- **Full batch** — when the queue holds a full ciphertext's worth of
  requests (the program's slot capacity), run immediately; waiting
  cannot improve throughput further.
- **Deadline** — each request carries a latency deadline (or inherits
  ``max_wait_seconds``).  The scheduler flushes a partial batch as soon
  as waiting any longer would make the earliest deadline unmeetable,
  using the modeled batched-run latency from the cost model: flush when
  ``now + modeled_run_seconds >= earliest_deadline``.
- **Worthwhileness** — a batch of B is only formed when the modeled
  batched run beats B sequential runs (it essentially always does —
  the batched program runs the same ciphertext count — but the rule is
  checked against the cost model, not assumed, so a future layout whose
  batched view were more expensive would fall back to run-now).

The scheduler is deterministic and clock-injected (pass ``now``) so the
runtime — and the tests — fully control time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional


@dataclass
class PendingRequest:
    """One enqueued inference request."""

    client_id: str
    payload: object
    enqueued_at: float
    deadline: Optional[float] = None
    ticket: int = 0
    # Enqueue timestamp on the *tracer* clock (perf_counter), stamped by
    # the serving runtime when tracing is on; ``enqueued_at`` stays on
    # the scheduler's injected monotonic clock, which tests control.
    trace_enqueued: Optional[float] = None


@dataclass
class Batch:
    """A group of requests scheduled to run in one ciphertext."""

    requests: List[PendingRequest]
    reason: str  # "full" | "deadline" | "flush" | "single"

    @property
    def size(self) -> int:
        return len(self.requests)


class SlotBatchingScheduler:
    """Coalesces requests into slot-batched runs under a latency knob.

    Args:
        capacity: the program's slot-batch capacity (power of two).
        modeled_run_seconds: cost-model latency of one (batched or
            single — same ciphertext count) program execution; drives
            the deadline rule.
        max_wait_seconds: default latency budget for requests without
            an explicit deadline.
        batch_worthwhile: predicate ``(batch_size) -> bool`` from the
            cost model; defaults to "always" for B >= 2.
    """

    def __init__(
        self,
        capacity: int,
        modeled_run_seconds: float = 0.0,
        max_wait_seconds: float = 0.05,
        batch_worthwhile=None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.modeled_run_seconds = modeled_run_seconds
        self.max_wait_seconds = max_wait_seconds
        self.batch_worthwhile = batch_worthwhile or (lambda size: size >= 2)
        self.queue: List[PendingRequest] = []
        self._next_ticket = 0

    # -- queue -------------------------------------------------------------
    def submit(
        self,
        client_id: str,
        payload,
        now: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> PendingRequest:
        now = time.monotonic() if now is None else now
        request = PendingRequest(
            client_id=client_id,
            payload=payload,
            enqueued_at=now,
            deadline=deadline if deadline is not None else now + self.max_wait_seconds,
            ticket=self._next_ticket,
        )
        self._next_ticket += 1
        self.queue.append(request)
        return request

    def __len__(self) -> int:
        return len(self.queue)

    # -- decision rule -----------------------------------------------------
    def earliest_deadline(self) -> Optional[float]:
        if not self.queue:
            return None
        return min(r.deadline for r in self.queue)

    def due(self, now: Optional[float] = None) -> Optional[Batch]:
        """The batch to run right now, or None to keep waiting.

        Call repeatedly until it returns None (a full queue can yield
        several capacity-sized batches).
        """
        if not self.queue:
            return None
        now = time.monotonic() if now is None else now
        if len(self.queue) >= self.capacity:
            return self._take(self.capacity, "full")
        if now + self.modeled_run_seconds >= self.earliest_deadline():
            size = _floor_power_of_two(len(self.queue))
            if size >= 2 and self.batch_worthwhile(size):
                return self._take(size, "deadline")
            return self._take(1, "single")
        return None

    def flush(self, now: Optional[float] = None) -> List[Batch]:
        """Drain the whole queue into maximal power-of-two batches
        (shutdown / end-of-tick semantics)."""
        batches: List[Batch] = []
        while self.queue:
            size = min(self.capacity, _floor_power_of_two(len(self.queue)))
            if size >= 2 and not self.batch_worthwhile(size):
                size = 1
            batches.append(self._take(size, "flush" if size > 1 else "single"))
        return batches

    def _take(self, size: int, reason: str) -> Batch:
        self.queue.sort(key=lambda r: (r.deadline, r.ticket))
        taken, self.queue = self.queue[:size], self.queue[size:]
        return Batch(requests=taken, reason=reason)


def _floor_power_of_two(value: int) -> int:
    return 1 << (max(1, value).bit_length() - 1)
