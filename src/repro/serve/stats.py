"""Typed, schema-versioned serving telemetry.

The PR-4 serving surface reported raw dicts assembled ad hoc from
``OpLedger.snapshot()`` and ``LatencyHistogram.snapshot()``; every
consumer (benchmarks, the CI bench gate, dashboards) re-invented the
schema.  This module is the single typed schema both ``Server.stats()``
and ``BENCH_serving.json`` speak:

- :class:`HistogramStats` — one latency histogram, summarized;
- :class:`WorkerStats`    — one worker's serving counters, per-op
  latency, serve-path purity counters, and the mmap discipline flag;
- :class:`ServerStats`    — the pool: per-worker stats plus the
  dispatcher's admission-conservation counters.

All three are frozen dataclasses with ``to_payload`` / ``from_payload``
(plain-JSON dicts) and ``to_json`` / ``from_json`` round-trips, pinned
by ``STATS_SCHEMA_VERSION`` — a consumer reading a payload written by a
different build fails loudly instead of mis-parsing it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.obs.summary import merge_histogram_summaries, summarize_histogram

#: Version 3: adds per-worker key-material accounting (``WorkerStats.
#: key_bytes_resident`` / ``key_bytes_spilled`` and the matching tenant
#: counts) from the spill-capable :class:`repro.serve.keys.KeyRegistry`.
#: Version 2 added the per-worker noise-budget telemetry
#: (``WorkerStats.noise``).  Payloads from any other version are
#: rejected loudly by ``ServerStats.from_payload``; see
#: docs/observability.md for the migration notes.
STATS_SCHEMA_VERSION = 3


class StatsSchemaError(ValueError):
    """A stats payload written by an incompatible schema version."""


@dataclass(frozen=True)
class HistogramStats:
    """Summary of one :class:`repro.backend.ledger.LatencyHistogram`.

    Produced by — and merged with — the shared summarizer in
    :mod:`repro.obs.summary`, so this class and ``LatencyHistogram.
    snapshot()`` can never disagree on the summary shape or the merge
    arithmetic.
    """

    count: int
    mean_seconds: float
    p50_seconds: float
    p99_seconds: float

    @classmethod
    def from_histogram(cls, histogram) -> "HistogramStats":
        return cls(**summarize_histogram(histogram))

    def merged_with(self, other: "HistogramStats") -> "HistogramStats":
        """Count-weighted mean, max percentiles (the only merge possible
        once the underlying buckets are gone)."""
        return HistogramStats(
            **merge_histogram_summaries(self.to_payload(), other.to_payload())
        )

    def to_payload(self) -> Dict:
        return {
            "count": self.count,
            "mean_seconds": self.mean_seconds,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "HistogramStats":
        return cls(
            count=int(payload["count"]),
            mean_seconds=float(payload["mean_seconds"]),
            p50_seconds=float(payload["p50_seconds"]),
            p99_seconds=float(payload["p99_seconds"]),
        )


@dataclass(frozen=True)
class NoiseStats:
    """Noise-budget telemetry of one worker (schema v2).

    Summarizes a :class:`repro.obs.NoiseMonitor`: how many modulus-chain
    boundary events the worker executed, the lowest level any ciphertext
    reached (how close the run came to exhausting the chain), and the
    largest log2 drift of any post-boundary scale from the context's
    Delta (precision regressions localize here before they corrupt
    decrypted outputs).
    """

    rescales: int = 0
    mod_downs: int = 0
    bootstraps: int = 0
    min_level: Optional[int] = None
    max_scale_drift_log2: float = 0.0

    @classmethod
    def from_monitor(cls, monitor) -> "NoiseStats":
        return cls(**monitor.stats())

    def merged_with(self, other: "NoiseStats") -> "NoiseStats":
        levels = [
            lvl for lvl in (self.min_level, other.min_level) if lvl is not None
        ]
        return NoiseStats(
            rescales=self.rescales + other.rescales,
            mod_downs=self.mod_downs + other.mod_downs,
            bootstraps=self.bootstraps + other.bootstraps,
            min_level=min(levels) if levels else None,
            max_scale_drift_log2=max(
                self.max_scale_drift_log2, other.max_scale_drift_log2
            ),
        )

    def to_payload(self) -> Dict:
        return {
            "rescales": self.rescales,
            "mod_downs": self.mod_downs,
            "bootstraps": self.bootstraps,
            "min_level": self.min_level,
            "max_scale_drift_log2": self.max_scale_drift_log2,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "NoiseStats":
        min_level = payload["min_level"]
        return cls(
            rescales=int(payload["rescales"]),
            mod_downs=int(payload["mod_downs"]),
            bootstraps=int(payload["bootstraps"]),
            min_level=None if min_level is None else int(min_level),
            max_scale_drift_log2=float(payload["max_scale_drift_log2"]),
        )


@dataclass(frozen=True)
class WorkerStats:
    """One worker's serving telemetry.

    ``ops`` maps an operation phase (``linear``, ``act``, ...) to the
    modeled-latency histogram of its per-batch charges — the typed
    replacement for the raw ``stats()["ops"]`` dicts.

    ``key_bytes_resident`` / ``key_bytes_spilled`` (schema v3) split the
    worker's key-material footprint between RAM and spill files, as
    accounted by its :meth:`repro.serve.keys.KeyRegistry.key_bytes`;
    ``tenants_resident`` / ``tenants_spilled`` count the clients on each
    side.  The serving-pool benchmark gates the resident number against
    a budget so tenant-density regressions fail CI.
    """

    worker_id: int
    requests_served: int
    batches_run: int
    queue_depth: int
    capacity: int
    preloaded_plaintexts: int
    modeled_seconds: float
    rotations: int
    bootstraps: int
    compilations_since_load: int
    placements_since_load: int
    kernel_backend: str
    mmap_backed: bool
    request_latency: HistogramStats = field(
        default_factory=lambda: HistogramStats(0, 0.0, 0.0, 0.0)
    )
    ops: Tuple[Tuple[str, HistogramStats], ...] = ()
    noise: NoiseStats = field(default_factory=NoiseStats)
    key_bytes_resident: int = 0
    key_bytes_spilled: int = 0
    tenants_resident: int = 0
    tenants_spilled: int = 0

    @classmethod
    def from_server(
        cls,
        worker_id: int,
        server,
        queue_depth: int,
        mmap_backed: bool,
        registry=None,
    ) -> "WorkerStats":
        """Summarize one :class:`repro.serve.runtime.InferenceServer`.

        ``registry`` is the worker's :class:`repro.serve.keys.KeyRegistry`
        for this artifact (when the pool routes key accounting through
        one); it supplies the resident/spilled key-material split.
        """
        from repro import kernels

        key_bytes = (
            registry.key_bytes() if registry is not None else {"resident": 0, "spilled": 0}
        )
        return cls(
            worker_id=worker_id,
            requests_served=server.requests_served,
            batches_run=server.batches_run,
            queue_depth=queue_depth,
            capacity=server.scheduler.capacity,
            preloaded_plaintexts=server.preloaded_plaintexts,
            modeled_seconds=server.ledger.seconds,
            rotations=server.ledger.rotations,
            bootstraps=server.ledger.bootstraps,
            compilations_since_load=server.compilations_since_load,
            placements_since_load=server.placements_since_load,
            kernel_backend=kernels.active_backend(),
            mmap_backed=mmap_backed,
            request_latency=HistogramStats.from_histogram(
                server.request_latency
            ),
            ops=tuple(
                (op, HistogramStats.from_histogram(histogram))
                for op, histogram in sorted(server.op_histograms.items())
            ),
            noise=NoiseStats.from_monitor(server.noise),
            key_bytes_resident=key_bytes["resident"],
            key_bytes_spilled=key_bytes["spilled"],
            tenants_resident=len(registry) if registry is not None else 0,
            tenants_spilled=(
                registry.spilled_count() if registry is not None else 0
            ),
        )

    def merged_with(self, other: "WorkerStats") -> "WorkerStats":
        """Fold another server's counters into this worker's (a worker
        hosting several artifacts reports one combined row).  Histogram
        summaries merge through the shared summarizer in
        :mod:`repro.obs.summary`."""
        ops: Dict[str, HistogramStats] = dict(self.ops)
        for op, stats in other.ops:
            ops[op] = ops[op].merged_with(stats) if op in ops else stats
        latency = self.request_latency.merged_with(other.request_latency)
        return WorkerStats(
            worker_id=self.worker_id,
            requests_served=self.requests_served + other.requests_served,
            batches_run=self.batches_run + other.batches_run,
            queue_depth=self.queue_depth + other.queue_depth,
            capacity=max(self.capacity, other.capacity),
            preloaded_plaintexts=self.preloaded_plaintexts
            + other.preloaded_plaintexts,
            modeled_seconds=self.modeled_seconds + other.modeled_seconds,
            rotations=self.rotations + other.rotations,
            bootstraps=self.bootstraps + other.bootstraps,
            compilations_since_load=self.compilations_since_load
            + other.compilations_since_load,
            placements_since_load=self.placements_since_load
            + other.placements_since_load,
            kernel_backend=self.kernel_backend,
            mmap_backed=self.mmap_backed and other.mmap_backed,
            request_latency=latency,
            ops=tuple(sorted(ops.items())),
            noise=self.noise.merged_with(other.noise),
            key_bytes_resident=self.key_bytes_resident
            + other.key_bytes_resident,
            key_bytes_spilled=self.key_bytes_spilled + other.key_bytes_spilled,
            tenants_resident=self.tenants_resident + other.tenants_resident,
            tenants_spilled=self.tenants_spilled + other.tenants_spilled,
        )

    def to_payload(self) -> Dict:
        return {
            "worker_id": self.worker_id,
            "requests_served": self.requests_served,
            "batches_run": self.batches_run,
            "queue_depth": self.queue_depth,
            "capacity": self.capacity,
            "preloaded_plaintexts": self.preloaded_plaintexts,
            "modeled_seconds": self.modeled_seconds,
            "rotations": self.rotations,
            "bootstraps": self.bootstraps,
            "compilations_since_load": self.compilations_since_load,
            "placements_since_load": self.placements_since_load,
            "kernel_backend": self.kernel_backend,
            "mmap_backed": self.mmap_backed,
            "request_latency": self.request_latency.to_payload(),
            "ops": {op: stats.to_payload() for op, stats in self.ops},
            "noise": self.noise.to_payload(),
            "key_bytes_resident": self.key_bytes_resident,
            "key_bytes_spilled": self.key_bytes_spilled,
            "tenants_resident": self.tenants_resident,
            "tenants_spilled": self.tenants_spilled,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "WorkerStats":
        return cls(
            worker_id=int(payload["worker_id"]),
            requests_served=int(payload["requests_served"]),
            batches_run=int(payload["batches_run"]),
            queue_depth=int(payload["queue_depth"]),
            capacity=int(payload["capacity"]),
            preloaded_plaintexts=int(payload["preloaded_plaintexts"]),
            modeled_seconds=float(payload["modeled_seconds"]),
            rotations=int(payload["rotations"]),
            bootstraps=int(payload["bootstraps"]),
            compilations_since_load=int(payload["compilations_since_load"]),
            placements_since_load=int(payload["placements_since_load"]),
            kernel_backend=str(payload["kernel_backend"]),
            mmap_backed=bool(payload["mmap_backed"]),
            request_latency=HistogramStats.from_payload(
                payload["request_latency"]
            ),
            ops=tuple(
                (op, HistogramStats.from_payload(entry))
                for op, entry in sorted(payload["ops"].items())
            ),
            noise=NoiseStats.from_payload(payload["noise"]),
            key_bytes_resident=int(payload["key_bytes_resident"]),
            key_bytes_spilled=int(payload["key_bytes_spilled"]),
            tenants_resident=int(payload["tenants_resident"]),
            tenants_spilled=int(payload["tenants_spilled"]),
        )


@dataclass(frozen=True)
class ServerStats:
    """The pool-level view :meth:`repro.serve.Server.stats` returns.

    Admission conservation is part of the schema, not just the tests:
    ``requests_submitted == requests_admitted + requests_rejected`` and
    ``requests_admitted == requests_completed + in_flight`` hold at
    every observation point, so a consumer can audit that no request
    was dropped silently.
    """

    schema_version: int
    artifacts: Tuple[str, ...]
    requests_submitted: int
    requests_admitted: int
    requests_rejected: int
    requests_completed: int
    in_flight: int
    kernel_backend: str
    workers: Tuple[WorkerStats, ...]

    def __post_init__(self):
        if self.requests_submitted != (
            self.requests_admitted + self.requests_rejected
        ):
            raise ValueError(
                "conservation violated: submitted != admitted + rejected "
                f"({self.requests_submitted} != {self.requests_admitted} "
                f"+ {self.requests_rejected})"
            )
        if self.requests_admitted != self.requests_completed + self.in_flight:
            raise ValueError(
                "conservation violated: admitted != completed + in_flight "
                f"({self.requests_admitted} != {self.requests_completed} "
                f"+ {self.in_flight})"
            )

    @property
    def reject_rate(self) -> float:
        if self.requests_submitted == 0:
            return 0.0
        return self.requests_rejected / self.requests_submitted

    def worker(self, worker_id: int) -> WorkerStats:
        for stats in self.workers:
            if stats.worker_id == worker_id:
                return stats
        raise KeyError(f"no worker {worker_id}")

    def to_payload(self) -> Dict:
        return {
            "schema_version": self.schema_version,
            "artifacts": list(self.artifacts),
            "requests_submitted": self.requests_submitted,
            "requests_admitted": self.requests_admitted,
            "requests_rejected": self.requests_rejected,
            "requests_completed": self.requests_completed,
            "in_flight": self.in_flight,
            "reject_rate": self.reject_rate,
            "kernel_backend": self.kernel_backend,
            "workers": [stats.to_payload() for stats in self.workers],
        }

    def to_json(self, indent=None) -> str:
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)

    @classmethod
    def from_payload(cls, payload: Dict) -> "ServerStats":
        version = payload.get("schema_version")
        if version != STATS_SCHEMA_VERSION:
            hints = {
                1: (
                    " (version 1 payloads predate the per-worker "
                    "noise-budget telemetry; re-export from this build — "
                    "there is no lossy auto-upgrade)"
                ),
                2: (
                    " (version 2 payloads predate the per-worker "
                    "key-material accounting; re-export from this build — "
                    "there is no lossy auto-upgrade)"
                ),
            }
            raise StatsSchemaError(
                f"stats schema version {version!r} is not supported "
                f"(this build reads version {STATS_SCHEMA_VERSION})"
                f"{hints.get(version, '')}"
            )
        return cls(
            schema_version=int(version),
            artifacts=tuple(payload["artifacts"]),
            requests_submitted=int(payload["requests_submitted"]),
            requests_admitted=int(payload["requests_admitted"]),
            requests_rejected=int(payload["requests_rejected"]),
            requests_completed=int(payload["requests_completed"]),
            in_flight=int(payload["in_flight"]),
            kernel_backend=str(payload["kernel_backend"]),
            workers=tuple(
                WorkerStats.from_payload(entry) for entry in payload["workers"]
            ),
        )

    @classmethod
    def from_json(cls, doc: str) -> "ServerStats":
        return cls.from_payload(json.loads(doc))
