"""Network tracing: orion modules -> layer DAG -> nested SESE regions.

The bootstrap placement algorithm (paper Section 5) operates on a
program structure tree: chains of layers where each residual connection
forms a single-entry single-exit (SESE) region bounded by a fork node
and a join node.  This package builds that structure from a traced
forward pass.
"""

from repro.trace.graph import LayerGraph, TraceNode, TracedValue, trace_active, tracer
from repro.trace.sese import Chain, LayerItem, RegionItem, build_region_tree

__all__ = [
    "LayerGraph",
    "TraceNode",
    "TracedValue",
    "trace_active",
    "tracer",
    "Chain",
    "LayerItem",
    "RegionItem",
    "build_region_tree",
]
