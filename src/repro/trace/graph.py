"""Tracing machinery: record the module-level dataflow of a forward pass.

Orion modules (repro.orion.nn) check :func:`trace_active` inside
``__call__``; when a trace is live, each *leaf* module appends a
:class:`TraceNode` linking its input value ids to its output value id.
Container modules (user subclasses, Sequential) contribute nothing —
only the leaves appear in the graph, mirroring how the paper treats a
"network layer" as a linear transform or polynomial evaluation.
"""

from __future__ import annotations

import contextlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.autograd.tensor import Tensor


@dataclass
class TracedValue:
    """A tensor flowing through a traced forward pass."""

    tensor: Tensor
    uid: int

    @property
    def feature_shape(self) -> Tuple[int, ...]:
        """Shape without the batch dimension."""
        return tuple(self.tensor.shape[1:])


@dataclass
class TraceNode:
    """One executed leaf module."""

    index: int
    module: object  # an orion leaf module
    inputs: Tuple[int, ...]
    output: int
    input_shapes: Tuple[Tuple[int, ...], ...]
    output_shape: Tuple[int, ...]
    output_max_abs: float = 0.0  # peak |value| seen (range estimation)

    @property
    def name(self) -> str:
        return f"{type(self.module).__name__.lower()}_{self.index}"


@dataclass
class LayerGraph:
    """The traced layer DAG.

    ``nodes`` are in execution order (a valid topological order).
    Value ids: ``input_uid`` is the network input; every node output
    introduces a fresh uid.

    The producer/consumer maps are cached (the graph optimizer queries
    them heavily); every mutation must go through the rewrite API below
    (or call :meth:`invalidate` itself) so the caches never go stale.
    """

    nodes: List[TraceNode] = field(default_factory=list)
    input_uid: int = 0
    output_uid: Optional[int] = None
    _uid_counter: itertools.count = field(default_factory=itertools.count)
    _producers: Optional[Dict[int, TraceNode]] = field(
        default=None, repr=False, compare=False
    )
    _consumers: Optional[Dict[int, List[TraceNode]]] = field(
        default=None, repr=False, compare=False
    )

    def fresh_uid(self) -> int:
        return next(self._uid_counter)

    def invalidate(self) -> None:
        """Drop the cached producer/consumer maps after a mutation."""
        self._producers = None
        self._consumers = None

    def producers(self) -> Dict[int, TraceNode]:
        if self._producers is None:
            self._producers = {node.output: node for node in self.nodes}
        return self._producers

    def consumers(self) -> Dict[int, List[TraceNode]]:
        if self._consumers is None:
            out: Dict[int, List[TraceNode]] = {}
            for node in self.nodes:
                for uid in node.inputs:
                    out.setdefault(uid, []).append(node)
            self._consumers = out
        return self._consumers

    def fork_uids(self) -> List[int]:
        """Value ids consumed by more than one node (fork points)."""
        return [uid for uid, nodes in self.consumers().items() if len(nodes) > 1]

    def node_by_output(self, uid: int) -> Optional[TraceNode]:
        return self.producers().get(uid)

    # -- rewrite API (repro.core.graphopt) ---------------------------------
    def fresh_index(self) -> int:
        """An unused node index for a rewrite-created node.

        Node indices key the compiler's batch-norm folding table and the
        ``name`` property, so rewrites must never reuse one.
        """
        return max((node.index for node in self.nodes), default=-1) + 1

    def position_of(self, node: TraceNode) -> int:
        """Position of ``node`` in the execution-ordered node list."""
        for pos, candidate in enumerate(self.nodes):
            if candidate is node:
                return pos
        raise ValueError(f"{node.name} is not in this graph")

    def insert_nodes(self, position: int, new_nodes: List[TraceNode]) -> None:
        """Insert nodes at a list position (caller keeps topo order)."""
        self.nodes[position:position] = list(new_nodes)
        self.invalidate()

    def remove_nodes(self, dead: List[TraceNode]) -> None:
        """Remove nodes by identity."""
        doomed = {id(node) for node in dead}
        self.nodes = [node for node in self.nodes if id(node) not in doomed]
        self.invalidate()

    def rewire_value(self, old_uid: int, new_uid: int) -> None:
        """Replace every read of ``old_uid`` with ``new_uid``.

        Used when a rewrite removes the producer of ``old_uid`` and an
        equal value is available under ``new_uid`` (e.g. canceled
        rotation pairs).  Also retargets the graph output.
        """
        for node in self.nodes:
            if old_uid in node.inputs:
                node.inputs = tuple(
                    new_uid if uid == old_uid else uid for uid in node.inputs
                )
        if self.output_uid == old_uid:
            self.output_uid = new_uid
        self.invalidate()


_ACTIVE_TRACE: List[LayerGraph] = []


def trace_active() -> Optional[LayerGraph]:
    return _ACTIVE_TRACE[-1] if _ACTIVE_TRACE else None


@contextlib.contextmanager
def tracer():
    """Open a trace scope; orion leaf modules record into it."""
    graph = LayerGraph()
    graph.input_uid = graph.fresh_uid()
    _ACTIVE_TRACE.append(graph)
    try:
        yield graph
    finally:
        _ACTIVE_TRACE.pop()


def record_node(module, inputs: List[TracedValue], output_tensor: Tensor) -> TracedValue:
    """Append a leaf-module execution to the active trace."""
    graph = trace_active()
    if graph is None:
        raise RuntimeError("record_node called outside a tracer() scope")
    out = TracedValue(output_tensor, graph.fresh_uid())
    import numpy as _np

    peak = float(_np.max(_np.abs(output_tensor.data))) if output_tensor.size else 0.0
    node = TraceNode(
        index=len(graph.nodes),
        module=module,
        inputs=tuple(v.uid for v in inputs),
        output=out.uid,
        input_shapes=tuple(v.feature_shape for v in inputs),
        output_shape=out.feature_shape,
        output_max_abs=peak,
    )
    graph.nodes.append(node)
    graph.output_uid = out.uid
    graph.invalidate()
    return out
