"""SESE region extraction: layer DAG -> nested chain/region structure.

The paper (Section 5.2) observes that each residual connection forms a
single-entry single-exit region bounded by a fork node (a value with
multiple consumers) and a join node (a module with multiple inputs,
i.e. ``on.Add``).  Because Orion excludes overlapping skip connections
(e.g. DenseNets), regions nest properly and the whole network parses
into a tree: a :class:`Chain` of :class:`LayerItem` and
:class:`RegionItem` entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.trace.graph import LayerGraph, TraceNode


@dataclass
class LayerItem:
    """A plain layer in a chain."""

    node: TraceNode


@dataclass
class RegionItem:
    """A fork/join region: two parallel branches meeting at a join node.

    ``branch_a`` is the branch traced first (the backbone in ResNet
    blocks); ``branch_b`` the other (often the empty residual identity).
    The join node itself (e.g. ``on.Add``) is stored separately.
    """

    branch_a: "Chain"
    branch_b: "Chain"
    join: TraceNode


Item = Union[LayerItem, RegionItem]


@dataclass
class Chain:
    """A straight-line sequence of items."""

    items: List[Item] = field(default_factory=list)

    def layer_nodes(self) -> List[TraceNode]:
        """All layer nodes in execution order, flattening regions."""
        out: List[TraceNode] = []
        for item in self.items:
            if isinstance(item, LayerItem):
                out.append(item.node)
            else:
                out.extend(item.branch_a.layer_nodes())
                out.extend(item.branch_b.layer_nodes())
                out.append(item.join)
        return out

    def region_count(self) -> int:
        """Total regions including nested ones."""
        count = 0
        for item in self.items:
            if isinstance(item, RegionItem):
                count += 1
                count += item.branch_a.region_count()
                count += item.branch_b.region_count()
        return count


def build_region_tree(graph: LayerGraph) -> Chain:
    """Parse the traced DAG into a nested chain/region structure.

    Walks forward from the input uid.  On a fork (value with two
    consumers), follows both consumer paths until they meet at a join
    node with two inputs, recursing for nested regions.

    Raises:
        ValueError: if the graph contains overlapping skip connections
            or a fan-out wider than two (excluded by the paper).
    """
    consumers = graph.consumers()

    def parse_chain(start_uid: int, stop_node: Optional[TraceNode]) -> Chain:
        """Parse from value ``start_uid`` until reaching ``stop_node``
        (exclusive) or the end of the graph."""
        chain = Chain()
        uid = start_uid
        while True:
            users = consumers.get(uid, [])
            users = [u for u in users if u is not stop_node]
            if not users:
                return chain
            if len(users) == 1:
                node = users[0]
                if len(node.inputs) > 1:
                    # A join that belongs to an enclosing region.
                    return chain
                chain.items.append(LayerItem(node))
                uid = node.output
                continue
            if len(users) > 2:
                raise ValueError(
                    f"fan-out of {len(users)} at value {uid} is unsupported "
                    "(the paper excludes overlapping skip connections)"
                )
            # Fork: follow both branches to their common join.
            join = _find_join(uid, users, consumers)
            chains = []
            for first in users:
                if first is join:
                    # Identity branch: the fork value feeds the join directly.
                    chains.append(Chain())
                    continue
                sub = Chain()
                sub.items.append(LayerItem(first))
                sub.items.extend(parse_chain(first.output, stop_node=join).items)
                chains.append(sub)
            region = RegionItem(branch_a=chains[0], branch_b=chains[1], join=join)
            chain.items.append(region)
            uid = join.output

    def _find_join(fork_uid, users, consumers_map) -> TraceNode:
        """The join is the first multi-input node reachable from both
        consumers (non-overlapping regions make it unique)."""
        def reachable_joins(node: TraceNode):
            seen = set()
            joins = []
            frontier = [node]
            while frontier:
                current = frontier.pop()
                if current.index in seen:
                    continue
                seen.add(current.index)
                if len(current.inputs) > 1:
                    joins.append(current)
                for nxt in consumers_map.get(current.output, []):
                    frontier.append(nxt)
            return {j.index: j for j in joins}

        candidate_sets = [reachable_joins(u) if len(u.inputs) == 1 else {u.index: u} for u in users]
        common = set(candidate_sets[0])
        for s in candidate_sets[1:]:
            common &= set(s)
        if not common:
            raise ValueError(f"fork at value {fork_uid} has no common join")
        # The earliest (lowest execution index) common join is the region join.
        join_index = min(common)
        return candidate_sets[0][join_index]

    return parse_chain(graph.input_uid, stop_node=None)
