"""Shared utilities: integer math, primes, RNG, and disk storage."""

from repro.utils.intmath import (
    bit_reverse_indices,
    ceil_div,
    int_log2,
    is_power_of_two,
    mod_inverse,
    mod_pow,
    next_power_of_two,
)
from repro.utils.primes import find_ntt_primes, is_prime
from repro.utils.rng import SeededRng
from repro.utils.storage import DiagonalStore

__all__ = [
    "bit_reverse_indices",
    "ceil_div",
    "int_log2",
    "is_power_of_two",
    "mod_inverse",
    "mod_pow",
    "next_power_of_two",
    "find_ntt_primes",
    "is_prime",
    "SeededRng",
    "DiagonalStore",
]
