"""Integer and modular arithmetic helpers used across the FHE substrates."""

from __future__ import annotations

import numpy as np


def is_power_of_two(n: int) -> bool:
    """Return True if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def int_log2(n: int) -> int:
    """Exact base-2 logarithm of a power of two.

    Raises ``ValueError`` if ``n`` is not a positive power of two.
    """
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= max(n, 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for non-negative integers."""
    if b <= 0:
        raise ValueError("divisor must be positive")
    return -(-a // b)


def mod_pow(base: int, exponent: int, modulus: int) -> int:
    """Modular exponentiation (thin wrapper for readability)."""
    return pow(base, exponent, modulus)


def mod_inverse(a: int, modulus: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``modulus``.

    Raises ``ValueError`` when the inverse does not exist.
    """
    try:
        return pow(a, -1, modulus)
    except ValueError as exc:
        raise ValueError(f"{a} has no inverse modulo {modulus}") from exc


def bit_reverse_indices(n: int) -> np.ndarray:
    """Bit-reversal permutation of ``range(n)`` for power-of-two ``n``."""
    bits = int_log2(n)
    indices = np.arange(n, dtype=np.int64)
    result = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        result = (result << 1) | (indices & 1)
        indices >>= 1
    return result


def centered_mod(values: np.ndarray, modulus: int) -> np.ndarray:
    """Map residues in ``[0, modulus)`` to the centered range.

    Output lies in ``(-modulus/2, modulus/2]`` which is the standard lift
    used when interpreting RNS residues as signed integers.
    """
    values = np.asarray(values)
    half = modulus // 2
    return np.where(values > half, values - modulus, values)
