"""Prime search for NTT-friendly RNS moduli.

CKKS in RNS form needs a chain of primes ``q_i`` with ``q_i = 1 (mod 2N)``
so that Z_{q_i} contains a primitive 2N-th root of unity and the
negacyclic NTT exists (paper Section 2.1).  Primes are chosen close to a
target bit width so that ``q_i ~ Delta`` and rescaling keeps the scale
roughly constant (Section 2.5.2).
"""

from __future__ import annotations

from typing import List

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit-ish integers."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # This witness set is deterministic for n < 3.3 * 10^24.
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def find_ntt_primes(
    bit_width: int,
    count: int,
    ring_degree: int,
    exclude: tuple = (),
) -> List[int]:
    """Find ``count`` primes of ~``bit_width`` bits with q = 1 (mod 2N).

    Candidates are scanned downward from ``2**bit_width`` and, if the
    space below is exhausted, upward from it, so that all returned primes
    are as close to the target width as possible.

    Args:
        bit_width: target size in bits (e.g. 28 for the toy backend).
        count: how many distinct primes to return.
        ring_degree: the polynomial ring degree N; the congruence is
            taken modulo 2N.
        exclude: primes to skip (e.g. already used for another chain).

    Raises:
        ValueError: when not enough primes exist near the target width.
    """
    if count <= 0:
        return []
    step = 2 * ring_degree
    found: List[int] = []
    excluded = set(exclude)

    # Largest candidate <= 2**bit_width with candidate = 1 (mod 2N).
    top = (1 << bit_width) + 1
    candidate = top - ((top - 1) % step)
    lo_limit = 1 << (bit_width - 2)
    while candidate > lo_limit and len(found) < count:
        if candidate not in excluded and is_prime(candidate):
            found.append(candidate)
        candidate -= step

    candidate = top + step - ((top - 1) % step)
    hi_limit = 1 << (bit_width + 2)
    while candidate < hi_limit and len(found) < count:
        if candidate not in excluded and is_prime(candidate):
            found.append(candidate)
        candidate += step

    if len(found) < count:
        raise ValueError(
            f"could not find {count} NTT primes of ~{bit_width} bits "
            f"for ring degree {ring_degree}"
        )
    return found
