"""Seeded randomness for reproducible keys, noise, and datasets."""

from __future__ import annotations

import numpy as np


class SeededRng:
    """A thin wrapper over ``numpy.random.Generator`` with crypto helpers.

    All randomness in the repository flows through instances of this
    class so that every experiment is reproducible from a single seed.
    This is *not* a cryptographically secure RNG; the toy backend is a
    functional reference, not a deployment artifact.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._gen = np.random.default_rng(seed)

    def fork(self, tag: int) -> "SeededRng":
        """Derive an independent child stream (for per-layer use)."""
        return SeededRng(hash((self.seed, tag)) & 0x7FFFFFFF)

    # -- generic draws -------------------------------------------------
    def uniform_mod(self, modulus: int, shape) -> np.ndarray:
        """Uniform integers in [0, modulus) as int64."""
        return self._gen.integers(0, modulus, size=shape, dtype=np.int64)

    def gaussian(self, sigma: float, shape) -> np.ndarray:
        """Rounded discrete Gaussian used for RLWE noise."""
        return np.rint(self._gen.normal(0.0, sigma, size=shape)).astype(np.int64)

    def ternary(self, shape, hamming_fraction: float = 2.0 / 3.0) -> np.ndarray:
        """Ternary secret in {-1, 0, 1} with given nonzero fraction."""
        mask = self._gen.random(shape) < hamming_fraction
        signs = self._gen.integers(0, 2, size=shape, dtype=np.int64) * 2 - 1
        return np.where(mask, signs, 0).astype(np.int64)

    def sparse_ternary(self, length: int, hamming_weight: int) -> np.ndarray:
        """Ternary secret with *exactly* ``hamming_weight`` nonzeros.

        Sparse secrets bound the modulus-raise overflow polynomial I by
        ||s||_1 / 2 + 1, which is what makes the EvalMod sine window of
        CKKS bootstrapping tractable (Cheon et al.; cf. Bossuat et al.
        [11] for the non-sparse generalization).
        """
        if not 0 < hamming_weight <= length:
            raise ValueError(
                f"hamming weight {hamming_weight} not in (0, {length}]"
            )
        secret = np.zeros(length, dtype=np.int64)
        support = self._gen.permutation(length)[:hamming_weight]
        signs = self._gen.integers(0, 2, size=hamming_weight, dtype=np.int64) * 2 - 1
        secret[support] = signs
        return secret

    def normal(self, loc: float, scale: float, shape) -> np.ndarray:
        return self._gen.normal(loc, scale, size=shape)

    def integers(self, low: int, high: int, shape) -> np.ndarray:
        return self._gen.integers(low, high, size=shape)

    def random(self, shape):
        return self._gen.random(size=shape)

    def permutation(self, n: int) -> np.ndarray:
        return self._gen.permutation(n)

    def bytes(self, length: int) -> bytes:
        """Draw ``length`` random bytes (PRG seeds for expandable keys)."""
        return self._gen.bytes(length)

    # -- stream state --------------------------------------------------
    # The serving layer spills cold tenants to disk and later restores
    # them *transparently*: a promoted backend must continue the exact
    # randomness stream the resident backend would have used, so its
    # encryption noise (and therefore its outputs) stay bit-identical
    # to a never-spilled replica.  numpy bit-generator state is a plain
    # JSON-serializable dict of ints/strings.
    def get_state(self) -> dict:
        """Snapshot the underlying bit-generator state (serializable)."""
        return self._gen.bit_generator.state

    def set_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`get_state`."""
        self._gen.bit_generator.state = state

    @property
    def generator(self) -> np.random.Generator:
        """Access the underlying numpy generator."""
        return self._gen
