"""Disk spill for large compiled artifacts.

The paper stores rotation keys and encoded matrix diagonals in HDF5 and
streams them back during inference (Section 6, "Handling large data
structures").  h5py is unavailable offline, so this module provides the
same behaviour on top of ``numpy.savez``: a key-value store of arrays,
grouped so one group (e.g. one layer's diagonals) is loaded at a time.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional

import numpy as np


class DiagonalStore:
    """An npz-backed key-value store of numpy arrays with lazy loading.

    Keys are two-part: ``(group, name)``.  Each group is persisted as one
    ``.npz`` file so that inference can load exactly one layer's worth of
    plaintext diagonals at a time, bounding transient memory as the paper
    describes.  When constructed without a directory the store keeps
    everything in memory (useful for tests and small networks).
    """

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory
        self._memory: Dict[str, Dict[str, np.ndarray]] = {}
        self._cached_group: Optional[str] = None
        self._cache: Dict[str, np.ndarray] = {}
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    # -- writing -------------------------------------------------------
    def put_group(self, group: str, arrays: Dict[str, np.ndarray]) -> None:
        """Persist a whole group atomically (overwrites existing group)."""
        if self.directory is None:
            self._memory[group] = {k: np.asarray(v) for k, v in arrays.items()}
        else:
            np.savez(self._group_path(group), **arrays)
        if self._cached_group == group:
            self._cached_group = None
            self._cache = {}

    # -- reading -------------------------------------------------------
    def get_group(self, group: str) -> Dict[str, np.ndarray]:
        """Load an entire group into memory (cached for repeat access)."""
        if self._cached_group == group:
            return self._cache
        if self.directory is None:
            if group not in self._memory:
                raise KeyError(f"unknown group {group!r}")
            loaded = self._memory[group]
        else:
            path = self._group_path(group)
            if not os.path.exists(path):
                raise KeyError(f"unknown group {group!r}")
            with np.load(path) as data:
                loaded = {k: data[k] for k in data.files}
        self._cached_group = group
        self._cache = loaded
        return loaded

    def get(self, group: str, name: str) -> np.ndarray:
        return self.get_group(group)[name]

    def groups(self) -> List[str]:
        if self.directory is None:
            return sorted(self._memory)
        names = []
        for fname in os.listdir(self.directory):
            if fname.endswith(".npz"):
                names.append(fname[: -len(".npz")])
        return sorted(names)

    def __contains__(self, group: str) -> bool:
        return group in self.groups()

    def iter_group_items(self, group: str) -> Iterator:
        return iter(self.get_group(group).items())

    def evict(self) -> None:
        """Drop the read cache (models bounded transient memory)."""
        self._cached_group = None
        self._cache = {}

    def nbytes(self) -> int:
        """Total stored bytes (in-memory mode sums arrays; disk mode stats files)."""
        if self.directory is None:
            return sum(
                arr.nbytes for group in self._memory.values() for arr in group.values()
            )
        total = 0
        for fname in os.listdir(self.directory):
            if fname.endswith(".npz"):
                total += os.path.getsize(os.path.join(self.directory, fname))
        return total

    def _group_path(self, group: str) -> str:
        safe = group.replace("/", "_")
        return os.path.join(self.directory, f"{safe}.npz")
