"""Shared fixtures: small CKKS contexts and backends are expensive to
build, so session-scoped fixtures keep the suite fast."""

import numpy as np
import pytest

from repro.backend import SimBackend, ToyBackend
from repro.ckks.context import CkksContext
from repro.ckks.params import paper_parameters, toy_parameters


@pytest.fixture(scope="session")
def toy_params():
    return toy_parameters(ring_degree=512, max_level=6, scale_bits=21, boot_levels=2)


@pytest.fixture(scope="session")
def ckks(toy_params):
    return CkksContext(toy_params, seed=1234)


@pytest.fixture(scope="session")
def toy_backend(toy_params):
    return ToyBackend(toy_params, seed=99)


@pytest.fixture(scope="session")
def sim_params():
    return paper_parameters()


@pytest.fixture()
def sim_backend(sim_params):
    return SimBackend(sim_params, seed=7)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
