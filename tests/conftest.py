"""Shared fixtures: small CKKS contexts and backends are expensive to
build, so session-scoped fixtures keep the suite fast."""

import os

import numpy as np
import pytest

from repro.backend import SimBackend, ToyBackend
from repro.ckks.context import CkksContext
from repro.ckks.params import paper_parameters, toy_parameters
from repro.obs import Tracer, set_tracer


@pytest.fixture(scope="session", autouse=True)
def _ambient_tracer():
    """The CI ``tracing: on`` leg (REPRO_TRACE=on) runs the whole suite
    with a process-wide Tracer installed, so every bit-exactness assert
    doubles as a tracing-must-not-perturb-results probe.  Spans are
    never drained here — max_roots bounds the memory, and dropping
    excess roots is itself part of the exercised surface."""
    if os.environ.get("REPRO_TRACE", "").lower() not in ("on", "1", "true"):
        yield None
        return
    tracer = Tracer(max_roots=1000)
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(None)


@pytest.fixture(scope="session")
def toy_params():
    return toy_parameters(ring_degree=512, max_level=6, scale_bits=21, boot_levels=2)


@pytest.fixture(scope="session")
def ckks(toy_params):
    return CkksContext(toy_params, seed=1234)


@pytest.fixture(scope="session")
def toy_backend(toy_params):
    return ToyBackend(toy_params, seed=99)


@pytest.fixture(scope="session")
def sim_params():
    return paper_parameters()


@pytest.fixture()
def sim_backend(sim_params):
    return SimBackend(sim_params, seed=7)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
