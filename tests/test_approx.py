"""Tests for polynomial approximation and homomorphic evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.sim import SimBackend
from repro.ckks.params import paper_parameters
from repro.core.approx import (
    ChebyshevPoly,
    CompositeSign,
    chebyshev_fit,
    evaluate_chebyshev,
    poly_eval_depth,
    relu_approximation_error,
    remez_odd_sign,
)


class TestChebyshevFit:
    def test_interpolates_exactly_at_degree(self):
        poly = chebyshev_fit(lambda x: 3 * x**3 - x, 3)
        xs = np.linspace(-1, 1, 50)
        assert np.abs(poly(xs) - (3 * xs**3 - xs)).max() < 1e-12

    def test_silu_fit_quality(self):
        silu = lambda x: x / (1 + np.exp(-x))
        poly = chebyshev_fit(silu, 63)
        xs = np.linspace(-1, 1, 1000)
        assert np.abs(poly(xs) - silu(xs)).max() < 1e-6

    def test_scaled_and_offset(self):
        poly = chebyshev_fit(lambda x: x, 1).scaled(2.0).plus_constant(1.0)
        assert abs(poly(np.array([0.5]))[0] - 2.0) < 1e-12

    def test_rejects_degree_zero(self):
        with pytest.raises(ValueError):
            chebyshev_fit(lambda x: x, 0)


class TestRemez:
    def test_equioscillation_error_reasonable(self):
        poly, err = remez_odd_sign(15, 0.1)
        xs = np.linspace(0.1, 1, 3000)
        assert np.abs(poly(xs) - 1).max() <= err + 1e-9

    def test_odd_symmetry(self):
        poly, _ = remez_odd_sign(7, 0.2)
        xs = np.linspace(0.2, 1, 100)
        assert np.abs(poly(xs) + poly(-xs)).max() < 1e-10

    def test_higher_degree_is_better(self):
        _, err7 = remez_odd_sign(7, 0.1)
        _, err15 = remez_odd_sign(15, 0.1)
        assert err15 < err7

    def test_rejects_even_degree(self):
        with pytest.raises(ValueError):
            remez_odd_sign(8, 0.1)


class TestCompositeSign:
    def test_paper_degrees_high_precision(self):
        cs = CompositeSign.build((15, 15, 27), tau=0.02)
        xs = np.linspace(0.02, 1, 4000)
        assert np.abs(cs(xs) - 1).max() < 1e-6
        assert np.abs(cs(-xs) + 1).max() < 1e-6

    def test_relu_error_small(self):
        cs = CompositeSign.build((15, 15, 27), tau=0.02)
        assert relu_approximation_error(cs) < 0.02

    def test_depth_accounting(self):
        """Paper: sign depth 13 + 1 for the multiply = 14.  Our
        evaluator spends at most +1 per stage (see EXPERIMENTS.md)."""
        cs = CompositeSign.build((15, 15, 27))
        assert 13 <= cs.depth <= 16

    def test_relu_stages_fold_half(self):
        cs = CompositeSign.build((7, 7), tau=0.05)
        stages = cs.relu_stages()
        xs = np.linspace(-1, 1, 1001)
        out = xs.copy()
        for stage in stages:
            out = stage(out)
        relu = xs * out
        exact = np.maximum(xs, 0)
        mask = np.abs(xs) > 0.05
        assert np.abs(relu[mask] - exact[mask]).max() < 0.08

    def test_cache_returns_same_object(self):
        a = CompositeSign.build((7, 7), tau=0.05)
        b = CompositeSign.build((7, 7), tau=0.05)
        assert a is b


class TestHomomorphicEvaluation:
    @pytest.fixture()
    def backend(self):
        return SimBackend(paper_parameters(), seed=11)

    def _eval(self, backend, poly, values):
        ct = backend.encode_encrypt(values)
        out = evaluate_chebyshev(backend, ct, poly)
        return backend.decrypt(out)[: len(values)], out

    def test_matches_cleartext_eval(self, backend):
        poly = chebyshev_fit(lambda x: np.tanh(3 * x), 31)
        values = np.linspace(-1, 1, 128)
        got, _ = self._eval(backend, poly, values)
        assert np.abs(got - poly(values)).max() < 1e-5

    def test_degree_127(self, backend):
        silu = lambda x: x / (1 + np.exp(-6 * x))
        poly = chebyshev_fit(silu, 127)
        values = np.linspace(-1, 1, 64)
        got, out = self._eval(backend, poly, values)
        assert np.abs(got - poly(values)).max() < 1e-4
        assert backend.level_of(out) >= backend.params.max_level - 8

    def test_depth_measurements(self):
        assert poly_eval_depth(15) <= 5
        assert poly_eval_depth(63) <= 8
        assert poly_eval_depth(127) <= 8

    def test_exact_fraction_scales_no_drift(self, backend):
        """Every add inside the evaluator is between equal exact scales;
        the output scale is a well-defined Fraction."""
        poly = chebyshev_fit(lambda x: x**3, 7)
        ct = backend.encode_encrypt(np.ones(4) * 0.5)
        out = evaluate_chebyshev(backend, ct, poly)
        assert backend.scale_of(out) > 0  # exact Fraction, no exception

    def test_odd_polynomial_zero_coeffs_skipped(self, backend):
        """Sign stages are odd; evaluation must handle sparse coeffs."""
        sign_poly, _ = remez_odd_sign(15, 0.1)
        values = np.linspace(-1, 1, 64)
        got, _ = self._eval(backend, sign_poly, values)
        assert np.abs(got - sign_poly(values)).max() < 1e-5

    def test_rejects_constant(self, backend):
        ct = backend.encode_encrypt(np.ones(4))
        with pytest.raises(ValueError):
            evaluate_chebyshev(backend, ct, ChebyshevPoly((1.0,)))

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=2, max_value=40))
    def test_random_degrees(self, degree):
        backend = SimBackend(paper_parameters(), seed=degree, noise_free=True)
        rng = np.random.default_rng(degree)
        coeffs = rng.normal(size=degree + 1) / (degree + 1)
        poly = ChebyshevPoly(tuple(coeffs))
        values = np.linspace(-1, 1, 32)
        ct = backend.encode_encrypt(values)
        got = backend.decrypt(evaluate_chebyshev(backend, ct, poly))[:32]
        assert np.abs(got - poly(values)).max() < 1e-8
