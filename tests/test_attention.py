"""Tests for encrypted self-attention (repro.core.attention).

Covers the generic encrypted building blocks (rotation trees, inner
products, wraparound matvec, bounded-interval inverse) and the full
attention layer against both the polynomial and the true-softmax
cleartext references.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.sim import SimBackend
from repro.ckks.params import paper_parameters
from repro.core.attention import (
    AttentionConfig,
    EncryptedAttention,
    affine_to_unit,
    broadcast_slot0,
    chebyshev_inverse,
    encrypted_inner_product,
    rotate_sum,
    square_matvec,
)

PARAMS = paper_parameters(max_level=24)


@pytest.fixture()
def backend():
    return SimBackend(PARAMS, seed=0, noise_free=True)


def _encrypt(backend, values):
    return backend.encode_encrypt(values, level=PARAMS.max_level)


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------
class TestRotationTrees:
    @pytest.mark.parametrize("width", [1, 2, 8, 64])
    def test_rotate_sum_folds_prefix(self, backend, width):
        values = np.arange(1.0, 129.0)
        ct = rotate_sum(backend, _encrypt(backend, values), width)
        assert backend.decrypt(ct)[0] == pytest.approx(values[:width].sum())

    def test_rotate_sum_rejects_non_power_of_two(self, backend):
        with pytest.raises(ValueError, match="power-of-two"):
            rotate_sum(backend, _encrypt(backend, np.ones(8)), 6)

    def test_broadcast_slot0_fills_every_slot(self, backend):
        values = np.zeros(16)
        values[0] = 2.5
        ct = broadcast_slot0(backend, _encrypt(backend, values))
        got = backend.decrypt(ct)
        assert np.allclose(got, 2.5, atol=1e-9)

    def test_rotation_trees_cost_log_rotations(self, backend):
        """"# Rots" accounting: the fold tree reports log2(width)
        rotations whether it runs sequentially (hrot) or expanded off
        one shared decomposition (hrot_hoisted, charged_rotations)."""
        before = backend.ledger.rotations
        rotate_sum(backend, _encrypt(backend, np.ones(64)), 64)
        assert backend.ledger.rotations - before == 6


class TestInnerProduct:
    def test_matches_numpy_dot(self, backend):
        rng = np.random.default_rng(1)
        a, b = rng.uniform(-1, 1, 32), rng.uniform(-1, 1, 32)
        ct = encrypted_inner_product(
            backend, _encrypt(backend, a), _encrypt(backend, b), 32
        )
        got = backend.decrypt(ct)
        assert got[0] == pytest.approx(float(a @ b), abs=1e-9)
        # broadcast: every slot carries the scalar
        assert np.allclose(got, got[0], atol=1e-9)

    def test_post_factor_is_applied(self, backend):
        a = np.ones(16)
        ct = encrypted_inner_product(
            backend, _encrypt(backend, a), _encrypt(backend, a), 16, post_factor=0.25
        )
        assert backend.decrypt(ct)[0] == pytest.approx(4.0)

    def test_consumes_two_levels(self, backend):
        a = _encrypt(backend, np.ones(8))
        out = encrypted_inner_product(backend, a, a, 8)
        assert backend.level_of(out) == PARAMS.max_level - 2


class TestSquareMatvec:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_matches_numpy(self, seed):
        backend = SimBackend(PARAMS, seed=0, noise_free=True)
        rng = np.random.default_rng(seed)
        d = int(rng.choice([4, 8, 16]))
        matrix = rng.normal(size=(d, d))
        vec = rng.uniform(-1, 1, d)
        out = square_matvec(backend, _encrypt(backend, vec), matrix)
        assert np.abs(backend.decrypt(out)[:d] - matrix @ vec).max() < 1e-9

    def test_wraparound_diagonals(self, backend):
        """A pure shift matrix exercises exactly the wrapped halves."""
        d = 8
        matrix = np.zeros((d, d))
        for i in range(d):
            matrix[i, (i + 5) % d] = 1.0
        vec = np.arange(1.0, d + 1)
        out = square_matvec(backend, _encrypt(backend, vec), matrix)
        assert np.allclose(backend.decrypt(out)[:d], np.roll(vec, -5), atol=1e-9)

    def test_sparse_matrix_skips_zero_diagonals(self, backend):
        d = 8
        before = backend.ledger.counts["pmult"]
        square_matvec(backend, _encrypt(backend, np.ones(d)), np.eye(d))
        # identity = one diagonal, no wraparound half
        assert backend.ledger.counts["pmult"] - before == 1

    def test_rejects_rectangular(self, backend):
        with pytest.raises(ValueError, match="square"):
            square_matvec(backend, _encrypt(backend, np.ones(4)), np.ones((4, 8)))

    def test_output_scale_is_input_scale(self, backend):
        """Errorless discipline: encoded-at-prime diagonals keep scale."""
        ct = _encrypt(backend, np.ones(4))
        out = square_matvec(backend, ct, np.eye(4))
        assert backend.scale_of(out) == backend.scale_of(ct)


class TestInverse:
    def test_chebyshev_inverse_accuracy(self):
        poly = chebyshev_inverse(1.0, 8.0, degree=15)
        s = np.linspace(1.0, 8.0, 200)
        x = (2 * s - 9.0) / 7.0
        assert np.abs(poly(x) - 1.0 / s).max() < 1e-4

    def test_tighter_interval_is_more_accurate(self):
        wide = chebyshev_inverse(0.5, 16.0, degree=9)
        tight = chebyshev_inverse(2.0, 4.0, degree=9)
        s_w = np.linspace(0.5, 16.0, 100)
        s_t = np.linspace(2.0, 4.0, 100)
        err_w = np.abs(wide((2 * s_w - 16.5) / 15.5) - 1 / s_w).max()
        err_t = np.abs(tight((2 * s_t - 6.0) / 2.0) - 1 / s_t).max()
        assert err_t < err_w / 100

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="positive"):
            chebyshev_inverse(-1.0, 2.0)

    def test_affine_to_unit(self, backend):
        ct = _encrypt(backend, np.linspace(2.0, 6.0, 16))
        out = affine_to_unit(backend, ct, 2.0, 6.0)
        got = backend.decrypt(out)[:16]
        assert np.allclose(got, np.linspace(-1.0, 1.0, 16), atol=1e-9)


# ---------------------------------------------------------------------------
# The attention layer
# ---------------------------------------------------------------------------
def _random_attention(backend, d, seed=0, config=AttentionConfig()):
    rng = np.random.default_rng(seed)
    wq, wk, wv = (rng.normal(size=(d, d)) / math.sqrt(d) for _ in range(3))
    return EncryptedAttention(backend, wq, wk, wv, config), rng


class TestEncryptedAttention:
    def test_matches_polynomial_reference(self, backend):
        attn, rng = _random_attention(backend, 16)
        tokens = rng.uniform(-0.5, 0.5, (4, 16))
        cts = [_encrypt(backend, t) for t in tokens]
        outs = attn(cts)
        got = np.stack([backend.decrypt(o)[:16] for o in outs])
        assert np.abs(got - attn.polynomial_reference(tokens)).max() < 1e-4

    def test_close_to_true_softmax(self, backend):
        attn, rng = _random_attention(backend, 16)
        tokens = rng.uniform(-0.5, 0.5, (4, 16))
        cts = [_encrypt(backend, t) for t in tokens]
        outs = attn(cts)
        got = np.stack([backend.decrypt(o)[:16] for o in outs])
        assert np.abs(got - attn.reference(tokens)).max() < 1e-3

    def test_with_noise_still_accurate(self):
        noisy = SimBackend(PARAMS, seed=5, noise_free=False)
        attn, rng = _random_attention(noisy, 8, seed=2)
        tokens = rng.uniform(-0.5, 0.5, (3, 8))
        outs = attn([noisy.encode_encrypt(t, level=PARAMS.max_level) for t in tokens])
        got = np.stack([noisy.decrypt(o)[:8] for o in outs])
        err = np.abs(got - attn.reference(tokens)).mean()
        assert -math.log2(err) > 8.0

    def test_attention_weights_are_normalized(self, backend):
        """Uniform tokens attend uniformly: output = mean of values."""
        attn, _ = _random_attention(backend, 8, seed=3)
        token = np.random.default_rng(4).uniform(-0.5, 0.5, 8)
        tokens = np.stack([token] * 3)
        outs = attn([_encrypt(backend, t) for t in tokens])
        v = tokens @ attn.wv.T
        got = backend.decrypt(outs[0])[:8]
        assert np.abs(got - v.mean(axis=0)).max() < 1e-3

    def test_level_budget_documented(self, backend):
        attn, rng = _random_attention(backend, 8, seed=6)
        tokens = rng.uniform(-0.5, 0.5, (2, 8))
        outs = attn([_encrypt(backend, t) for t in tokens])
        consumed = PARAMS.max_level - backend.level_of(outs[0])
        assert consumed <= 18  # "about 16 levels" per the docstring

    def test_rejects_mismatched_weights(self, backend):
        with pytest.raises(ValueError, match="square"):
            EncryptedAttention(backend, np.ones((4, 4)), np.ones((4, 8)), np.ones((4, 4)))

    def test_rejects_non_power_of_two_dim(self, backend):
        w = np.ones((6, 6))
        with pytest.raises(ValueError, match="power of two"):
            EncryptedAttention(backend, w, w, w)

    def test_config_controls_exp_fit(self, backend):
        config = AttentionConfig(exp_range=2.0, exp_degree=23)
        attn, _ = _random_attention(backend, 8, config=config)
        x = np.linspace(-1, 1, 50)
        assert np.abs(attn.exp_poly(x) - np.exp(2.0 * x)).max() < 1e-6
